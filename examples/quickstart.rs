//! Quickstart: the whole attack in ~40 lines.
//!
//! The adversary (1) rents a GPU cloud instance next to the victim,
//! (2) downgrades her VM's driver to re-enable CUPTI, (3) profiles a few
//! models of her own to train the inference stack, and (4) extracts the
//! victim's model structure from counter samples alone.
//!
//! Run with `cargo run --release --example quickstart`.

use leaky_dnn::prelude::*;

fn main() {
    // Step 1+2: spy VM with CUPTI access (the §II-D driver downgrade).
    let mut vm = VmInstance::fresh_cloud_instance("spy-vm");
    assert!(
        vm.check_cupti_access().is_err(),
        "patched driver blocks CUPTI"
    );
    vm.downgrade_driver().expect("root in our own VM");
    println!("driver downgraded to {} — CUPTI available", vm.driver());

    // Step 3: profile our own models on the shared GPU (small scale here;
    // see the bench binaries for the paper-scale runs).
    let input = InputSpec::Image {
        height: 64,
        width: 64,
        channels: 3,
    };
    let profiled: Vec<TrainingSession> = random_profiling_models(8, input, 7)
        .into_iter()
        .map(|m| TrainingSession::new(m, TrainingConfig::new(64, 6)))
        .collect();
    println!(
        "profiling {} models + training the inference stack...",
        profiled.len()
    );
    let moscons = Moscons::profile(&profiled, AttackConfig::default());

    // Step 4: attack a victim training run.
    // A small-scale demo works best on an MLP victim (convolutions need the
    // paper-scale image sizes to be visible — see examples/extract_vgg16.rs).
    let victim_model = Model::new(
        "victim",
        input,
        vec![
            Layer::dense(256, Activation::Relu),
            Layer::dense(1024, Activation::Relu),
            Layer::dense(4096, Activation::Relu),
            Layer::dense(512, Activation::Relu),
        ],
        Optimizer::Adam,
    );
    let victim = TrainingSession::new(victim_model.clone(), TrainingConfig::new(64, 6));
    let (extraction, _trace) = moscons.attack(&victim, 42);

    println!("\nvictim's secret : {}", victim_model.structure_string());
    println!("recovered       : {}", extraction.structure);
    let score = score_structure(&victim_model, &extraction.layers, extraction.optimizer);
    println!(
        "AccuracyL = {:.1}%   AccuracyHP = {:.1}% ({}/{})",
        100.0 * score.layers,
        100.0 * score.hyper_params,
        score.hp_correct,
        score.hp_total
    );
}
