//! The paper's headline scenario, stage by stage (Figure 4): profile the
//! Table V zoo, then steal VGG16's structure, printing each pipeline stage's
//! intermediate product — iteration splitting (1), long-op recognition (2-3),
//! hyper-parameters (4-5), voting (6-7), collapsing + syntax correction (8-9).
//!
//! Run with `cargo run --release --example extract_vgg16`
//! (set `LEAKY_SCALE=quick` for a fast smoke run).

use leaky_dnn::prelude::*;
use moscons::hp_sweep_variants;

fn main() {
    let quick = std::env::var("LEAKY_SCALE").as_deref() == Ok("quick");
    let side = if quick { 64 } else { 112 };
    let (batch_cnn, batch_mlp, iters) = if quick { (8, 32, 6) } else { (16, 128, 8) };
    let input = InputSpec::Image {
        height: side,
        width: side,
        channels: 3,
    };

    // --- profiling phase: Table V zoo + hyper-parameter sweep variants ---
    let mut models = vec![
        zoo::profiled_mlp().with_input(input),
        zoo::alexnet().with_input(input),
        zoo::profiled_vgg19().with_input(input),
    ];
    models.extend(hp_sweep_variants(&zoo::alexnet().with_input(input), 4, 5));
    models.extend(hp_sweep_variants(
        &zoo::profiled_mlp().with_input(input),
        3,
        9,
    ));
    models.extend(hp_sweep_variants(
        &zoo::profiled_vgg19().with_input(input),
        2,
        13,
    ));
    let sessions: Vec<TrainingSession> = models
        .into_iter()
        .map(|m| {
            let is_mlp = m.layers.iter().all(|l| matches!(l, Layer::Dense { .. }));
            let batch = if is_mlp { batch_mlp } else { batch_cnn };
            TrainingSession::new(m, TrainingConfig::new(batch, iters))
        })
        .collect();
    println!(
        "profiling {} models (this trains Mgap, Mlong, Mop, Vlong, Vop, Mhp)...",
        sessions.len()
    );
    let t0 = std::time::Instant::now();
    let moscons = Moscons::profile(&sessions, AttackConfig::default());
    println!("done in {:?}", t0.elapsed());

    // --- attack phase: VGG16 ---
    let victim_model = zoo::vgg16().with_input(input);
    let victim = TrainingSession::new(victim_model.clone(), TrainingConfig::new(batch_cnn, iters));
    println!(
        "\nattacking {} (batch {}, {}px)...",
        victim_model.name, batch_cnn, side
    );
    let (ex, _raw) = moscons.attack(&victim, 1616);

    println!(
        "\n[1] iteration splitting (Mgap): {} valid iterations",
        ex.iterations.len()
    );
    for (i, r) in ex.iterations.iter().enumerate().take(5) {
        println!(
            "     iteration {}: samples {}..{} ({} samples)",
            i,
            r.start,
            r.end,
            r.len()
        );
    }
    let letters = |cs: &[OpClass]| cs.iter().map(|c| c.letter()).collect::<String>();
    let n = ex.pre_voting_classes.len().min(100);
    println!(
        "\n[2-3] op recognition (Mlong + Mop), first {} samples of the base iteration:",
        n
    );
    println!("     pre-voting: {}", letters(&ex.pre_voting_classes[..n]));
    println!(
        "\n[6-7] after LSTM voting over {} iterations:",
        moscons.config().voting_iterations
    );
    println!(
        "     voted     : {}",
        letters(&ex.fused_classes[..n.min(ex.fused_classes.len())])
    );
    println!(
        "\n[8-9] collapse + forward parse + Mhp + syntax correction ({} edits):",
        ex.syntax_edits
    );
    println!("     recovered : {}", ex.structure);
    println!("     truth     : {}", victim_model.structure_string());

    let score = score_structure(&victim_model, &ex.layers, ex.optimizer);
    println!(
        "\nAccuracyL = {:.1}% (paper: 95.2%)   AccuracyHP = {:.1}% (paper: 82.8%)",
        100.0 * score.layers,
        100.0 * score.hyper_params
    );
}
