//! Why the attack needs MPS *off*: compares the spy's view of the same
//! victim under the MPS leftover scheduler (Figure 2 — one opaque blob per
//! iteration) and the time-sliced scheduler (Figure 3 — per-op samples),
//! then shows the slow-down attack multiplying the resolution further.
//!
//! Run with `cargo run --release --example scheduler_comparison`.

use leaky_dnn::prelude::*;
use moscons::trace::collect_trace;

fn main() {
    let input = InputSpec::Image {
        height: 64,
        width: 64,
        channels: 3,
    };
    let model = zoo::alexnet().with_input(input);
    let session = TrainingSession::new(model, TrainingConfig::new(8, 4));

    // MPS on: the spy starves while the victim computes.
    let gpu_cfg = GpuConfig::gtx_1080_ti();
    let mut gpu = Gpu::new(gpu_cfg.clone(), SchedulerMode::Mps);
    let victim = gpu.add_context("victim");
    let spy = gpu.add_context("spy");
    gpu.set_auto_repeat(spy, SpyKernelKind::Conv200.kernel(1.24, &gpu_cfg));
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    session.enqueue(&mut gpu, victim, &mut rng);
    gpu.run_until_queues_drain();
    let victim_busy: f64 = gpu
        .kernel_log()
        .iter()
        .filter(|r| r.ctx == victim)
        .map(|r| r.duration_us())
        .sum();
    let spy_completions_mps = gpu.kernels_completed(spy);
    println!(
        "MPS on : victim computed {:.0} ms; spy completed {} launches total",
        victim_busy / 1000.0,
        spy_completions_mps
    );

    // MPS off, no slow-down: per-op sampling.
    let plain = collect_trace(
        &session,
        &CollectionConfig {
            slowdown: SlowdownConfig::off(),
            ..CollectionConfig::paper()
        },
        &gpu_cfg,
    );
    println!(
        "MPS off: {} CUPTI samples over {} iterations ({} ops each)",
        plain.samples.len(),
        4,
        session.ops().len()
    );

    // MPS off + 8-kernel slow-down: several samples per op.
    let slowed = collect_trace(&session, &CollectionConfig::paper(), &gpu_cfg);
    println!(
        "  + slow-down: {} samples; victim iteration stretched {:.1}x ({:.0} -> {:.0} ms)",
        slowed.samples.len(),
        slowed.mean_iteration_us / plain.mean_iteration_us,
        plain.mean_iteration_us / 1000.0,
        slowed.mean_iteration_us / 1000.0
    );
    let busy = slowed
        .samples
        .iter()
        .filter(|s| s.counters.total() > 0.0)
        .count();
    println!(
        "samples per victim op under attack: {:.1}",
        busy as f64 / (4.0 * session.ops().len() as f64)
    );
}
