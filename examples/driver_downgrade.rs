//! The §II-D adversary-model demonstration: Nvidia's patched driver
//! (418.40.04+) blocks CUPTI, but a cloud tenant with root in her own VM
//! simply downgrades to 384.130 and regains counter access — invisibly to
//! the victim VM sharing the physical GPU.
//!
//! Run with `cargo run --release --example driver_downgrade`.

use gpu_sim::ContextId;
use leaky_dnn::prelude::*;

fn main() {
    // A freshly-rented EC2-style instance ships the patched driver.
    let mut spy_vm = VmInstance::fresh_cloud_instance("spy-vm");
    println!("spy VM driver: {}", spy_vm.driver());

    // Opening a CUPTI session fails...
    let ctx = ContextId::test_value(0);
    match CuptiSession::open(&spy_vm, ctx, table_iv_groups(), 1000.0) {
        Err(e) => println!("CUPTI session: BLOCKED — {}", e),
        Ok(_) => unreachable!("patched driver must block CUPTI"),
    }

    // ...until the tenant downgrades the driver with her own root.
    spy_vm
        .downgrade_driver()
        .expect("tenant has root in her own VM");
    println!(
        "downgraded to: {} (victim VM unaffected and unaware)",
        spy_vm.driver()
    );

    let session = CuptiSession::open(&spy_vm, ctx, table_iv_groups(), 1000.0)
        .expect("unpatched driver allows CUPTI");
    println!(
        "CUPTI session: OPEN — {} event groups, replay factor x{:.2}",
        session.groups().len(),
        session.replay_factor()
    );

    // An unprivileged tenant, by contrast, is stuck.
    let mut locked = VmInstance::new("unprivileged", DriverVersion::CUPTI_RESTRICTED_SINCE, false);
    match locked.downgrade_driver() {
        Err(e) => println!("unprivileged tenant downgrade: DENIED — {}", e),
        Ok(()) => unreachable!("downgrade requires root"),
    }

    println!(
        "\nconclusion (paper §II-D): the CUPTI restriction patch does not stop a cloud adversary."
    );
}
