//! Cross-crate integration: the side-channel signal end to end, from the
//! dnn-sim planner through the GPU engine and the CUPTI layer to labeled
//! samples.

use dnn_sim::{
    zoo, Activation, InputSpec, Layer, Model, OpClass, Optimizer, TrainingConfig, TrainingSession,
};
use gpu_sim::GpuConfig;
use moscons::dataset::LabeledTrace;
use moscons::trace::{collect_trace, CollectionConfig};

fn small_input() -> InputSpec {
    InputSpec::Image {
        height: 64,
        width: 64,
        channels: 3,
    }
}

fn collect(model: Model, batch: usize, iterations: usize, seed: u64) -> LabeledTrace {
    let session = TrainingSession::new(model, TrainingConfig::new(batch, iterations));
    let raw = collect_trace(
        &session,
        &CollectionConfig::paper().with_seed(seed),
        &GpuConfig::gtx_1080_ti(),
    );
    LabeledTrace::from_raw(&raw, "it")
}

#[test]
fn every_op_class_of_a_cnn_appears_in_the_labels() {
    let model = Model::new(
        "cnn",
        small_input(),
        vec![
            Layer::conv(5, 64, 1),
            Layer::MaxPool,
            Layer::Conv2D {
                filter_size: 3,
                filters: 128,
                stride: 1,
                activation: Activation::Tanh,
            },
            Layer::dense(512, Activation::Sigmoid),
        ],
        Optimizer::Adam,
    );
    let trace = collect(model, 32, 3, 5);
    let counts = trace.class_counts();
    let have: Vec<OpClass> = counts.iter().map(|(c, _)| *c).collect();
    for class in [
        OpClass::Conv,
        OpClass::MatMul,
        OpClass::Pool,
        OpClass::Optimizer,
        OpClass::Nop,
    ] {
        assert!(have.contains(&class), "missing {:?} in {:?}", class, counts);
    }
}

#[test]
fn long_ops_receive_more_samples_than_short_ops() {
    // The core premise of Mlong: conv/MatMul dominate the sample stream
    // relative to their op count.
    let trace = collect(zoo::tested_mlp().with_input(small_input()), 64, 3, 9);
    let matmul = trace
        .samples
        .iter()
        .filter(|s| s.class == OpClass::MatMul)
        .count();
    let relu = trace
        .samples
        .iter()
        .filter(|s| s.class == OpClass::Relu)
        .count();
    assert!(
        matmul > relu,
        "MatMul should out-sample ReLU: {} vs {}",
        matmul,
        relu
    );
}

#[test]
fn conv_samples_show_texture_signal_and_matmul_samples_do_not() {
    let cnn = Model::new(
        "convy",
        small_input(),
        vec![Layer::conv(5, 256, 1), Layer::conv(5, 256, 1)],
        Optimizer::Gd,
    );
    let trace = collect(cnn, 32, 3, 11);
    let mean_tex = |class: OpClass, t: &LabeledTrace| {
        let rows: Vec<&moscons::dataset::LabeledSample> =
            t.samples.iter().filter(|s| s.class == class).collect();
        if rows.is_empty() {
            return 0.0;
        }
        // features[0..2] are the log-scaled texture counters.
        rows.iter()
            .map(|s| (s.features[0] + s.features[1]) as f64)
            .sum::<f64>()
            / rows.len() as f64
    };
    let conv_tex = mean_tex(OpClass::Conv, &trace);

    let mlp_trace = collect(zoo::tested_mlp().with_input(small_input()), 64, 3, 13);
    let matmul_tex = mean_tex(OpClass::MatMul, &mlp_trace);
    assert!(
        conv_tex > matmul_tex + 0.5,
        "texture channel should separate conv ({:.2}) from matmul ({:.2}) [log scale]",
        conv_tex,
        matmul_tex
    );
}

#[test]
fn iteration_structure_is_stable_across_iterations() {
    // The same OpSeq repeats every iteration (the premise of voting): the
    // per-iteration sample counts must be within the paper's R_min/R_max
    // validity band.
    let trace = collect(zoo::tested_mlp().with_input(small_input()), 64, 5, 21);
    let iters = trace.split_iterations_ground_truth(6);
    assert_eq!(iters.len(), 5);
    let lens: Vec<usize> = iters.iter().map(|r| r.len()).collect();
    let median = {
        let mut l = lens.clone();
        l.sort_unstable();
        l[l.len() / 2] as f64
    };
    for l in &lens {
        assert!(
            (*l as f64) > 0.7 * median && (*l as f64) < 1.4 * median,
            "iteration lengths too unstable: {:?}",
            lens
        );
    }
}
