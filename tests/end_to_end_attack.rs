//! Full-pipeline integration: profile a small suite, attack an unseen MLP,
//! and check that the extraction is structurally sound. Kept at smoke scale
//! so `cargo test --workspace` stays fast; the paper-scale numbers live in
//! the bench binaries and EXPERIMENTS.md.

use dnn_sim::{Activation, InputSpec, Layer, Model, Optimizer, TrainingConfig, TrainingSession};
use moscons::attack::{AttackConfig, Moscons};
use moscons::{random_profiling_models, score_structure, RecoveredKind};

fn input() -> InputSpec {
    InputSpec::Image {
        height: 64,
        width: 64,
        channels: 3,
    }
}

fn trained_attack() -> &'static Moscons {
    use std::sync::OnceLock;
    static ATTACK: OnceLock<Moscons> = OnceLock::new();
    ATTACK.get_or_init(|| {
        let profiled: Vec<TrainingSession> = random_profiling_models(5, input(), 77)
            .into_iter()
            .map(|m| TrainingSession::new(m, TrainingConfig::new(48, 5)))
            .collect();
        let mut config = AttackConfig::default();
        // Smoke-scale training budget.
        config.op_lstm.epochs = 8;
        config.op_lstm.hidden = 40;
        config.voting_lstm.epochs = 8;
        config.hp_lstm.epochs = 6;
        config.voting_iterations = 3;
        Moscons::profile(&profiled, config)
    })
}

#[test]
fn extracts_a_plausible_mlp_structure() {
    let moscons = trained_attack();
    let victim_model = Model::new(
        "victim-mlp",
        input(),
        vec![
            Layer::dense(512, Activation::Relu),
            Layer::dense(2048, Activation::Relu),
            Layer::dense(8192, Activation::Relu),
            Layer::dense(1024, Activation::Relu),
        ],
        Optimizer::Adam,
    );
    let victim = TrainingSession::new(victim_model.clone(), TrainingConfig::new(48, 5));
    let (extraction, _raw) = moscons.attack(&victim, 4321);

    // Mgap found the training loop.
    assert!(
        (3..=5).contains(&extraction.iterations.len()),
        "expected ~5 iterations, found {}",
        extraction.iterations.len()
    );
    // The recovered structure is MLP-shaped: dense layers, no convs/pools.
    assert!(!extraction.layers.is_empty(), "no layers recovered");
    assert!(
        extraction
            .layers
            .iter()
            .all(|l| l.kind == RecoveredKind::Dense),
        "MLP must recover as dense-only: {}",
        extraction.structure
    );
    // This is an integration smoke test at a deliberately tiny training
    // budget: it asserts the pipeline is structurally sound, not accurate
    // (accuracy at evaluation scale lives in the bench binaries and
    // EXPERIMENTS.md). At this budget the recovered layer count can
    // degenerate, but at least part of the sequence must align.
    let score = score_structure(&victim_model, &extraction.layers, extraction.optimizer);
    assert!(
        score.layers >= 0.2,
        "AccuracyL too low even for smoke scale: {} ({})",
        score.layers,
        extraction.structure
    );
    assert!(
        extraction.layers.len() <= 12,
        "runaway layer count: {}",
        extraction.structure
    );
    // The structure string round-trips the recovered layers.
    assert!(extraction.structure.starts_with('M'));
    assert!(extraction.structure.contains("Optimizer"));
}

#[test]
fn extraction_on_pure_noise_is_empty_or_tiny() {
    // Feeding the extractor a constant-noise stream must not hallucinate a
    // deep model: no valid iterations -> empty structure.
    let moscons = trained_attack();
    let features: Vec<Vec<f32>> = (0..600)
        .map(|i| {
            (0..13)
                .map(|j| ((i * 7 + j * 13) % 5) as f32 * 0.05)
                .collect()
        })
        .collect();
    let extraction = moscons.extract(&features);
    assert!(
        extraction.layers.len() <= 2,
        "hallucinated {} layers from noise: {}",
        extraction.layers.len(),
        extraction.structure
    );
}
