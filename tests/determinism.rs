//! Thread-count invariance of the full pipeline: profiling and extraction
//! under a single-worker pool must match an 8-worker pool bit for bit. The
//! engine's contract (see `ml::par`) is that parallelism changes wall-clock
//! time only — every reduction happens in a fixed order, so the trained
//! models and the recovered structure are identical.

use dnn_sim::{Activation, InputSpec, Layer, Model, Optimizer, TrainingConfig, TrainingSession};
use moscons::attack::{AttackConfig, Moscons};
use moscons::{random_profiling_models, AttackReport};

fn input() -> InputSpec {
    InputSpec::Image {
        height: 64,
        width: 64,
        channels: 3,
    }
}

/// Profiles and attacks at smoke scale, returning the flattened report.
fn run_pipeline() -> AttackReport {
    let profiled: Vec<TrainingSession> = random_profiling_models(3, input(), 19)
        .into_iter()
        .map(|m| TrainingSession::new(m, TrainingConfig::new(48, 4)))
        .collect();
    let mut config = AttackConfig::default();
    config.op_lstm.epochs = 4;
    config.op_lstm.hidden = 24;
    config.voting_lstm.epochs = 4;
    config.hp_lstm.epochs = 3;
    config.hp_lstm.hidden = 24;
    config.voting_iterations = 3;
    let moscons = Moscons::profile(&profiled, config);

    let victim_model = Model::new(
        "victim",
        input(),
        vec![
            Layer::dense(2048, Activation::Relu),
            Layer::dense(512, Activation::Relu),
        ],
        Optimizer::Gd,
    );
    let victim = TrainingSession::new(victim_model, TrainingConfig::new(48, 4));
    let (extraction, _raw) = moscons.attack(&victim, 99);
    extraction.report()
}

#[test]
fn pipeline_is_thread_count_invariant() {
    let serial = ml::par::with_threads(1, run_pipeline);
    let parallel = ml::par::with_threads(8, run_pipeline);
    assert_eq!(
        serial, parallel,
        "8-worker pipeline diverged from the serial pipeline"
    );
    // The comparison must be over a non-degenerate run to mean anything.
    assert!(!serial.iterations.is_empty(), "no iterations recovered");
    assert!(!serial.fused_classes.is_empty(), "no fused classes");
}

#[test]
fn cache_modes_agree_bitwise() {
    // The same pipeline with the trace cache off, cold on disk, and warm
    // from disk must produce the same report — a disk hit is a bitwise
    // round trip, not an approximation.
    let dir = "target/leaky-dnn-cache-test";
    let _ = std::fs::remove_dir_all(dir);
    std::env::set_var("LEAKY_DNN_CACHE_DIR", dir);

    std::env::set_var("LEAKY_DNN_CACHE", "off");
    let uncached = ml::par::with_threads(1, run_pipeline);

    std::env::set_var("LEAKY_DNN_CACHE", "disk");
    let disk_cold = ml::par::with_threads(1, run_pipeline);
    assert!(
        std::fs::read_dir(dir)
            .map(|d| d.count() > 0)
            .unwrap_or(false),
        "disk mode must persist trace entries under {}",
        dir
    );

    // Drop the in-process memo so the next run must load from disk.
    moscons::cache::clear_memory();
    let disk_warm = ml::par::with_threads(1, run_pipeline);

    std::env::set_var("LEAKY_DNN_CACHE", "mem");
    assert_eq!(uncached, disk_cold, "disk-cold run diverged from uncached");
    assert_eq!(uncached, disk_warm, "disk-warm run diverged from uncached");
}

#[test]
fn report_serializes_to_json() {
    let report = ml::par::with_threads(1, run_pipeline);
    let json = serde_json::to_string(&report).expect("report serializes");
    assert!(json.contains("\"structure\""));
    assert!(json.contains("\"syntax_edits\""));
}
