//! Thread-count invariance of the full pipeline: profiling and extraction
//! under a single-worker pool must match an 8-worker pool bit for bit. The
//! engine's contract (see `ml::par`) is that parallelism changes wall-clock
//! time only — every reduction happens in a fixed order, so the trained
//! models and the recovered structure are identical.
//!
//! The same contract extends to fault injection: a `FaultPlan` is part of
//! the GPU configuration, so one plan value fully determines a run and the
//! faulted pipeline is exactly as reproducible as the clean one.

mod common;

use common::quick_pipeline;
use gpu_sim::FaultPlan;
use moscons::AttackReport;

/// Profiles and attacks at smoke scale on the clean path.
fn run_pipeline() -> AttackReport {
    quick_pipeline(99, FaultPlan::none())
}

#[test]
fn pipeline_is_thread_count_invariant() {
    let serial = ml::par::with_threads(1, run_pipeline);
    let parallel = ml::par::with_threads(8, run_pipeline);
    assert_eq!(
        serial, parallel,
        "8-worker pipeline diverged from the serial pipeline"
    );
    // The comparison must be over a non-degenerate run to mean anything.
    assert!(!serial.iterations.is_empty(), "no iterations recovered");
    assert!(!serial.fused_classes.is_empty(), "no fused classes");
}

#[test]
fn packed_batch_pipeline_is_thread_count_invariant() {
    // A minibatch of 8 packs several equal-length profiling iterations into
    // each fused bucket GEMM (`ml::seq`'s batched training path), instead of
    // the mostly-singleton buckets the default minibatch of 4 produces at
    // this scale. The 1-vs-8-worker bitwise equality must hold there too:
    // bucket composition and worker count are both scheduling decisions, not
    // arithmetic ones.
    let run = || common::quick_pipeline_batched(99, FaultPlan::none(), 8);
    let serial = ml::par::with_threads(1, run);
    let parallel = ml::par::with_threads(8, run);
    assert_eq!(
        serial, parallel,
        "packed batch training diverged across worker counts"
    );
    assert!(!serial.iterations.is_empty(), "no iterations recovered");
    assert!(!serial.fused_classes.is_empty(), "no fused classes");
}

#[test]
fn faulted_pipeline_is_deterministic_across_thread_counts() {
    let plan = FaultPlan::uniform(0.15, 7);
    let first = ml::par::with_threads(1, || quick_pipeline(99, plan));
    // Clear the in-process trace memo so the repeat run re-simulates every
    // collection instead of replaying cached slices.
    moscons::cache::clear_memory();
    let second = ml::par::with_threads(8, || quick_pipeline(99, plan));
    assert_eq!(
        first, second,
        "same fault plan must yield a bitwise-identical report"
    );
    assert!(!first.iterations.is_empty(), "no iterations recovered");

    // A different fault seed is a different run: the samples differ even
    // though every stage still completes.
    moscons::cache::clear_memory();
    let other = ml::par::with_threads(8, || quick_pipeline(99, FaultPlan::uniform(0.15, 8)));
    assert!(!other.fused_classes.is_empty(), "faulted run degenerated");
}

#[test]
fn cache_modes_agree_bitwise() {
    // The same pipeline with the trace cache off, cold on disk, and warm
    // from disk must produce the same report — a disk hit is a bitwise
    // round trip, not an approximation.
    let dir = "target/leaky-dnn-cache-test";
    let _ = std::fs::remove_dir_all(dir);
    std::env::set_var("LEAKY_DNN_CACHE_DIR", dir);

    std::env::set_var("LEAKY_DNN_CACHE", "off");
    let uncached = ml::par::with_threads(1, run_pipeline);

    std::env::set_var("LEAKY_DNN_CACHE", "disk");
    let disk_cold = ml::par::with_threads(1, run_pipeline);
    assert!(
        std::fs::read_dir(dir)
            .map(|d| d.count() > 0)
            .unwrap_or(false),
        "disk mode must persist trace entries under {}",
        dir
    );

    // Drop the in-process memo so the next run must load from disk.
    moscons::cache::clear_memory();
    let disk_warm = ml::par::with_threads(1, run_pipeline);

    std::env::set_var("LEAKY_DNN_CACHE", "mem");
    assert_eq!(uncached, disk_cold, "disk-cold run diverged from uncached");
    assert_eq!(uncached, disk_warm, "disk-warm run diverged from uncached");
}

#[test]
fn quantization_is_worker_count_invariant_and_simd_agnostic() {
    use ml::{QuantizedSequenceClassifier, SeqClassifierConfig, SeqExample, SequenceClassifier};

    // A small classifier trained on a separable toy task; training itself is
    // thread-count invariant (ml's own tests pin that), so one trained model
    // serves every comparison below.
    let mut cfg = SeqClassifierConfig::new(2, 16, 2);
    cfg.epochs = 10;
    cfg.seed = 77;
    let data: Vec<SeqExample> = (0..12)
        .map(|i| {
            let lab = i % 2;
            let mut f = vec![0.0, 0.0];
            f[lab] = 1.0;
            SeqExample::new(vec![f; 6], vec![lab; 6])
        })
        .collect();
    let mut clf = SequenceClassifier::new(cfg);
    clf.fit(&data);

    // Quantization is a pure function of the f32 weights: the int8 twins
    // produced under 1-worker and 8-worker pools must be identical down to
    // every i8 value and f32 scale (derived PartialEq).
    let q1 = ml::par::with_threads(1, || QuantizedSequenceClassifier::from_f32(&clf));
    let q8 = ml::par::with_threads(8, || QuantizedSequenceClassifier::from_f32(&clf));
    assert_eq!(q1, q8, "quantized weights diverged across worker counts");

    let seqs: Vec<&[Vec<f32>]> = data.iter().map(|e| e.features.as_slice()).collect();
    let labels1 = ml::par::with_threads(1, || q1.predict_batch(&seqs));
    let labels8 = ml::par::with_threads(8, || q8.predict_batch(&seqs));
    assert_eq!(
        labels1, labels8,
        "int8 labels diverged across worker counts"
    );

    // Integer accumulation is order-free, so the scalar and AVX2 int8
    // kernels agree exactly — the SIMD dispatch must never change a label.
    let scalar = ml::simd::with_simd(false, || q1.predict_batch(&seqs));
    let auto = ml::simd::with_simd(true, || q1.predict_batch(&seqs));
    assert_eq!(scalar, auto, "int8 labels depend on the SIMD dispatch");
}

/// Flattened, comparable view of one fleet session: report, label
/// latencies, rows dropped, samples streamed.
type SessionSummary = (AttackReport, Vec<usize>, usize, usize);

/// Flattened, comparable view of a fleet run (Extraction itself carries no
/// `PartialEq`; the report is the bitwise-comparable surface).
fn fleet_summary(outcome: moscons::FleetOutcome) -> (Vec<SessionSummary>, usize) {
    let sessions = outcome
        .sessions
        .into_iter()
        .map(|s| {
            (
                s.extraction.report(),
                s.label_latencies,
                s.overflow_dropped,
                s.samples_streamed,
            )
        })
        .collect();
    (sessions, outcome.rounds)
}

#[test]
fn fleet_is_worker_count_and_order_invariant() {
    use moscons::{run_fleet, FleetConfig, InferencePrecision, OverflowPolicy, SessionSpec};

    let (moscons, victim) = common::quick_attack_setup(FaultPlan::none(), 4);
    let gpu = moscons.config().gpu.clone();
    let specs: Vec<SessionSpec> = [99u64, 123, 7]
        .iter()
        .map(|&seed| SessionSpec {
            victim: victim.clone(),
            seed,
            gpu: gpu.clone(),
        })
        .collect();
    let config = FleetConfig::default();

    // 1 vs 8 workers: the poll/classify fan-outs partition independent
    // sessions, so worker count must never reach the results.
    let serial = ml::par::with_threads(1, || fleet_summary(run_fleet(&moscons, &specs, &config)));
    let parallel = ml::par::with_threads(8, || fleet_summary(run_fleet(&moscons, &specs, &config)));
    assert_eq!(
        serial, parallel,
        "8-worker fleet diverged from the serial fleet"
    );

    // Spec order is presentation, not arithmetic: reversing the fleet
    // reverses the outcomes and changes nothing else — sessions finishing
    // earlier or later relative to each other cannot couple.
    let reversed_specs: Vec<SessionSpec> = specs.iter().rev().cloned().collect();
    let (mut rev_sessions, _) = ml::par::with_threads(8, || {
        fleet_summary(run_fleet(&moscons, &reversed_specs, &config))
    });
    rev_sessions.reverse();
    assert_eq!(
        serial.0, rev_sessions,
        "fleet outcomes depend on session order"
    );

    // Lossless streaming is the batch attack: every session's report equals
    // its solo `attack_on` bit for bit.
    for (spec, (report, latencies, dropped, _)) in specs.iter().zip(&serial.0) {
        let (batch, _) = moscons.attack_on(&spec.victim, spec.seed, &spec.gpu);
        assert_eq!(
            *report,
            batch.report(),
            "fleet session (seed {}) diverged from the batch attack",
            spec.seed
        );
        assert!(!latencies.is_empty(), "session emitted no labels");
        assert_eq!(*dropped, 0, "Stall policy must never drop");
    }

    // Int8 mode batches closed segments across sessions; the cross-session
    // composition varies with spec order, but each session's final report is
    // batch-semantics int8 — order invariance must hold there too.
    let int8 = FleetConfig {
        precision: InferencePrecision::Int8,
        ..config
    };
    let fwd = ml::par::with_threads(8, || fleet_summary(run_fleet(&moscons, &specs, &int8)));
    let (mut rev, _) = ml::par::with_threads(8, || {
        fleet_summary(run_fleet(&moscons, &reversed_specs, &int8))
    });
    rev.reverse();
    assert_eq!(fwd.0, rev, "int8 fleet outcomes depend on session order");

    // DropOldest: a deliberately starved consumer must evict — counted,
    // bounded, and still bitwise reproducible across worker counts.
    let starved = FleetConfig {
        queue_capacity: 2,
        drain_per_round: 1,
        overflow: OverflowPolicy::DropOldest,
        ..config
    };
    let d1 = ml::par::with_threads(1, || fleet_summary(run_fleet(&moscons, &specs, &starved)));
    let d8 = ml::par::with_threads(8, || fleet_summary(run_fleet(&moscons, &specs, &starved)));
    assert_eq!(d1, d8, "DropOldest fleet diverged across worker counts");
    let total_dropped: usize = d1.0.iter().map(|(_, _, dropped, _)| dropped).sum();
    assert!(
        total_dropped > 0,
        "starved DropOldest fleet should have evicted rows"
    );
}

#[test]
fn pool_and_scoped_backends_agree_on_attack_report() {
    // The persistent pool and the `LEAKY_DNN_POOL=off` scoped-spawn
    // fallback are differential twins: the full pipeline must produce a
    // bitwise-identical AttackReport on either backend, at one worker and
    // at eight. (`with_pool` installs the same override the env knob does.)
    for workers in [1usize, 8] {
        moscons::cache::clear_memory();
        let pooled = ml::par::with_pool(true, || ml::par::with_threads(workers, run_pipeline));
        moscons::cache::clear_memory();
        let scoped = ml::par::with_pool(false, || ml::par::with_threads(workers, run_pipeline));
        assert_eq!(
            pooled, scoped,
            "pool and scoped backends diverged at {} workers",
            workers
        );
        assert!(!pooled.iterations.is_empty(), "no iterations recovered");
    }
}

#[test]
fn pool_is_reused_across_sequential_attacks() {
    // Pool workers outlive a dispatch: the second attack reuses the threads
    // the first one spawned (same process-wide pool) and must reproduce the
    // same report bit for bit once the trace memo is dropped.
    let (moscons, victim) = common::quick_attack_setup(FaultPlan::none(), 4);
    let gpu = moscons.config().gpu.clone();
    let run = || {
        ml::par::with_pool(true, || {
            ml::par::with_threads(8, || moscons.attack_on(&victim, 4242, &gpu).0.report())
        })
    };
    let first = run();
    moscons::cache::clear_memory();
    let second = run();
    assert_eq!(
        first, second,
        "second attack on the reused pool diverged from the first"
    );
    assert!(!first.iterations.is_empty(), "no iterations recovered");
}

#[test]
fn worker_panic_does_not_poison_later_dispatches() {
    // A panicking job must propagate to the dispatcher — and the resident
    // workers must keep serving later dispatches, up to a full pipeline.
    let items: Vec<usize> = (0..64).collect();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ml::par::with_pool(true, || {
            ml::par::with_threads(8, || {
                ml::par::par_map(&items, |i, _| {
                    if i == 40 {
                        panic!("poisoned job");
                    }
                    i
                })
            })
        })
    }));
    assert!(result.is_err(), "worker panic must reach the dispatcher");
    let doubled = ml::par::with_pool(true, || {
        ml::par::with_threads(8, || ml::par::par_map(&items, |_, &x| x * 2))
    });
    assert_eq!(doubled, (0..128).step_by(2).collect::<Vec<usize>>());
    let report = ml::par::with_pool(true, || ml::par::with_threads(8, run_pipeline));
    assert!(
        !report.iterations.is_empty(),
        "pipeline degenerated after a worker panic"
    );
}

#[test]
fn report_serializes_to_json() {
    let report = ml::par::with_threads(1, run_pipeline);
    let json = serde_json::to_string(&report).expect("report serializes");
    assert!(json.contains("\"structure\""));
    assert!(json.contains("\"syntax_edits\""));
}
