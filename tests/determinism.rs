//! Thread-count invariance of the full pipeline: profiling and extraction
//! under a single-worker pool must match an 8-worker pool bit for bit. The
//! engine's contract (see `ml::par`) is that parallelism changes wall-clock
//! time only — every reduction happens in a fixed order, so the trained
//! models and the recovered structure are identical.
//!
//! The same contract extends to fault injection: a `FaultPlan` is part of
//! the GPU configuration, so one plan value fully determines a run and the
//! faulted pipeline is exactly as reproducible as the clean one.

mod common;

use common::quick_pipeline;
use gpu_sim::FaultPlan;
use moscons::AttackReport;

/// Profiles and attacks at smoke scale on the clean path.
fn run_pipeline() -> AttackReport {
    quick_pipeline(99, FaultPlan::none())
}

#[test]
fn pipeline_is_thread_count_invariant() {
    let serial = ml::par::with_threads(1, run_pipeline);
    let parallel = ml::par::with_threads(8, run_pipeline);
    assert_eq!(
        serial, parallel,
        "8-worker pipeline diverged from the serial pipeline"
    );
    // The comparison must be over a non-degenerate run to mean anything.
    assert!(!serial.iterations.is_empty(), "no iterations recovered");
    assert!(!serial.fused_classes.is_empty(), "no fused classes");
}

#[test]
fn packed_batch_pipeline_is_thread_count_invariant() {
    // A minibatch of 8 packs several equal-length profiling iterations into
    // each fused bucket GEMM (`ml::seq`'s batched training path), instead of
    // the mostly-singleton buckets the default minibatch of 4 produces at
    // this scale. The 1-vs-8-worker bitwise equality must hold there too:
    // bucket composition and worker count are both scheduling decisions, not
    // arithmetic ones.
    let run = || common::quick_pipeline_batched(99, FaultPlan::none(), 8);
    let serial = ml::par::with_threads(1, run);
    let parallel = ml::par::with_threads(8, run);
    assert_eq!(
        serial, parallel,
        "packed batch training diverged across worker counts"
    );
    assert!(!serial.iterations.is_empty(), "no iterations recovered");
    assert!(!serial.fused_classes.is_empty(), "no fused classes");
}

#[test]
fn faulted_pipeline_is_deterministic_across_thread_counts() {
    let plan = FaultPlan::uniform(0.15, 7);
    let first = ml::par::with_threads(1, || quick_pipeline(99, plan));
    // Clear the in-process trace memo so the repeat run re-simulates every
    // collection instead of replaying cached slices.
    moscons::cache::clear_memory();
    let second = ml::par::with_threads(8, || quick_pipeline(99, plan));
    assert_eq!(
        first, second,
        "same fault plan must yield a bitwise-identical report"
    );
    assert!(!first.iterations.is_empty(), "no iterations recovered");

    // A different fault seed is a different run: the samples differ even
    // though every stage still completes.
    moscons::cache::clear_memory();
    let other = ml::par::with_threads(8, || quick_pipeline(99, FaultPlan::uniform(0.15, 8)));
    assert!(!other.fused_classes.is_empty(), "faulted run degenerated");
}

#[test]
fn cache_modes_agree_bitwise() {
    // The same pipeline with the trace cache off, cold on disk, and warm
    // from disk must produce the same report — a disk hit is a bitwise
    // round trip, not an approximation.
    let dir = "target/leaky-dnn-cache-test";
    let _ = std::fs::remove_dir_all(dir);
    std::env::set_var("LEAKY_DNN_CACHE_DIR", dir);

    std::env::set_var("LEAKY_DNN_CACHE", "off");
    let uncached = ml::par::with_threads(1, run_pipeline);

    std::env::set_var("LEAKY_DNN_CACHE", "disk");
    let disk_cold = ml::par::with_threads(1, run_pipeline);
    assert!(
        std::fs::read_dir(dir)
            .map(|d| d.count() > 0)
            .unwrap_or(false),
        "disk mode must persist trace entries under {}",
        dir
    );

    // Drop the in-process memo so the next run must load from disk.
    moscons::cache::clear_memory();
    let disk_warm = ml::par::with_threads(1, run_pipeline);

    std::env::set_var("LEAKY_DNN_CACHE", "mem");
    assert_eq!(uncached, disk_cold, "disk-cold run diverged from uncached");
    assert_eq!(uncached, disk_warm, "disk-warm run diverged from uncached");
}

#[test]
fn quantization_is_worker_count_invariant_and_simd_agnostic() {
    use ml::{QuantizedSequenceClassifier, SeqClassifierConfig, SeqExample, SequenceClassifier};

    // A small classifier trained on a separable toy task; training itself is
    // thread-count invariant (ml's own tests pin that), so one trained model
    // serves every comparison below.
    let mut cfg = SeqClassifierConfig::new(2, 16, 2);
    cfg.epochs = 10;
    cfg.seed = 77;
    let data: Vec<SeqExample> = (0..12)
        .map(|i| {
            let lab = i % 2;
            let mut f = vec![0.0, 0.0];
            f[lab] = 1.0;
            SeqExample::new(vec![f; 6], vec![lab; 6])
        })
        .collect();
    let mut clf = SequenceClassifier::new(cfg);
    clf.fit(&data);

    // Quantization is a pure function of the f32 weights: the int8 twins
    // produced under 1-worker and 8-worker pools must be identical down to
    // every i8 value and f32 scale (derived PartialEq).
    let q1 = ml::par::with_threads(1, || QuantizedSequenceClassifier::from_f32(&clf));
    let q8 = ml::par::with_threads(8, || QuantizedSequenceClassifier::from_f32(&clf));
    assert_eq!(q1, q8, "quantized weights diverged across worker counts");

    let seqs: Vec<&[Vec<f32>]> = data.iter().map(|e| e.features.as_slice()).collect();
    let labels1 = ml::par::with_threads(1, || q1.predict_batch(&seqs));
    let labels8 = ml::par::with_threads(8, || q8.predict_batch(&seqs));
    assert_eq!(
        labels1, labels8,
        "int8 labels diverged across worker counts"
    );

    // Integer accumulation is order-free, so the scalar and AVX2 int8
    // kernels agree exactly — the SIMD dispatch must never change a label.
    let scalar = ml::simd::with_simd(false, || q1.predict_batch(&seqs));
    let auto = ml::simd::with_simd(true, || q1.predict_batch(&seqs));
    assert_eq!(scalar, auto, "int8 labels depend on the SIMD dispatch");
}

#[test]
fn report_serializes_to_json() {
    let report = ml::par::with_threads(1, run_pipeline);
    let json = serde_json::to_string(&report).expect("report serializes");
    assert!(json.contains("\"structure\""));
    assert!(json.contains("\"syntax_edits\""));
}
