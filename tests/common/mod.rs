//! Shared quick-scale pipeline harness for the integration tests: profile a
//! few random models, attack a small fixed victim, return the flattened
//! report. Scaled down far enough to run in tier-1 CI while still exercising
//! every pipeline stage.

// Each test binary compiles its own copy of this module and none uses every
// helper, so per-binary dead-code analysis would flag whichever subset that
// binary skips.
#![allow(dead_code)]

use dnn_sim::{
    zoo, Activation, InputSpec, Layer, Model, Optimizer, TrainingConfig, TrainingSession,
};
use gpu_sim::{FaultPlan, GpuConfig};
use moscons::attack::{AttackConfig, Moscons};
use moscons::{random_profiling_models, random_zoo_profiling_models, AttackReport, OpVocab};

pub fn input() -> InputSpec {
    InputSpec::Image {
        height: 64,
        width: 64,
        channels: 3,
    }
}

/// Profiles and attacks at smoke scale, returning the flattened report.
/// `attack_seed` feeds the attack-phase collection; `faults` is installed in
/// the simulated GPU for profiling and attack alike ([`FaultPlan::none`] is
/// the clean path).
pub fn quick_pipeline(attack_seed: u64, faults: FaultPlan) -> AttackReport {
    // 4 is the `LstmTrainConfig` default — this wrapper pins it so the
    // golden reports cannot drift if that default ever changes.
    quick_pipeline_batched(attack_seed, faults, 4)
}

/// [`quick_pipeline`] with an explicit minibatch size for every LSTM stage.
/// Large values force multi-sequence buckets through `ml::seq`'s packed
/// batch-training path, which the determinism tests pin across worker
/// counts.
pub fn quick_pipeline_batched(
    attack_seed: u64,
    faults: FaultPlan,
    batch_size: usize,
) -> AttackReport {
    let (moscons, victim) = quick_attack_setup(faults, batch_size);
    let (extraction, _raw) = moscons.attack(&victim, attack_seed);
    extraction.report()
}

/// The profiled attacker plus the fixed smoke-scale victim, without running
/// the attack — for tests that want to attack the same pair more than once
/// (e.g. at both inference precisions).
pub fn quick_attack_setup(faults: FaultPlan, batch_size: usize) -> (Moscons, TrainingSession) {
    let profiled: Vec<TrainingSession> = random_profiling_models(3, input(), 19)
        .into_iter()
        .map(|m| TrainingSession::new(m, TrainingConfig::new(48, 4)))
        .collect();
    let mut config = AttackConfig::default();
    config.op_lstm.epochs = 4;
    config.op_lstm.hidden = 24;
    config.op_lstm.batch_size = batch_size;
    config.voting_lstm.epochs = 4;
    config.voting_lstm.batch_size = batch_size;
    config.hp_lstm.epochs = 3;
    config.hp_lstm.hidden = 24;
    config.hp_lstm.batch_size = batch_size;
    config.voting_iterations = 3;
    config.gpu = GpuConfig::gtx_1080_ti().with_faults(faults);
    let moscons = Moscons::profile(&profiled, config);

    let victim_model = Model::new(
        "victim",
        input(),
        vec![
            Layer::dense(2048, Activation::Relu),
            Layer::dense(512, Activation::Relu),
        ],
        Optimizer::Gd,
    );
    let victim = TrainingSession::new(victim_model, TrainingConfig::new(48, 4));
    (moscons, victim)
}

/// The quick-scale zoo attacker: profiled on the zoo corpus (residual,
/// separable and attention shapes) under [`OpVocab::Zoo`], with the same
/// smoke-scale LSTM knobs as [`quick_attack_setup`].
pub fn zoo_attack_setup(faults: FaultPlan) -> Moscons {
    let profiled: Vec<TrainingSession> = random_zoo_profiling_models(6, input(), 19)
        .into_iter()
        .map(|m| TrainingSession::new(m, TrainingConfig::new(48, 4)))
        .collect();
    let mut config = AttackConfig::default();
    config.op_lstm.epochs = 8;
    config.op_lstm.hidden = 32;
    config.voting_lstm.epochs = 6;
    config.hp_lstm.epochs = 3;
    config.hp_lstm.hidden = 24;
    config.voting_iterations = 3;
    config.vocab = OpVocab::Zoo;
    config.gpu = GpuConfig::gtx_1080_ti().with_faults(faults);
    Moscons::profile(&profiled, config)
}

/// The conformance victim of a zoo family, at smoke scale: the family's
/// model rescaled to the quick test input, with the `inference` family
/// running under forward-only execution.
pub fn zoo_victim(family: &str) -> TrainingSession {
    let model = zoo::family_model(family)
        .unwrap_or_else(|| panic!("unknown zoo family {family:?}"))
        .with_input(input());
    let config = if family == "inference" {
        TrainingConfig::inference(48, 4)
    } else {
        TrainingConfig::new(48, 4)
    };
    TrainingSession::new(model, config)
}
