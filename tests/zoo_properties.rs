//! Property-based coverage of the model zoo (ISSUE 9, satellite 2): a
//! `testkit` generator for random valid zoo models with shrinking, plus the
//! metamorphic and equivalence properties of the zoo grammar and the DAG
//! syntax corrector.
//!
//! The properties run on the planner's ground-truth class sequences (plan →
//! classes → collapse → parse), not on trained LSTMs — they pin the
//! *grammar*, deterministically and fast, for hundreds of generated models.

use dnn_sim::{
    plan_iteration_mode, Activation, ExecutionMode, InputSpec, Layer, Model, OpClass, Optimizer,
};
use moscons::opseq::collapse;
use moscons::{
    correct, correct_graph, parse_forward_layers_lenient, parse_forward_layers_zoo, RecoveredGraph,
    RecoveredKind, RecoveredLayer, Skip, SyntaxConfig,
};
use testkit::gen::{choice, usize_in, vec_of, zip2, zip3, zip4, Gen};

const ACTS: [Activation; 3] = [Activation::Relu, Activation::Tanh, Activation::Sigmoid];

fn input() -> InputSpec {
    InputSpec::Image {
        height: 32,
        width: 32,
        channels: 3,
    }
}

/// One conv-section item: `(kind, filter_size index, filters log2, act
/// index)` with kind 0 = plain conv, 1 = residual block, 2 = separable.
type ConvItem = ((usize, usize), (usize, usize));

/// One head item: `((kind, units log2), act index)` with kind 0 = dense,
/// 1 = attention.
type DenseItem = ((usize, usize), usize);

/// A generated zoo model in field form: conv-section items, head items, and
/// two free draws (used by the metamorphic test for the insertion point and
/// the inserted block's activation). Kept as the raw tuple so `vec_of`'s
/// and `usize_in`'s shrinkers stay live — `build_layers` is the one-way
/// constructor.
type ZooModelFields = (Vec<ConvItem>, Vec<DenseItem>, usize, usize);

fn zoo_model_gen() -> Gen<ZooModelFields> {
    let conv_item = zip2(
        zip2(usize_in(0, 2), usize_in(0, 2)),
        zip2(usize_in(6, 8), usize_in(0, 2)),
    );
    let dense_item = zip2(zip2(usize_in(0, 1), usize_in(6, 9)), usize_in(0, 2));
    zip4(
        vec_of(conv_item, 1, 3),
        vec_of(dense_item, 1, 2),
        usize_in(0, 16),
        usize_in(0, 2),
    )
}

/// Builds the conv section (each item followed by a pooling layer) and the
/// dense head. Returns the layers plus the conv-section length in layers.
fn build_layers(items: &[ConvItem], denses: &[DenseItem]) -> (Vec<Layer>, usize) {
    let mut layers = Vec::new();
    for &((kind, fs_idx), (f_log, act_idx)) in items {
        let filter_size = 2 * fs_idx + 1;
        let filters = 1usize << f_log;
        let activation = ACTS[act_idx];
        layers.push(match kind {
            0 => Layer::Conv2D {
                filter_size,
                filters,
                stride: 1,
                activation,
            },
            1 => Layer::Residual {
                filter_size,
                filters,
                activation,
            },
            _ => Layer::SeparableConv2D {
                filter_size,
                filters,
                stride: 1,
                activation,
            },
        });
        layers.push(Layer::MaxPool);
    }
    let conv_len = layers.len();
    for &((kind, u_log), act_idx) in denses {
        layers.push(if kind == 0 {
            Layer::dense(1usize << u_log, ACTS[act_idx])
        } else {
            Layer::attention(1usize << u_log)
        });
    }
    (layers, conv_len)
}

/// Ground-truth forward parse of a model: planned classes, collapsed and
/// run through the zoo grammar.
fn ground_truth_graph(model: &Model) -> RecoveredGraph {
    let classes: Vec<OpClass> = plan_iteration_mode(model, 8, ExecutionMode::Inference)
        .iter()
        .map(|op| op.kind.class())
        .collect();
    parse_forward_layers_zoo(&collapse(&classes), usize::MAX)
}

/// Channel count flowing out of `layers[..pos]` (the zoo conv families all
/// preserve channels except where `filters` resets them).
fn channels_at(layers: &[Layer], pos: usize) -> usize {
    let mut channels = 3;
    for layer in &layers[..pos] {
        match *layer {
            Layer::Conv2D { filters, .. }
            | Layer::Residual { filters, .. }
            | Layer::SeparableConv2D { filters, .. } => channels = filters,
            _ => {}
        }
    }
    channels
}

/// Recovered layers contributed by `layers[..pos]` — residual blocks
/// expand to two convs, plus a projection conv when they change the
/// channel count.
fn recovered_prefix_len(layers: &[Layer], pos: usize) -> usize {
    let mut channels = 3;
    let mut count = 0;
    for layer in &layers[..pos] {
        match *layer {
            Layer::Residual { filters, .. } => {
                count += if channels == filters { 2 } else { 3 };
                channels = filters;
            }
            Layer::Conv2D { filters, .. } | Layer::SeparableConv2D { filters, .. } => {
                count += 1;
                channels = filters;
            }
            _ => count += 1,
        }
    }
    count
}

#[test]
fn generated_zoo_models_are_valid_and_plan_in_both_modes() {
    testkit::check(
        "zoo_models_valid",
        &zoo_model_gen(),
        |(items, denses, _, _)| {
            let (layers, _) = build_layers(items, denses);
            // `Model::new` runs layer validation; planning must succeed in
            // both modes with the inference plan a prefix of the training
            // plan.
            let model = Model::new("prop zoo", input(), layers, Optimizer::Adam);
            let train = plan_iteration_mode(&model, 8, ExecutionMode::Training);
            let infer = plan_iteration_mode(&model, 8, ExecutionMode::Inference);
            testkit::prop::holds(
                !infer.is_empty() && infer.len() < train.len() && train[..infer.len()] == infer[..],
                "inference plan is not a proper forward prefix",
            )
        },
    );
}

#[test]
fn identity_skip_never_changes_layers_outside_the_branch() {
    // Metamorphic: wrapping an identity residual block (filters == incoming
    // channels) around any point of the conv section adds exactly two conv
    // layers and one skip edge there — every layer recovered *outside* the
    // branch, and every pre-existing skip edge, is unchanged.
    testkit::check(
        "identity_skip_outside_invariance",
        &zoo_model_gen(),
        |(items, denses, pos_raw, act_idx)| {
            let (base_layers, conv_len) = build_layers(items, denses);
            let pos = pos_raw % (conv_len + 1);
            let channels = channels_at(&base_layers, pos);

            let mut wrapped_layers = base_layers.clone();
            wrapped_layers.insert(
                pos,
                Layer::Residual {
                    filter_size: 3,
                    filters: channels,
                    activation: ACTS[*act_idx],
                },
            );

            let base = ground_truth_graph(&Model::new(
                "base",
                input(),
                base_layers.clone(),
                Optimizer::Adam,
            ));
            let wrapped = ground_truth_graph(&Model::new(
                "wrapped",
                input(),
                wrapped_layers,
                Optimizer::Gd,
            ));

            // The block lands at recovered index `p` and contributes two
            // convs (identity skip: no projection).
            let p = recovered_prefix_len(&base_layers, pos);
            if wrapped.layers.len() != base.layers.len() + 2 {
                return testkit::prop::holds(
                    false,
                    format!(
                        "expected {} layers, recovered {}",
                        base.layers.len() + 2,
                        wrapped.layers.len()
                    ),
                );
            }
            // Outside the branch: identical kinds and activations, in order.
            let outside_ok = |got: &RecoveredLayer, want: &RecoveredLayer| {
                got.kind == want.kind && got.activation == want.activation
            };
            for (i, want) in base.layers.iter().enumerate() {
                let j = if i < p { i } else { i + 2 };
                if !outside_ok(&wrapped.layers[j], want) {
                    return testkit::prop::holds(
                        false,
                        format!("layer {i} changed outside the inserted branch"),
                    );
                }
            }
            // The new skip edge covers exactly the inserted block; previous
            // skips shift by two past the insertion point.
            let mut want_skips: Vec<Skip> = base
                .skips
                .iter()
                .map(|s| {
                    if s.from >= p {
                        Skip {
                            from: s.from + 2,
                            to: s.to + 2,
                        }
                    } else {
                        *s
                    }
                })
                .collect();
            want_skips.push(Skip { from: p, to: p + 1 });
            want_skips.sort_by_key(|s| (s.from, s.to));
            let mut got_skips = wrapped.skips.clone();
            got_skips.sort_by_key(|s| (s.from, s.to));
            testkit::prop::holds(
                got_skips == want_skips,
                format!("skips {got_skips:?} != expected {want_skips:?}"),
            )
        },
    );
}

#[test]
fn zoo_grammar_equals_lenient_parser_on_classic_sequences() {
    // On traces without zoo classes, the zoo grammar must behave exactly
    // like the classic lenient parser — same layers, no invented skips.
    let classic = choice(vec![
        OpClass::Conv,
        OpClass::MatMul,
        OpClass::BiasAdd,
        OpClass::Relu,
        OpClass::Tanh,
        OpClass::Sigmoid,
        OpClass::Pool,
        OpClass::Optimizer,
        OpClass::Nop,
    ]);
    let cases = zip3(vec_of(classic, 0, 48), usize_in(0, 48), usize_in(0, 1));
    testkit::check(
        "zoo_parse_classic_equivalence",
        &cases,
        |(classes, boundary_raw, unbounded)| {
            let runs = collapse(classes);
            let boundary = if *unbounded == 1 {
                usize::MAX
            } else {
                *boundary_raw
            };
            let graph = parse_forward_layers_zoo(&runs, boundary);
            let chain = parse_forward_layers_lenient(&runs, boundary);
            testkit::prop::holds(
                graph.layers == chain && graph.skips.is_empty(),
                "zoo grammar diverged from the lenient parser on a classic trace",
            )
        },
    );
}

#[test]
fn dag_corrector_is_a_noop_on_linear_chains() {
    // `correct` (the linear entry point) and `correct_graph` on a skip-free
    // graph must agree bitwise for arbitrary recovered chains — the DAG
    // corrector only diverges when skip edges are present.
    let kinds = choice(vec![
        RecoveredKind::Conv,
        RecoveredKind::Dense,
        RecoveredKind::Pool,
        RecoveredKind::Separable,
        RecoveredKind::Attention,
    ]);
    let layer = zip2(zip2(kinds, usize_in(0, 3)), usize_in(6, 12));
    testkit::check(
        "dag_corrector_linear_noop",
        &vec_of(layer, 0, 12),
        |items| {
            let layers: Vec<RecoveredLayer> = items
                .iter()
                .enumerate()
                .map(|(i, &((kind, act_idx), f_log))| RecoveredLayer {
                    kind,
                    activation: ACTS.get(act_idx).copied(),
                    last_sample: 3 * i,
                    filter_size: Some(3),
                    filters: Some(1usize << f_log),
                    stride: Some(1),
                    units: Some(1usize << f_log),
                })
                .collect();
            let config = SyntaxConfig::default();

            let mut chain = layers.clone();
            let chain_edits = correct(&mut chain, &config);

            let mut graph = RecoveredGraph::linear(layers);
            let graph_edits = correct_graph(&mut graph, &config);

            testkit::prop::holds(
                chain == graph.layers && chain_edits == graph_edits && graph.skips.is_empty(),
                "graph corrector diverged from the chain corrector on a linear chain",
            )
        },
    );
}
