//! Metamorphic properties of the side channel itself, checked over random
//! GPU configurations with `testkit`.
//!
//! Two families, both straight from the paper's premises:
//!
//! * **Monotonicity** (Table I): the spy's probe kernels read the victim
//!   through cache evictions, so a victim with a strictly larger memory
//!   footprint must impose at least as large a context-switching penalty on
//!   the spy's counters.
//! * **Spy isolation** (§II-C): CUPTI exposes only the spy's own context.
//!   Whatever the victim does — and whatever faults fire — every reported
//!   counter slice is attributed to the monitored spy context, and an idle
//!   victim context is indistinguishable from no victim at all.

use cupti_sim::CuptiSample;
use gpu_sim::{FaultPlan, Gpu, GpuConfig, KernelDesc, KernelFootprint, SchedulerMode};
use moscons::trace::collect_microbench;
use moscons::SpyKernelKind;

/// A victim kernel whose memory footprint scales with `ws_kib`; compute is
/// held constant so footprint is the only moving part.
fn victim_kernel(ws_kib: f64) -> KernelDesc {
    let kib = 1024.0;
    let fp = KernelFootprint {
        flops: 2.0e6,
        read_bytes: ws_kib * kib,
        write_bytes: 0.25 * ws_kib * kib,
        tex_read_bytes: 0.0,
        working_set: ws_kib * kib,
        tex_working_set: 0.0,
    };
    KernelDesc::new(format!("victim_{}k", ws_kib as u64), 56, 256, fp)
}

/// A randomized-but-valid hardware configuration. Noise and jitter are kept
/// at zero so the properties are exact rather than statistical; the
/// *hardware* parameters are what varies.
fn random_config((l2_kib, slice_us, seed): (usize, usize, u64)) -> GpuConfig {
    let mut cfg = GpuConfig::gtx_1080_ti();
    cfg.l2_bytes = l2_kib as f64 * 1024.0;
    cfg.time_slice_us = slice_us as f64;
    cfg.counter_noise = 0.0;
    cfg.slice_jitter = 0.0;
    cfg.seed = seed;
    cfg.validate().expect("generated config must be valid");
    cfg
}

fn config_gen() -> testkit::Gen<(usize, usize, u64)> {
    testkit::gen::zip3(
        testkit::gen::usize_in(1024, 4096), // L2 KiB
        testkit::gen::usize_in(80, 300),    // time slice, us
        testkit::gen::u64_in(0, 1 << 20),   // engine seed
    )
}

fn mean_reads(samples: &[CuptiSample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|s| s.counters.dram_reads()).sum::<f64>() / samples.len() as f64
}

#[test]
fn larger_victim_footprint_never_shrinks_the_spy_penalty() {
    let shapes = testkit::gen::zip2(config_gen(), testkit::gen::usize_in(32, 192));
    testkit::check(
        "victim_footprint_monotonicity",
        &shapes,
        |&(cfg_params, ws_small_kib)| {
            let cfg = random_config(cfg_params);
            let run = |ws_kib: f64| {
                collect_microbench(
                    Some(victim_kernel(ws_kib)),
                    SpyKernelKind::Conv200,
                    80_000.0,
                    2_000.0,
                    &cfg,
                    cfg_params.2,
                )
            };
            let small = run(ws_small_kib as f64);
            let big = run(ws_small_kib as f64 * 4.0);
            testkit::prop::holds(!small.is_empty() && !big.is_empty(), "no samples")?;
            let (ms, mb) = (mean_reads(&small), mean_reads(&big));
            // Non-strict: once the victim evicts the spy's whole working set
            // the penalty saturates, but it must never *decrease*.
            testkit::prop::holds(
                mb >= ms * 0.995,
                format!("penalty shrank with footprint: small {ms:.1}, big {mb:.1}"),
            )
        },
    );
}

#[test]
fn all_reported_slices_belong_to_the_monitored_spy_context() {
    testkit::check("spy_isolation_attribution", &config_gen(), |&params| {
        // Faults on: isolation must survive drops, dups and preemptions too.
        let cfg = random_config(params).with_faults(FaultPlan::uniform(0.2, params.2));
        let mut gpu = Gpu::new(cfg.clone(), SchedulerMode::TimeSliced);
        let victim = gpu.add_context("victim");
        let spy = gpu.add_context("spy");
        gpu.monitor(spy);
        gpu.set_auto_repeat(spy, SpyKernelKind::Conv200.kernel(1.0, &cfg));
        gpu.set_auto_repeat(victim, victim_kernel(128.0));
        gpu.run_until(40_000.0);
        let (_, slices) = gpu.take_logs();
        testkit::prop::holds(!slices.is_empty(), "no monitored slices")?;
        for s in &slices {
            testkit::prop::holds(
                s.ctx == spy,
                "victim counters leaked into the monitored trace",
            )?;
            testkit::prop::holds(
                s.delta
                    .as_array()
                    .iter()
                    .all(|v| v.is_finite() && *v >= 0.0),
                "non-finite or negative counter delta",
            )?;
        }
        Ok(())
    });
}

#[test]
fn idle_victim_context_is_indistinguishable_from_no_victim() {
    testkit::check("spy_isolation_idle_victim", &config_gen(), |&params| {
        let cfg = random_config(params);
        let run = |with_idle_victim: bool| {
            let mut gpu = Gpu::new(cfg.clone(), SchedulerMode::TimeSliced);
            if with_idle_victim {
                // Created but never launches anything.
                let _victim = gpu.add_context("victim");
            }
            let spy = gpu.add_context("spy");
            gpu.monitor(spy);
            gpu.set_auto_repeat(spy, SpyKernelKind::Conv200.kernel(1.0, &cfg));
            gpu.run_until(40_000.0);
            let (_, slices) = gpu.take_logs();
            slices
                .into_iter()
                .map(|s| (s.delta.rounded(), s.start_us.to_bits(), s.end_us.to_bits()))
                .collect::<Vec<_>>()
        };
        testkit::prop::holds(
            run(true) == run(false),
            "an idle victim context perturbed the spy's trace",
        )
    });
}
