//! Victim model zoo conformance matrix (ISSUE 9 / DESIGN.md §14).
//!
//! One test column per family in [`dnn_sim::zoo::FAMILIES`] — linear CNN,
//! residual, depthwise-separable, attention, and the linear CNN under
//! forward-only inference. For every family the suite pins:
//!
//! 1. the end-to-end `Moscons::attack` completes and recovers a
//!    non-degenerate structure;
//! 2. the op-sequence grammar round-trips the planner's ground truth —
//!    collapsing the planned forward classes and re-parsing them with the
//!    zoo grammar reproduces the victim's layer kinds and skip edges;
//! 3. draining the streaming engine reproduces the batch report bitwise
//!    (the `tests/streaming.rs` contract, extended to every family);
//! 4. a golden `AttackReport` snapshot per family
//!    (`tests/golden/zoo_report_<family>.json`, blessed via
//!    `LEAKY_GOLDEN_BLESS=1`);
//! 5. inference-mode traces never carry backward-pass ground truth
//!    (`*Grad` / `Apply*`), even under a uniform fault plan.

mod common;

use std::path::PathBuf;
use std::sync::OnceLock;

use dnn_sim::{
    plan_iteration_mode, zoo, ExecutionMode, InputSpec, Layer, Model, OpClass, TrainingSession,
};
use gpu_sim::{FaultPlan, GpuConfig};
use moscons::attack::Moscons;
use moscons::opseq::collapse;
use moscons::trace::{collect_trace, CollectionConfig};
use moscons::{
    parse_forward_layers_zoo, AttackReport, AttackStream, LabeledTrace, RecoveredKind, Skip,
};

/// One attacked family: its victim, the batch report the stream and golden
/// must reproduce, and the per-sample feature rows for streaming replays.
struct FamilyRun {
    family: &'static str,
    victim: TrainingSession,
    batch: AttackReport,
    features: Vec<Vec<f32>>,
}

struct Fixture {
    moscons: Moscons,
    runs: Vec<FamilyRun>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        // Pinned worker count, as in `tests/golden_report.rs`: determinism
        // across worker counts is pinned elsewhere; the goldens should not
        // depend on it.
        ml::par::with_threads(4, || {
            let moscons = common::zoo_attack_setup(FaultPlan::none());
            let runs = zoo::FAMILIES
                .iter()
                .map(|&family| {
                    let victim = common::zoo_victim(family);
                    let (extraction, raw) = moscons.attack(&victim, 99);
                    FamilyRun {
                        family,
                        victim,
                        batch: extraction.report(),
                        features: moscons::cache::counter_feature_matrix(&raw).to_vec(),
                    }
                })
                .collect();
            Fixture { moscons, runs }
        })
    })
}

#[test]
fn every_family_attack_completes() {
    for run in &fixture().runs {
        let family = run.family;
        assert!(
            !run.batch.iterations.is_empty(),
            "family {family}: no iterations recovered"
        );
        assert!(
            !run.batch.fused_classes.is_empty(),
            "family {family}: no fused classes"
        );
        assert!(
            !run.batch.structure.is_empty(),
            "family {family}: empty structure string"
        );
        assert!(
            run.batch.optimizer.is_some(),
            "family {family}: no optimizer recovered"
        );
        // At smoke scale full structure recovery is not guaranteed (the
        // classic quick-pipeline goldens are equally modest), but the
        // conv-stack families must recover at least their stem.
        if family != "attention" {
            assert!(
                !run.batch.layers.is_empty(),
                "family {family}: no layers recovered"
            );
        }
    }
}

/// The layer kinds and skip edges the zoo grammar must recover from a
/// model's planned forward classes. Tracks the channel count so residual
/// blocks that need a 1x1 projection contribute three convs, not two.
fn expected_graph(model: &Model) -> (Vec<RecoveredKind>, Vec<Skip>) {
    let mut kinds = Vec::new();
    let mut skips = Vec::new();
    let InputSpec::Image { mut channels, .. } = model.input;
    for layer in &model.layers {
        match *layer {
            Layer::Conv2D { filters, .. } => {
                kinds.push(RecoveredKind::Conv);
                channels = filters;
            }
            Layer::MaxPool => kinds.push(RecoveredKind::Pool),
            Layer::Dense { .. } => kinds.push(RecoveredKind::Dense),
            Layer::Residual { filters, .. } => {
                // Branch conv, merge conv, plus the projection conv when
                // the block widens the channel count.
                let from = kinds.len();
                kinds.push(RecoveredKind::Conv);
                kinds.push(RecoveredKind::Conv);
                if channels != filters {
                    kinds.push(RecoveredKind::Conv);
                }
                skips.push(Skip {
                    from,
                    to: kinds.len() - 1,
                });
                channels = filters;
            }
            Layer::SeparableConv2D { filters, .. } => {
                kinds.push(RecoveredKind::Separable);
                channels = filters;
            }
            Layer::Attention { .. } => kinds.push(RecoveredKind::Attention),
        }
    }
    (kinds, skips)
}

#[test]
fn zoo_grammar_round_trips_planner_ground_truth() {
    for run in &fixture().runs {
        let family = run.family;
        let model = run.victim.model();
        // The forward ground truth, independent of trace noise: the
        // inference plan is the training plan's forward prefix by contract.
        let classes: Vec<OpClass> =
            plan_iteration_mode(model, run.victim.config().batch, ExecutionMode::Inference)
                .iter()
                .map(|op| op.kind.class())
                .collect();
        let graph = parse_forward_layers_zoo(&collapse(&classes), usize::MAX);
        let kinds: Vec<RecoveredKind> = graph.layers.iter().map(|l| l.kind).collect();
        let (expected_kinds, expected_skips) = expected_graph(model);
        assert_eq!(
            kinds, expected_kinds,
            "family {family}: recovered kinds diverge from the planner"
        );
        assert_eq!(
            graph.skips, expected_skips,
            "family {family}: recovered skip edges diverge from the planner"
        );
        // Every recovered layer keeps its ground-truth activation. Layers
        // strictly inside a skip branch carry none of their own — the
        // block's activation runs after the merge and attaches to the
        // merge-point layer (`skip.to`).
        for (i, layer) in graph.layers.iter().enumerate() {
            let branch_interior = graph.skips.iter().any(|s| s.from < i && i < s.to);
            if layer.kind == RecoveredKind::Pool
                || layer.kind == RecoveredKind::Attention
                || branch_interior
            {
                assert_eq!(layer.activation, None, "family {family} layer {i}");
            } else {
                assert!(
                    layer.activation.is_some(),
                    "family {family} layer {i}: lost its activation"
                );
            }
        }
    }
}

#[test]
fn residual_family_recovers_skip_edges_end_to_end() {
    let fx = fixture();
    let residual = fx
        .runs
        .iter()
        .find(|r| r.family == "residual")
        .expect("residual family present");
    // The end-to-end report flattens the graph, but the residual victim's
    // recovered chain must contain consecutive conv layers (the branch
    // convs the DAG corrector acts on), not just a stem.
    let convs = residual
        .batch
        .layers
        .iter()
        .filter(|l| l.kind == RecoveredKind::Conv)
        .count();
    assert!(
        convs >= 2,
        "residual victim recovered only {convs} conv layers"
    );
}

#[test]
fn streaming_matches_batch_for_every_family() {
    let fx = fixture();
    for run in &fx.runs {
        let family = run.family;
        for chunk_rows in [1usize, 16] {
            let mut stream = AttackStream::with_chunk_rows(&fx.moscons, chunk_rows);
            for row in &run.features {
                for _ in stream.push(row) {}
            }
            let report = stream.finish().extraction.report();
            assert_eq!(
                report, run.batch,
                "family {family}: streamed extraction diverged from batch \
                 at chunk_rows={chunk_rows}"
            );
        }
    }
}

fn golden_path(family: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("zoo_report_{family}.json"))
}

#[test]
fn zoo_reports_match_golden_snapshots() {
    for run in &fixture().runs {
        let actual = serde_json::to_string_pretty(&run.batch).expect("report serializes");
        let path = golden_path(run.family);
        if std::env::var("LEAKY_GOLDEN_BLESS").is_ok_and(|v| v == "1") {
            std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
            std::fs::write(&path, actual + "\n").expect("write golden");
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot {} ({e}); run with LEAKY_GOLDEN_BLESS=1 to create it",
                path.display()
            )
        });
        assert_eq!(
            expected.trim_end(),
            actual,
            "zoo report for family {} drifted from {}; if intentional, re-bless with \
             LEAKY_GOLDEN_BLESS=1 and commit the diff",
            run.family,
            path.display()
        );
    }
}

#[test]
fn inference_traces_carry_no_backward_labels_even_under_faults() {
    // Fault-sweep regression: forward-only victims must never produce
    // backward-pass ground truth, no matter how samples are dropped or
    // polluted — the plan simply contains no `*Grad` / `Apply*` ops.
    let victim = common::zoo_victim("inference");
    let gpu = GpuConfig::gtx_1080_ti().with_faults(FaultPlan::uniform(0.15, 7));
    for seed in [99u64, 123] {
        let raw = collect_trace(&victim, &CollectionConfig::paper().with_seed(seed), &gpu);
        let labeled = LabeledTrace::from_raw(&raw, "inference victim");
        assert!(!labeled.samples.is_empty(), "empty trace at seed {seed}");
        for sample in &labeled.samples {
            if let Some(kind) = sample.kind {
                let name = kind.op_name();
                assert!(
                    !name.contains("Grad") && !name.contains("Backprop") && !name.contains("Apply"),
                    "seed {seed}: inference trace labeled with backward op {name}"
                );
            }
            assert_ne!(
                sample.class,
                OpClass::Optimizer,
                "seed {seed}: inference trace labeled with an optimizer class"
            );
        }
    }
}
