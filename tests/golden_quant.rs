//! Golden snapshot of the int8 serving path's agreement with the
//! bitwise-pinned f32 pipeline, at quick scale.
//!
//! Quantization is lossy by design, so unlike `tests/golden_report.rs` this
//! does not demand bitwise equality between precisions — it pins the exact
//! agreement metrics (the int8 path itself is fully deterministic, see
//! `tests/determinism.rs`) and enforces the serving contract floor: fused
//! per-sample labels must agree with f32 on at least 99% of positions.
//!
//! To accept an intentional change, bless the snapshot:
//!
//! ```text
//! LEAKY_GOLDEN_BLESS=1 cargo test --test golden_quant
//! ```
//!
//! and commit the rewritten file under `tests/golden/`.

mod common;

use common::quick_attack_setup;
use gpu_sim::FaultPlan;
use moscons::InferencePrecision;
use serde::Serialize;
use std::path::PathBuf;

const ATTACK_SEED: u64 = 99;
const MIN_FUSED_AGREEMENT: f64 = 0.99;

/// The pinned agreement metrics between the f32 and int8 extractions.
#[derive(Serialize)]
struct QuantReport {
    attack_seed: u64,
    total_samples: usize,
    /// Fraction of fused (post-voting) per-sample labels that agree.
    fused_agreement: f64,
    /// Fraction of pre-voting per-sample labels that agree.
    pre_voting_agreement: f64,
    structure_f32: String,
    structure_int8: String,
    structures_match: bool,
}

fn agreement<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len(), "precision paths saw different timelines");
    if a.is_empty() {
        return 1.0;
    }
    let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
    same as f64 / a.len() as f64
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/quant_agreement.json")
}

#[test]
fn int8_extraction_agrees_with_f32_and_matches_golden_snapshot() {
    let (moscons, victim) = quick_attack_setup(FaultPlan::none(), 4);
    let (f32_ex, _) = moscons.attack(&victim, ATTACK_SEED);
    let (int8_ex, _) =
        moscons.attack_with_precision(&victim, ATTACK_SEED, InferencePrecision::Int8);

    let report = QuantReport {
        attack_seed: ATTACK_SEED,
        total_samples: f32_ex.fused_classes.len(),
        fused_agreement: agreement(&f32_ex.fused_classes, &int8_ex.fused_classes),
        pre_voting_agreement: agreement(&f32_ex.pre_voting_classes, &int8_ex.pre_voting_classes),
        structure_f32: f32_ex.structure.clone(),
        structure_int8: int8_ex.structure.clone(),
        structures_match: f32_ex.structure == int8_ex.structure,
    };
    assert!(
        report.fused_agreement >= MIN_FUSED_AGREEMENT,
        "int8 fused labels agree with f32 on only {:.4} of {} samples (contract floor {})",
        report.fused_agreement,
        report.total_samples,
        MIN_FUSED_AGREEMENT
    );

    let actual = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = golden_path();
    if std::env::var("LEAKY_GOLDEN_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, actual + "\n").expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with LEAKY_GOLDEN_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected.trim_end(),
        actual,
        "quantization agreement report drifted from {}; if intentional, re-bless with \
         LEAKY_GOLDEN_BLESS=1 and commit the diff",
        path.display()
    );
}
