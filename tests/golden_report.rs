//! Golden snapshot of the end-to-end [`moscons::AttackReport`] at quick
//! scale, for two attack seeds. The pipeline is deterministic by contract
//! (see `tests/determinism.rs`), so any drift in these snapshots is a
//! behavior change that must be deliberate.
//!
//! To accept an intentional change, bless the snapshots:
//!
//! ```text
//! LEAKY_GOLDEN_BLESS=1 cargo test --test golden_report
//! ```
//!
//! and commit the rewritten files under `tests/golden/`.

mod common;

use common::quick_pipeline;
use gpu_sim::FaultPlan;
use std::path::PathBuf;

fn golden_path(seed: u64) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("attack_report_seed{seed}.json"))
}

fn check_seed(seed: u64) {
    let report = ml::par::with_threads(4, || quick_pipeline(seed, FaultPlan::none()));
    let actual = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = golden_path(seed);
    if std::env::var("LEAKY_GOLDEN_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, actual + "\n").expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with LEAKY_GOLDEN_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected.trim_end(),
        actual,
        "AttackReport for seed {seed} drifted from {}; if intentional, re-bless with \
         LEAKY_GOLDEN_BLESS=1 and commit the diff",
        path.display()
    );
}

#[test]
fn attack_report_matches_golden_snapshot_seed_99() {
    check_seed(99);
}

#[test]
fn attack_report_matches_golden_snapshot_seed_123() {
    check_seed(123);
}
