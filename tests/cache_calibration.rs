//! Calibration test: the engine's analytical L2 occupancy model must agree
//! qualitatively with the reference set-associative cache on the behaviours
//! the side-channel depends on — proportional cross-context eviction and
//! dirty write-back on eviction.

use gpu_sim::cache::{Access, InsertKind, OccupancyL2, SetAssocCache};

/// Streams `sectors` distinct addresses for `owner` through the cache.
fn stream(cache: &mut SetAssocCache, owner: u16, base: u64, sectors: u64, write: bool) -> u64 {
    let mut writebacks = 0;
    for i in 0..sectors {
        if let Access::Miss {
            evicted_dirty: true,
        } = cache.access(owner, base + i * 32, write)
        {
            writebacks += 1;
        }
    }
    writebacks
}

#[test]
fn analytical_eviction_matches_reference_proportions() {
    // Reference: 1024 sets x 8 ways x 32 B = 256 KiB.
    let mut real = SetAssocCache::new(1024, 8, 32);
    let capacity = real.capacity_bytes() as f64;

    // Context A fills 3/4 of the cache; context B streams half a cache of
    // fresh data. A's residency must drop roughly proportionally.
    let a_sectors = (capacity as u64 / 32) * 3 / 4;
    stream(&mut real, 0, 0, a_sectors, false);
    let a_before = real.resident_bytes(0) as f64;
    stream(&mut real, 1, 1 << 30, a_sectors / 2, false);
    let a_after = real.resident_bytes(0) as f64;
    let real_loss = (a_before - a_after) / a_before;

    let mut model = OccupancyL2::new(capacity);
    let a = model.add_context();
    let b = model.add_context();
    model.insert(a, InsertKind::GlobalClean, a_sectors as f64 * 32.0);
    let m_before = model.occupancy(a).total();
    model.insert(b, InsertKind::GlobalClean, (a_sectors / 2) as f64 * 32.0);
    let m_after = model.occupancy(a).total();
    let model_loss = (m_before - m_after) / m_before;

    // Random-index set-associative eviction is noisier than the analytical
    // proportional model, but both must see a substantial, same-order loss.
    assert!(
        real_loss > 0.15 && model_loss > 0.15,
        "both models must evict: real {:.2} model {:.2}",
        real_loss,
        model_loss
    );
    assert!(
        (real_loss - model_loss).abs() < 0.35,
        "losses diverge: real {:.2} vs model {:.2}",
        real_loss,
        model_loss
    );
}

#[test]
fn dirty_writebacks_happen_in_both_models() {
    let mut real = SetAssocCache::new(256, 4, 32);
    let capacity = real.capacity_bytes();
    // Fill completely with dirty data, then let another context stream the
    // same volume: roughly everything must be written back.
    let sectors = capacity / 32;
    stream(&mut real, 0, 0, sectors, true);
    let wb = stream(&mut real, 1, 1 << 30, sectors, false);
    assert!(
        wb as f64 > 0.8 * sectors as f64,
        "reference write-backs {} of {}",
        wb,
        sectors
    );

    let mut model = OccupancyL2::new(capacity as f64);
    let a = model.add_context();
    let b = model.add_context();
    model.insert(a, InsertKind::GlobalDirty, capacity as f64);
    let report = model.insert(b, InsertKind::GlobalClean, capacity as f64);
    let model_wb: f64 = report
        .dirty_evicted
        .iter()
        .filter(|(c, _)| *c == a)
        .map(|(_, x)| x)
        .sum();
    assert!(
        model_wb > 0.8 * capacity as f64,
        "analytical write-backs {} of {}",
        model_wb,
        capacity
    );
}

#[test]
fn small_working_sets_survive_streams_in_both_models() {
    // A tiny hot set must mostly survive a moderate foreign stream — this is
    // why hog kernels (8 KiB working sets) barely disturb the sampler.
    let mut real = SetAssocCache::new(1024, 8, 32);
    let capacity = real.capacity_bytes();
    let hot_sectors = 256u64; // 8 KiB
    stream(&mut real, 0, 0, hot_sectors, false);
    // Re-touch to keep it most-recently used, then a foreign stream of 1/4
    // the cache.
    stream(&mut real, 0, 0, hot_sectors, false);
    stream(&mut real, 1, 1 << 30, capacity / 32 / 4, false);
    let survived = real.resident_sectors(0) as f64 / hot_sectors as f64;
    assert!(survived > 0.6, "reference survival {:.2}", survived);

    let mut model = OccupancyL2::new(capacity as f64);
    let a = model.add_context();
    let b = model.add_context();
    model.insert(a, InsertKind::GlobalClean, hot_sectors as f64 * 32.0);
    model.insert(b, InsertKind::GlobalClean, capacity as f64 / 4.0);
    // Cache not full -> no eviction at all in the analytical model.
    let kept = model.occupancy(a).total() / (hot_sectors as f64 * 32.0);
    assert!(kept > 0.99, "analytical survival {:.2}", kept);
}
