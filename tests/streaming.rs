//! Streaming attack engine: bitwise equivalence with the batch pipeline.
//!
//! The contract under test (see `DESIGN.md` §12): draining a
//! [`moscons::AttackStream`] over a trace — at **any** chunk size, including
//! one row at a time — reproduces the batch `Moscons::attack` extraction
//! bit for bit, while emitting per-sample op labels with bounded latency.
//! A `testkit` property extends the same claim to the incremental gap
//! splitter over arbitrary chunkings, and a fault-plan regression pins the
//! NOP-bridge (isolated missing samples) at chunk boundaries.

mod common;

use std::sync::OnceLock;

use dnn_sim::{Activation, Layer, Model, Optimizer, TrainingConfig, TrainingSession};
use gpu_sim::{FaultPlan, GpuConfig};
use moscons::attack::{AttackConfig, Moscons};
use moscons::dataset::split_on_nop_runs_bridged;
use moscons::stream::SplitEvent;
use moscons::{random_profiling_models, AttackReport, AttackStream, GapStream};

/// Clean-path fixture: attacker, per-sample feature rows of the victim's
/// trace, and the batch report the stream must reproduce.
struct Fixture {
    moscons: Moscons,
    features: Vec<Vec<f32>>,
    batch: AttackReport,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (moscons, victim) = common::quick_attack_setup(FaultPlan::none(), 4);
        let (extraction, raw) = moscons.attack(&victim, 99);
        let features = moscons::cache::counter_feature_matrix(&raw).to_vec();
        Fixture {
            moscons,
            features,
            batch: extraction.report(),
        }
    })
}

/// Drains `features` through an [`AttackStream`] at the given chunk size and
/// returns the final report plus every label's emission latency in samples.
fn stream_report(
    moscons: &Moscons,
    features: &[Vec<f32>],
    chunk_rows: usize,
) -> (AttackReport, Vec<usize>) {
    let mut stream = AttackStream::with_chunk_rows(moscons, chunk_rows);
    let mut latencies = Vec::new();
    for row in features {
        let now = stream.samples_pushed(); // index this row receives
        for label in stream.push(row) {
            latencies.push(now - label.sample);
        }
    }
    let total = stream.samples_pushed();
    let outcome = stream.finish();
    for label in &outcome.labels {
        latencies.push(total.saturating_sub(1) - label.sample);
    }
    (outcome.extraction.report(), latencies)
}

#[test]
fn streaming_drain_reproduces_batch_attack_bitwise() {
    let fx = fixture();
    let gap_cfg = fx.moscons.gap_model().config();
    for chunk_rows in [1usize, 7, 32] {
        let (report, latencies) = stream_report(&fx.moscons, &fx.features, chunk_rows);
        assert_eq!(
            report, fx.batch,
            "streamed extraction diverged from batch at chunk_rows={chunk_rows}"
        );
        assert!(
            !latencies.is_empty(),
            "no labels streamed at chunk_rows={chunk_rows}"
        );
        // Bounded latency: a label can be held back by at most one
        // unfilled classification chunk plus the splitter's lookback
        // (gap run + bridge) plus the one-row scaling lookahead.
        let bound = chunk_rows + gap_cfg.th_gap + gap_cfg.nop_bridge + 2;
        let worst = latencies.iter().copied().max().unwrap_or(0);
        assert!(
            worst <= bound,
            "label latency {worst} exceeds bound {bound} at chunk_rows={chunk_rows}"
        );
    }
    // Meaningful comparison requires a non-degenerate batch run.
    assert!(!fx.batch.iterations.is_empty(), "no iterations recovered");
    assert!(!fx.batch.fused_classes.is_empty(), "no fused classes");
}

#[test]
fn gap_stream_is_chunking_invariant() {
    let fx = fixture();
    let gap = fx.moscons.gap_model();
    let scaler = fx.moscons.scaler();
    let cfg = gap.config();

    // Whole-trace references: the batch splitter over the model's own NOP
    // flags, and the event stream of a single uninterrupted streaming pass.
    let scaled: Vec<Vec<f32>> = fx
        .features
        .iter()
        .map(|f| scaler.transform_row(f))
        .collect();
    let is_nop: Vec<bool> = (0..scaled.len())
        .map(|i| {
            gap.predict_nop_scaled(
                (i > 0).then(|| scaled[i - 1].as_slice()),
                &scaled[i],
                scaled.get(i + 1).map(|v| v.as_slice()),
            )
        })
        .collect();
    let batch_segments = split_on_nop_runs_bridged(&is_nop, cfg.th_gap, cfg.nop_bridge);

    let run_chunked = |chunk_lens: &[usize]| -> Vec<SplitEvent> {
        let mut stream = GapStream::new(gap, scaler);
        let mut events = Vec::new();
        let mut rows = fx.features.iter();
        // Feed the generated chunking, then whatever remains as one chunk;
        // events are drained (read) at every chunk boundary.
        for &len in chunk_lens {
            for row in rows.by_ref().take(len) {
                stream.push(row, &mut events);
            }
        }
        for row in rows {
            stream.push(row, &mut events);
        }
        stream.finish(&mut events);
        events
    };
    let whole = run_chunked(&[]);
    let whole_segments: Vec<std::ops::Range<usize>> = whole
        .iter()
        .filter_map(|e| match e {
            SplitEvent::Close(r) => Some(r.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(
        whole_segments, batch_segments,
        "streaming segments diverged from the batch splitter"
    );
    assert!(!batch_segments.is_empty(), "degenerate trace: no segments");

    // ANY chunking — 1-sample chunks, arbitrary boundaries (mid-gap ones
    // included by construction) — yields the identical event stream.
    let chunkings = testkit::gen::vec_of(testkit::gen::usize_in(1, 9), 1, 48);
    testkit::check("gap_stream_chunking_invariance", &chunkings, |lens| {
        let got = run_chunked(lens);
        testkit::prop::holds(
            got == whole,
            format!(
                "event stream changed under chunking {:?}: {} events vs {}",
                lens,
                got.len(),
                whole.len()
            ),
        )
    });
}

#[test]
fn fault_bridge_streaming_matches_batch_at_chunk_boundaries() {
    // Isolated missing samples (poll-miss faults) read as 1-sample NOP
    // blips; `nop_bridge = 1` heals them in the batch splitter (PR 4). The
    // incremental splitter must apply the identical bridge even when the
    // blip, its flanks, or the bridged run straddle a chunk boundary.
    let faults = FaultPlan::uniform(0.15, 7);
    let profiled: Vec<TrainingSession> = random_profiling_models(3, common::input(), 19)
        .into_iter()
        .map(|m| TrainingSession::new(m, TrainingConfig::new(48, 4)))
        .collect();
    let mut config = AttackConfig::default();
    config.op_lstm.epochs = 4;
    config.op_lstm.hidden = 24;
    config.voting_lstm.epochs = 4;
    config.hp_lstm.epochs = 3;
    config.hp_lstm.hidden = 24;
    config.voting_iterations = 3;
    config.gap.nop_bridge = 1;
    config.gpu = GpuConfig::gtx_1080_ti().with_faults(faults);
    let moscons = Moscons::profile(&profiled, config);

    let victim_model = Model::new(
        "victim",
        common::input(),
        vec![
            Layer::dense(2048, Activation::Relu),
            Layer::dense(512, Activation::Relu),
        ],
        Optimizer::Gd,
    );
    let victim = TrainingSession::new(victim_model, TrainingConfig::new(48, 4));
    let (extraction, raw) = moscons.attack(&victim, 99);
    let batch = extraction.report();
    let features = moscons::cache::counter_feature_matrix(&raw).to_vec();
    assert!(!batch.iterations.is_empty(), "faulted run degenerated");

    for chunk_rows in [1usize, 5] {
        let (report, _) = stream_report(&moscons, &features, chunk_rows);
        assert_eq!(
            report, batch,
            "bridged faulted stream diverged from batch at chunk_rows={chunk_rows}"
        );
    }
}
