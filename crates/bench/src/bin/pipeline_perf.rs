//! Pipeline performance bench: times each attack stage under a 1-worker and
//! an N-worker pool and writes `BENCH_pipeline.json`.
//!
//! Because the execution engine is deterministic (see `ml::par`), the two
//! configurations produce bitwise-identical models and extractions — this
//! binary asserts that while it measures, so a speedup can never silently
//! come from diverged work. On a single-core machine the N-thread run
//! degenerates to the serial path; the JSON records `cores` so downstream
//! tooling can tell a missing speedup from a missing machine.
//!
//! Run: `cargo run -p bench --release --bin pipeline_perf`
//! (honours `LEAKY_SCALE=quick` and `LEAKY_DNN_THREADS`).

use std::time::Instant;

use dnn_sim::{zoo, TrainingSession};
use moscons::attack::{AttackConfig, Moscons};
use moscons::trace::collect_trace;
use moscons::LabeledTrace;
use serde::Serialize;

#[derive(Serialize)]
struct StageTiming {
    stage: String,
    secs_1_thread: f64,
    secs_n_threads: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct PipelineBench {
    cores: usize,
    threads: usize,
    scale: String,
    stages: Vec<StageTiming>,
    total_secs_1_thread: f64,
    total_secs_n_threads: f64,
    total_speedup: f64,
    /// Trace collection with a cold in-memory cache (fresh simulation).
    cache_cold_secs: f64,
    /// The same collection again, served from the warm cache.
    cache_warm_secs: f64,
    /// `cache_cold_secs / cache_warm_secs`.
    cache_speedup: f64,
    /// Mean wall time of one training epoch of a smoke-scale LSTM classifier
    /// (tracks the allocation-free hot path in `ml`).
    lstm_secs_per_epoch: f64,
}

fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Mean seconds per epoch of a smoke-scale `SequenceClassifier::fit` — a
/// direct probe of the workspace-backed LSTM training hot path.
fn lstm_epoch_bench() -> f64 {
    let input = 13;
    let classes = 4;
    let epochs = 8;
    let data: Vec<ml::SeqExample> = (0..12)
        .map(|i| {
            let features: Vec<Vec<f32>> = (0..40)
                .map(|t| {
                    (0..input)
                        .map(|d| ((i * 37 + t * 11 + d * 3) % 17) as f32 / 17.0)
                        .collect()
                })
                .collect();
            let labels: Vec<usize> = (0..40).map(|t| (i + t) % classes).collect();
            ml::SeqExample::new(features, labels)
        })
        .collect();
    let mut cfg = ml::SeqClassifierConfig::new(input, 48, classes);
    cfg.epochs = epochs;
    // The pipeline's LstmTrainConfig trains with minibatches of 4, so the
    // probe does too: equal-length sequences in a minibatch share fused
    // batched GEMMs (see `ml::seq`), which is the hot path being tracked.
    cfg.batch_size = 4;
    let (secs, _) = timed(|| ml::SequenceClassifier::new(cfg).fit(&data));
    secs / epochs as f64
}

fn main() {
    // The staged 1-vs-N timings below measure *simulation and training*
    // cost; run them with the trace cache off so the N-thread pass cannot
    // be flattered by hits left behind by the serial pass.
    std::env::set_var("LEAKY_DNN_CACHE", "off");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = ml::par::threads();
    let scale = bench::Scale::from_env();
    let scale_name = if scale == bench::Scale::quick() {
        "quick"
    } else {
        "full"
    };
    println!(
        "pipeline_perf: {} cores, {} pool workers, scale {}",
        cores, threads, scale_name
    );

    // Smoke-scale attack budget: the point is relative stage cost, not
    // accuracy (EXPERIMENTS.md owns accuracy).
    let mut config = AttackConfig::default();
    config.op_lstm.epochs = 6;
    config.op_lstm.hidden = 32;
    config.voting_lstm.epochs = 6;
    config.hp_lstm.epochs = 4;
    config.voting_iterations = 3;
    let sessions: Vec<TrainingSession> = moscons::random_profiling_models(4, scale.input(), 7)
        .into_iter()
        .map(|m| scale.session(m))
        .collect();
    let victim = scale.session(zoo::tested_mlp());

    // Stage 1: trace collection fan-out (one spy trace per profiling model).
    let collect = |session_set: &[TrainingSession]| -> Vec<LabeledTrace> {
        ml::par::par_map(session_set, |i, s| {
            let raw = collect_trace(
                s,
                &config
                    .collection
                    .with_seed(config.collection.seed ^ (i as u64 * 7919)),
                &config.gpu,
            );
            LabeledTrace::from_raw(&raw, s.model().name.clone())
        })
    };
    // Stage 2: full profiling (Mgap + Mlong/Mop + voting + Mhp training).
    // Stage 3: attack-time extraction on the victim stream.
    let mut stages = Vec::new();
    let run = |threads: usize| -> (f64, f64, f64, moscons::AttackReport) {
        ml::par::with_threads(threads, || {
            let (t_collect, traces) = timed(|| collect(&sessions));
            drop(traces);
            let (t_profile, moscons) = timed(|| Moscons::profile(&sessions, config.clone()));
            let (t_extract, (extraction, _)) = timed(|| moscons.attack(&victim, 4242));
            (t_collect, t_profile, t_extract, extraction.report())
        })
    };

    let (c1, p1, e1, report_serial) = run(1);
    // With a single pool worker the "N-thread" pass is the serial path
    // again; timing it separately only measures noise (a second serial run
    // can easily come out a few percent slower and print a bogus <1.0x
    // "regression"). Reuse the serial timings so speedup is exactly 1.0,
    // and still record the honest `cores`/`threads` in the JSON.
    let (cn, pn, en) = if threads <= 1 {
        println!("single pool worker: skipping duplicate serial pass (speedup := 1.0)");
        (c1, p1, e1)
    } else {
        let (cn, pn, en, report_parallel) = run(threads);
        assert_eq!(
            report_serial, report_parallel,
            "determinism violation: N-thread extraction diverged from serial"
        );
        println!(
            "determinism check passed: 1-thread and {}-thread reports identical",
            threads
        );
        (cn, pn, en)
    };

    for (stage, s1, sn) in [
        ("collect_traces", c1, cn),
        ("profile_train", p1, pn),
        ("attack_extract", e1, en),
    ] {
        println!(
            "  {:<16} 1-thread {:>8.3}s   {}-thread {:>8.3}s   speedup {:.2}x",
            stage,
            s1,
            threads,
            sn,
            s1 / sn
        );
        stages.push(StageTiming {
            stage: stage.to_string(),
            secs_1_thread: s1,
            secs_n_threads: sn,
            speedup: s1 / sn,
        });
    }
    let total_1 = c1 + p1 + e1;
    let total_n = cn + pn + en;

    // Cold-vs-warm trace cache: the same collection fan-out, first against
    // an empty memo, then again with every trace already resident.
    std::env::set_var("LEAKY_DNN_CACHE", "mem");
    moscons::cache::clear_memory();
    let (cache_cold, _) = ml::par::with_threads(1, || timed(|| collect(&sessions)));
    let (cache_warm, _) = ml::par::with_threads(1, || timed(|| collect(&sessions)));
    assert!(
        cache_warm < cache_cold,
        "warm cache collection ({:.4}s) must beat cold ({:.4}s)",
        cache_warm,
        cache_cold
    );
    println!(
        "  trace cache      cold {:>8.3}s   warm {:>13.6}s   speedup {:.0}x",
        cache_cold,
        cache_warm,
        cache_cold / cache_warm
    );

    let lstm_secs_per_epoch = ml::par::with_threads(1, lstm_epoch_bench);
    println!(
        "  lstm epoch       {:.4}s (smoke-scale fit, 1 thread)",
        lstm_secs_per_epoch
    );

    let bench = PipelineBench {
        cores,
        threads,
        scale: scale_name.to_string(),
        stages,
        total_secs_1_thread: total_1,
        total_secs_n_threads: total_n,
        total_speedup: total_1 / total_n,
        cache_cold_secs: cache_cold,
        cache_warm_secs: cache_warm,
        cache_speedup: cache_cold / cache_warm,
        lstm_secs_per_epoch,
    };
    let json = serde_json::to_string_pretty(&bench).expect("bench serializes");
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!(
        "total: 1-thread {:.3}s, {}-thread {:.3}s ({:.2}x) -> BENCH_pipeline.json",
        total_1,
        threads,
        total_n,
        total_1 / total_n
    );
}
