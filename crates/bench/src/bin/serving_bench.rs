//! Fleet-scale serving bench: f32-scalar vs f32-SIMD vs int8 classification.
//!
//! Measures labels/second of a trained [`ml::SequenceClassifier`] on a
//! confident synthetic task through three serving paths:
//!
//! * **f32-scalar** — [`ml::SequenceClassifier::predict_naive`] per
//!   sequence: the reference forward pass whose per-gate horizontal dot
//!   products carry a sequential f32 dependency chain the compiler cannot
//!   vectorize. This is the honest scalar baseline.
//! * **f32-SIMD** — the production batch-bucketed
//!   [`ml::SequenceClassifier::predict_batch`] with the AVX2 lane kernel
//!   enabled (bitwise identical to the naive pass by contract).
//! * **int8** — [`ml::QuantizedSequenceClassifier::predict_batch`], the
//!   post-training quantized serving twin (≥ 99% label agreement, not
//!   bitwise).
//!
//! Also times the tiled GEMM with the SIMD lane kernel on vs off
//! (`simd_gemm_speedup`, hard 1.0 when AVX2 is unavailable or disabled via
//! `LEAKY_DNN_SIMD=off`) and measures `int8_label_agreement` on the eval
//! set; CI's bench-smoke job gates both.
//!
//! Everything runs under `ml::par::with_threads(1)` so the numbers isolate
//! kernel quality from the worker pool. Merges a `serving` section into
//! `BENCH_pipeline.json` without touching the other binaries' sections.
//!
//! Run: `cargo run -p bench --release --bin serving_bench`

use std::time::Instant;

use ml::matrix::Matrix;
use ml::{QuantizedSequenceClassifier, SeqClassifierConfig, SeqExample, SequenceClassifier};
use serde::Serialize;
use serde_json::Value;

/// Eval fleet: sequences classified per timed repetition.
const EVAL_SEQS: usize = 64;
/// Timesteps per eval sequence (labels per sequence).
const EVAL_LEN: usize = 32;
/// LSTM hidden units — serving-realistic, unlike the smoke-scale tests.
const HIDDEN: usize = 64;

/// Timed repetitions; minimum wall time is reported (robust to scheduler
/// noise on shared CI runners).
const REPS: usize = 7;

/// GEMM shape for the SIMD on/off probe (same as `gemm_bench`).
const GM: usize = 160;
const GK: usize = 64;
const GN: usize = 256;

#[derive(Serialize)]
struct ServingBench {
    sequences: usize,
    timesteps_per_sequence: usize,
    hidden: usize,
    /// Whether the AVX2 lane kernel was active for the f32-SIMD row.
    simd_enabled: bool,
    f32_scalar_labels_per_sec: f64,
    f32_simd_labels_per_sec: f64,
    int8_labels_per_sec: f64,
    /// `f32_simd / f32_scalar`.
    simd_speedup_vs_scalar: f64,
    /// `int8 / f32_scalar`.
    int8_speedup_vs_scalar: f64,
    /// Tiled GEMM with the lane kernel on vs off — CI gates this at >= 1
    /// (hard 1.0 when SIMD is unavailable, so the gate stays meaningful).
    simd_gemm_speedup: f64,
    /// Fraction of eval labels where int8 agrees with f32 — CI gates this
    /// at >= 0.99.
    int8_label_agreement: f64,
}

/// Deterministic pseudo-random stream — no RNG dependency.
fn lcg(state: &mut u64) -> f32 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 40) as f32) / (1u64 << 23) as f32 - 1.0
}

/// Quadrant task: points near the four quadrant centers (±1, ±1) with a
/// small noise radius, labeled by quadrant — an easy, margin-heavy task the
/// classifier learns confidently, so int8's lossy arithmetic lands on the
/// same argmax almost everywhere (the ≥ 99% agreement contract).
fn quadrant_sequences(n: usize, t: usize, seed: u64) -> Vec<SeqExample> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            let mut features = Vec::with_capacity(t);
            let mut labels = Vec::with_capacity(t);
            for _ in 0..t {
                let lab = (lcg(&mut state).to_bits() & 3) as usize;
                let (sx, sy) = match lab {
                    0 => (1.0, 1.0),
                    1 => (-1.0, 1.0),
                    2 => (-1.0, -1.0),
                    _ => (1.0, -1.0),
                };
                features.push(vec![sx + 0.2 * lcg(&mut state), sy + 0.2 * lcg(&mut state)]);
                labels.push(lab);
            }
            SeqExample::new(features, labels)
        })
        .collect()
}

/// Minimum wall time of `f` over [`REPS`] repetitions.
fn best_secs(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn gemm_simd_speedup() -> f64 {
    if !ml::simd::enabled() {
        return 1.0;
    }
    let mut a = Matrix::zeros(GM, GK);
    let mut b = Matrix::zeros(GK, GN);
    let mut state = 0x5e71_u64;
    for r in 0..GM {
        for c in 0..GK {
            a[(r, c)] = lcg(&mut state);
        }
    }
    for r in 0..GK {
        for c in 0..GN {
            b[(r, c)] = lcg(&mut state);
        }
    }
    let mut out = Matrix::zeros(1, 1);
    let on_secs = ml::simd::with_simd(true, || {
        best_secs(|| {
            for _ in 0..8 {
                std::hint::black_box(&a).matmul_into(std::hint::black_box(&b), &mut out);
            }
        })
    });
    let off_secs = ml::simd::with_simd(false, || {
        best_secs(|| {
            for _ in 0..8 {
                std::hint::black_box(&a).matmul_into(std::hint::black_box(&b), &mut out);
            }
        })
    });
    off_secs / on_secs
}

fn main() {
    let bench = ml::par::with_threads(1, || {
        let mut cfg = SeqClassifierConfig::new(2, HIDDEN, 4);
        cfg.epochs = 30;
        cfg.seed = 11;
        cfg.batch_size = 4;
        let mut clf = SequenceClassifier::new(cfg);
        clf.fit(&quadrant_sequences(32, 16, 3));
        let quant = QuantizedSequenceClassifier::from_f32(&clf);

        let eval = quadrant_sequences(EVAL_SEQS, EVAL_LEN, 7);
        let seqs: Vec<&[Vec<f32>]> = eval.iter().map(|e| e.features.as_slice()).collect();
        let total_labels = (EVAL_SEQS * EVAL_LEN) as f64;

        let f32_labels: Vec<Vec<usize>> = clf.predict_batch(&seqs);
        let int8_labels: Vec<Vec<usize>> = quant.predict_batch(&seqs);
        let agree = f32_labels
            .iter()
            .flatten()
            .zip(int8_labels.iter().flatten())
            .filter(|(a, b)| a == b)
            .count();

        let scalar_secs = best_secs(|| {
            for s in &seqs {
                std::hint::black_box(clf.predict_naive(std::hint::black_box(s)));
            }
        });
        let simd_secs = ml::simd::with_simd(true, || {
            best_secs(|| {
                std::hint::black_box(clf.predict_batch(std::hint::black_box(&seqs)));
            })
        });
        let int8_secs = best_secs(|| {
            std::hint::black_box(quant.predict_batch(std::hint::black_box(&seqs)));
        });

        ServingBench {
            sequences: EVAL_SEQS,
            timesteps_per_sequence: EVAL_LEN,
            hidden: HIDDEN,
            simd_enabled: ml::simd::enabled(),
            f32_scalar_labels_per_sec: total_labels / scalar_secs,
            f32_simd_labels_per_sec: total_labels / simd_secs,
            int8_labels_per_sec: total_labels / int8_secs,
            simd_speedup_vs_scalar: scalar_secs / simd_secs,
            int8_speedup_vs_scalar: scalar_secs / int8_secs,
            simd_gemm_speedup: gemm_simd_speedup(),
            int8_label_agreement: agree as f64 / total_labels,
        }
    });

    println!(
        "serving ({} seqs x {} steps, hidden {}): f32-scalar {:.0}/s, f32-simd {:.0}/s \
         ({:.2}x), int8 {:.0}/s ({:.2}x), agreement {:.4}, gemm simd {:.2}x",
        bench.sequences,
        bench.timesteps_per_sequence,
        bench.hidden,
        bench.f32_scalar_labels_per_sec,
        bench.f32_simd_labels_per_sec,
        bench.simd_speedup_vs_scalar,
        bench.int8_labels_per_sec,
        bench.int8_speedup_vs_scalar,
        bench.int8_label_agreement,
        bench.simd_gemm_speedup,
    );

    // Merge into BENCH_pipeline.json without clobbering the other bench
    // binaries' sections.
    let path = "BENCH_pipeline.json";
    let mut fields = match std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
    {
        Some(Value::Object(fields)) => fields,
        _ => Vec::new(),
    };
    fields.retain(|(k, _)| k != "serving");
    fields.push((
        "serving".to_string(),
        serde_json::to_value(&bench).expect("serving serializes"),
    ));
    let json = serde_json::to_string_pretty(&Value::Object(fields)).expect("bench serializes");
    std::fs::write(path, json).expect("write BENCH_pipeline.json");
    println!("serving -> {path}");
}
