//! Table V: the profiled model zoo (structures and sizes).

use bench::{print_header, print_row};
use dnn_sim::zoo;

fn main() {
    print_header(
        "Table V — profiled models",
        &["Model", "Layers", "Params(224px)", "Optimizer"],
        &[20, 8, 14, 10],
    );
    for m in zoo::profiled_models() {
        print_row(
            &[
                m.name.clone(),
                m.layers.len().to_string(),
                format!("{:.1}M", m.parameter_count(1) as f64 / 1e6),
                m.optimizer.name().to_string(),
            ],
            &[20, 8, 14, 10],
        );
    }
    println!("\nstructures:");
    for m in zoo::profiled_models() {
        println!("  {:<22} {}", m.name, m.structure_string());
    }
}
