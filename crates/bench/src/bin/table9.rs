//! Table IX: ground-truth vs recovered structure strings for the three
//! tested models, with AccuracyL and AccuracyHP. See `bench::print_table9`.

use bench::{attack_tested_models, print_table9, train_moscons, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("training MoSConS on the profiling suite...");
    let moscons = train_moscons(scale);
    let evals = attack_tested_models(&moscons, scale);
    print_table9(&evals);
}
