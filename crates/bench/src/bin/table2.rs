//! Table II: `Conv200` spy readings while the victim loops different ops
//! (`MatMul`, `Conv2D`, `ReLU`, `BiasAdd`, `Sigmoid`) or idles (`NOP`).
//!
//! Expected shape (paper): every victim op produces a distinct signature;
//! element-wise ops show (near-)zero write-backs with large variance;
//! `Conv2D` reads exceed `MatMul` reads; `NOP` dwarfs everything (back-to-
//! back spy launches aggregate per poll, plus the idle write-drain).

use bench::{print_header, print_row};
use dnn_sim::{lower_op, plan_iteration, zoo, OpKind};
use gpu_sim::{CounterId, GpuConfig, KernelDesc};
use ml::MeanStd;
use moscons::trace::collect_microbench;
use moscons::SpyKernelKind;

fn victim_kernel(kind: OpKind) -> Option<KernelDesc> {
    let gpu = GpuConfig::gtx_1080_ti();
    // Draw representative ops from the zoo's plans: conv/matmul with
    // moderate, cache-scale working sets; element-wise ops on moderate
    // tensors (so their dirty sets stay small, matching the near-zero write
    // columns of the paper's table).
    let cnn_ops = plan_iteration(&zoo::alexnet(), 16);
    let mlp_ops = plan_iteration(&zoo::profiled_mlp(), 16);
    let op = match kind {
        OpKind::MatMul => mlp_ops
            .iter()
            .find(|o| o.kind == OpKind::MatMul && (1 << 20..1 << 23).contains(&o.weight_elems))?,
        OpKind::Conv2D => cnn_ops
            .iter()
            .filter(|o| o.kind == OpKind::Conv2D)
            .max_by(|a, b| {
                let ws = |o: &&dnn_sim::Op| o.weight_elems;
                ws(a).cmp(&ws(b))
            })?,
        other => mlp_ops
            .iter()
            .find(|o| o.kind == other && (1 << 14..1 << 17).contains(&o.out_elems))
            .or_else(|| cnn_ops.iter().find(|o| o.kind == other))?,
    };
    Some(lower_op(op, 0, &gpu))
}

fn main() {
    let gpu = GpuConfig::gtx_1080_ti();
    print_header(
        "Table II — Conv200 spy readings per victim op",
        &["Victim Op", "Event1 fb_subp1_write", "Event2 fb_subp0_read"],
        &[10, 24, 24],
    );

    let rows: Vec<(&str, Option<KernelDesc>)> = vec![
        ("MatMul", victim_kernel(OpKind::MatMul)),
        ("Conv2D", victim_kernel(OpKind::Conv2D)),
        ("ReLU", victim_kernel(OpKind::Relu)),
        ("BiasAdd", victim_kernel(OpKind::BiasAdd)),
        ("Sigmoid", victim_kernel(OpKind::Sigmoid)),
        ("NOP", None),
    ];

    let mut reads = std::collections::HashMap::new();
    for (name, kernel) in rows {
        let samples =
            collect_microbench(kernel, SpyKernelKind::Conv200, 400_000.0, 1_000.0, &gpu, 23);
        let e1: Vec<f64> = samples
            .iter()
            .map(|s| s.counters.get(CounterId::FbSubp1WriteSectors))
            .collect();
        let e2: Vec<f64> = samples
            .iter()
            .map(|s| s.counters.get(CounterId::FbSubp0ReadSectors))
            .collect();
        let m1 = MeanStd::of(&e1);
        let m2 = MeanStd::of(&e2);
        reads.insert(name, (m1.mean, m2.mean));
        print_row(
            &[name.to_string(), m1.to_string(), m2.to_string()],
            &[10, 24, 24],
        );
    }

    println!("\nshape checks (see EXPERIMENTS.md for the paper mapping):");
    let conv = reads["Conv2D"];
    let mm = reads["MatMul"];
    let nop = reads["NOP"];
    let relu = reads["ReLU"];
    let sig = reads["Sigmoid"];
    // Distinctness uses both channels: element-wise ops match NOP on reads
    // but differ sharply on the write (drain) channel.
    let distinct =
        |r: (f64, f64)| (r.1 - nop.1).abs() > 0.5 * nop.1 || (r.0 - nop.0).abs() > 0.5 * nop.0;
    println!(
        "  every victim op distinct from NOP:        {}",
        [conv, mm, relu, sig].iter().all(|&r| distinct(r))
    );
    println!(
        "  long ops (C/M) >> element-wise (reads):   {}",
        conv.1.min(mm.1) > 2.0 * relu.0.max(relu.1).min(sig.1)
    );
    println!(
        "  element-wise writes << long-op reads:     {}",
        relu.0 < 0.1 * mm.1
    );
    println!(
        "  NOP write-drain >> busy writes:           {}",
        nop.0 > 2.0 * conv.0.max(mm.0)
    );
    println!("  (deviation vs paper: our NOP is read-quiet because the spy");
    println!("   completes ~1 launch per poll; the paper's NOP aggregates ~15");
    println!("   launches per read. Gap detectability is preserved — Table VI.)");
}
