//! Figures 2 & 3: spy sampling granularity with MPS **on** (Figure 2: the
//! spy completes about one kernel per victim training iteration — useless
//! for structure recovery) versus MPS **off** / time-sliced (Figure 3: the
//! spy samples at fine grain inside each iteration).

use bench::Scale;
use dnn_sim::zoo;
use gpu_sim::{Gpu, GpuConfig, SchedulerMode};
use moscons::SpyKernelKind;
use rand::SeedableRng;

struct Series {
    spy_per_iteration: Vec<usize>,
    spy_durations_us: Vec<f64>,
}

fn run(mode: SchedulerMode) -> Series {
    let scale = Scale::from_env();
    let mut session = scale.session(zoo::alexnet());
    // Disable host-side stalls so intra-iteration idle time is zero: the
    // figure isolates scheduler behaviour (the paper's traces show the same).
    {
        let model = session.model().clone();
        let mut cfg = dnn_sim::TrainingConfig::new(scale.batch_for(&model), scale.iterations);
        cfg.intra_stall_prob = 0.0;
        session = dnn_sim::TrainingSession::new(model, cfg);
    }
    let gpu_cfg = GpuConfig::gtx_1080_ti();
    let mut gpu = Gpu::new(gpu_cfg.clone(), mode);
    let victim = gpu.add_context("victim");
    let spy = gpu.add_context("spy");
    gpu.set_auto_repeat(spy, SpyKernelKind::Conv200.kernel(1.24, &gpu_cfg));
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    session.enqueue(&mut gpu, victim, &mut rng);
    gpu.run_until_queues_drain();

    // Victim iteration boundaries from the kernel log.
    let per_iter = session.ops().len();
    let victim_log: Vec<_> = gpu
        .kernel_log()
        .iter()
        .filter(|r| r.ctx == victim)
        .cloned()
        .collect();
    let spy_log: Vec<_> = gpu
        .kernel_log()
        .iter()
        .filter(|r| r.ctx == spy)
        .cloned()
        .collect();
    let iters = victim_log.len() / per_iter;
    let mut spy_per_iteration = Vec::new();
    for i in 0..iters {
        let start = victim_log[i * per_iter].start_us;
        let end = victim_log[(i + 1) * per_iter - 1].end_us;
        // Completions while the victim is actually computing (the gaps
        // between iterations are excluded — both schedulers sample freely
        // there).
        let n = spy_log
            .iter()
            .filter(|r| r.end_us >= start && r.end_us <= end)
            .count();
        spy_per_iteration.push(n);
    }
    Series {
        spy_per_iteration,
        spy_durations_us: spy_log.iter().map(|r| r.duration_us()).collect(),
    }
}

fn main() {
    println!("victim: AlexNet training; spy: Conv200 auto-repeat (no slow-down hogs)\n");
    let mps = run(SchedulerMode::Mps);
    let sliced = run(SchedulerMode::TimeSliced);

    println!("=== Figure 2 — MPS enabled (leftover policy) ===");
    println!(
        "spy kernels completed inside each victim iteration: {:?}",
        mps.spy_per_iteration
    );
    let max_mps = mps.spy_durations_us.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "longest spy launch: {:.1} ms (stretched across the victim's computation)",
        max_mps / 1000.0
    );

    println!("\n=== Figure 3 — MPS disabled (time-sliced) ===");
    println!(
        "spy kernels completed inside each victim iteration: {:?}",
        sliced.spy_per_iteration
    );
    let max_ts = sliced
        .spy_durations_us
        .iter()
        .cloned()
        .fold(0.0f64, f64::max);
    let mean_ts = mean(&sliced.spy_durations_us);
    println!(
        "longest spy launch: {:.1} ms, mean {:.1} ms",
        max_ts / 1000.0,
        mean_ts / 1000.0
    );

    let mps_rate = mean_usize(&mps.spy_per_iteration);
    let ts_rate = mean_usize(&sliced.spy_per_iteration);
    println!("\nshape checks vs paper:");
    println!(
        "  MPS: at most ~1 sample per iteration:         {} (mean {:.1})",
        mps_rate <= 1.5,
        mps_rate
    );
    println!(
        "  time-sliced samples at fine grain:            {} (mean {:.1} per iteration)",
        ts_rate >= 5.0,
        ts_rate
    );
    println!(
        "  MPS stretches in-flight spy launches:         {} (max {:.1} ms vs {:.1} ms)",
        max_mps > 2.0 * max_ts,
        max_mps / 1000.0,
        max_ts / 1000.0
    );
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn mean_usize(v: &[usize]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<usize>() as f64 / v.len() as f64
    }
}
