//! Fleet orchestrator bench: N concurrent streaming spy sessions.
//!
//! Runs [`moscons::run_fleet`] twice over the same session specs:
//!
//! * **f32 + Stall** — the lossless streaming attack path. Every session's
//!   final extraction is compared bitwise (via [`moscons::AttackReport`])
//!   against the batch [`moscons::Moscons::attack_on`] on the same
//!   victim/seed/GPU; `streaming_vs_batch_agreement` is the fraction of
//!   sessions that match and CI gates it at exactly 1.0.
//! * **int8 + Stall** — incremental gap detection per session with closed
//!   segments batched *across* sessions into the quantized serving path
//!   (one `predict_batch` per op model per round).
//!
//! Label latency is measured in *samples* (distance between a row entering
//! the classifier and its label being emitted) — a deterministic quantity —
//! and also reported in microseconds of simulated trace time
//! (`samples x poll_period_us`). Throughput numbers (`sessions_per_sec`,
//! `labels_per_sec`) are host wall-clock and vary run to run.
//!
//! A third pass runs one streamed session per model-zoo conformance family
//! (`dnn_sim::zoo::FAMILIES`) under the zoo op vocabulary and scores each
//! against ground truth; the per-family rows land under `fleet.families`
//! and CI gates `op_accuracy > 0` and `streaming_agreement == 1.0` on every
//! row.
//!
//! Merges a `fleet` section into `BENCH_pipeline.json` without touching the
//! other binaries' sections.
//!
//! Run: `cargo run -p bench --release --bin fleet_bench`
//! (honours `LEAKY_SCALE=quick`, `LEAKY_DNN_THREADS`,
//! `LEAKY_DNN_STREAM_CHUNK`).

use std::time::Instant;

use dnn_sim::{zoo, TrainingSession};
use moscons::attack::{AttackConfig, InferencePrecision, Moscons};
use moscons::{
    run_fleet, score_structure, FleetConfig, FleetOutcome, LabeledTrace, OverflowPolicy,
    SessionSpec,
};
use serde::Serialize;
use serde_json::Value;

#[derive(Serialize)]
struct FleetBench {
    sessions: usize,
    scale: String,
    queue_capacity: usize,
    /// Lockstep rounds of the f32 run (deterministic).
    rounds: usize,
    /// Fleet sessions completed per wall-clock second (f32 run).
    sessions_per_sec: f64,
    /// Streamed labels emitted per wall-clock second (f32 run).
    labels_per_sec: f64,
    /// Streamed labels per wall-clock second through the int8
    /// cross-session serving path.
    int8_labels_per_sec: f64,
    /// p50 label latency in samples (deterministic).
    label_latency_samples_p50: usize,
    /// p99 label latency in samples (deterministic).
    label_latency_samples_p99: usize,
    /// p50 label latency in simulated microseconds.
    label_latency_us_p50: f64,
    /// p99 label latency in simulated microseconds.
    label_latency_us_p99: f64,
    /// Fraction of sessions whose streamed extraction report is bitwise
    /// equal to the batch attack's — CI gates this at 1.0.
    streaming_vs_batch_agreement: f64,
    /// Rows evicted across the fleet (always 0 under `Stall`).
    overflow_dropped_total: usize,
    /// Per-family conformance row of the model-zoo fleet (one streamed
    /// session per [`zoo::FAMILIES`] entry under the zoo op vocabulary).
    families: Vec<FamilyBench>,
}

#[derive(Serialize)]
struct FamilyBench {
    /// Family tag from [`zoo::FAMILIES`].
    family: String,
    /// Op accuracy of the streamed extraction against the ground-truth
    /// labeled trace (base-iteration aligned) — CI gates `> 0`.
    op_accuracy: f64,
    /// `AccuracyL` of the recovered structure against the family victim.
    layer_accuracy: f64,
    /// 1.0 when the streamed report is bitwise equal to the batch attack
    /// on the same victim/seed/GPU — CI gates `== 1.0`.
    streaming_agreement: f64,
    /// Labels the session streamed.
    labels: usize,
    /// Valid iterations the streamed extraction recovered.
    iterations: usize,
}

fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Sorted-latency percentile (nearest-rank on the deterministic sample
/// distances).
fn percentile(sorted: &[usize], p: usize) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

fn total_labels(outcome: &FleetOutcome) -> usize {
    outcome.sessions.iter().map(|s| s.labels_emitted()).sum()
}

fn main() {
    let scale = bench::Scale::from_env();
    let scale_name = if scale == bench::Scale::quick() {
        "quick"
    } else {
        "full"
    };
    let threads = ml::par::threads();
    println!(
        "fleet_bench: {} pool workers, scale {}",
        threads, scale_name
    );

    // Smoke-scale attack budget (same spirit as pipeline_perf: the point is
    // orchestration behaviour, not accuracy).
    let mut config = AttackConfig::default();
    config.op_lstm.epochs = 6;
    config.op_lstm.hidden = 32;
    config.voting_lstm.epochs = 6;
    config.hp_lstm.epochs = 4;
    config.voting_iterations = 3;
    let gpu = config.gpu.clone();
    let profiled: Vec<TrainingSession> = moscons::random_profiling_models(4, scale.input(), 7)
        .into_iter()
        .map(|m| scale.session(m))
        .collect();
    let (t_profile, moscons) = timed(|| Moscons::profile(&profiled, config));
    println!("  profiled in {:.1}s", t_profile);

    // The fleet: distinct victims, distinct seeds, one simulated GPU each.
    let n_sessions = if scale == bench::Scale::quick() { 3 } else { 4 };
    let specs: Vec<SessionSpec> = moscons::random_profiling_models(n_sessions, scale.input(), 21)
        .into_iter()
        .enumerate()
        .map(|(i, m)| SessionSpec {
            victim: scale.session(m),
            seed: 5000 + 31 * i as u64,
            gpu: gpu.clone(),
        })
        .collect();

    let fleet_cfg = FleetConfig {
        overflow: OverflowPolicy::Stall,
        ..FleetConfig::default()
    };
    let (f32_secs, f32_run) = timed(|| run_fleet(&moscons, &specs, &fleet_cfg));
    let f32_labels = total_labels(&f32_run);

    // Batch references: the golden the streaming path must reproduce.
    let mut agree = 0usize;
    for (spec, session) in specs.iter().zip(&f32_run.sessions) {
        let (batch, _) = moscons.attack_on(&spec.victim, spec.seed, &spec.gpu);
        if batch.report() == session.extraction.report() {
            agree += 1;
        } else {
            println!(
                "  MISMATCH on {}: streamed != batch",
                spec.victim.model().name
            );
        }
    }
    let agreement = agree as f64 / specs.len() as f64;

    let int8_cfg = FleetConfig {
        precision: InferencePrecision::Int8,
        ..fleet_cfg
    };
    let (int8_secs, int8_run) = timed(|| run_fleet(&moscons, &specs, &int8_cfg));
    let int8_labels = total_labels(&int8_run);

    // Model-zoo family fleet: one streamed session per conformance family
    // under the zoo op vocabulary, each checked bitwise against its batch
    // attack and scored against the ground-truth trace labels.
    let (t_zoo_profile, zoo_moscons) = timed(|| bench::train_zoo_moscons(scale));
    println!("  zoo-profiled in {:.1}s", t_zoo_profile);
    let zoo_specs: Vec<SessionSpec> = zoo::FAMILIES
        .iter()
        .enumerate()
        .map(|(i, family)| SessionSpec {
            victim: bench::zoo_family_session(family, scale),
            seed: 7000 + 17 * i as u64,
            gpu: gpu.clone(),
        })
        .collect();
    let zoo_run = run_fleet(&zoo_moscons, &zoo_specs, &fleet_cfg);
    let th_gap = zoo_moscons.config().gap.th_gap;
    let families: Vec<FamilyBench> = zoo::FAMILIES
        .iter()
        .zip(zoo_specs.iter().zip(&zoo_run.sessions))
        .map(|(family, (spec, outcome))| {
            let (batch, raw) = zoo_moscons.attack_on(&spec.victim, spec.seed, &spec.gpu);
            let agreement = (batch.report() == outcome.extraction.report()) as usize as f64;
            let labeled = LabeledTrace::from_raw(&raw, spec.victim.model().name.clone());
            let op_accuracy =
                bench::op_accuracy_vs_truth(&outcome.extraction, &labeled, th_gap).unwrap_or(0.0);
            let layer_accuracy = score_structure(
                spec.victim.model(),
                &outcome.extraction.layers,
                outcome.extraction.optimizer,
            )
            .layers;
            FamilyBench {
                family: family.to_string(),
                op_accuracy,
                layer_accuracy,
                streaming_agreement: agreement,
                labels: outcome.labels_emitted(),
                iterations: outcome.extraction.iterations.len(),
            }
        })
        .collect();
    for fam in &families {
        println!(
            "  family {:>9}: op_acc {:.3}, layer_acc {:.3}, agreement {:.1}, \
             {} labels, {} iterations",
            fam.family,
            fam.op_accuracy,
            fam.layer_accuracy,
            fam.streaming_agreement,
            fam.labels,
            fam.iterations,
        );
        assert!(
            fam.op_accuracy > 0.0,
            "family {} recovered no correct op samples",
            fam.family
        );
        assert!(
            (fam.streaming_agreement - 1.0).abs() < f64::EPSILON,
            "family {} streamed extraction diverged from batch",
            fam.family
        );
    }

    let mut latencies: Vec<usize> = f32_run
        .sessions
        .iter()
        .flat_map(|s| s.label_latencies.iter().copied())
        .collect();
    latencies.sort_unstable();
    let p50 = percentile(&latencies, 50);
    let p99 = percentile(&latencies, 99);
    let poll_us = moscons.config().collection.poll_period_us;

    let bench = FleetBench {
        sessions: specs.len(),
        scale: scale_name.to_string(),
        queue_capacity: fleet_cfg.queue_capacity,
        rounds: f32_run.rounds,
        sessions_per_sec: specs.len() as f64 / f32_secs,
        labels_per_sec: f32_labels as f64 / f32_secs,
        int8_labels_per_sec: int8_labels as f64 / int8_secs,
        label_latency_samples_p50: p50,
        label_latency_samples_p99: p99,
        label_latency_us_p50: p50 as f64 * poll_us,
        label_latency_us_p99: p99 as f64 * poll_us,
        streaming_vs_batch_agreement: agreement,
        overflow_dropped_total: f32_run
            .sessions
            .iter()
            .map(|s| s.overflow_dropped)
            .sum::<usize>(),
        families,
    };
    println!(
        "fleet ({} sessions, {} rounds): {:.2} sessions/s, {:.0} labels/s f32, \
         {:.0} labels/s int8, latency p50 {} / p99 {} samples \
         ({:.0} / {:.0} us), agreement {:.2}",
        bench.sessions,
        bench.rounds,
        bench.sessions_per_sec,
        bench.labels_per_sec,
        bench.int8_labels_per_sec,
        bench.label_latency_samples_p50,
        bench.label_latency_samples_p99,
        bench.label_latency_us_p50,
        bench.label_latency_us_p99,
        bench.streaming_vs_batch_agreement,
    );
    assert!(
        (agreement - 1.0).abs() < f64::EPSILON,
        "streaming extraction diverged from batch on {}/{} sessions",
        specs.len() - agree,
        specs.len()
    );

    // Merge into BENCH_pipeline.json without clobbering the other bench
    // binaries' sections.
    let path = "BENCH_pipeline.json";
    let mut fields = match std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
    {
        Some(Value::Object(fields)) => fields,
        _ => Vec::new(),
    };
    fields.retain(|(k, _)| k != "fleet");
    fields.push((
        "fleet".to_string(),
        serde_json::to_value(&bench).expect("fleet serializes"),
    ));
    let json = serde_json::to_string_pretty(&Value::Object(fields)).expect("bench serializes");
    std::fs::write(path, json).expect("write BENCH_pipeline.json");
    println!("fleet -> {path}");
}
