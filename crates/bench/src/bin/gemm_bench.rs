//! GEMM microkernel + batch-packing bench.
//!
//! Two probes of the batched LSTM training engine, both single-threaded so
//! the numbers isolate kernel quality from the worker pool:
//!
//! * **`gemm`** — the register-tiled microkernel behind `Matrix::matmul`
//!   against the naive triple loop it is required to match bitwise, on an
//!   LSTM-shaped multiply (packed timesteps × input projection). The bench
//!   asserts bit equality of the two products while it measures, so a
//!   GFLOP/s win can never come from diverged arithmetic.
//! * **`lstm_packing`** — seconds per training epoch of the smoke-scale
//!   classifier with minibatches of one (every bucket degenerates to a
//!   single sequence: the per-sequence path) versus the pipeline's default
//!   minibatch of four (equal-length sequences share fused 4-gate GEMMs).
//!
//! Merges its sections into `BENCH_pipeline.json` without touching what
//! `pipeline_perf` and `fault_sweep` wrote there.
//!
//! Run: `cargo run -p bench --release --bin gemm_bench`

use std::time::Instant;

use ml::matrix::Matrix;
use serde::Serialize;
use serde_json::Value;

/// Bench GEMM shape, chosen to look like the packed LSTM input projection
/// at smoke scale: (T*B) rows × input width, times input width × 4H.
const M: usize = 160;
const K: usize = 64;
const N: usize = 256;

/// Multiplies per timed repetition.
const ITERS: usize = 8;

/// Timed repetitions; the minimum wall time is reported, which is robust to
/// scheduler noise on shared CI runners.
const REPS: usize = 7;

#[derive(Serialize)]
struct GemmBench {
    shape: String,
    naive_gflops: f64,
    microkernel_gflops: f64,
    /// `microkernel_gflops / naive_gflops` — CI gates this at >= 1.
    microkernel_speedup: f64,
}

#[derive(Serialize)]
struct PackingBench {
    per_seq_secs_per_epoch: f64,
    packed_secs_per_epoch: f64,
    /// `per_seq / packed` — how much the fused bucket GEMMs buy per epoch.
    speedup: f64,
}

/// Deterministic pseudo-random fill in [-1, 1) — no RNG dependency, same
/// matrix contents every run.
fn lcg_fill(m: &mut Matrix, mut state: u64) {
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            m[(r, c)] = ((state >> 40) as f32) / (1u64 << 23) as f32 - 1.0;
        }
    }
}

/// Minimum wall time of `f` over [`REPS`] repetitions.
fn best_secs(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn gemm_bench() -> GemmBench {
    let mut a = Matrix::zeros(M, K);
    let mut b = Matrix::zeros(K, N);
    lcg_fill(&mut a, 0x9e37_79b9);
    lcg_fill(&mut b, 0x7f4a_7c15);

    let naive = a.matmul_naive(&b);
    let mut micro = Matrix::zeros(1, 1);
    a.matmul_into(&b, &mut micro);
    assert!(
        naive
            .as_slice()
            .iter()
            .zip(micro.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "microkernel diverged from the naive GEMM"
    );

    let naive_secs = best_secs(|| {
        for _ in 0..ITERS {
            std::hint::black_box(a.matmul_naive(std::hint::black_box(&b)));
        }
    });
    let micro_secs = best_secs(|| {
        for _ in 0..ITERS {
            std::hint::black_box(&a).matmul_into(std::hint::black_box(&b), &mut micro);
        }
    });
    let flops = (2 * M * K * N * ITERS) as f64;
    GemmBench {
        shape: format!("{M}x{K}x{N}"),
        naive_gflops: flops / naive_secs / 1e9,
        microkernel_gflops: flops / micro_secs / 1e9,
        microkernel_speedup: naive_secs / micro_secs,
    }
}

/// Seconds per epoch of the smoke-scale classifier (same geometry as
/// `pipeline_perf`'s `lstm_epoch_bench`) at the given minibatch size.
fn lstm_epoch_secs(batch_size: usize) -> f64 {
    let input = 13;
    let classes = 4;
    let epochs = 8;
    let data: Vec<ml::SeqExample> = (0..12)
        .map(|i| {
            let features: Vec<Vec<f32>> = (0..40)
                .map(|t| {
                    (0..input)
                        .map(|d| ((i * 37 + t * 11 + d * 3) % 17) as f32 / 17.0)
                        .collect()
                })
                .collect();
            let labels: Vec<usize> = (0..40).map(|t| (i + t) % classes).collect();
            ml::SeqExample::new(features, labels)
        })
        .collect();
    let mut cfg = ml::SeqClassifierConfig::new(input, 48, classes);
    cfg.epochs = epochs;
    cfg.batch_size = batch_size;
    let start = Instant::now();
    ml::SequenceClassifier::new(cfg).fit(&data);
    start.elapsed().as_secs_f64() / epochs as f64
}

fn main() {
    let (gemm, packing) = ml::par::with_threads(1, || {
        let gemm = gemm_bench();
        let per_seq = lstm_epoch_secs(1);
        let packed = lstm_epoch_secs(4);
        (
            gemm,
            PackingBench {
                per_seq_secs_per_epoch: per_seq,
                packed_secs_per_epoch: packed,
                speedup: per_seq / packed,
            },
        )
    });

    println!(
        "gemm {}: naive {:.2} GFLOP/s, microkernel {:.2} GFLOP/s ({:.2}x)",
        gemm.shape, gemm.naive_gflops, gemm.microkernel_gflops, gemm.microkernel_speedup
    );
    println!(
        "lstm epoch: per-sequence {:.4}s, packed {:.4}s ({:.2}x)",
        packing.per_seq_secs_per_epoch, packing.packed_secs_per_epoch, packing.speedup
    );

    // Merge into BENCH_pipeline.json without clobbering the other bench
    // binaries' sections.
    let path = "BENCH_pipeline.json";
    let mut fields = match std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
    {
        Some(Value::Object(fields)) => fields,
        _ => Vec::new(),
    };
    fields.retain(|(k, _)| k != "gemm" && k != "lstm_packing");
    fields.push((
        "gemm".to_string(),
        serde_json::to_value(&gemm).expect("gemm serializes"),
    ));
    fields.push((
        "lstm_packing".to_string(),
        serde_json::to_value(&packing).expect("packing serializes"),
    ));
    let json = serde_json::to_string_pretty(&Value::Object(fields)).expect("bench serializes");
    std::fs::write(path, json).expect("write BENCH_pipeline.json");
    println!("gemm + lstm_packing -> {path}");
}
