//! Combined evaluation: trains MoSConS once and regenerates Tables VII,
//! VIII and IX in a single run (the individual `tableN` bins retrain from
//! scratch; this bin exists because profiling dominates the wall time).

use bench::{attack_tested_models, print_table7, print_table8, print_table9, train_moscons, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("training MoSConS on the profiling suite (once for all tables)...");
    let t0 = std::time::Instant::now();
    let moscons = train_moscons(scale);
    eprintln!("profiling + training took {:?}", t0.elapsed());
    let evals = attack_tested_models(&moscons, scale);
    print_table7(&evals);
    print_table8(&moscons, scale);
    print_table9(&evals);
}
