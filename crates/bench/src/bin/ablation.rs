//! Ablation bench (DESIGN.md call-outs): how much each pipeline stage
//! contributes. Compares, on ZFNet:
//!
//! * fusing: none (single iteration) vs plain majority vote vs LSTM voting;
//! * syntax correction: off vs on;
//!
//! reporting AccuracyL / AccuracyHP for each combination.

use bench::{pct, train_moscons, Scale};
use moscons::opseq::{collapse, forward_boundary, parse_forward_layers_lenient};
use moscons::syntax::{correct, SyntaxConfig};
use moscons::{score_structure, LabeledTrace};

fn main() {
    let scale = Scale::from_env();
    eprintln!("training MoSConS on the profiling suite...");
    let moscons = train_moscons(scale);
    let model = dnn_sim::zoo::zfnet();
    let session = scale.session(model.clone());
    let (extraction, raw) = moscons.attack(&session, 31337);
    let _ = LabeledTrace::from_raw(&raw, "zfnet");

    let variants: [(&str, &[dnn_sim::OpClass]); 3] = [
        ("single iteration", &extraction.pre_voting_classes),
        ("majority vote", &extraction.majority_classes),
        ("LSTM voting", &extraction.fused_classes),
    ];
    println!("\n=== Ablation — fusing strategy x syntax correction (ZFNet) ===");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10}",
        "fusing", "L (raw)", "HP (raw)", "L (+syn)", "HP (+syn)"
    );
    for (name, classes) in variants {
        let runs = collapse(classes);
        let boundary = forward_boundary(classes);
        let base_layers = parse_forward_layers_lenient(&runs, boundary);

        // Hyper-parameters from the already-extracted layers where sample
        // positions coincide; this ablation focuses on the class stream, so
        // reuse the extraction's HP assignments by position.
        let assign_hp = |layers: &mut Vec<moscons::RecoveredLayer>| {
            for l in layers.iter_mut() {
                if let Some(src) = extraction
                    .layers
                    .iter()
                    .find(|e| e.kind == l.kind && e.last_sample.abs_diff(l.last_sample) <= 3)
                {
                    l.filters = src.filters;
                    l.filter_size = src.filter_size;
                    l.stride = src.stride;
                    l.units = src.units;
                    if l.activation.is_none() {
                        l.activation = src.activation;
                    }
                }
            }
        };

        let mut raw_layers = base_layers.clone();
        assign_hp(&mut raw_layers);
        let raw_score = score_structure(&model, &raw_layers, extraction.optimizer);

        let mut corrected = base_layers.clone();
        assign_hp(&mut corrected);
        correct(&mut corrected, &SyntaxConfig::default());
        let syn_score = score_structure(&model, &corrected, extraction.optimizer);

        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>10}",
            name,
            pct(raw_score.layers),
            pct(raw_score.hyper_params),
            pct(syn_score.layers),
            pct(syn_score.hyper_params)
        );
    }
    println!("\nexpected shape: fusing and syntax correction each help or are neutral;");
    println!("the paper motivates both stages (§IV-B voting, §IV-D syntax).");
}
