//! Worker-pool dispatch bench: persistent pool vs scoped-spawn fallback.
//!
//! The `ml::par` backends are bitwise identical (asserted here before any
//! timing is trusted); what differs is the cost of *starting* a parallel
//! region. The scoped path pays a fresh `thread::scope` spawn per worker
//! per call; the pool pays an enqueue + condvar wake against resident
//! workers. This bench measures that per-dispatch overhead directly — a
//! tiny fixed-work `par_map` repeated many times, so per-item work is noise
//! and the dispatch machinery dominates — plus the small-work `par_map`
//! dispatch rate the retuned `MIN_PARALLEL_*` thresholds are calibrated
//! against (`ml::par::thresholds` documents the numbers).
//!
//! Merges a `pool` section into `BENCH_pipeline.json` without touching the
//! other binaries' sections. CI gates `dispatch_speedup_vs_scoped >= 1`;
//! the measured ratio on the tuning box was well above the 5x the
//! threshold retune assumes (see DESIGN.md §15).
//!
//! Run: `cargo run -p bench --release --bin pool_bench`
//! (honours `LEAKY_DNN_THREADS`; the worker count is forced to 4 via
//! `ml::par::with_threads` so the parallel backends engage even on a
//! single-core CI box).

use std::time::Instant;

use serde::Serialize;
use serde_json::Value;

#[derive(Serialize)]
struct PoolBench {
    /// Worker count forced for every measurement.
    workers: usize,
    /// Dispatches timed per backend for the overhead numbers.
    dispatches: usize,
    /// Mean microseconds per tiny-work `par_map` dispatch, scoped backend.
    scoped_dispatch_us: f64,
    /// Mean microseconds per tiny-work `par_map` dispatch, pool backend.
    pool_dispatch_us: f64,
    /// `scoped_dispatch_us / pool_dispatch_us` — CI gates `>= 1`, the
    /// threshold retune assumes `>= 5`.
    dispatch_speedup_vs_scoped: f64,
    /// Items per small-work dispatch in the throughput measurement.
    small_work_items: usize,
    /// Small-work `par_map` dispatches per second through the pool.
    small_work_dispatches_per_sec: f64,
    /// Mean microseconds per `join` through the pool.
    join_pool_us: f64,
    /// Mean microseconds per `join` on the scoped backend.
    join_scoped_us: f64,
}

/// Mean seconds per iteration of `f` over `iters` runs.
fn per_call_secs(iters: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    const WORKERS: usize = 4;
    let items: Vec<f32> = (0..8).map(|i| i as f32 * 0.83).collect();
    let small: Vec<f32> = (0..64).map(|i| i as f32 * 0.31).collect();
    let tiny_map = |items: &[f32]| ml::par::par_map(items, |i, &x| x.mul_add(1.0009, i as f32));

    // Backend equality first: timing a divergent backend would be
    // meaningless. Also warms the pool (first dispatch spawns workers) so
    // lazy-init cost stays out of the steady-state numbers.
    let pooled = ml::par::with_threads(WORKERS, || ml::par::with_pool(true, || tiny_map(&items)));
    let scoped = ml::par::with_threads(WORKERS, || ml::par::with_pool(false, || tiny_map(&items)));
    assert_eq!(pooled, scoped, "pool and scoped backends diverged");

    // Scoped spawning costs tens of microseconds per call, so it gets a
    // smaller iteration budget than the pool path.
    let scoped_iters = 400;
    let pool_iters = 4000;
    let (scoped_dispatch, pool_dispatch, join_scoped, join_pool, small_rate) =
        ml::par::with_threads(WORKERS, || {
            let scoped_dispatch = ml::par::with_pool(false, || {
                per_call_secs(scoped_iters, || {
                    std::hint::black_box(tiny_map(&items));
                })
            });
            let pool_dispatch = ml::par::with_pool(true, || {
                per_call_secs(pool_iters, || {
                    std::hint::black_box(tiny_map(&items));
                })
            });
            let join_scoped = ml::par::with_pool(false, || {
                per_call_secs(scoped_iters, || {
                    std::hint::black_box(ml::par::join(|| 1 + 1, || 2 + 2));
                })
            });
            let join_pool = ml::par::with_pool(true, || {
                per_call_secs(pool_iters, || {
                    std::hint::black_box(ml::par::join(|| 1 + 1, || 2 + 2));
                })
            });
            let small_secs = ml::par::with_pool(true, || {
                per_call_secs(pool_iters, || {
                    std::hint::black_box(tiny_map(&small));
                })
            });
            (
                scoped_dispatch,
                pool_dispatch,
                join_scoped,
                join_pool,
                1.0 / small_secs,
            )
        });

    let bench = PoolBench {
        workers: WORKERS,
        dispatches: pool_iters,
        scoped_dispatch_us: scoped_dispatch * 1e6,
        pool_dispatch_us: pool_dispatch * 1e6,
        dispatch_speedup_vs_scoped: scoped_dispatch / pool_dispatch,
        small_work_items: small.len(),
        small_work_dispatches_per_sec: small_rate,
        join_pool_us: join_pool * 1e6,
        join_scoped_us: join_scoped * 1e6,
    };
    println!(
        "pool dispatch: {:.1} us scoped vs {:.1} us pooled ({:.1}x), \
         join {:.1} us scoped vs {:.1} us pooled, \
         {:.0} small-work dispatches/s",
        bench.scoped_dispatch_us,
        bench.pool_dispatch_us,
        bench.dispatch_speedup_vs_scoped,
        bench.join_scoped_us,
        bench.join_pool_us,
        bench.small_work_dispatches_per_sec,
    );

    // Merge into BENCH_pipeline.json without clobbering the other bench
    // binaries' sections.
    let path = "BENCH_pipeline.json";
    let mut fields = match std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
    {
        Some(Value::Object(fields)) => fields,
        _ => Vec::new(),
    };
    fields.retain(|(k, _)| k != "pool");
    fields.push((
        "pool".to_string(),
        serde_json::to_value(&bench).expect("pool serializes"),
    ));
    let json = serde_json::to_string_pretty(&Value::Object(fields)).expect("bench serializes");
    std::fs::write(path, json).expect("write BENCH_pipeline.json");
    println!("pool -> {path}");
}
