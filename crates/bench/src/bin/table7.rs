//! Table VII: per-class op-inference accuracy on the tested models, before
//! voting ("Pre Vt.") and with LSTM voting ("W/ Vt."), plus a plain
//! majority-vote ablation row. See `bench::print_table7`.

use bench::{attack_tested_models, print_table7, train_moscons, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("training MoSConS on the profiling suite...");
    let moscons = train_moscons(scale);
    let evals = attack_tested_models(&moscons, scale);
    print_table7(&evals);
}
