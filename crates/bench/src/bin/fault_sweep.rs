//! Fault-sensitivity sweep: profile MoSConS once on clean hardware, then
//! attack the same victim under increasingly hostile fault plans and record
//! how the recovered op sequence degrades.
//!
//! The injected faults (see `gpu_sim::fault`) model the failure modes of a
//! real CUPTI deployment: counter-read jitter, dropped/duplicated samples,
//! failed spy launches and watchdog preemption bursts. The attack is expected
//! to degrade *gracefully* — accuracy decays monotonically with the fault
//! rate instead of falling off a cliff, because the spy retries launches with
//! bounded backoff and the gap splitter bridges isolated missing samples.
//! (Mild plans can even score above the clean baseline: their preemption
//! bursts slow the victim down, which is the paper's §IV attack by accident.)
//!
//! A second sweep runs the model-zoo conformance families
//! (`dnn_sim::zoo::FAMILIES`, attacked under the zoo op vocabulary) over a
//! reduced rate grid, recording how each family's op recovery degrades.
//!
//! Appends `fault_curve` and `fault_curve_families` sections to
//! `BENCH_pipeline.json` (preserving whatever `pipeline_perf` wrote there)
//! and prints the tables recorded in EXPERIMENTS.md.
//!
//! Run: `cargo run -p bench --release --bin fault_sweep`
//! (honours `LEAKY_SCALE=quick` and `LEAKY_DNN_THREADS`).

use dnn_sim::zoo;
use gpu_sim::FaultPlan;
use moscons::report::{overall_op_accuracy, score_structure};
use moscons::LabeledTrace;
use serde::Serialize;
use serde_json::Value;

/// Composite fault rates swept, in increasing hostility. `0.0` is the clean
/// baseline; `FaultPlan::uniform` splits each rate across the individual
/// fault knobs. The low end is realistic deployment noise (where bounded
/// retry + gap bridging keep the attack nearly lossless); the high end is
/// deliberately brutal so the decay shape is visible above seed noise.
const RATES: [f64; 5] = [0.0, 0.1, 0.25, 0.5, 0.8];

/// Attack-collection seeds averaged per rate (one fault plan, several victim
/// runs): the per-run op accuracy is noisy at quick scale, the mean is not.
const ATTACK_SEEDS: [u64; 4] = [9000, 9001, 9002, 9003];

/// Fault RNG seed — fixed so the sweep is reproducible run to run.
const FAULT_SEED: u64 = 0xFA;

#[derive(Serialize)]
struct FaultPoint {
    /// Composite fault rate passed to `FaultPlan::uniform`.
    rate: f64,
    /// Op-sequence accuracy over BUSY samples of the base iteration against
    /// ground truth, averaged over [`ATTACK_SEEDS`] (`null` when no run
    /// aligned — no iteration survived splitting).
    op_accuracy: Option<f64>,
    /// Runs (of [`ATTACK_SEEDS`]) whose base iteration aligned with a
    /// ground-truth iteration.
    aligned_runs: usize,
    /// `AccuracyL`: mean layer-sequence accuracy of the recovered structure.
    layer_accuracy: f64,
    /// Mean valid iterations recovered by `Mgap`.
    iterations: f64,
    /// Mean sample count of the attack trace.
    samples: f64,
}

/// One cell of the per-family fault matrix: a zoo conformance family
/// attacked (zoo vocabulary) under one fault rate.
#[derive(Serialize)]
struct FamilyFaultPoint {
    /// Family tag from [`zoo::FAMILIES`].
    family: String,
    /// Composite fault rate passed to `FaultPlan::uniform`.
    rate: f64,
    /// Mean op accuracy against ground truth over [`FAMILY_SEEDS`]
    /// (`null` when no run recovered an iteration).
    op_accuracy: Option<f64>,
    /// Runs (of [`FAMILY_SEEDS`]) that produced a scorable iteration.
    aligned_runs: usize,
    /// Mean `AccuracyL` of the recovered structure.
    layer_accuracy: f64,
    /// Mean valid iterations recovered by `Mgap`.
    iterations: f64,
}

/// Rates of the per-family sweep — a reduced grid (clean, realistic noise,
/// hostile) to keep the matrix tractable at 5 families.
const FAMILY_RATES: [f64; 3] = [0.0, 0.25, 0.5];

/// Attack seeds averaged per family cell.
const FAMILY_SEEDS: [u64; 2] = [9100, 9101];

fn main() {
    let scale = bench::Scale::from_env();
    let moscons = bench::train_moscons(scale);
    let model = zoo::tested_mlp();
    let session = scale.session(model.clone());

    println!("fault_sweep: victim {}, {} rates", model.name, RATES.len());
    println!(
        "  {:>6}  {:>11}  {:>11}  {:>10}  {:>8}",
        "rate", "op_acc", "layer_acc", "iterations", "samples"
    );

    let mut curve = Vec::new();
    for &rate in &RATES {
        let gpu = moscons
            .config()
            .gpu
            .clone()
            .with_faults(FaultPlan::uniform(rate, FAULT_SEED));
        let mut op_accs = Vec::new();
        let mut layer_acc_sum = 0.0;
        let mut iter_sum = 0usize;
        let mut sample_sum = 0usize;
        for &seed in &ATTACK_SEEDS {
            let (extraction, raw) = moscons.attack_on(&session, seed, &gpu);
            let labeled = LabeledTrace::from_raw(&raw, model.name.clone());

            // Align ground truth to the extraction's base iteration, as the
            // paper's tables do.
            let gt_iters = labeled.split_iterations_ground_truth(moscons.config().gap.th_gap);
            if let Some(acc) = extraction.iterations.first().and_then(|base| {
                gt_iters
                    .iter()
                    .find(|g| g.start.abs_diff(base.start) < 12)
                    .map(|g| {
                        let truth: Vec<_> =
                            labeled.samples[g.clone()].iter().map(|s| s.class).collect();
                        let (pred, truth) = bench::common(&extraction.fused_classes, &truth);
                        overall_op_accuracy(pred, truth)
                    })
            }) {
                op_accs.push(acc);
            }
            layer_acc_sum +=
                score_structure(&model, &extraction.layers, extraction.optimizer).layers;
            iter_sum += extraction.iterations.len();
            sample_sum += raw.samples.len();
        }
        let runs = ATTACK_SEEDS.len() as f64;
        let op_accuracy =
            (!op_accs.is_empty()).then(|| op_accs.iter().sum::<f64>() / op_accs.len() as f64);
        let point = FaultPoint {
            rate,
            op_accuracy,
            aligned_runs: op_accs.len(),
            layer_accuracy: layer_acc_sum / runs,
            iterations: iter_sum as f64 / runs,
            samples: sample_sum as f64 / runs,
        };
        println!(
            "  {:>6.2}  {:>11}  {:>11.3}  {:>10.1}  {:>8.0}",
            rate,
            point
                .op_accuracy
                .map_or("-".to_string(), |a| format!("{a:.3}")),
            point.layer_accuracy,
            point.iterations,
            point.samples,
        );
        curve.push(point);
    }

    // Graceful degradation, not a cliff: across the *fault* rates the mean
    // accuracy must decay monotonically (small tolerance for seed noise).
    // The clean baseline is excluded from the shape check on purpose: the
    // mildest plan often scores *above* it, because its preemption bursts
    // stretch the victim's ops over more samples — an accidental dose of the
    // paper's §IV slow-down attack.
    let accs: Vec<f64> = curve
        .iter()
        .filter(|p| p.rate > 0.0)
        .filter_map(|p| p.op_accuracy)
        .collect();
    assert!(
        accs.len() >= 4,
        "need at least 4 aligned fault rates to check the decay shape, got {}",
        accs.len()
    );
    for w in accs.windows(2) {
        assert!(
            w[1] <= w[0] + 0.02,
            "op accuracy rose with the fault rate: {:?}",
            accs
        );
    }
    let clean = curve[0].op_accuracy.expect("clean baseline must align");
    assert!(
        *accs.last().unwrap() < clean,
        "the most hostile plan must score below the clean baseline: {:?} vs {clean}",
        accs
    );
    println!("decay shape ok: {:?} (clean baseline {clean:.3})", accs);

    // Second sweep: the model-zoo conformance families under the zoo
    // vocabulary, over the reduced rate grid.
    let zoo_moscons = bench::train_zoo_moscons(scale);
    println!(
        "fault_sweep: {} zoo families, {} rates",
        zoo::FAMILIES.len(),
        FAMILY_RATES.len()
    );
    println!(
        "  {:>10}  {:>6}  {:>11}  {:>11}  {:>10}",
        "family", "rate", "op_acc", "layer_acc", "iterations"
    );
    let th_gap = zoo_moscons.config().gap.th_gap;
    let mut family_curve = Vec::new();
    for &family in &zoo::FAMILIES {
        let session = bench::zoo_family_session(family, scale);
        for &rate in &FAMILY_RATES {
            let gpu = zoo_moscons
                .config()
                .gpu
                .clone()
                .with_faults(FaultPlan::uniform(rate, FAULT_SEED));
            let mut op_accs = Vec::new();
            let mut layer_acc_sum = 0.0;
            let mut iter_sum = 0usize;
            for &seed in &FAMILY_SEEDS {
                let (extraction, raw) = zoo_moscons.attack_on(&session, seed, &gpu);
                let labeled = LabeledTrace::from_raw(&raw, session.model().name.clone());
                if let Some(acc) = bench::op_accuracy_vs_truth(&extraction, &labeled, th_gap) {
                    op_accs.push(acc);
                }
                layer_acc_sum +=
                    score_structure(session.model(), &extraction.layers, extraction.optimizer)
                        .layers;
                iter_sum += extraction.iterations.len();
            }
            let runs = FAMILY_SEEDS.len() as f64;
            let point = FamilyFaultPoint {
                family: family.to_string(),
                rate,
                op_accuracy: (!op_accs.is_empty())
                    .then(|| op_accs.iter().sum::<f64>() / op_accs.len() as f64),
                aligned_runs: op_accs.len(),
                layer_accuracy: layer_acc_sum / runs,
                iterations: iter_sum as f64 / runs,
            };
            println!(
                "  {:>10}  {:>6.2}  {:>11}  {:>11.3}  {:>10.1}",
                point.family,
                rate,
                point
                    .op_accuracy
                    .map_or("-".to_string(), |a| format!("{a:.3}")),
                point.layer_accuracy,
                point.iterations,
            );
            family_curve.push(point);
        }
        // Each family must stay attackable on clean hardware — the gate the
        // CI bench-smoke job relies on.
        let clean = family_curve
            .iter()
            .rfind(|p| p.family == family && p.rate == 0.0)
            .expect("clean cell present");
        assert!(
            clean.op_accuracy.unwrap_or(0.0) > 0.0,
            "family {family}: clean op accuracy is zero"
        );
    }

    // Merge into BENCH_pipeline.json without clobbering pipeline_perf's
    // sections.
    let path = "BENCH_pipeline.json";
    let mut fields = match std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
    {
        Some(Value::Object(fields)) => fields,
        _ => Vec::new(),
    };
    fields.retain(|(k, _)| k != "fault_curve" && k != "fault_curve_families");
    fields.push((
        "fault_curve".to_string(),
        serde_json::to_value(&curve).expect("curve serializes"),
    ));
    fields.push((
        "fault_curve_families".to_string(),
        serde_json::to_value(&family_curve).expect("family curve serializes"),
    ));
    let json = serde_json::to_string_pretty(&Value::Object(fields)).expect("bench serializes");
    std::fs::write(path, json).expect("write BENCH_pipeline.json");
    println!(
        "fault_curve ({} points) + fault_curve_families ({} points) -> {path}",
        curve.len(),
        family_curve.len()
    );
}
