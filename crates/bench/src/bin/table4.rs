//! Table IV: the selected CUPTI events & metrics counters, in their three
//! hardware groups, plus the replay cost of enabling each group.

use bench::{print_header, print_row};
use cupti_sim::{replay_factor, table_iv_groups};

fn main() {
    print_header(
        "Table IV — selected CUPTI counters",
        &["Group(#)", "Counter", "Description"],
        &[9, 30, 55],
    );
    for g in table_iv_groups() {
        let mut first = true;
        for c in &g.counters {
            print_row(
                &[
                    if first {
                        format!("{}({})", g.id, g.counters.len())
                    } else {
                        String::new()
                    },
                    c.event_name().to_string(),
                    if first {
                        g.description.to_string()
                    } else {
                        String::new()
                    },
                ],
                &[9, 30, 55],
            );
            first = false;
        }
    }
    println!("\nspy-kernel replay factor by enabled group count:");
    for n in 1..=3 {
        println!("  {} group(s): x{:.2}", n, replay_factor(n));
    }
}
