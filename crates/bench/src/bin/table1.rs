//! Table I: CUPTI readings of the five candidate spy kernels while the
//! victim runs `MatMul` in a loop. Event 1 is `fb_subp1_write_sectors`,
//! Event 2 is `fb_subp0_read_sectors`; cells are "mean(std)" per sample.
//!
//! Expected shape (paper): readings grow and stabilize with the spy's probe
//! footprint; `Conv200` has the largest mean and the smallest relative σ,
//! making it the best probe.

use bench::{print_header, print_row};
use dnn_sim::{lower_op, plan_iteration, zoo, OpKind};
use gpu_sim::{CounterId, GpuConfig};
use ml::MeanStd;
use moscons::trace::collect_microbench;
use moscons::SpyKernelKind;

fn main() {
    let gpu = GpuConfig::gtx_1080_ti();
    // The victim loops a large fully-connected MatMul (as in the paper's
    // microbenchmark).
    let ops = plan_iteration(&zoo::profiled_mlp(), 128);
    let matmul = ops
        .iter()
        .find(|o| o.kind == OpKind::MatMul && o.weight_elems > 1 << 24)
        .expect("profiled MLP has a large MatMul");
    let victim = lower_op(matmul, 0, &gpu);

    print_header(
        "Table I — spy kernel readings, victim = MatMul",
        &[
            "Spy Kernel",
            "Event1 fb_subp1_write",
            "Event2 fb_subp0_read",
            "rel. std E2",
        ],
        &[12, 22, 22, 12],
    );

    let mut best: Option<(SpyKernelKind, f64)> = None;
    for spy in SpyKernelKind::ALL {
        let samples = collect_microbench(Some(victim.clone()), spy, 400_000.0, 1_000.0, &gpu, 17);
        let e1: Vec<f64> = samples
            .iter()
            .map(|s| s.counters.get(CounterId::FbSubp1WriteSectors))
            .collect();
        let e2: Vec<f64> = samples
            .iter()
            .map(|s| s.counters.get(CounterId::FbSubp0ReadSectors))
            .collect();
        let m1 = MeanStd::of(&e1);
        let m2 = MeanStd::of(&e2);
        let rel = if m2.mean > 0.0 {
            m2.std / m2.mean
        } else {
            f64::INFINITY
        };
        print_row(
            &[
                spy.name().to_string(),
                m1.to_string(),
                m2.to_string(),
                format!("{:.3}", rel),
            ],
            &[12, 22, 22, 12],
        );
        // "Best" probe = largest mean reading weighted by stability, as the
        // paper argues for Conv200.
        let score = m2.mean / (1.0 + rel);
        if best.is_none_or(|(_, s)| score > s) {
            best = Some((spy, score));
        }
    }
    let (winner, _) = best.expect("five probes evaluated");
    println!("\nbest probe by mean/(1+rel.std): {}", winner);
    println!("paper's choice: Conv200");
}
