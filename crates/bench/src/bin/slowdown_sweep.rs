//! §IV slow-down parameter study: how `<#kernels, #blocks, #threads>`
//! affect the victim and spy slow-down, and where the effect saturates.
//!
//! Paper findings: "there is an upper-bound of the slow-down ratio, such
//! that higher numbers of kernels/blocks/threads are not always more
//! effective"; with the chosen 8-kernel grouping the victim slows ~17x while
//! the spy slows <3x relative to its co-located-only baseline.

use bench::{print_header, print_row};
use gpu_sim::{Gpu, GpuConfig, KernelDesc, KernelFootprint, SchedulerMode};
use moscons::{SlowdownConfig, SpyKernelKind};

/// Wall time of a fixed victim workload with `hogs` hog contexts of given
/// geometry, plus the Conv200 sampler; also returns the sampler's mean
/// launch wall time.
fn measure(hogs: usize, blocks: u32, tpb: u32) -> (f64, f64) {
    let mut cfg = GpuConfig::gtx_1080_ti();
    cfg.slice_jitter = 0.0;
    cfg.counter_noise = 0.0;
    let mut gpu = Gpu::new(cfg.clone(), SchedulerMode::TimeSliced);
    let victim = gpu.add_context("victim");
    let work_us = 20_000.0;
    let fp = KernelFootprint {
        flops: cfg.compute_throughput * work_us,
        ..KernelFootprint::empty()
    };
    gpu.enqueue(victim, KernelDesc::new("victim", 56, 1024, fp));
    let sampler = gpu.add_context("sampler");
    gpu.set_auto_repeat(sampler, SpyKernelKind::Conv200.kernel(1.24, &cfg));
    for i in 0..hogs {
        let ctx = gpu.add_context(format!("hog{}", i));
        let occ = gpu_sim::Occupancy::of_launch(blocks, tpb, &cfg)
            .fraction()
            .max(1e-3);
        let hfp = KernelFootprint {
            flops: cfg.compute_throughput * occ * 3.0 * cfg.time_slice_us,
            read_bytes: 8.0 * 1024.0,
            working_set: 8.0 * 1024.0,
            ..KernelFootprint::empty()
        };
        gpu.set_auto_repeat(ctx, KernelDesc::new(format!("hog{}", i), blocks, tpb, hfp));
    }
    gpu.run_until_queues_drain();
    let victim_wall = gpu
        .kernel_log()
        .iter()
        .find(|r| &*r.name == "victim")
        .expect("victim ran")
        .duration_us();
    let spy_launches: Vec<f64> = gpu
        .kernel_log()
        .iter()
        .filter(|r| r.name.starts_with("spy_"))
        .map(|r| r.duration_us())
        .collect();
    let spy_mean = if spy_launches.is_empty() {
        0.0
    } else {
        spy_launches.iter().sum::<f64>() / spy_launches.len() as f64
    };
    (victim_wall / work_us, spy_mean)
}

fn main() {
    // Sampler-only baseline for the spy's own launch time.
    let (_, spy_alone) = measure(0, 4, 32);

    print_header(
        "§IV sweep — #kernels (paper grouping G_i: 4*2^i blocks, 32 tpb)",
        &[
            "kernels",
            "victim slow-down",
            "spy launch (ms)",
            "spy slow-down",
        ],
        &[8, 17, 16, 14],
    );
    for hogs in [0usize, 2, 4, 6, 8, 12, 16] {
        // Use the paper's per-slot geometry via SlowdownConfig.
        let mut cfg = GpuConfig::gtx_1080_ti();
        cfg.slice_jitter = 0.0;
        cfg.counter_noise = 0.0;
        let mut gpu = Gpu::new(cfg.clone(), SchedulerMode::TimeSliced);
        let victim = gpu.add_context("victim");
        let work_us = 20_000.0;
        let fp = KernelFootprint {
            flops: cfg.compute_throughput * work_us,
            ..KernelFootprint::empty()
        };
        gpu.enqueue(victim, KernelDesc::new("victim", 56, 1024, fp));
        let sampler = gpu.add_context("sampler");
        gpu.set_auto_repeat(sampler, SpyKernelKind::Conv200.kernel(1.24, &cfg));
        SlowdownConfig { kernels: hogs }.launch(&mut gpu);
        gpu.run_until_queues_drain();
        let victim_wall = gpu
            .kernel_log()
            .iter()
            .find(|r| &*r.name == "victim")
            .expect("victim ran")
            .duration_us();
        let spy: Vec<f64> = gpu
            .kernel_log()
            .iter()
            .filter(|r| r.name.starts_with("spy_Conv"))
            .map(|r| r.duration_us())
            .collect();
        let spy_mean = if spy.is_empty() {
            0.0
        } else {
            spy.iter().sum::<f64>() / spy.len() as f64
        };
        print_row(
            &[
                format!("{}", hogs + 1),
                format!("{:.1}x", victim_wall / work_us),
                format!("{:.1}", spy_mean / 1000.0),
                format!("{:.1}x", spy_mean / spy_alone),
            ],
            &[8, 17, 16, 14],
        );
    }

    print_header(
        "§IV sweep — blocks/threads of a single hog (saturation)",
        &["blocks", "tpb", "victim slow-down"],
        &[8, 6, 17],
    );
    for (blocks, tpb) in [
        (4u32, 32u32),
        (8, 32),
        (16, 32),
        (32, 32),
        (32, 256),
        (64, 1024),
        (512, 1024),
    ] {
        let (v, _) = measure(1, blocks, tpb);
        print_row(
            &[
                format!("{}", blocks),
                format!("{}", tpb),
                format!("{:.2}x", v),
            ],
            &[8, 6, 17],
        );
    }
    println!("\npaper: slow-down saturates once a kernel covers every SM; more blocks/threads stop helping.");
}
