//! §V-F — performance impact of the attack on the victim.
//!
//! Paper numbers (VGG16, batch 64, 224px): 431.18 ms per iteration alone,
//! 637.78 ms with one spy kernel (1.48x), 20.9 s with the 8-kernel slow-down
//! (48.5x). We reproduce the sweep's *shape*: monotone growth with the
//! number of spy kernels, small overhead at one kernel, an order of
//! magnitude at eight.

use bench::{print_header, print_row, Scale};
use dnn_sim::zoo;
use gpu_sim::GpuConfig;
use moscons::trace::{collect_trace, CollectionConfig};
use moscons::{SlowdownConfig, SpyKernelKind};

fn main() {
    let scale = Scale::from_env();
    let session = scale.session(zoo::vgg16());
    let gpu = GpuConfig::gtx_1080_ti();
    let baseline = session.baseline_iteration_us(gpu.clone());
    println!(
        "victim: VGG16 (batch {}, {}px); baseline iteration = {:.1} ms",
        scale.batch_for(session.model()),
        scale.image,
        baseline / 1000.0
    );

    print_header(
        "§V-F — victim slow-down vs number of spy kernels",
        &["spy kernels", "iteration (ms)", "slow-down"],
        &[12, 15, 10],
    );
    for hogs in [0usize, 1, 2, 4, 7] {
        // `hogs` contention kernels + the always-present sampler = the
        // paper's "N kernels" (1 kernel = sampler only).
        let cfg = CollectionConfig {
            spy_kernel: SpyKernelKind::Conv200,
            slowdown: SlowdownConfig { kernels: hogs },
            ..CollectionConfig::paper()
        };
        let trace = collect_trace(&session, &cfg, &gpu);
        print_row(
            &[
                format!("{}", hogs + 1),
                format!("{:.1}", trace.mean_iteration_us / 1000.0),
                format!("{:.1}x", trace.mean_iteration_us / baseline),
            ],
            &[12, 15, 10],
        );
    }
    println!("\npaper reference: 1 kernel -> 1.48x, 8 kernels -> 48.5x (§V-F);");
    println!("§IV reports the victim ~17x slower under the 8-kernel group setting.");
}
