//! Defense evaluation (paper §VI "Potential defense" / future work).
//!
//! The paper proposes two directions we can evaluate on the simulator:
//!
//! 1. **reduce CUPTI precision** — quantize counter readings before the spy
//!    sees them (`CuptiSession::with_quantization`);
//! 2. **harden the scheduler** — randomize time-slice lengths so the
//!    penalty-to-op alignment the LSTMs rely on degrades.
//!
//! For each defense level we re-collect the victim trace and measure the
//! attack's op-inference accuracy with the *already-trained* models (the
//! realistic setting: the defense is deployed after the adversary profiled).

use bench::{pct, train_moscons, Scale};
use cupti_sim::{table_iv_groups, CuptiSession};
use dnn_sim::zoo;
use gpu_sim::{Gpu, GpuConfig, SchedulerMode};
use moscons::dataset::counter_features;
use moscons::report::overall_op_accuracy;
use moscons::trace::spy_vm;
use moscons::{LabeledTrace, RawTrace, SlowdownConfig, SpyKernelKind};
use rand::SeedableRng;

/// Collects a ZFNet victim trace under a given defense configuration.
fn collect_defended(scale: Scale, quantization: f64, slice_jitter: f64) -> RawTrace {
    let session = scale.session(zoo::zfnet());
    let vm = spy_vm();
    let mut gpu_cfg = GpuConfig::gtx_1080_ti().with_seed(0xDEF);
    gpu_cfg.slice_jitter = slice_jitter;
    let mut gpu = Gpu::new(gpu_cfg, SchedulerMode::TimeSliced);
    let victim = gpu.add_context("victim");
    let sampler = gpu.add_context("spy_sampler");
    gpu.monitor(sampler);
    SlowdownConfig::paper().launch(&mut gpu);
    let cupti = CuptiSession::open(&vm, sampler, table_iv_groups(), 1_000.0)
        .expect("CUPTI open")
        .with_quantization(quantization.max(1.0));
    gpu.set_auto_repeat(
        sampler,
        SpyKernelKind::Conv200.kernel(cupti.replay_factor(), gpu.config()),
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xDEF);
    session.enqueue(&mut gpu, victim, &mut rng);
    gpu.run_until_queues_drain();
    let end = gpu.now_us();
    let (kernels, slices) = gpu.take_logs();
    let samples = cupti.collect(&slices, 0.0, end);
    RawTrace {
        victim_log: kernels.into_iter().filter(|r| r.ctx == victim).collect(),
        samples,
        collection: moscons::CollectionConfig::paper(),
        mean_iteration_us: 0.0,
    }
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("training MoSConS (attacker profiles BEFORE the defense deploys)...");
    let moscons = train_moscons(scale);

    println!("\n=== §VI defense evaluation — ZFNet victim, attack trained undefended ===");
    println!(
        "{:<34} {:>12} {:>12} {:>12}",
        "defense", "iterations", "op acc", "degradation"
    );

    let mut baseline_acc: Option<f64> = None;
    let cases: [(&str, f64, f64); 5] = [
        ("none (baseline)", 1.0, 0.06),
        ("quantize counters to 1k sectors", 1_000.0, 0.06),
        ("quantize counters to 10k sectors", 10_000.0, 0.06),
        ("randomize slices +-30%", 1.0, 0.30),
        ("quantize 10k + slices +-30%", 10_000.0, 0.30),
    ];
    for (name, quant, jitter) in cases {
        let raw = collect_defended(scale, quant, jitter);
        let labeled = LabeledTrace::from_raw(&raw, "defended");
        let features: Vec<Vec<f32>> = raw
            .samples
            .iter()
            .map(|s| counter_features(&s.to_features()))
            .collect();
        let extraction = moscons.extract(&features);
        // Align ground truth to the base iteration for op accuracy.
        let gt_iters = labeled.split_iterations_ground_truth(6);
        let acc = extraction
            .iterations
            .first()
            .and_then(|base| gt_iters.iter().find(|g| g.start.abs_diff(base.start) < 12))
            .map(|g| {
                let truth: Vec<dnn_sim::OpClass> =
                    labeled.samples[g.clone()].iter().map(|s| s.class).collect();
                let n = truth.len().min(extraction.fused_classes.len());
                overall_op_accuracy(&extraction.fused_classes[..n], &truth[..n])
            });
        let acc_str = acc.map(pct).unwrap_or_else(|| "n/a".to_string());
        let degradation = match (baseline_acc, acc) {
            (Some(b), Some(a)) if b > 0.0 => format!("-{:.0}%", 100.0 * (b - a).max(0.0) / b),
            _ => "-".to_string(),
        };
        if baseline_acc.is_none() {
            baseline_acc = acc;
        }
        println!(
            "{:<34} {:>12} {:>12} {:>12}",
            name,
            extraction.iterations.len(),
            acc_str,
            degradation
        );
    }
    println!("\nexpected shape: both defenses degrade the attack; combined is strongest.");
    println!("(the paper proposes these in §VI but leaves evaluation to future work —");
    println!(" this bench is our reproduction's extension.)");
}
