//! Table VIII: hyper-parameter inference accuracy per kind (HP1 filters,
//! HP2 filter size, HP3 neurons, HP4 stride, HP5 optimizer), evaluated at
//! each layer\'s ground-truth forward position as in the paper\'s §V-D.
//! See `bench::print_table8`.

use bench::{print_table8, train_moscons, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("training MoSConS on the profiling suite...");
    let moscons = train_moscons(scale);
    print_table8(&moscons, scale);
}
