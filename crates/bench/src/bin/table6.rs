//! Table VI: iteration-splitting (`Mgap`) accuracy on the tested models,
//! plus the paper's batch-size/image-size side study (§V-B reports the
//! impact is small).

use bench::{collection, pct, print_header, print_row, profiling_suite, tested_models, Scale};
use dnn_sim::{TrainingConfig, TrainingSession};
use gpu_sim::GpuConfig;
use moscons::dataset::fit_scaler;
use moscons::trace::collect_trace;
use moscons::{GapConfig, GapModel, LabeledTrace};

fn main() {
    let scale = Scale::from_env();
    let gpu = GpuConfig::gtx_1080_ti();

    // Profiling phase.
    eprintln!("collecting profiling traces...");
    let mut traces = Vec::new();
    for (i, session) in profiling_suite(scale).iter().enumerate() {
        let raw = collect_trace(session, &collection().with_seed(1000 + i as u64), &gpu);
        traces.push(LabeledTrace::from_raw(&raw, session.model().name.clone()));
    }
    let refs: Vec<&LabeledTrace> = traces.iter().collect();
    let scaler = fit_scaler(&refs);
    let gap = GapModel::train(&refs, &scaler, GapConfig::default());

    print_header(
        "Table VI — iteration splitting on the tested models",
        &["Model", "Op", "# samples", "Accuracy"],
        &[20, 6, 10, 9],
    );
    for model in tested_models() {
        let session = scale.session(model.clone());
        let raw = collect_trace(&session, &collection().with_seed(77), &gpu);
        let trace = LabeledTrace::from_raw(&raw, model.name.clone());
        let eval = gap.evaluate(&trace, &scaler);
        print_row(
            &[
                model.name.clone(),
                "NOP".into(),
                eval.nop_total.to_string(),
                pct(eval.nop_accuracy()),
            ],
            &[20, 6, 10, 9],
        );
        print_row(
            &[
                String::new(),
                "BUSY".into(),
                eval.busy_total.to_string(),
                pct(eval.busy_accuracy()),
            ],
            &[20, 6, 10, 9],
        );
        // And the splitter finds the right number of iterations.
        let feats: Vec<Vec<f32>> = trace.samples.iter().map(|s| s.features.clone()).collect();
        let found = gap.split_iterations(&feats, &scaler).len();
        println!(
            "    iterations recovered: {} (ground truth enqueued: {})",
            found, scale.iterations
        );
    }

    // Side study: batch and image size (paper: NOP accuracy 96-98% on VGG16
    // across batch 16-512 and image 32-384 — "their impact is quite small").
    print_header(
        "Table VI side study — batch/image sensitivity (ZFNet)",
        &["batch", "image", "NOP acc", "BUSY acc"],
        &[6, 6, 9, 9],
    );
    for (batch, image) in [(8usize, 64usize), (16, 112), (32, 96)] {
        let model = dnn_sim::zoo::zfnet().with_input(dnn_sim::InputSpec::Image {
            height: image,
            width: image,
            channels: 3,
        });
        let session = TrainingSession::new(model, TrainingConfig::new(batch, scale.iterations));
        let raw = collect_trace(&session, &collection().with_seed(5000 + batch as u64), &gpu);
        let trace = LabeledTrace::from_raw(&raw, "zfnet-side");
        let eval = gap.evaluate(&trace, &scaler);
        print_row(
            &[
                batch.to_string(),
                image.to_string(),
                pct(eval.nop_accuracy()),
                pct(eval.busy_accuracy()),
            ],
            &[6, 6, 9, 9],
        );
    }
    println!("\npaper reference: all accuracies > 94%; batch/image impact small.");
}
