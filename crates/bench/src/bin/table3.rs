//! Table III: structures of the five LSTM inference models.
//!
//! Prints the paper's geometry (LSTM-256 / LSTM-128) next to the geometry
//! this reproduction trains by default (smaller hidden sizes — the simulated
//! counter space is lower-dimensional than real CUPTI).

use bench::{print_header, print_row};
use moscons::attack::AttackConfig;
use moscons::LstmTrainConfig;

fn main() {
    let cfg = AttackConfig::default();
    let paper = LstmTrainConfig::paper();

    print_header(
        "Table III — inference model structures",
        &["Model", "Paper", "This reproduction", "Loss customization"],
        &[8, 12, 18, 44],
    );
    let rows = [
        (
            "Mlong",
            format!("LSTM {}", paper.hidden),
            format!("LSTM {}", cfg.op_lstm.hidden),
            "weighted softmax + cross-entropy (minority amplified)",
        ),
        (
            "Mop",
            format!("LSTM {}", paper.hidden),
            format!("LSTM {}", cfg.op_lstm.hidden),
            "cross-entropy masked to OtherOp samples (Sum_if)",
        ),
        (
            "Vlong",
            format!("LSTM {}", paper.hidden),
            format!("LSTM {}", cfg.voting_lstm.hidden),
            "softmax + cross-entropy over stacked one-hots",
        ),
        (
            "Vop",
            format!("LSTM {}", paper.hidden),
            format!("LSTM {}", cfg.voting_lstm.hidden),
            "masked cross-entropy over stacked one-hots (Sum_if)",
        ),
        (
            "Mhp",
            "LSTM 128".to_string(),
            format!("LSTM {}", cfg.hp_lstm.hidden),
            "label on each layer's last sample, rest masked",
        ),
    ];
    for (name, p, ours, loss) in rows {
        print_row(
            &[name.to_string(), p, ours, loss.to_string()],
            &[8, 12, 18, 44],
        );
    }
    println!(
        "\nall models: per-timestep FC head + softmax; voting input is a {}-iteration stack (paper: 5)",
        cfg.voting_iterations
    );
    println!("Mgap: histogram GBDT (LightGBM-style), not an LSTM — as in the paper.");
}
