//! Shared harness code for the table/figure regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a dedicated binary
//! (`cargo run -p bench --release --bin tableN`); this library holds the
//! scaled experiment configuration, the profiling/tested model suites, and
//! small formatting helpers. `EXPERIMENTS.md` records the outputs next to
//! the paper's numbers.

// Enforced statically here and by leaky-lint rule D5: this crate's
// determinism contract is easier to audit with zero unsafe code.
#![forbid(unsafe_code)]

use dnn_sim::{zoo, InputSpec, Model, TrainingConfig, TrainingSession};
use moscons::attack::{AttackConfig, Moscons};
use moscons::{hp_sweep_variants, CollectionConfig};

/// Experiment scale. The paper runs 224x224 images for 500 iterations on
/// real hardware; the simulated runs default to 112x112 and 8 iterations,
/// which preserves every structural property (op ordering, relative
/// durations, layer-size signals) at tractable cost. `LEAKY_SCALE=quick`
/// shrinks further for smoke runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Input image side.
    pub image: usize,
    /// Batch size for CNNs.
    pub batch_cnn: usize,
    /// Batch size for MLPs (the paper uses larger MLP batches).
    pub batch_mlp: usize,
    /// Training iterations observed per model.
    pub iterations: usize,
}

impl Scale {
    /// The default evaluation scale.
    pub fn full() -> Self {
        Scale {
            image: 112,
            batch_cnn: 16,
            batch_mlp: 128,
            iterations: 8,
        }
    }

    /// A fast smoke-test scale.
    pub fn quick() -> Self {
        Scale {
            image: 64,
            batch_cnn: 8,
            batch_mlp: 32,
            iterations: 6,
        }
    }

    /// Reads `LEAKY_SCALE` from the environment (`quick` or `full`).
    pub fn from_env() -> Self {
        match std::env::var("LEAKY_SCALE").as_deref() {
            Ok("quick") => Scale::quick(),
            _ => Scale::full(),
        }
    }

    /// The input spec at this scale.
    pub fn input(&self) -> InputSpec {
        InputSpec::Image {
            height: self.image,
            width: self.image,
            channels: 3,
        }
    }

    /// Batch size appropriate for a model (MLPs get the larger batch).
    pub fn batch_for(&self, model: &Model) -> usize {
        let is_mlp = model
            .layers
            .iter()
            .all(|l| matches!(l, dnn_sim::Layer::Dense { .. }));
        if is_mlp {
            self.batch_mlp
        } else {
            self.batch_cnn
        }
    }

    /// Builds a training session for a model at this scale.
    pub fn session(&self, model: Model) -> TrainingSession {
        let model = model.with_input(self.input());
        let batch = self.batch_for(&model);
        TrainingSession::new(model, TrainingConfig::new(batch, self.iterations))
    }
}

/// The profiling suite: the Table V zoo plus hyper-parameter sweep variants
/// (§V-D: the adversary varies hyper-parameters on her profiled models).
pub fn profiling_suite(scale: Scale) -> Vec<TrainingSession> {
    let input = scale.input();
    let mut models: Vec<Model> = vec![zoo::profiled_mlp(), zoo::alexnet(), zoo::profiled_vgg19()];
    models.extend(hp_sweep_variants(&zoo::alexnet().with_input(input), 4, 5));
    models.extend(hp_sweep_variants(
        &zoo::profiled_mlp().with_input(input),
        3,
        9,
    ));
    models.extend(hp_sweep_variants(
        &zoo::profiled_vgg19().with_input(input),
        2,
        13,
    ));
    models.into_iter().map(|m| scale.session(m)).collect()
}

/// The tested models of Table IX.
pub fn tested_models() -> Vec<Model> {
    vec![zoo::tested_mlp(), zoo::zfnet(), zoo::vgg16()]
}

/// Trains a full MoSConS instance on the profiling suite.
pub fn train_moscons(scale: Scale) -> Moscons {
    let sessions = profiling_suite(scale);
    Moscons::profile(&sessions, AttackConfig::default())
}

/// The zoo profiling suite: randomized residual/separable/attention shapes
/// covering every [`moscons::OpVocab::Zoo`] op class.
pub fn zoo_profiling_suite(scale: Scale) -> Vec<TrainingSession> {
    moscons::random_zoo_profiling_models(6, scale.input(), 19)
        .into_iter()
        .map(|m| scale.session(m))
        .collect()
}

/// Trains a MoSConS instance under the zoo op vocabulary on the zoo
/// profiling suite.
pub fn train_zoo_moscons(scale: Scale) -> Moscons {
    let config = AttackConfig {
        vocab: moscons::OpVocab::Zoo,
        ..AttackConfig::default()
    };
    Moscons::profile(&zoo_profiling_suite(scale), config)
}

/// The victim session of a zoo conformance family at this scale (the
/// `inference` family runs forward-only iterations).
pub fn zoo_family_session(family: &str, scale: Scale) -> TrainingSession {
    let model = zoo::family_model(family)
        .unwrap_or_else(|| panic!("unknown zoo family {family:?}"))
        .with_input(scale.input());
    let batch = scale.batch_for(&model);
    let config = if family == "inference" {
        TrainingConfig::inference(batch, scale.iterations)
    } else {
        TrainingConfig::new(batch, scale.iterations)
    };
    TrainingSession::new(model, config)
}

/// The collection configuration the benches use (the paper's setting).
pub fn collection() -> CollectionConfig {
    CollectionConfig::paper()
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{:>width$}", c, width = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Prints a table header with a separator line.
pub fn print_header(title: &str, cells: &[&str], widths: &[usize]) {
    println!("\n=== {} ===", title);
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

// ---------------------------------------------------------------------------
// shared attack evaluation (tables VII, VIII, IX)
// ---------------------------------------------------------------------------

use dnn_sim::OpClass;
use moscons::attack::Extraction;
use moscons::LabeledTrace;

/// One attacked victim with everything the table bins need.
pub struct VictimEval {
    /// Ground-truth model.
    pub model: Model,
    /// Extraction result.
    pub extraction: Extraction,
    /// Ground-truth-labeled victim trace (bench-side only).
    pub labeled: LabeledTrace,
    /// Ground-truth classes aligned to the extraction's base iteration.
    pub base_truth: Option<Vec<OpClass>>,
}

/// Attacks every tested model and aligns ground truth to the base iteration.
pub fn attack_tested_models(moscons: &Moscons, scale: Scale) -> Vec<VictimEval> {
    tested_models()
        .into_iter()
        .enumerate()
        .map(|(i, model)| {
            let session = scale.session(model.clone());
            let (extraction, raw) = moscons.attack(&session, 9000 + i as u64);
            let labeled = LabeledTrace::from_raw(&raw, model.name.clone());
            let gt_iters = labeled.split_iterations_ground_truth(moscons.config().gap.th_gap);
            let base_truth = extraction.iterations.first().and_then(|base| {
                gt_iters
                    .iter()
                    .find(|g| g.start.abs_diff(base.start) < 12)
                    .map(|g| labeled.samples[g.clone()].iter().map(|s| s.class).collect())
            });
            VictimEval {
                model,
                extraction,
                labeled,
                base_truth,
            }
        })
        .collect()
}

/// Truncates two class sequences to their common length.
pub fn common<'a>(a: &'a [OpClass], b: &'a [OpClass]) -> (&'a [OpClass], &'a [OpClass]) {
    let n = a.len().min(b.len());
    (&a[..n], &b[..n])
}

/// Op accuracy of an extraction against a ground-truth-labeled trace: the
/// ground-truth iteration aligned with the extraction's base iteration when
/// one aligns (the paper's tables), otherwise the best-scoring ground-truth
/// iteration. `None` when either side found no iterations.
pub fn op_accuracy_vs_truth(
    extraction: &Extraction,
    labeled: &LabeledTrace,
    th_gap: usize,
) -> Option<f64> {
    use moscons::report::overall_op_accuracy;
    let gt_iters = labeled.split_iterations_ground_truth(th_gap);
    let base = extraction.iterations.first()?;
    let score = |g: &std::ops::Range<usize>| {
        let truth: Vec<OpClass> = labeled.samples[g.clone()].iter().map(|s| s.class).collect();
        let (p, t) = common(&extraction.fused_classes, &truth);
        overall_op_accuracy(p, t)
    };
    match gt_iters.iter().find(|g| g.start.abs_diff(base.start) < 12) {
        Some(g) => Some(score(g)),
        None => gt_iters
            .iter()
            .map(score)
            .fold(None, |best, a| Some(best.map_or(a, |b: f64| b.max(a)))),
    }
}

// ---------------------------------------------------------------------------
// table printers shared by the per-table bins and the combined `eval_all` bin
// ---------------------------------------------------------------------------

/// Prints Table VII (op-inference accuracy) for pre-attacked victims.
pub fn print_table7(evals: &[VictimEval]) {
    use moscons::report::{class_accuracy, overall_op_accuracy};
    let classes = [
        OpClass::Conv,
        OpClass::MatMul,
        OpClass::BiasAdd,
        OpClass::Relu,
        OpClass::Pool,
        OpClass::Tanh,
        OpClass::Sigmoid,
        OpClass::Optimizer,
    ];
    let mut header = vec!["Model".to_string(), "Phase".to_string()];
    header.extend(classes.iter().map(|c| c.letter().to_string()));
    header.push("Overall".to_string());
    let widths: Vec<usize> = std::iter::once(20usize)
        .chain(std::iter::once(8))
        .chain(classes.iter().map(|_| 6))
        .chain(std::iter::once(8))
        .collect();
    print_header(
        "Table VII — op inference accuracy",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
        &widths,
    );
    for ev in evals {
        let Some(truth) = &ev.base_truth else {
            println!("{}: base iteration not aligned — skipped", ev.model.name);
            continue;
        };
        let rows: [(&str, &[OpClass]); 3] = [
            ("Pre Vt.", &ev.extraction.pre_voting_classes),
            ("Majority", &ev.extraction.majority_classes),
            ("W/ Vt.", &ev.extraction.fused_classes),
        ];
        for (phase, pred) in rows {
            let (p, t) = common(pred, truth);
            let mut cells = vec![
                if phase == "Pre Vt." {
                    ev.model.name.clone()
                } else {
                    String::new()
                },
                phase.to_string(),
            ];
            for c in classes {
                cells.push(match class_accuracy(p, t, c) {
                    Some(a) => format!("{:.0}%", 100.0 * a),
                    None => "-".to_string(),
                });
            }
            cells.push(pct(overall_op_accuracy(p, t)));
            print_row(&cells, &widths);
        }
    }
    println!("\npaper reference (overall): Cust. MLP 97.1 -> 99.4%, ZFNet 86.3 -> 93.0%, VGG16 84.8 -> 85.8%.");
}

/// Prints Table VIII (hyper-parameter accuracy) — collects its own victim
/// traces with hyper-parameter sweep variants.
pub fn print_table8(moscons: &Moscons, scale: Scale) {
    use gpu_sim::GpuConfig;
    use moscons::hyperparams::forward_last_sample;
    use moscons::trace::collect_trace;
    use moscons::HpKind;

    let gpu = GpuConfig::gtx_1080_ti();
    let mut victims: Vec<Model> = tested_models();
    for (i, m) in tested_models().into_iter().enumerate() {
        victims.extend(moscons::hp_sweep_variants(
            &m.with_input(scale.input()),
            2,
            40 + i as u64,
        ));
    }
    let mut totals: std::collections::HashMap<HpKind, (usize, usize)> = Default::default();
    for (i, model) in victims.iter().enumerate() {
        let session = scale.session(model.clone());
        let raw = collect_trace(&session, &collection().with_seed(8800 + i as u64), &gpu);
        let labeled = LabeledTrace::from_raw(&raw, model.name.clone());
        let iters = labeled.split_iterations_ground_truth(6);
        for r in iters.iter().take(3) {
            let samples = &labeled.samples[r.clone()];
            let features: Vec<Vec<f32>> = samples.iter().map(|s| s.features.clone()).collect();
            for kind in HpKind::ALL {
                let preds = moscons.hp_model(kind).predict(&features, moscons.scaler());
                match kind {
                    HpKind::Optimizer => {
                        let truth = HpKind::optimizer_class(model.optimizer);
                        let mut counts = [0usize; 3];
                        for (s, &p) in samples.iter().zip(&preds) {
                            if s.class == OpClass::Optimizer {
                                counts[p.min(2)] += 1;
                            }
                        }
                        if counts.iter().sum::<usize>() > 0 {
                            let best = (0..3).max_by_key(|&c| counts[c]).expect("3 classes");
                            let e = totals.entry(kind).or_default();
                            e.1 += 1;
                            if best == truth {
                                e.0 += 1;
                            }
                        }
                    }
                    _ => {
                        for (layer_idx, _) in model.layers.iter().enumerate() {
                            let Some(truth) = kind.label_for_layer(model, layer_idx) else {
                                continue;
                            };
                            let Some(pos) = forward_last_sample(
                                samples.iter().map(|s| s.layer_index),
                                layer_idx,
                            ) else {
                                continue;
                            };
                            let e = totals.entry(kind).or_default();
                            e.1 += 1;
                            if preds[pos] == truth {
                                e.0 += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    print_header(
        "Table VIII — hyper-parameter inference accuracy",
        &["HP", "Kind", "Correct", "Total", "Accuracy"],
        &[4, 12, 8, 6, 9],
    );
    let paper = [95.71, 88.1, 96.58, 95.89, 92.63];
    for (i, kind) in HpKind::ALL.iter().enumerate() {
        let (correct, total) = totals.get(kind).copied().unwrap_or((0, 0));
        let acc = if total > 0 {
            correct as f64 / total as f64
        } else {
            0.0
        };
        print_row(
            &[
                format!("HP{}", i + 1),
                format!("{:?}", kind),
                correct.to_string(),
                total.to_string(),
                pct(acc),
            ],
            &[4, 12, 8, 6, 9],
        );
        println!("      paper: {:.1}%", paper[i]);
    }
}

/// Prints Table IX (end-to-end structure recovery) for pre-attacked victims.
pub fn print_table9(evals: &[VictimEval]) {
    use moscons::score_structure;
    println!("\n=== Table IX — end-to-end structure recovery ===");
    let paper = [(1.0, 1.0), (1.0, 0.769), (0.952, 0.828)];
    let mut sum_l = 0.0;
    let mut sum_hp = 0.0;
    for (ev, (pl, php)) in evals.iter().zip(paper) {
        let score = score_structure(&ev.model, &ev.extraction.layers, ev.extraction.optimizer);
        println!("\n{}", ev.model.name);
        println!("  ground truth : {}", ev.model.structure_string());
        println!("  recovered    : {}", ev.extraction.structure);
        println!(
            "  AccuracyL = {} (paper {})   AccuracyHP = {} ({}/{}; paper {})",
            pct(score.layers),
            pct(pl),
            pct(score.hyper_params),
            score.hp_correct,
            score.hp_total,
            pct(php),
        );
        sum_l += score.layers;
        sum_hp += score.hyper_params;
    }
    let n = evals.len() as f64;
    println!(
        "\naverages: AccuracyL {} (paper 98.4%), AccuracyHP {} (paper 86.6%)",
        pct(sum_l / n),
        pct(sum_hp / n)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_consistent() {
        let full = Scale::full();
        let quick = Scale::quick();
        assert!(quick.image < full.image);
        assert!(quick.iterations <= full.iterations);
        let mlp = zoo::tested_mlp();
        let cnn = zoo::vgg16();
        assert_eq!(full.batch_for(&mlp), full.batch_mlp);
        assert_eq!(full.batch_for(&cnn), full.batch_cnn);
    }

    #[test]
    fn profiling_suite_is_diverse() {
        let suite = profiling_suite(Scale::quick());
        assert!(suite.len() >= 9, "suite has {} models", suite.len());
        let names: std::collections::HashSet<&str> =
            suite.iter().map(|s| s.model().name.as_str()).collect();
        assert_eq!(names.len(), suite.len(), "duplicate model names");
    }

    #[test]
    fn tested_models_match_table_ix() {
        let tested = tested_models();
        assert_eq!(tested.len(), 3);
        assert_eq!(tested[1].name, "ZFNet");
        assert_eq!(tested[2].name, "VGG16");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.984), "98.4%");
    }
}
