//! Criterion benches for the data-parallel execution engine: blocked vs
//! naive GEMMs, 1-vs-N-worker `SequenceClassifier::fit`, and the
//! trace-collection fan-out. On a single-core runner the N-worker numbers
//! collapse onto the serial ones — compare against `BENCH_pipeline.json`
//! from a multi-core machine for the speedup story.

use criterion::{criterion_group, criterion_main, Criterion};
use dnn_sim::TrainingSession;
use ml::matrix::Matrix;
use ml::seq::{SeqClassifierConfig, SequenceClassifier};
use ml::SeqExample;
use moscons::trace::collect_trace;
use moscons::CollectionConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pool_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn matmul_blocked_vs_naive(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(10);
    let a = Matrix::uniform(160, 256, 1.0, &mut rng);
    let b = Matrix::uniform(256, 192, 1.0, &mut rng);
    c.bench_function("matmul/naive_160x256x192", |bch| {
        bch.iter(|| a.matmul_naive(&b).sum())
    });
    c.bench_function("matmul/blocked_1_thread_160x256x192", |bch| {
        bch.iter(|| ml::par::with_threads(1, || a.matmul(&b).sum()))
    });
    let n = pool_threads();
    c.bench_function("matmul/blocked_n_threads_160x256x192", |bch| {
        bch.iter(|| ml::par::with_threads(n, || a.matmul(&b).sum()))
    });
}

fn fit_threads(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let data: Vec<SeqExample> = (0..8)
        .map(|_| {
            let features: Vec<Vec<f32>> = (0..100)
                .map(|_| (0..26).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            let labels: Vec<usize> = features.iter().map(|f| usize::from(f[0] > 0.5)).collect();
            SeqExample::new(features, labels)
        })
        .collect();
    let fit = || {
        let mut cfg = SeqClassifierConfig::new(26, 32, 2);
        cfg.epochs = 1;
        cfg.batch_size = 4;
        let mut clf = SequenceClassifier::new(cfg);
        clf.fit(&data).accuracy
    };
    c.bench_function("seq_fit/1_thread_batch4_8x100", |b| {
        b.iter(|| ml::par::with_threads(1, fit))
    });
    let n = pool_threads();
    c.bench_function("seq_fit/n_threads_batch4_8x100", |b| {
        b.iter(|| ml::par::with_threads(n, fit))
    });
}

fn collect_fanout(c: &mut Criterion) {
    let scale = bench::Scale::quick();
    let sessions: Vec<TrainingSession> = moscons::random_profiling_models(4, scale.input(), 23)
        .into_iter()
        .map(|m| scale.session(m))
        .collect();
    let gpu = gpu_sim::GpuConfig::gtx_1080_ti();
    let collection = CollectionConfig::paper();
    let fan_out = || {
        ml::par::par_map(&sessions, |i, s| {
            collect_trace(s, &collection.with_seed(17 ^ (i as u64 * 7919)), &gpu)
                .samples
                .len()
        })
        .iter()
        .sum::<usize>()
    };
    c.bench_function("collect_trace/1_thread_4_sessions", |b| {
        b.iter(|| ml::par::with_threads(1, fan_out))
    });
    let n = pool_threads();
    c.bench_function("collect_trace/n_threads_4_sessions", |b| {
        b.iter(|| ml::par::with_threads(n, fan_out))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = matmul_blocked_vs_naive, fit_threads, collect_fanout
}
criterion_main!(benches);
