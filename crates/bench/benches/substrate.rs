//! Criterion benches for the simulation substrate: GPU engine stepping,
//! side-channel trace collection, and the TF-style planner/lowering.

use criterion::{criterion_group, criterion_main, Criterion};
use dnn_sim::{lower_op, plan_iteration, zoo, TrainingConfig, TrainingSession};
use gpu_sim::{Gpu, GpuConfig, SchedulerMode};
use moscons::trace::{collect_trace, CollectionConfig};
use moscons::SpyKernelKind;
use rand::SeedableRng;

fn engine_step(c: &mut Criterion) {
    c.bench_function("engine/20ms_two_contexts", |b| {
        b.iter(|| {
            let cfg = GpuConfig::gtx_1080_ti();
            let mut gpu = Gpu::new(cfg.clone(), SchedulerMode::TimeSliced);
            let victim = gpu.add_context("victim");
            let spy = gpu.add_context("spy");
            gpu.monitor(spy);
            gpu.set_auto_repeat(spy, SpyKernelKind::Conv200.kernel(1.24, &cfg));
            let ops = plan_iteration(&zoo::tested_mlp(), 16);
            for (i, op) in ops.iter().enumerate() {
                gpu.enqueue(victim, lower_op(op, i, &cfg));
            }
            gpu.run_for(20_000.0);
            gpu.now_us()
        })
    });
}

fn trace_collection(c: &mut Criterion) {
    let model = zoo::tested_mlp().with_input(dnn_sim::InputSpec::Image {
        height: 64,
        width: 64,
        channels: 3,
    });
    let session = TrainingSession::new(model, TrainingConfig::new(16, 2));
    c.bench_function("collect_trace/mlp_2_iterations", |b| {
        b.iter(|| {
            collect_trace(
                &session,
                &CollectionConfig::paper(),
                &GpuConfig::gtx_1080_ti(),
            )
            .samples
            .len()
        })
    });
}

fn planner(c: &mut Criterion) {
    c.bench_function("planner/vgg16_batch64", |b| {
        b.iter(|| plan_iteration(&zoo::vgg16(), 64).len())
    });
    let cfg = GpuConfig::gtx_1080_ti();
    let ops = plan_iteration(&zoo::vgg16(), 64);
    c.bench_function("lower/vgg16_full_iteration", |b| {
        b.iter(|| {
            ops.iter()
                .enumerate()
                .map(|(i, op)| lower_op(op, i, &cfg).footprint.stream_bytes())
                .sum::<f64>()
        })
    });
}

fn training_enqueue(c: &mut Criterion) {
    let session = TrainingSession::new(zoo::vgg16(), TrainingConfig::new(64, 4));
    c.bench_function("trainer/enqueue_vgg16_4_iterations", |b| {
        b.iter(|| {
            let cfg = GpuConfig::gtx_1080_ti();
            let mut gpu = Gpu::new(cfg, SchedulerMode::TimeSliced);
            let ctx = gpu.add_context("victim");
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            session.enqueue(&mut gpu, ctx, &mut rng);
            gpu.has_pending_work()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = engine_step, trace_collection, planner, training_enqueue
}
criterion_main!(benches);
