//! Criterion benches for the ML substrate: LSTM forward/BPTT, GBDT training,
//! and end-to-end extraction on a pre-trained pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use ml::gbdt::{GbdtBinaryClassifier, GbdtConfig};
use ml::lstm::LstmLayer;
use ml::matrix::Matrix;
use ml::seq::{SeqClassifierConfig, SequenceClassifier};
use ml::SeqExample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn lstm_forward_backward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let layer = LstmLayer::new(26, 64, &mut rng);
    let xs = Matrix::uniform(200, 26, 1.0, &mut rng);
    c.bench_function("lstm64/forward_200_steps", |b| {
        b.iter(|| layer.forward(&xs).h.sum())
    });
    let cache = layer.forward(&xs);
    let dh = Matrix::filled(200, 64, 0.01);
    c.bench_function("lstm64/bptt_200_steps", |b| {
        b.iter(|| layer.backward(&cache, &dh).0.b[0])
    });
}

fn sequence_training(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let data: Vec<SeqExample> = (0..8)
        .map(|_| {
            let features: Vec<Vec<f32>> = (0..120)
                .map(|_| (0..26).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            let labels: Vec<usize> = features.iter().map(|f| usize::from(f[0] > 0.5)).collect();
            SeqExample::new(features, labels)
        })
        .collect();
    c.bench_function("seq_classifier/fit_1_epoch_8x120", |b| {
        b.iter(|| {
            let mut cfg = SeqClassifierConfig::new(26, 32, 2);
            cfg.epochs = 1;
            let mut clf = SequenceClassifier::new(cfg);
            clf.fit(&data).accuracy
        })
    });
}

fn gbdt_training(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let rows: Vec<Vec<f32>> = (0..2000)
        .map(|_| (0..30).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let labels: Vec<bool> = rows.iter().map(|r| r[0] + r[1] > 1.0).collect();
    c.bench_function("gbdt/fit_40_rounds_2000x30", |b| {
        b.iter(|| GbdtBinaryClassifier::fit(&rows, &labels, &GbdtConfig::default()).tree_count())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = lstm_forward_backward, sequence_training, gbdt_training
}
criterion_main!(benches);
