//! Derived metrics — the "Metrics" half of CUPTI's Events & Metrics APIs
//! (paper §II-C). Metrics are computed from raw event counters plus the
//! sample window; the spy uses raw events, but the profiled-developer view
//! (and our diagnostics) use these.

use gpu_sim::{CounterValues, GpuConfig};
use serde::{Deserialize, Serialize};

/// Derived metrics over one sample window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DerivedMetrics {
    /// DRAM read throughput, bytes per microsecond.
    pub dram_read_throughput: f64,
    /// DRAM write throughput, bytes per microsecond.
    pub dram_write_throughput: f64,
    /// Fraction of peak DRAM bandwidth used.
    pub dram_utilization: f64,
    /// Texture queries as a fraction of all read sectors.
    pub tex_read_fraction: f64,
    /// Write share of DRAM traffic.
    pub write_fraction: f64,
    /// Imbalance between the two sub-partitions' read traffic, 0 = even.
    pub subpartition_imbalance: f64,
}

/// Computes derived metrics from counter deltas over `window_us`.
///
/// # Panics
///
/// Panics if `window_us` is not positive.
pub fn derive(counters: &CounterValues, window_us: f64, config: &GpuConfig) -> DerivedMetrics {
    assert!(window_us > 0.0, "window must be positive");
    let sector = config.sector_bytes;
    let reads = counters.dram_reads() * sector;
    let writes = counters.dram_writes() * sector;
    let tex = counters.tex_queries() * sector;
    let r0 = counters.get(gpu_sim::CounterId::FbSubp0ReadSectors);
    let r1 = counters.get(gpu_sim::CounterId::FbSubp1ReadSectors);
    DerivedMetrics {
        dram_read_throughput: reads / window_us,
        dram_write_throughput: writes / window_us,
        dram_utilization: ((reads + writes) / window_us / config.mem_bandwidth).min(1.0),
        tex_read_fraction: if reads > 0.0 {
            (tex / (reads + tex)).min(1.0)
        } else {
            0.0
        },
        write_fraction: if reads + writes > 0.0 {
            writes / (reads + writes)
        } else {
            0.0
        },
        subpartition_imbalance: if r0 + r1 > 0.0 {
            (r0 - r1).abs() / (r0 + r1)
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::CounterId;

    fn counters(reads0: f64, reads1: f64, writes: f64, tex: f64) -> CounterValues {
        let mut c = CounterValues::zero();
        c.add_to(CounterId::FbSubp0ReadSectors, reads0);
        c.add_to(CounterId::FbSubp1ReadSectors, reads1);
        c.add_to(CounterId::FbSubp0WriteSectors, writes);
        c.add_to(CounterId::Tex0CacheSectorQueries, tex);
        c
    }

    #[test]
    fn throughput_and_utilization() {
        let cfg = GpuConfig::gtx_1080_ti();
        let c = counters(500.0, 500.0, 250.0, 0.0);
        let m = derive(&c, 1000.0, &cfg);
        assert!((m.dram_read_throughput - 1000.0 * 32.0 / 1000.0).abs() < 1e-9);
        assert!((m.dram_write_throughput - 250.0 * 32.0 / 1000.0).abs() < 1e-9);
        assert!(m.dram_utilization > 0.0 && m.dram_utilization <= 1.0);
        assert!((m.write_fraction - 0.2).abs() < 1e-9);
    }

    #[test]
    fn imbalance_and_tex_fraction() {
        let cfg = GpuConfig::gtx_1080_ti();
        let even = derive(&counters(100.0, 100.0, 0.0, 100.0), 10.0, &cfg);
        assert_eq!(even.subpartition_imbalance, 0.0);
        assert!((even.tex_read_fraction - 1.0 / 3.0).abs() < 1e-9);
        let skewed = derive(&counters(300.0, 100.0, 0.0, 0.0), 10.0, &cfg);
        assert!((skewed.subpartition_imbalance - 0.5).abs() < 1e-9);
        assert_eq!(skewed.tex_read_fraction, 0.0);
    }

    #[test]
    fn empty_window_is_all_zero() {
        let cfg = GpuConfig::gtx_1080_ti();
        let m = derive(&CounterValues::zero(), 5.0, &cfg);
        assert_eq!(m.dram_read_throughput, 0.0);
        assert_eq!(m.write_fraction, 0.0);
        assert_eq!(m.subpartition_imbalance, 0.0);
    }
}
