//! Driver-version gating of CUPTI and the paper's downgrade bypass.
//!
//! Nvidia's February 2019 security bulletin restricted performance-counter
//! access to administrators from driver 418.40.04 on. The paper (§II-D) shows
//! the mitigation is moot on the cloud: a tenant who is root *inside their
//! own VM* simply downgrades their VM's driver to 384.130 and regains CUPTI —
//! invisibly to the victim VM sharing the same physical GPU.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// An Nvidia driver version, e.g. `418.40.04`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DriverVersion {
    /// Major component.
    pub major: u32,
    /// Minor component.
    pub minor: u32,
    /// Patch component (0 when absent, as in `384.130`).
    pub patch: u32,
}

impl DriverVersion {
    /// Creates a version triple.
    pub fn new(major: u32, minor: u32, patch: u32) -> Self {
        DriverVersion {
            major,
            minor,
            patch,
        }
    }

    /// First driver that restricts CUPTI to privileged users (the patched
    /// driver in the paper's EC2 experiment).
    pub const CUPTI_RESTRICTED_SINCE: DriverVersion = DriverVersion {
        major: 418,
        minor: 40,
        patch: 4,
    };

    /// The unpatched driver the paper downgrades to.
    pub const UNPATCHED: DriverVersion = DriverVersion {
        major: 384,
        minor: 130,
        patch: 0,
    };

    /// Whether this driver restricts CUPTI access to administrators.
    pub fn restricts_cupti(&self) -> bool {
        *self >= Self::CUPTI_RESTRICTED_SINCE
    }
}

impl fmt::Display for DriverVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.patch == 0 {
            write!(f, "{}.{}", self.major, self.minor)
        } else {
            write!(f, "{}.{}.{:02}", self.major, self.minor, self.patch)
        }
    }
}

/// Error parsing a driver version string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDriverVersionError(String);

impl fmt::Display for ParseDriverVersionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid driver version: {}", self.0)
    }
}

impl std::error::Error for ParseDriverVersionError {}

impl FromStr for DriverVersion {
    type Err = ParseDriverVersionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut next = |required: bool| -> Result<u32, ParseDriverVersionError> {
            match parts.next() {
                Some(p) => p.parse().map_err(|_| ParseDriverVersionError(s.to_owned())),
                None if required => Err(ParseDriverVersionError(s.to_owned())),
                None => Ok(0),
            }
        };
        let major = next(true)?;
        let minor = next(true)?;
        let patch = next(false)?;
        if parts.next().is_some() {
            return Err(ParseDriverVersionError(s.to_owned()));
        }
        Ok(DriverVersion::new(major, minor, patch))
    }
}

/// Errors raised by CUPTI access / driver administration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// The driver restricts counters and the caller is not privileged.
    CuptiRestricted {
        /// Driver enforcing the restriction.
        driver: DriverVersion,
    },
    /// Installing a driver requires root in the VM.
    RootRequired,
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::CuptiRestricted { driver } => {
                write!(f, "CUPTI access restricted by driver {}", driver)
            }
            DriverError::RootRequired => write!(f, "driver installation requires root"),
        }
    }
}

impl std::error::Error for DriverError {}

/// A tenant VM on a GPU cloud instance: its own driver install and privilege
/// level. Two VMs sharing a physical GPU each see their own driver — the
/// spy's downgrade is invisible to the victim.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmInstance {
    name: String,
    driver: DriverVersion,
    is_root: bool,
}

impl VmInstance {
    /// Creates a VM with the given driver and privilege level.
    pub fn new(name: impl Into<String>, driver: DriverVersion, is_root: bool) -> Self {
        VmInstance {
            name: name.into(),
            driver,
            is_root,
        }
    }

    /// A freshly-rented cloud VM: patched driver, tenant has root (the
    /// paper's Amazon EC2 setting).
    pub fn fresh_cloud_instance(name: impl Into<String>) -> Self {
        VmInstance::new(name, DriverVersion::CUPTI_RESTRICTED_SINCE, true)
    }

    /// VM name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Currently installed driver.
    pub fn driver(&self) -> DriverVersion {
        self.driver
    }

    /// Checks whether CUPTI event collection is permitted on this VM.
    ///
    /// # Errors
    ///
    /// [`DriverError::CuptiRestricted`] when the installed driver gates
    /// counters and the process is unprivileged... which on the restricted
    /// drivers applies to *any* tenant process (the restriction is per-GPU
    /// client, and cloud pass-through does not grant the admin capability).
    pub fn check_cupti_access(&self) -> Result<(), DriverError> {
        if self.driver.restricts_cupti() {
            Err(DriverError::CuptiRestricted {
                driver: self.driver,
            })
        } else {
            Ok(())
        }
    }

    /// Installs a different driver version (upgrade or downgrade).
    ///
    /// # Errors
    ///
    /// [`DriverError::RootRequired`] when the VM user lacks root.
    pub fn install_driver(&mut self, version: DriverVersion) -> Result<(), DriverError> {
        if !self.is_root {
            return Err(DriverError::RootRequired);
        }
        self.driver = version;
        Ok(())
    }

    /// The paper's bypass: downgrade to the unpatched 384.130 driver.
    ///
    /// # Errors
    ///
    /// Propagates [`DriverError::RootRequired`].
    pub fn downgrade_driver(&mut self) -> Result<(), DriverError> {
        self.install_driver(DriverVersion::UNPATCHED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let v: DriverVersion = "418.40.04".parse().unwrap();
        assert_eq!(v, DriverVersion::new(418, 40, 4));
        assert_eq!(v.to_string(), "418.40.04");
        let v: DriverVersion = "384.130".parse().unwrap();
        assert_eq!(v, DriverVersion::UNPATCHED);
        assert_eq!(v.to_string(), "384.130");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<DriverVersion>().is_err());
        assert!("418".parse::<DriverVersion>().is_err());
        assert!("a.b".parse::<DriverVersion>().is_err());
        assert!("1.2.3.4".parse::<DriverVersion>().is_err());
    }

    #[test]
    fn restriction_threshold() {
        assert!(DriverVersion::CUPTI_RESTRICTED_SINCE.restricts_cupti());
        assert!(DriverVersion::new(430, 0, 0).restricts_cupti());
        assert!(!DriverVersion::UNPATCHED.restricts_cupti());
        assert!(!DriverVersion::new(418, 39, 99).restricts_cupti());
    }

    #[test]
    fn fresh_instance_blocks_cupti_until_downgrade() {
        // The paper's §II-D experiment, end to end.
        let mut vm = VmInstance::fresh_cloud_instance("spy-vm");
        assert!(matches!(
            vm.check_cupti_access(),
            Err(DriverError::CuptiRestricted { .. })
        ));
        vm.downgrade_driver().unwrap();
        assert_eq!(vm.driver(), DriverVersion::UNPATCHED);
        assert!(vm.check_cupti_access().is_ok());
    }

    #[test]
    fn unprivileged_tenant_cannot_downgrade() {
        let mut vm = VmInstance::new("locked", DriverVersion::CUPTI_RESTRICTED_SINCE, false);
        assert_eq!(vm.downgrade_driver(), Err(DriverError::RootRequired));
        assert!(vm.check_cupti_access().is_err());
    }

    #[test]
    fn version_ordering() {
        let old: DriverVersion = "384.130".parse().unwrap();
        let new: DriverVersion = "418.40.04".parse().unwrap();
        assert!(old < new);
    }
}
