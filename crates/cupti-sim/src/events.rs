//! The CUPTI event catalog and event groups.
//!
//! The paper's Table IV selects ten counters organized in three hardware
//! groups; a profiling pass can only collect the groups it enables, and each
//! additional enabled group lengthens the profiled kernel (replay), reducing
//! the spy's sampling rate (§IV, "the execution time of a spy kernel depends
//! on the number of groups it accesses").

use gpu_sim::CounterId;
use serde::{Deserialize, Serialize};

/// One hardware counter group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventGroup {
    /// Group number as in Table IV (1-based).
    pub id: u8,
    /// Human-readable description (mirrors the paper's table).
    pub description: &'static str,
    /// Counters collected when this group is enabled.
    pub counters: Vec<CounterId>,
}

/// The three groups of Table IV.
pub fn table_iv_groups() -> Vec<EventGroup> {
    vec![
        EventGroup {
            id: 1,
            description: "Number of texture cache 0/1 requests",
            counters: vec![
                CounterId::Tex0CacheSectorQueries,
                CounterId::Tex1CacheSectorQueries,
            ],
        },
        EventGroup {
            id: 2,
            description: "Number of DRAM read/write requests to sub partition 0/1",
            counters: vec![
                CounterId::FbSubp0ReadSectors,
                CounterId::FbSubp1ReadSectors,
                CounterId::FbSubp0WriteSectors,
                CounterId::FbSubp1WriteSectors,
            ],
        },
        EventGroup {
            id: 3,
            description: "Number of write/read requests sent to DRAM from slice 0/1 of L2 cache",
            counters: vec![
                CounterId::L2Subp0ReadSectorMisses,
                CounterId::L2Subp1ReadSectorMisses,
                CounterId::L2Subp0WriteSectorMisses,
                CounterId::L2Subp1WriteSectorMisses,
            ],
        },
    ]
}

/// Fractional kernel-duration overhead added per enabled group (replay cost).
pub const GROUP_REPLAY_OVERHEAD: f64 = 0.08;

/// Replay slowdown factor for a profiling pass that enables `groups` groups.
pub fn replay_factor(groups: usize) -> f64 {
    1.0 + GROUP_REPLAY_OVERHEAD * groups as f64
}

/// All counters covered by a set of groups, deduplicated, in catalog order.
pub fn counters_of(groups: &[EventGroup]) -> Vec<CounterId> {
    CounterId::ALL
        .iter()
        .copied()
        .filter(|c| groups.iter().any(|g| g.counters.contains(c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_covers_all_ten_counters_once() {
        let groups = table_iv_groups();
        assert_eq!(groups.len(), 3);
        let all = counters_of(&groups);
        assert_eq!(all.len(), 10);
        assert_eq!(all, CounterId::ALL.to_vec());
        // Counts per group match the paper: 2 + 4 + 4.
        assert_eq!(groups[0].counters.len(), 2);
        assert_eq!(groups[1].counters.len(), 4);
        assert_eq!(groups[2].counters.len(), 4);
    }

    #[test]
    fn replay_factor_grows_with_groups() {
        assert_eq!(replay_factor(0), 1.0);
        assert!(replay_factor(3) > replay_factor(1));
        assert!((replay_factor(3) - 1.24).abs() < 1e-12);
    }

    #[test]
    fn counters_of_subset() {
        let groups = table_iv_groups();
        let only_fb = counters_of(&groups[1..2]);
        assert_eq!(only_fb.len(), 4);
        assert!(only_fb.contains(&CounterId::FbSubp0ReadSectors));
        assert!(!only_fb.contains(&CounterId::Tex0CacheSectorQueries));
    }
}
