//! # `cupti-sim` — CUPTI-style profiling substrate for `leaky-dnn`
//!
//! Mirrors the pieces of Nvidia's CUDA Profiling Tools Interface the paper's
//! attack depends on:
//!
//! * [`events`] — the counter catalog and the three event groups of the
//!   paper's Table IV, with the group-count ⇒ replay-overhead trade-off;
//! * [`session`] — per-context sampling sessions that aggregate the GPU
//!   engine's counter trace into fixed-period samples;
//! * [`driver`] — driver versions, the post-418.40.04 CUPTI restriction and
//!   the root-in-your-own-VM downgrade bypass of §II-D.
//!
//! # Examples
//!
//! ```
//! use cupti_sim::{CuptiSession, VmInstance, table_iv_groups};
//! use gpu_sim::ContextId;
//!
//! // A fresh cloud VM ships the patched driver: CUPTI is blocked...
//! let mut vm = VmInstance::fresh_cloud_instance("spy-vm");
//! let ctx = ContextId::test_value(0);
//! assert!(CuptiSession::open(&vm, ctx, table_iv_groups(), 4000.0).is_err());
//! // ...until the tenant downgrades the driver in their own VM.
//! vm.downgrade_driver()?;
//! let session = CuptiSession::open(&vm, ctx, table_iv_groups(), 4000.0)?;
//! assert_eq!(session.groups().len(), 3);
//! # Ok::<(), cupti_sim::DriverError>(())
//! ```

// Enforced statically here and by leaky-lint rule D5: this crate's
// determinism contract is easier to audit with zero unsafe code.
#![forbid(unsafe_code)]

pub mod driver;
pub mod events;
pub mod metrics;
pub mod session;
pub mod stream;

pub use driver::{DriverError, DriverVersion, VmInstance};
pub use events::{counters_of, replay_factor, table_iv_groups, EventGroup, GROUP_REPLAY_OVERHEAD};
pub use metrics::{derive, DerivedMetrics};
pub use session::{session_fingerprint, CuptiSample, CuptiSession};
pub use stream::CuptiStream;
