//! CUPTI sampling sessions.
//!
//! A session is attached to one CUDA context (the spy's) with a set of
//! enabled event groups and a host-side poll period. The engine records
//! per-slice counter deltas for monitored contexts; [`CuptiSession::collect`]
//! aggregates those deltas into fixed-period samples — the sample stream the
//! MoSConS inference models consume.
//!
//! Fixed-period host polling is also what produces the paper's Table II
//! `NOP` signature: while the victim idles, many back-to-back spy launches
//! (plus the idle write-drain) aggregate into one very large sample.

use gpu_sim::{ContextId, CounterId, CounterSlice, CounterValues, FaultPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::driver::{DriverError, VmInstance};
use crate::events::{replay_factor, EventGroup};

/// One aggregated counter sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CuptiSample {
    /// Window start, microseconds.
    pub start_us: f64,
    /// Window end, microseconds.
    pub end_us: f64,
    /// Counter deltas within the window (only enabled counters; the rest are
    /// zero, like a real session that never enabled their group).
    pub counters: CounterValues,
}

impl CuptiSample {
    /// The sample as a 10-dimensional feature vector in catalog order.
    pub fn to_features(&self) -> Vec<f32> {
        self.counters.to_features()
    }
}

/// A profiling session bound to one context.
#[derive(Debug, Clone)]
pub struct CuptiSession {
    ctx: ContextId,
    groups: Vec<EventGroup>,
    poll_period_us: f64,
    quantization: f64,
}

impl CuptiSession {
    /// Opens a session for `ctx` with the given groups and poll period,
    /// enforcing the driver access policy of `vm`.
    ///
    /// # Errors
    ///
    /// [`DriverError::CuptiRestricted`] if the VM's driver gates counters
    /// (paper §II-D — downgrade the driver first).
    ///
    /// # Panics
    ///
    /// Panics if `poll_period_us` is not positive or `groups` is empty.
    pub fn open(
        vm: &VmInstance,
        ctx: ContextId,
        groups: Vec<EventGroup>,
        poll_period_us: f64,
    ) -> Result<Self, DriverError> {
        assert!(poll_period_us > 0.0, "poll period must be positive");
        assert!(!groups.is_empty(), "enable at least one event group");
        vm.check_cupti_access()?;
        Ok(CuptiSession {
            ctx,
            groups,
            poll_period_us,
            quantization: 1.0,
        })
    }

    /// Reduces counter precision: every reading is rounded to a multiple of
    /// `sectors`. This models the paper's §VI defense proposal ("reducing
    /// the precision of CUPTI can interfere with the spy"); the `defense`
    /// bench measures how much the attack degrades.
    ///
    /// # Panics
    ///
    /// Panics if `sectors < 1`.
    pub fn with_quantization(mut self, sectors: f64) -> Self {
        assert!(sectors >= 1.0, "quantization step must be >= 1 sector");
        self.quantization = sectors;
        self
    }

    /// The configured precision step in sectors (1 = full precision).
    pub fn quantization(&self) -> f64 {
        self.quantization
    }

    /// The monitored context.
    pub fn context(&self) -> ContextId {
        self.ctx
    }

    /// Enabled groups.
    pub fn groups(&self) -> &[EventGroup] {
        &self.groups
    }

    /// Host poll period.
    pub fn poll_period_us(&self) -> f64 {
        self.poll_period_us
    }

    /// Kernel-duration replay factor implied by the enabled group count; the
    /// spy applies this to its kernel so that enabling more groups costs
    /// sampling rate, as in the paper.
    pub fn replay_factor(&self) -> f64 {
        replay_factor(self.groups.len())
    }

    /// Stable fingerprint of everything about this session that shapes the
    /// sample stream: enabled groups, poll period and quantization step. Two
    /// sessions with equal fingerprints replay a recorded counter trace into
    /// identical samples, which is what makes cached traces reusable across
    /// runs (`moscons::cache`).
    pub fn fingerprint(&self) -> String {
        session_fingerprint(&self.groups, self.poll_period_us, self.quantization)
    }

    /// Aggregates an engine counter trace into fixed-period samples over
    /// `[t_start, t_end)`. Slices belonging to other contexts are ignored;
    /// counters whose group is not enabled are zeroed. Windows with no
    /// activity yield all-zero samples (they are meaningful: a starved or
    /// idle spy).
    pub fn collect(&self, trace: &[CounterSlice], t_start: f64, t_end: f64) -> Vec<CuptiSample> {
        assert!(t_end >= t_start, "collect window is inverted");
        let n = ((t_end - t_start) / self.poll_period_us).ceil() as usize;
        let mut samples: Vec<CuptiSample> = (0..n)
            .map(|i| CuptiSample {
                start_us: t_start + i as f64 * self.poll_period_us,
                end_us: (t_start + (i + 1) as f64 * self.poll_period_us).min(t_end),
                counters: CounterValues::zero(),
            })
            .collect();
        if samples.is_empty() {
            return samples;
        }
        let enabled: Vec<CounterId> = CounterId::ALL
            .iter()
            .copied()
            .filter(|c| self.groups.iter().any(|g| g.counters.contains(c)))
            .collect();
        for slice in trace {
            if slice.ctx != self.ctx || slice.end_us <= t_start || slice.start_us >= t_end {
                continue;
            }
            // Attribute the slice to the window containing its end (the
            // moment the host read would observe it).
            let t = slice.end_us.min(t_end - 1e-9).max(t_start);
            let idx = (((t - t_start) / self.poll_period_us) as usize).min(samples.len() - 1);
            for &c in &enabled {
                samples[idx].counters.add_to(c, slice.delta.get(c));
            }
        }
        if self.quantization > 1.0 {
            for s in samples.iter_mut() {
                let mut q = CounterValues::zero();
                for c in CounterId::ALL {
                    let v = s.counters.get(c);
                    q.add_to(c, (v / self.quantization).round() * self.quantization);
                }
                s.counters = q;
            }
        }
        samples
    }

    /// Like [`CuptiSession::collect`], but applies the host-poll fault of
    /// `plan`: each poll boundary is missed with `poll_miss_prob`, merging
    /// the window into its successor (the next host read covers both, so
    /// sample *timestamps* go missing while counter mass is conserved —
    /// exactly what the gap detector's bridging tolerance absorbs,
    /// `moscons::gap`). Deterministic in `plan.seed`; with
    /// `poll_miss_prob == 0` this is `collect` exactly, with zero fault
    /// draws.
    pub fn collect_faulted(
        &self,
        trace: &[CounterSlice],
        t_start: f64,
        t_end: f64,
        plan: &FaultPlan,
    ) -> Vec<CuptiSample> {
        let samples = self.collect(trace, t_start, t_end);
        if plan.poll_miss_prob <= 0.0 || samples.len() < 2 {
            return samples;
        }
        // Domain-separated from the engine's fault stream: both derive from
        // the plan seed but must not replay each other's draws.
        let mut rng = StdRng::seed_from_u64(plan.seed ^ 0x9011_c0de);
        let mut out: Vec<CuptiSample> = Vec::with_capacity(samples.len());
        let mut carry: Option<CuptiSample> = None;
        let last = samples.len() - 1;
        for (i, mut s) in samples.into_iter().enumerate() {
            if let Some(missed) = carry.take() {
                s.start_us = missed.start_us;
                s.counters += missed.counters;
            }
            // The final window is always read (session teardown flushes it).
            if i < last && rng.gen_bool(plan.poll_miss_prob) {
                carry = Some(s);
            } else {
                out.push(s);
            }
        }
        out
    }
}

/// Free-function form of [`CuptiSession::fingerprint`], usable before a
/// session (and the context it binds to) exists. The format is versioned:
/// any change to sample semantics must bump the leading tag so persisted
/// caches keyed on the fingerprint invalidate.
pub fn session_fingerprint(
    groups: &[EventGroup],
    poll_period_us: f64,
    quantization: f64,
) -> String {
    use std::fmt::Write;
    let mut out = String::from("cupti-v1");
    for g in groups {
        write!(out, ";g{}[", g.id).expect("write to string");
        for c in &g.counters {
            write!(out, "{},", c.event_name()).expect("write to string");
        }
        out.push(']');
    }
    write!(
        out,
        ";poll={:016x};quant={:016x}",
        poll_period_us.to_bits(),
        quantization.to_bits()
    )
    .expect("write to string");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DriverVersion;
    use crate::events::table_iv_groups;

    fn vm() -> VmInstance {
        VmInstance::new("spy", DriverVersion::UNPATCHED, true)
    }

    fn slice(ctx: usize, t0: f64, t1: f64, reads: f64) -> CounterSlice {
        let mut delta = CounterValues::zero();
        delta.add_to(CounterId::FbSubp0ReadSectors, reads);
        delta.add_to(CounterId::Tex0CacheSectorQueries, reads / 2.0);
        CounterSlice {
            ctx: ContextId::test_value(ctx),
            start_us: t0,
            end_us: t1,
            delta,
        }
    }

    #[test]
    fn open_requires_cupti_access() {
        let locked = VmInstance::new("x", DriverVersion::CUPTI_RESTRICTED_SINCE, true);
        let err = CuptiSession::open(&locked, ContextId::test_value(0), table_iv_groups(), 100.0);
        assert!(err.is_err());
        assert!(
            CuptiSession::open(&vm(), ContextId::test_value(0), table_iv_groups(), 100.0).is_ok()
        );
    }

    #[test]
    fn collect_bins_by_poll_period() {
        let s =
            CuptiSession::open(&vm(), ContextId::test_value(0), table_iv_groups(), 100.0).unwrap();
        let trace = vec![
            slice(0, 0.0, 10.0, 5.0),
            slice(0, 50.0, 90.0, 7.0),
            slice(0, 140.0, 160.0, 11.0),
            slice(1, 0.0, 10.0, 999.0), // other context: ignored
        ];
        let samples = s.collect(&trace, 0.0, 200.0);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].counters.get(CounterId::FbSubp0ReadSectors), 12.0);
        assert_eq!(samples[1].counters.get(CounterId::FbSubp0ReadSectors), 11.0);
    }

    #[test]
    fn disabled_groups_read_zero() {
        let groups = vec![table_iv_groups()[1].clone()]; // FB group only
        let s = CuptiSession::open(&vm(), ContextId::test_value(0), groups, 100.0).unwrap();
        let samples = s.collect(&[slice(0, 0.0, 10.0, 8.0)], 0.0, 100.0);
        assert_eq!(samples[0].counters.get(CounterId::FbSubp0ReadSectors), 8.0);
        assert_eq!(
            samples[0].counters.get(CounterId::Tex0CacheSectorQueries),
            0.0
        );
    }

    #[test]
    fn empty_windows_are_emitted_as_zero_samples() {
        let s =
            CuptiSession::open(&vm(), ContextId::test_value(0), table_iv_groups(), 50.0).unwrap();
        let samples = s.collect(&[], 0.0, 200.0);
        assert_eq!(samples.len(), 4);
        assert!(samples.iter().all(|x| x.counters.total() == 0.0));
        // Window boundaries are contiguous.
        for w in samples.windows(2) {
            assert!((w[0].end_us - w[1].start_us).abs() < 1e-9);
        }
    }

    #[test]
    fn replay_factor_reflects_group_count() {
        let s1 = CuptiSession::open(
            &vm(),
            ContextId::test_value(0),
            vec![table_iv_groups()[0].clone()],
            10.0,
        )
        .unwrap();
        let s3 =
            CuptiSession::open(&vm(), ContextId::test_value(0), table_iv_groups(), 10.0).unwrap();
        assert!(s3.replay_factor() > s1.replay_factor());
    }

    #[test]
    fn quantization_rounds_counters() {
        let s = CuptiSession::open(&vm(), ContextId::test_value(0), table_iv_groups(), 100.0)
            .unwrap()
            .with_quantization(1000.0);
        assert_eq!(s.quantization(), 1000.0);
        let samples = s.collect(&[slice(0, 0.0, 10.0, 1499.0)], 0.0, 100.0);
        assert_eq!(
            samples[0].counters.get(CounterId::FbSubp0ReadSectors),
            1000.0
        );
        let samples = s.collect(&[slice(0, 0.0, 10.0, 1501.0)], 0.0, 100.0);
        assert_eq!(
            samples[0].counters.get(CounterId::FbSubp0ReadSectors),
            2000.0
        );
    }

    #[test]
    fn fingerprint_tracks_every_session_knob() {
        let base =
            CuptiSession::open(&vm(), ContextId::test_value(0), table_iv_groups(), 100.0).unwrap();
        // Identical sessions fingerprint identically, regardless of context.
        let other_ctx =
            CuptiSession::open(&vm(), ContextId::test_value(3), table_iv_groups(), 100.0).unwrap();
        assert_eq!(base.fingerprint(), other_ctx.fingerprint());
        // Any knob change produces a different fingerprint.
        let fewer_groups = CuptiSession::open(
            &vm(),
            ContextId::test_value(0),
            table_iv_groups()[..2].to_vec(),
            100.0,
        )
        .unwrap();
        let other_poll =
            CuptiSession::open(&vm(), ContextId::test_value(0), table_iv_groups(), 250.0).unwrap();
        let quantized = base.clone().with_quantization(1000.0);
        for s in [&fewer_groups, &other_poll, &quantized] {
            assert_ne!(base.fingerprint(), s.fingerprint());
        }
    }

    #[test]
    fn collect_faulted_merges_missed_polls_conserving_mass() {
        let s =
            CuptiSession::open(&vm(), ContextId::test_value(0), table_iv_groups(), 50.0).unwrap();
        let trace: Vec<CounterSlice> = (0..20)
            .map(|i| slice(0, i as f64 * 50.0, i as f64 * 50.0 + 10.0, 5.0))
            .collect();
        let clean = s.collect(&trace, 0.0, 1000.0);

        let mut plan = FaultPlan::none();
        plan.poll_miss_prob = 0.4;
        plan.seed = 17;
        let faulted = s.collect_faulted(&trace, 0.0, 1000.0, &plan);
        assert!(faulted.len() < clean.len(), "misses must drop samples");
        let mass = |ss: &[CuptiSample]| -> f64 { ss.iter().map(|x| x.counters.total()).sum() };
        assert!(
            (mass(&clean) - mass(&faulted)).abs() < 1e-9,
            "mass conserved"
        );
        // Windows stay contiguous: a merged sample spans the missed polls.
        for w in faulted.windows(2) {
            assert!((w[0].end_us - w[1].start_us).abs() < 1e-9);
        }
        // Determinism and the zero-prob identity.
        let again = s.collect_faulted(&trace, 0.0, 1000.0, &plan);
        assert_eq!(faulted, again);
        assert_eq!(
            s.collect_faulted(&trace, 0.0, 1000.0, &FaultPlan::none()),
            clean
        );
    }

    #[test]
    fn feature_vector_has_ten_dims() {
        let s =
            CuptiSession::open(&vm(), ContextId::test_value(0), table_iv_groups(), 100.0).unwrap();
        let samples = s.collect(&[slice(0, 0.0, 10.0, 3.0)], 0.0, 100.0);
        assert_eq!(samples[0].to_features().len(), 10);
    }
}
