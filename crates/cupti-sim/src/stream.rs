//! Incremental CUPTI sampling — the streaming twin of
//! [`CuptiSession::collect_faulted`].
//!
//! A [`CuptiStream`] consumes the engine's counter slices *as they are
//! produced* (between [`gpu_sim::Gpu::step_once`] calls) and emits each
//! fixed-period sample as soon as it can no longer change, instead of
//! requiring the whole run's slice log up front. Draining a stream over any
//! interleaving of pushes is **bitwise identical** to one batch
//! `collect_faulted` call over the concatenated slices — the window
//! arithmetic, per-window summation order, quantization and poll-miss fault
//! draws are the exact same code paths evaluated in the exact same order.
//!
//! # Why emission can be early
//!
//! Batch collection attributes a slice to the window containing its end
//! (clamped into the final window near `t_end`). Two facts make incremental
//! emission sound:
//!
//! 1. *Causality*: the caller's watermark is a lower bound on every future
//!    slice's end time (for the GPU engine, `now_us()` after the step that
//!    produced the drained slices — slices never end in the past).
//! 2. *Interior windows take no clamp*: once the watermark strictly exceeds
//!    a window's right boundary (plus the batch path's `1e-9` guard band),
//!    the final `t_end` — whatever it turns out to be — is beyond that
//!    boundary too, so neither the `min(t_end - 1e-9)` clamp nor the
//!    `min(n-1)` index clamp can ever pull a slice back into the window.
//!
//! The poll-miss fault stage ("each boundary missed with `poll_miss_prob`,
//! the final window is always read") needs one sample of lookahead: the
//! draw for sample *i* happens only once sample *i+1* exists, because the
//! batch path never draws for the last sample. The stream therefore holds
//! back one ready sample, which bounds its added latency at one poll period.

use gpu_sim::{CounterId, CounterSlice, CounterValues, FaultPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::session::{CuptiSample, CuptiSession};

/// Streaming sample aggregation over one session (see module docs).
#[derive(Debug, Clone)]
pub struct CuptiStream {
    session: CuptiSession,
    plan: FaultPlan,
    t_start: f64,
    /// Counters enabled by the session's groups, in catalog order (the batch
    /// path's summation order).
    enabled: Vec<CounterId>,
    /// Fault rng, created iff the plan can miss polls; draw order matches
    /// the batch path draw for draw.
    rng: Option<StdRng>,
    /// Relevant slices not yet attributed to an emitted window, in arrival
    /// (= trace) order. Bounded: only slices at or beyond the emission
    /// frontier stay here, roughly two poll windows' worth.
    pending: Vec<CounterSlice>,
    /// Index of the next unemitted window.
    next_window: usize,
    /// Highest watermark observed so far.
    watermark: f64,
    /// The one ready sample held back for the poll-miss lookahead.
    held: Option<CuptiSample>,
    /// A missed sample waiting to merge into its successor.
    carry: Option<CuptiSample>,
    /// Samples emitted to the caller so far (diagnostics).
    emitted: usize,
}

impl CuptiStream {
    /// Opens a stream over `session` sampling from `t_start` under `plan`.
    /// The collection window's start is fixed here; its end is only decided
    /// by [`CuptiStream::finish`].
    pub fn open(session: CuptiSession, t_start: f64, plan: FaultPlan) -> Self {
        let enabled: Vec<CounterId> = CounterId::ALL
            .iter()
            .copied()
            .filter(|c| session.groups().iter().any(|g| g.counters.contains(c)))
            .collect();
        let rng =
            (plan.poll_miss_prob > 0.0).then(|| StdRng::seed_from_u64(plan.seed ^ 0x9011_c0de));
        CuptiStream {
            session,
            plan,
            t_start,
            enabled,
            rng,
            pending: Vec::new(),
            next_window: 0,
            watermark: t_start,
            held: None,
            carry: None,
            emitted: 0,
        }
    }

    /// The underlying session.
    pub fn session(&self) -> &CuptiSession {
        &self.session
    }

    /// Samples handed to the caller so far (not counting the held-back one).
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Slices currently buffered awaiting window completion (diagnostics —
    /// stays O(poll period), never the whole run).
    pub fn pending_slices(&self) -> usize {
        self.pending.len()
    }

    /// Feeds newly produced slices and advances the watermark; returns every
    /// sample that became final. `watermark_us` must be a lower bound on all
    /// future slices' end times (for the GPU engine: `now_us()` after the
    /// step that produced `slices`); it may advance with empty `slices`.
    pub fn push(&mut self, slices: &[CounterSlice], watermark_us: f64) -> Vec<CuptiSample> {
        let ctx = self.session.context();
        for s in slices {
            // The batch path's relevance filter, minus the `start_us >=
            // t_end` half — t_end is unknown until finish, and such slices
            // can only sit at the run's extreme tail where they stay
            // pending until finish applies the full filter.
            if s.ctx != ctx || s.end_us <= self.t_start {
                continue;
            }
            self.pending.push(s.clone());
        }
        self.watermark = self.watermark.max(watermark_us);
        let mut out = Vec::new();
        self.advance(&mut out);
        out
    }

    /// Emits every window whose right boundary the watermark has strictly
    /// cleared (with the batch path's guard band).
    fn advance(&mut self, out: &mut Vec<CuptiSample>) {
        let poll = self.session.poll_period_us();
        loop {
            let k = self.next_window;
            let win_end = self.t_start + (k + 1) as f64 * poll;
            if self.watermark <= win_end + 1e-9 {
                break;
            }
            // Interior window: no clamp can apply (module docs), so the
            // batch attribution reduces to a plain floor on the slice end.
            let mut counters = CounterValues::zero();
            let mut i = 0;
            while i < self.pending.len() {
                let t = self.pending[i].end_us;
                let idx = ((t - self.t_start) / poll) as usize;
                debug_assert!(idx >= k, "slice arrived behind the emission frontier");
                if idx == k {
                    let s = self.pending.remove(i);
                    for &c in &self.enabled {
                        counters.add_to(c, s.delta.get(c));
                    }
                } else {
                    i += 1;
                }
            }
            let sample = CuptiSample {
                start_us: self.t_start + k as f64 * poll,
                end_us: win_end,
                counters,
            };
            self.next_window = k + 1;
            self.push_ready(self.quantized(sample), out);
        }
    }

    /// Applies the session's precision step — the batch path's
    /// post-aggregation rounding, verbatim.
    fn quantized(&self, mut sample: CuptiSample) -> CuptiSample {
        if self.session.quantization() > 1.0 {
            let mut q = CounterValues::zero();
            for c in CounterId::ALL {
                let v = sample.counters.get(c);
                q.add_to(
                    c,
                    (v / self.session.quantization()).round() * self.session.quantization(),
                );
            }
            sample.counters = q;
        }
        sample
    }

    /// The poll-miss fault stage with one sample of lookahead: deciding the
    /// previous sample only now that a successor exists reproduces the batch
    /// rule that the final window is always read — and keeps the rng draw
    /// sequence identical (one draw per sample except the last, in order).
    fn push_ready(&mut self, mut sample: CuptiSample, out: &mut Vec<CuptiSample>) {
        let Some(rng) = self.rng.as_mut() else {
            self.emitted += 1;
            out.push(sample);
            return;
        };
        if let Some(prev) = self.held.take() {
            if rng.gen_bool(self.plan.poll_miss_prob) {
                self.carry = Some(prev);
            } else {
                self.emitted += 1;
                out.push(prev);
            }
        }
        if let Some(missed) = self.carry.take() {
            sample.start_us = missed.start_us;
            sample.counters += missed.counters;
        }
        self.held = Some(sample);
    }

    /// Ends the collection window at `t_end` and drains everything left:
    /// the remaining windows (including the clamped final one) and the
    /// held-back sample. The full output of the stream — every `push`
    /// return value followed by this one — equals
    /// `session.collect_faulted(&all_slices, t_start, t_end, &plan)`
    /// bitwise.
    ///
    /// # Panics
    ///
    /// Panics if `t_end` is before `t_start` or behind the watermark.
    pub fn finish(mut self, t_end: f64) -> Vec<CuptiSample> {
        assert!(t_end >= self.t_start, "collect window is inverted");
        assert!(
            t_end + 1e-9 >= self.watermark,
            "finish time behind the slice watermark"
        );
        let poll = self.session.poll_period_us();
        let n = ((t_end - self.t_start) / poll).ceil() as usize;
        let mut out = Vec::new();
        if n > 0 {
            // Remaining windows take the full batch attribution — clamps
            // and all — because the final window is now known.
            let mut tail: Vec<CuptiSample> = (self.next_window..n)
                .map(|k| CuptiSample {
                    start_us: self.t_start + k as f64 * poll,
                    end_us: (self.t_start + (k + 1) as f64 * poll).min(t_end),
                    counters: CounterValues::zero(),
                })
                .collect();
            for s in std::mem::take(&mut self.pending) {
                if s.start_us >= t_end {
                    continue;
                }
                let t = s.end_us.min(t_end - 1e-9).max(self.t_start);
                let idx = (((t - self.t_start) / poll) as usize).min(n - 1);
                debug_assert!(
                    idx >= self.next_window,
                    "slice arrived behind the emission frontier"
                );
                for &c in &self.enabled {
                    tail[idx - self.next_window]
                        .counters
                        .add_to(c, s.delta.get(c));
                }
            }
            for sample in tail {
                let q = self.quantized(sample);
                self.push_ready(q, &mut out);
            }
        }
        if let Some(last) = self.held.take() {
            self.emitted += 1;
            out.push(last);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DriverVersion;
    use crate::driver::VmInstance;
    use crate::events::table_iv_groups;
    use gpu_sim::ContextId;

    fn vm() -> VmInstance {
        VmInstance::new("spy", DriverVersion::UNPATCHED, true)
    }

    fn session(poll: f64) -> CuptiSession {
        CuptiSession::open(&vm(), ContextId::test_value(0), table_iv_groups(), poll).unwrap()
    }

    fn slice(ctx: usize, t0: f64, t1: f64, reads: f64) -> CounterSlice {
        let mut delta = CounterValues::zero();
        delta.add_to(CounterId::FbSubp0ReadSectors, reads);
        delta.add_to(CounterId::Tex0CacheSectorQueries, reads / 2.0);
        CounterSlice {
            ctx: ContextId::test_value(ctx),
            start_us: t0,
            end_us: t1,
            delta,
        }
    }

    /// A pseudo-random trace with boundary-hugging and foreign-context
    /// slices, plus the end time of the run.
    fn random_trace(seed: u64, poll: f64) -> (Vec<CounterSlice>, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now = 0.0f64;
        let mut trace = Vec::new();
        for i in 0..120 {
            let len = if rng.gen_bool(0.2) {
                // Land exactly on a window boundary now and then.
                (poll - now.rem_euclid(poll)).max(0.05)
            } else {
                rng.gen_range(0.05..poll * 0.7)
            };
            let ctx = if rng.gen_bool(0.15) { 1 } else { 0 };
            trace.push(slice(ctx, now, now + len, 1.0 + i as f64));
            now += len;
        }
        (trace, now)
    }

    /// Streams `trace` into `stream` in pseudo-random chunks, with the
    /// watermark at each push set to the last pushed slice's end (a valid
    /// lower bound on future ends for this monotone trace).
    fn drain_in_chunks(
        mut stream: CuptiStream,
        trace: &[CounterSlice],
        t_end: f64,
        chunk_seed: u64,
    ) -> Vec<CuptiSample> {
        let mut rng = StdRng::seed_from_u64(chunk_seed);
        let mut out = Vec::new();
        let mut i = 0;
        while i < trace.len() {
            let n = rng.gen_range(1..=7usize).min(trace.len() - i);
            let chunk = &trace[i..i + n];
            let watermark = chunk.last().unwrap().end_us;
            out.extend(stream.push(chunk, watermark));
            i += n;
        }
        out.extend(stream.finish(t_end));
        out
    }

    #[test]
    fn streamed_samples_equal_batch_collect_over_any_chunking() {
        for seed in [1u64, 7, 42] {
            for poll in [50.0, 130.0] {
                let s = session(poll);
                let (trace, t_end) = random_trace(seed, poll);
                let batch = s.collect(&trace, 0.0, t_end);
                for chunk_seed in [3u64, 9, 27] {
                    let stream = CuptiStream::open(s.clone(), 0.0, FaultPlan::none());
                    let streamed = drain_in_chunks(stream, &trace, t_end, chunk_seed);
                    assert_eq!(
                        streamed, batch,
                        "seed {} poll {} chunks {}",
                        seed, poll, chunk_seed
                    );
                }
            }
        }
    }

    #[test]
    fn streamed_poll_miss_faults_equal_batch_collect_faulted() {
        let mut plan = FaultPlan::none();
        plan.poll_miss_prob = 0.35;
        plan.seed = 17;
        for seed in [1u64, 5, 23] {
            let s = session(50.0);
            let (trace, t_end) = random_trace(seed, 50.0);
            let batch = s.collect_faulted(&trace, 0.0, t_end, &plan);
            for chunk_seed in [2u64, 11] {
                let stream = CuptiStream::open(s.clone(), 0.0, plan);
                let streamed = drain_in_chunks(stream, &trace, t_end, chunk_seed);
                assert_eq!(streamed, batch, "seed {} chunks {}", seed, chunk_seed);
            }
        }
    }

    #[test]
    fn single_window_run_is_never_fault_dropped() {
        // Fewer than two samples: the batch path skips faulting entirely;
        // the stream must too (no successor ever arrives, so no draw).
        let mut plan = FaultPlan::none();
        plan.poll_miss_prob = 1.0;
        plan.seed = 3;
        let s = session(100.0);
        let trace = vec![slice(0, 0.0, 30.0, 5.0)];
        let batch = s.collect_faulted(&trace, 0.0, 80.0, &plan);
        assert_eq!(batch.len(), 1);
        let mut stream = CuptiStream::open(s, 0.0, plan);
        let mut out = stream.push(&trace, 30.0);
        out.extend(stream.finish(80.0));
        assert_eq!(out, batch);
    }

    #[test]
    fn empty_run_yields_no_samples() {
        let s = session(100.0);
        let stream = CuptiStream::open(s.clone(), 0.0, FaultPlan::none());
        assert!(stream.finish(0.0).is_empty());
        assert!(s.collect(&[], 0.0, 0.0).is_empty());
    }

    #[test]
    fn quantized_stream_matches_quantized_batch() {
        let s = session(100.0).with_quantization(1000.0);
        let trace = vec![
            slice(0, 0.0, 10.0, 1499.0),
            slice(0, 120.0, 180.0, 1501.0),
            slice(0, 250.0, 260.0, 700.0),
        ];
        let batch = s.collect(&trace, 0.0, 300.0);
        let mut stream = CuptiStream::open(s, 0.0, FaultPlan::none());
        let mut out = Vec::new();
        for sl in &trace {
            out.extend(stream.push(std::slice::from_ref(sl), sl.end_us));
        }
        out.extend(stream.finish(300.0));
        assert_eq!(out, batch);
    }

    #[test]
    fn pending_buffer_stays_bounded() {
        let s = session(50.0);
        let (trace, _) = random_trace(2, 50.0);
        let mut stream = CuptiStream::open(s, 0.0, FaultPlan::none());
        let mut max_pending = 0;
        for sl in &trace {
            stream.push(std::slice::from_ref(sl), sl.end_us);
            max_pending = max_pending.max(stream.pending_slices());
        }
        // The frontier trails the watermark by at most ~2 windows of slices.
        assert!(max_pending < 60, "pending grew to {}", max_pending);
        assert!(stream.emitted() > 0);
    }
}
