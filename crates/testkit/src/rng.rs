//! The harness RNG: a splitmix64 stream.
//!
//! Splitmix64 passes BigCrush, needs eight lines of code, and — unlike the
//! vendored `rand` stand-in used by the simulator — lives entirely inside
//! this crate, so a bug in the code under test can never corrupt the
//! harness's case schedule. All draws are pure functions of the seed.

/// Seeded generator handed to [`crate::gen::Gen`] runners.
#[derive(Debug, Clone)]
pub struct TkRng {
    state: u64,
}

/// One splitmix64 output step (also used for per-case seed derivation).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TkRng {
    /// Creates a generator; equal seeds yield equal draw sequences.
    pub fn new(seed: u64) -> Self {
        TkRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero. Plain modulo: the bias
    /// for test-sized ranges is irrelevant and the draw count per value is
    /// constant, which keeps case generation trivially deterministic.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        self.next_u64() % n
    }

    /// Uniform draw in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw. Always consumes exactly one `next_u64`, whatever `p`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = TkRng::new(7);
        let mut b = TkRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = TkRng::new(1);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 13);
            assert!((10..=13).contains(&v));
        }
        assert_eq!(rng.range_u64(5, 5), 5);
    }

    #[test]
    fn f64_unit_is_half_open() {
        let mut rng = TkRng::new(2);
        for _ in 0..1000 {
            let v = rng.f64_unit();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bool_with_extremes() {
        let mut rng = TkRng::new(3);
        assert!(!(0..100).any(|_| rng.bool_with(0.0)));
        assert!((0..100).all(|_| rng.bool_with(1.0)));
    }
}
