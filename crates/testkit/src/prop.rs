//! The property-check loop: seeded case schedule, greedy shrinking, and
//! replayable failure reports.
//!
//! The contract that makes "replay from the printed seed alone" work:
//!
//! 1. case `i` of a run with base seed `s` is generated from
//!    `case_seed(s, i)`, and `case_seed(s, 0) == s`;
//! 2. shrinking is deterministic (pure candidate enumeration, greedy
//!    first-failure descent);
//!
//! so re-running with `LEAKY_TESTKIT_SEED=<failing case seed>` and
//! `LEAKY_TESTKIT_CASES=1` regenerates the failing value as case 0 and
//! shrinks it to the identical minimal counterexample.

use std::fmt;
use std::path::PathBuf;

use crate::gen::Gen;
use crate::rng::{splitmix64, TkRng};

/// Check-loop configuration. Defaults: seed `0xleaky` (well, `0x1eaky` is not
/// hex — `0x5EED_1EA4`), 64 cases, 4096 shrink steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Base seed for the case schedule.
    pub seed: u64,
    /// Number of cases to run.
    pub cases: u32,
    /// Upper bound on accepted shrink steps (candidate evaluations are
    /// bounded by this times the candidate fan-out).
    pub max_shrinks: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 0x5EED_1EA4,
            cases: 64,
            max_shrinks: 4096,
        }
    }
}

impl Config {
    /// Reads `LEAKY_TESTKIT_SEED` / `LEAKY_TESTKIT_CASES` (decimal), falling
    /// back to the defaults for unset or unparsable values.
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Some(seed) = read_env_u64("LEAKY_TESTKIT_SEED") {
            cfg.seed = seed;
        }
        if let Some(cases) = read_env_u64("LEAKY_TESTKIT_CASES") {
            cfg.cases = cases.min(u32::MAX as u64) as u32;
        }
        cfg
    }
}

fn read_env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Seed for case `i` under base seed `base`. The identity at `i == 0`, a
/// splitmix64-mixed stream afterwards — so any case's seed can serve as the
/// base seed of a single-case replay run.
pub fn case_seed(base: u64, case: u32) -> u64 {
    if case == 0 {
        return base;
    }
    let mut s = base;
    let mut out = base;
    for _ in 0..case {
        out = splitmix64(&mut s);
    }
    out
}

/// A failed property: the case that failed, its replay seed, and the shrunk
/// counterexample.
#[derive(Debug, Clone)]
pub struct Failure<T> {
    /// Property name as passed to [`check_with`].
    pub name: String,
    /// Base seed of the run that failed.
    pub base_seed: u64,
    /// Index of the failing case.
    pub case: u32,
    /// Seed that regenerates the failing case (as case 0).
    pub case_seed: u64,
    /// The originally generated failing value.
    pub original: T,
    /// The shrunk counterexample.
    pub minimal: T,
    /// Number of accepted shrink steps taken.
    pub shrinks: u32,
    /// Property error message for the minimal counterexample.
    pub message: String,
}

impl<T: fmt::Debug> Failure<T> {
    /// The one-line environment that replays this failure.
    pub fn replay_line(&self) -> String {
        format!(
            "LEAKY_TESTKIT_SEED={} LEAKY_TESTKIT_CASES=1",
            self.case_seed
        )
    }

    /// Full human-readable report (also what [`check`] panics with).
    pub fn report(&self) -> String {
        format!(
            "property failed: {}\n  seed {:#018x}, case {} of base seed {:#018x}\n  original: {:?}\n  minimal (after {} shrinks): {:?}\n  error: {}\n  replay: {} cargo test\n",
            self.name.as_str(),
            self.case_seed,
            self.case,
            self.base_seed,
            self.original,
            self.shrinks,
            self.minimal,
            self.message,
            self.replay_line(),
        )
    }
}

/// Runs `prop` over `cfg.cases` generated values. On failure, shrinks
/// greedily and returns the [`Failure`]; `Ok(())` when every case passes.
pub fn check_with<T, F>(name: &str, cfg: &Config, gen: &Gen<T>, prop: F) -> Result<(), Failure<T>>
where
    T: Clone + fmt::Debug + 'static,
    F: Fn(&T) -> Result<(), String>,
{
    for case in 0..cfg.cases {
        let seed = case_seed(cfg.seed, case);
        let value = gen.sample(&mut TkRng::new(seed));
        if let Err(first_msg) = prop(&value) {
            let mut minimal = value.clone();
            let mut message = first_msg;
            let mut shrinks = 0u32;
            'outer: while shrinks < cfg.max_shrinks {
                for candidate in gen.shrink(&minimal) {
                    if let Err(msg) = prop(&candidate) {
                        minimal = candidate;
                        message = msg;
                        shrinks += 1;
                        continue 'outer;
                    }
                }
                break;
            }
            return Err(Failure {
                name: name.to_string(),
                base_seed: cfg.seed,
                case,
                case_seed: seed,
                original: value,
                minimal,
                shrinks,
                message,
            });
        }
    }
    Ok(())
}

/// Directory failure reports are written to (for CI artifact upload).
/// Overridable via `LEAKY_TESTKIT_FAILURE_DIR`; defaults to the workspace's
/// `target/testkit-failures/`.
pub fn failure_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("LEAKY_TESTKIT_FAILURE_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/testkit-failures"
    ))
}

/// Env-configured check: reads [`Config::from_env`], panics on failure with
/// the replayable report, and mirrors the report to [`failure_dir`] so CI
/// uploads the shrunk seed as an artifact.
pub fn check<T, F>(name: &str, gen: &Gen<T>, prop: F)
where
    T: Clone + fmt::Debug + 'static,
    F: Fn(&T) -> Result<(), String>,
{
    let cfg = Config::from_env();
    if let Err(failure) = check_with(name, &cfg, gen, prop) {
        let report = failure.report();
        let dir = failure_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            // A failed write must not mask the real failure below.
            let _ = std::fs::write(dir.join(format!("{name}.txt")), &report);
        }
        panic!("{report}");
    }
}

/// Convenience for boolean properties: `Err` carries a fixed message.
pub fn holds(ok: bool, why: impl Into<String>) -> Result<(), String> {
    if ok {
        Ok(())
    } else {
        Err(why.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn case_seed_is_identity_at_zero() {
        for base in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(case_seed(base, 0), base);
        }
    }

    #[test]
    fn case_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..100).map(|i| case_seed(42, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn passing_property_is_ok() {
        let cfg = Config {
            seed: 1,
            cases: 50,
            max_shrinks: 100,
        };
        let g = gen::u64_in(0, 1000);
        assert!(check_with("le_1000", &cfg, &g, |&v| holds(v <= 1000, "bound")).is_ok());
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        let cfg = Config {
            seed: 7,
            cases: 200,
            max_shrinks: 4096,
        };
        let g = gen::u64_in(0, 1000);
        let failure =
            check_with("lt_500", &cfg, &g, |&v| holds(v < 500, "v >= 500")).expect_err("must fail");
        assert_eq!(
            failure.minimal, 500,
            "binary-search shrink finds the boundary"
        );
        assert!(failure.original >= 500);
    }

    #[test]
    fn config_default_matches_documented_values() {
        let cfg = Config::default();
        assert_eq!((cfg.seed, cfg.cases), (0x5EED_1EA4, 64));
    }
}
