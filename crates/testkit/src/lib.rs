//! # `testkit` — seeded, shrinking property-based testing
//!
//! A zero-dependency property-testing harness for the `leaky-dnn` workspace,
//! built around the same determinism contract the workspace enforces
//! everywhere else (leaky-lint rules D1–D7): every generated test case is a
//! pure function of a `u64` seed, so a failing case is *replayable from its
//! printed seed alone* — no corpus files, no global RNG state.
//!
//! * [`rng::TkRng`] — a splitmix64 stream; deliberately independent of the
//!   vendored `rand` crate so this harness never shares a failure mode with
//!   the code it checks.
//! * [`gen`] — `Gen<T>` generators with integer / float / vec / tuple /
//!   struct combinators. Each generator carries its own shrinker; `map_iso`
//!   keeps shrinking through struct constructors.
//! * [`prop`] — the check loop: `LEAKY_TESTKIT_SEED` / `LEAKY_TESTKIT_CASES`
//!   env knobs, greedy shrinking, and a failure report that prints the exact
//!   one-line environment to replay the minimal counterexample.
//!
//! # Replay workflow
//!
//! ```text
//! property failed: vec_sum_is_small
//!   seed 0x00000000d00dfeed, case 17 of 64
//!   original: [812, 4, 993]
//!   minimal (after 9 shrinks): [501]
//!   replay: LEAKY_TESTKIT_SEED=3735928559 LEAKY_TESTKIT_CASES=1 cargo test ...
//! ```
//!
//! Setting exactly those two variables re-generates the failing case as case
//! 0 (the per-case seed schedule is the identity at case 0) and shrinks it to
//! the same minimal counterexample, because shrinking itself is
//! deterministic. `prop::check` also writes the report under
//! `target/testkit-failures/` so CI can upload it as an artifact.

// Enforced statically here and by leaky-lint rule D5: a test harness with
// unsafe code cannot vouch for anything.
#![forbid(unsafe_code)]

pub mod gen;
pub mod prop;
pub mod rng;

pub use gen::Gen;
pub use prop::{check, check_with, Config, Failure};
pub use rng::TkRng;
