//! Generators with built-in shrinkers.
//!
//! A [`Gen<T>`] is a pair of closures: `run` draws a value from a seeded
//! [`TkRng`], `shrink` proposes strictly "simpler" candidates for a failing
//! value. Combinators compose both halves, so a property over a struct built
//! with [`zip3`] + [`Gen::map_iso`] shrinks component-wise for free.
//!
//! Shrink orderings are chosen so the greedy loop in [`crate::prop`]
//! terminates: integers shrink toward the range's lower bound by binary
//! search, floats halve their distance to the lower bound (bounded by the
//! shrink budget), vectors drop chunks before shrinking elements.

use std::rc::Rc;

use crate::rng::TkRng;

/// Shrinker half of a [`Gen`]: proposes simpler candidates for a value.
type Shrinker<T> = Rc<dyn Fn(&T) -> Vec<T>>;

/// A seeded generator plus shrinker for values of type `T`.
#[derive(Clone)]
pub struct Gen<T> {
    run: Rc<dyn Fn(&mut TkRng) -> T>,
    shrink: Shrinker<T>,
}

impl<T: Clone + 'static> Gen<T> {
    /// Builds a generator from explicit run/shrink closures.
    pub fn new(
        run: impl Fn(&mut TkRng) -> T + 'static,
        shrink: impl Fn(&T) -> Vec<T> + 'static,
    ) -> Self {
        Gen {
            run: Rc::new(run),
            shrink: Rc::new(shrink),
        }
    }

    /// Always produces `value`; never shrinks.
    pub fn constant(value: T) -> Self {
        Gen::new(move |_| value.clone(), |_| Vec::new())
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut TkRng) -> T {
        (self.run)(rng)
    }

    /// Proposes simpler candidates for `value` (possibly empty).
    pub fn shrink(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }

    /// One-way transform. The result no longer shrinks — prefer
    /// [`Gen::map_iso`] when an inverse exists.
    pub fn map<U: Clone + 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let run = self.run;
        Gen::new(move |rng| f((run)(rng)), |_| Vec::new())
    }

    /// Bidirectional transform: `to` builds the target value, `from` recovers
    /// the source so the underlying shrinker keeps working. This is the
    /// struct-combinator: generate a tuple of fields, `to` the constructor,
    /// `from` the field projection.
    pub fn map_iso<U: Clone + 'static>(
        self,
        to: impl Fn(T) -> U + Clone + 'static,
        from: impl Fn(&U) -> T + 'static,
    ) -> Gen<U> {
        let run = self.run;
        let shrink = self.shrink;
        let to_run = to.clone();
        Gen::new(
            move |rng| to_run((run)(rng)),
            move |u| (shrink)(&from(u)).into_iter().map(&to).collect(),
        )
    }

    /// Keeps only values satisfying `keep`, retrying the draw (bounded).
    /// Shrink candidates violating `keep` are dropped.
    pub fn filter(self, keep: impl Fn(&T) -> bool + Clone + 'static) -> Gen<T> {
        let run = self.run;
        let shrink = self.shrink;
        let keep_run = keep.clone();
        Gen::new(
            move |rng| {
                for _ in 0..1000 {
                    let v = (run)(rng);
                    if keep_run(&v) {
                        return v;
                    }
                }
                panic!("Gen::filter: predicate rejected 1000 consecutive draws");
            },
            move |v| (shrink)(v).into_iter().filter(|c| keep(c)).collect(),
        )
    }
}

/// Shrink candidates for an integer, moving toward `lo`: the bound itself,
/// then binary-search steps `v - (v-lo)/2, …, v-1`.
fn shrink_u64_toward(lo: u64, v: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if v <= lo {
        return out;
    }
    out.push(lo);
    let mut delta = v - lo;
    loop {
        delta /= 2;
        if delta == 0 {
            break;
        }
        let c = v - delta;
        if c != lo {
            out.push(c);
        }
    }
    out
}

/// Uniform `u64` in `[lo, hi]`, shrinking toward `lo`.
pub fn u64_in(lo: u64, hi: u64) -> Gen<u64> {
    assert!(lo <= hi, "empty range");
    Gen::new(
        move |rng| rng.range_u64(lo, hi),
        move |&v| shrink_u64_toward(lo, v),
    )
}

/// Uniform `usize` in `[lo, hi]`, shrinking toward `lo`.
pub fn usize_in(lo: usize, hi: usize) -> Gen<usize> {
    u64_in(lo as u64, hi as u64).map_iso(|v| v as usize, |&v| v as u64)
}

/// Uniform `u32` in `[lo, hi]`, shrinking toward `lo`.
pub fn u32_in(lo: u32, hi: u32) -> Gen<u32> {
    u64_in(lo as u64, hi as u64).map_iso(|v| v as u32, |&v| v as u64)
}

/// Uniform `i64` in `[lo, hi]`, shrinking toward zero when the range spans
/// it, otherwise toward the bound nearest zero.
pub fn i64_in(lo: i64, hi: i64) -> Gen<i64> {
    assert!(lo <= hi, "empty range");
    let target = lo.max(0).min(hi);
    Gen::new(
        move |rng| {
            let span = (hi - lo) as u64;
            lo.wrapping_add(rng.range_u64(0, span) as i64)
        },
        move |&v| {
            if v == target {
                return Vec::new();
            }
            let dist = v.abs_diff(target);
            let sign: i64 = if v > target { 1 } else { -1 };
            shrink_u64_toward(0, dist)
                .into_iter()
                .map(|d| target + sign * d as i64)
                .collect()
        },
    )
}

/// Uniform `f64` in `[lo, hi)`, shrinking by halving the distance to `lo`
/// (plus `lo` itself first). Termination is bounded by the shrink budget.
pub fn f64_in(lo: f64, hi: f64) -> Gen<f64> {
    assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range");
    Gen::new(
        move |rng| lo + rng.f64_unit() * (hi - lo),
        move |&v| {
            if v <= lo {
                return Vec::new();
            }
            let mid = lo + (v - lo) / 2.0;
            if mid > lo && mid < v {
                vec![lo, mid]
            } else {
                vec![lo]
            }
        },
    )
}

/// Uniform `f32` in `[lo, hi)`, shrinking toward `lo`.
pub fn f32_in(lo: f32, hi: f32) -> Gen<f32> {
    f64_in(lo as f64, hi as f64).map_iso(|v| v as f32, |&v| v as f64)
}

/// Bernoulli `bool`; `true` shrinks to `false`.
pub fn bool_with(p_true: f64) -> Gen<bool> {
    Gen::new(
        move |rng| rng.bool_with(p_true),
        |&v| if v { vec![false] } else { Vec::new() },
    )
}

/// Picks one of the listed values, shrinking toward earlier entries (order
/// the list simplest-first).
pub fn choice<T: Clone + PartialEq + 'static>(options: Vec<T>) -> Gen<T> {
    assert!(!options.is_empty(), "choice of nothing");
    let opts = options.clone();
    Gen::new(
        move |rng| options[rng.below(options.len() as u64) as usize].clone(),
        move |v| {
            let idx = opts.iter().position(|o| o == v).unwrap_or(0);
            opts[..idx].to_vec()
        },
    )
}

/// Vector of `elem` draws with length uniform in `[min_len, max_len]`.
/// Shrinks by dropping chunks (halves, then singles) down to `min_len`,
/// then by shrinking individual elements.
pub fn vec_of<T: Clone + 'static>(elem: Gen<T>, min_len: usize, max_len: usize) -> Gen<Vec<T>> {
    assert!(min_len <= max_len, "empty length range");
    let elem_shrink = elem.clone();
    Gen::new(
        move |rng| {
            let n = rng.range_u64(min_len as u64, max_len as u64) as usize;
            (0..n).map(|_| elem.sample(rng)).collect()
        },
        move |v: &Vec<T>| {
            let n = v.len();
            let mut out: Vec<Vec<T>> = Vec::new();
            if n > min_len {
                let mut k = n - min_len;
                while k > 0 {
                    let mut i = 0;
                    while i + k <= n {
                        let mut c = Vec::with_capacity(n - k);
                        c.extend_from_slice(&v[..i]);
                        c.extend_from_slice(&v[i + k..]);
                        out.push(c);
                        i += k;
                    }
                    k /= 2;
                }
            }
            for i in 0..n {
                for s in elem_shrink.shrink(&v[i]) {
                    let mut c = v.clone();
                    c[i] = s;
                    out.push(c);
                }
            }
            out
        },
    )
}

/// Pair generator; shrinks one component at a time.
pub fn zip2<A: Clone + 'static, B: Clone + 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    let (ar, br) = (a.clone(), b.clone());
    Gen::new(
        move |rng| (a.sample(rng), b.sample(rng)),
        move |(x, y)| {
            let mut out = Vec::new();
            for sx in ar.shrink(x) {
                out.push((sx, y.clone()));
            }
            for sy in br.shrink(y) {
                out.push((x.clone(), sy));
            }
            out
        },
    )
}

/// Triple generator; shrinks one component at a time.
pub fn zip3<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
) -> Gen<(A, B, C)> {
    zip2(zip2(a, b), c).map_iso(
        |((x, y), z)| (x, y, z),
        |(x, y, z)| ((x.clone(), y.clone()), z.clone()),
    )
}

/// Quadruple generator; shrinks one component at a time.
pub fn zip4<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static, D: Clone + 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
    d: Gen<D>,
) -> Gen<(A, B, C, D)> {
    zip2(zip2(a, b), zip2(c, d)).map_iso(
        |((x, y), (z, w))| (x, y, z, w),
        |(x, y, z, w)| ((x.clone(), y.clone()), (z.clone(), w.clone())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_shrinks_toward_lower_bound() {
        let g = u64_in(3, 100);
        let cands = g.shrink(&40);
        assert_eq!(cands[0], 3);
        assert!(cands.contains(&39));
        assert!(cands.iter().all(|&c| (3..40).contains(&c)));
        assert!(g.shrink(&3).is_empty());
    }

    #[test]
    fn i64_shrinks_toward_zero() {
        let g = i64_in(-50, 50);
        assert!(g.shrink(&-40).iter().all(|&c| (-40..=0).contains(&c)));
        assert!(g.shrink(&40).iter().all(|&c| (0..=40).contains(&c)));
        assert!(g.shrink(&0).is_empty());
        // Range not spanning zero: shrink toward the bound nearest zero.
        let g = i64_in(10, 90);
        assert!(g.shrink(&45).iter().all(|&c| (10..45).contains(&c)));
    }

    #[test]
    fn vec_shrinks_length_then_elements() {
        let g = vec_of(u64_in(0, 9), 1, 8);
        let cands = g.shrink(&vec![5, 6, 7, 8]);
        assert!(cands.iter().any(|c| c.len() == 1));
        assert!(cands.iter().any(|c| *c == vec![0, 6, 7, 8]));
        assert!(cands.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn map_iso_keeps_shrinking_map_drops_it() {
        #[derive(Clone, Debug, PartialEq)]
        struct Wrapper(u64);
        let iso = u64_in(0, 100).map_iso(Wrapper, |w: &Wrapper| w.0);
        assert!(iso.shrink(&Wrapper(50)).contains(&Wrapper(0)));
        let plain = u64_in(0, 100).map(Wrapper);
        assert!(plain.shrink(&Wrapper(50)).is_empty());
    }

    #[test]
    fn choice_shrinks_to_earlier_options() {
        let g = choice(vec!["a", "b", "c"]);
        assert_eq!(g.shrink(&"c"), vec!["a", "b"]);
        assert!(g.shrink(&"a").is_empty());
    }

    #[test]
    fn zip_shrinks_componentwise() {
        let g = zip2(u64_in(0, 10), u64_in(5, 15));
        let cands = g.shrink(&(7, 9));
        assert!(cands.contains(&(0, 9)));
        assert!(cands.contains(&(7, 5)));
        assert!(!cands.contains(&(0, 5)), "one component at a time");
    }

    #[test]
    fn filter_rejects_bad_draws_and_candidates() {
        let g = u64_in(0, 100).filter(|&v| v % 2 == 0);
        let mut rng = TkRng::new(11);
        for _ in 0..50 {
            assert_eq!(g.sample(&mut rng) % 2, 0);
        }
        assert!(g.shrink(&60).iter().all(|&c| c % 2 == 0));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = vec_of(u64_in(0, 1000), 0, 16);
        let a = g.sample(&mut TkRng::new(99));
        let b = g.sample(&mut TkRng::new(99));
        assert_eq!(a, b);
    }
}
