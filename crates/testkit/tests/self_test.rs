//! Fixture-style self-tests (the `crates/lint` pattern): the harness's own
//! acceptance criteria, chiefly that *a seeded property-test failure
//! reproduces from its printed seed alone*.

use testkit::prop::holds;
use testkit::{check_with, gen, Config, Failure};

fn vec_gen() -> testkit::Gen<Vec<u64>> {
    gen::vec_of(gen::u64_in(0, 1000), 0, 20)
}

/// The property under test throughout: "no element exceeds 500". Its
/// canonical minimal counterexample is the single-element vector `[501]`.
fn no_big_elements(v: &[u64]) -> Result<(), String> {
    match v.iter().find(|&&x| x > 500) {
        Some(x) => Err(format!("element {x} > 500")),
        None => Ok(()),
    }
}

fn failing_run(seed: u64, cases: u32) -> Failure<Vec<u64>> {
    let cfg = Config {
        seed,
        cases,
        max_shrinks: 4096,
    };
    check_with("no_big_elements", &cfg, &vec_gen(), |v| no_big_elements(v))
        .expect_err("property must fail under enough cases")
}

#[test]
fn failure_shrinks_to_single_boundary_element() {
    let failure = failing_run(0xD00D_FEED, 200);
    assert_eq!(failure.minimal, vec![501], "chunk-drop + binary search");
    assert!(failure.message.contains("> 500"));
}

#[test]
fn failure_reproduces_from_its_printed_seed_alone() {
    let failure = failing_run(0xD00D_FEED, 200);

    // Parse the seed out of the printed replay line — the only information a
    // developer copies from a red CI log.
    let line = failure.replay_line();
    let seed: u64 = line
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("LEAKY_TESTKIT_SEED="))
        .expect("replay line names the seed")
        .parse()
        .expect("seed is decimal");
    assert!(line.contains("LEAKY_TESTKIT_CASES=1"));

    // Replay: one case, base seed = printed seed. Must fail at case 0 with
    // the identical original value and identical minimal counterexample.
    let replay = failing_run(seed, 1);
    assert_eq!(replay.case, 0);
    assert_eq!(replay.original, failure.original);
    assert_eq!(replay.minimal, failure.minimal);
}

#[test]
fn identical_configs_fail_identically() {
    let a = failing_run(42, 300);
    let b = failing_run(42, 300);
    assert_eq!(a.case, b.case);
    assert_eq!(a.original, b.original);
    assert_eq!(a.minimal, b.minimal);
    assert_eq!(a.shrinks, b.shrinks);
}

#[test]
fn report_contains_replay_line_and_values() {
    let failure = failing_run(0xD00D_FEED, 200);
    let report = failure.report();
    assert!(report.contains("property failed: no_big_elements"));
    assert!(report.contains(&failure.replay_line()));
    assert!(report.contains("[501]"));
}

#[test]
fn env_knobs_are_honoured() {
    // The only test that touches the process environment (env mutation is
    // process-global; keeping it in one place avoids races between tests).
    std::env::set_var("LEAKY_TESTKIT_SEED", "12345");
    std::env::set_var("LEAKY_TESTKIT_CASES", "7");
    let cfg = Config::from_env();
    std::env::remove_var("LEAKY_TESTKIT_SEED");
    std::env::remove_var("LEAKY_TESTKIT_CASES");
    assert_eq!((cfg.seed, cfg.cases), (12345, 7));
    assert_eq!(Config::from_env().seed, Config::default().seed);
}

#[test]
fn tuple_and_struct_properties_shrink_componentwise() {
    #[derive(Clone, Debug, PartialEq)]
    struct Shape {
        rows: usize,
        cols: usize,
    }
    let g = gen::zip2(gen::usize_in(1, 64), gen::usize_in(1, 64)).map_iso(
        |(rows, cols)| Shape { rows, cols },
        |s: &Shape| (s.rows, s.cols),
    );
    let cfg = Config {
        seed: 9,
        cases: 200,
        max_shrinks: 4096,
    };
    let failure = check_with("small_area", &cfg, &g, |s| {
        holds(s.rows * s.cols <= 40, "area > 40")
    })
    .expect_err("areas above 40 exist");
    // Componentwise shrinking lands on a local minimum: the area still
    // violates the bound, but decrementing either dimension satisfies it.
    let Shape { rows, cols } = failure.minimal;
    assert!(rows * cols > 40);
    assert!((rows - 1) * cols <= 40, "rows irreducible");
    assert!(rows * (cols - 1) <= 40, "cols irreducible");
}

#[test]
fn passing_check_writes_no_failure_file() {
    let dir = testkit::prop::failure_dir();
    let marker = dir.join("self_test_passing.txt");
    let _ = std::fs::remove_file(&marker);
    testkit::check("self_test_passing", &gen::u64_in(0, 10), |&v| {
        holds(v <= 10, "bound")
    });
    assert!(!marker.exists());
}
