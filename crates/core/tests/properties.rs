//! Property-based tests for the attack pipeline's pure stages.

use dnn_sim::OpClass;
use moscons::dataset::{counter_features, filter_valid_iterations, split_on_nop_runs};
use moscons::opseq::{collapse, forward_boundary, parse_forward_layers_lenient};
use moscons::report::lcs_pairs;
use proptest::prelude::*;

fn class_strategy() -> impl Strategy<Value = OpClass> {
    prop_oneof![
        Just(OpClass::Conv),
        Just(OpClass::MatMul),
        Just(OpClass::BiasAdd),
        Just(OpClass::Relu),
        Just(OpClass::Tanh),
        Just(OpClass::Sigmoid),
        Just(OpClass::Pool),
        Just(OpClass::Optimizer),
        Just(OpClass::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn split_segments_are_sorted_disjoint_and_busy_bounded(
        nops in prop::collection::vec(any::<bool>(), 0..300),
        th in 1usize..8,
    ) {
        let segs = split_on_nop_runs(&nops, th);
        let mut prev_end = 0usize;
        for s in &segs {
            prop_assert!(s.start >= prev_end, "segments overlap or unsorted");
            prop_assert!(s.end <= nops.len());
            prop_assert!(s.start < s.end);
            // Segments start and end on busy samples.
            prop_assert!(!nops[s.start]);
            prop_assert!(!nops[s.end - 1]);
            // No NOP run of >= th inside a segment.
            let mut run = 0usize;
            for i in s.clone() {
                if nops[i] { run += 1; prop_assert!(run < th); } else { run = 0; }
            }
            prev_end = s.end;
        }
        // Every busy sample outside segments is adjacent to a long NOP run
        // boundary artifact-free check: total busy samples inside segments
        // equals total busy samples minus those trimmed at the edges.
        let busy_in_segments: usize = segs.iter().map(|s| nops[s.clone()].iter().filter(|&&n| !n).count()).sum();
        let busy_total = nops.iter().filter(|&&n| !n).count();
        prop_assert_eq!(busy_in_segments, busy_total);
    }

    #[test]
    fn filter_keeps_only_banded_segments(
        lens in prop::collection::vec(1usize..200, 1..20),
    ) {
        let mut segs = Vec::new();
        let mut start = 0usize;
        for l in &lens {
            segs.push(start..start + l);
            start += l;
        }
        let kept = filter_valid_iterations(segs.clone(), 0.8, 1.2);
        let mut sorted: Vec<usize> = lens.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        for s in &kept {
            let l = s.len() as f64;
            prop_assert!(l >= 0.8 * median && l <= 1.2 * median);
        }
        // Everything in-band is kept.
        let expected = segs.iter().filter(|s| {
            let l = s.len() as f64;
            l >= 0.8 * median && l <= 1.2 * median
        }).count();
        prop_assert_eq!(kept.len(), expected);
    }

    #[test]
    fn collapse_runs_partition_the_busy_samples(
        classes in prop::collection::vec(class_strategy(), 0..200)
    ) {
        let runs = collapse(&classes);
        let mut covered = vec![false; classes.len()];
        let mut prev_end: Option<usize> = None;
        for r in &runs {
            prop_assert!(r.start <= r.end);
            prop_assert!(r.end < classes.len());
            prop_assert!(r.class != OpClass::Nop);
            if let Some(pe) = prev_end {
                prop_assert!(r.start > pe, "runs out of order");
            }
            prev_end = Some(r.end);
            // Run endpoints carry the run's class.
            prop_assert_eq!(classes[r.start], r.class);
            prop_assert_eq!(classes[r.end], r.class);
            covered[r.start..=r.end].fill(true);
        }
        // Every non-NOP sample is inside some run.
        for (i, &c) in classes.iter().enumerate() {
            if c != OpClass::Nop {
                prop_assert!(covered[i], "busy sample {} uncovered", i);
            }
        }
    }

    #[test]
    fn forward_boundary_is_a_valid_index_and_parse_is_sane(
        classes in prop::collection::vec(class_strategy(), 0..200)
    ) {
        let boundary = forward_boundary(&classes);
        prop_assert!(boundary <= classes.len());
        let runs = collapse(&classes);
        let layers = parse_forward_layers_lenient(&runs, boundary);
        // Layers never exceed the run count and their sample anchors are
        // within the boundary region (anchors may trail into the last run).
        prop_assert!(layers.len() <= runs.len());
        for l in &layers {
            prop_assert!(l.last_sample < classes.len().max(1));
        }
    }

    #[test]
    fn lcs_is_symmetric_in_length_and_bounded(
        a in prop::collection::vec(0u8..4, 0..40),
        b in prop::collection::vec(0u8..4, 0..40),
    ) {
        let ab = lcs_pairs(&a, &b, |x, y| x == y);
        let ba = lcs_pairs(&b, &a, |x, y| x == y);
        prop_assert_eq!(ab.len(), ba.len());
        prop_assert!(ab.len() <= a.len().min(b.len()));
        // Pairs are strictly increasing in both coordinates and match.
        for w in ab.windows(2) {
            prop_assert!(w[1].0 > w[0].0 && w[1].1 > w[0].1);
        }
        for (i, j) in ab {
            prop_assert_eq!(a[i], b[j]);
        }
    }

    #[test]
    fn counter_features_are_finite_and_width_stable(
        raw in prop::collection::vec(0f32..1e9, 10)
    ) {
        let f = counter_features(&raw);
        prop_assert_eq!(f.len(), moscons::dataset::FEATURE_WIDTH);
        prop_assert!(f.iter().all(|v| v.is_finite()));
        // Log features are monotone in the raw counters.
        let mut bigger = raw.clone();
        bigger[2] *= 2.0;
        bigger[2] += 1.0;
        let f2 = counter_features(&bigger);
        prop_assert!(f2[2] > f[2]);
    }
}
