//! Paper-scale probe: profile the Table V zoo (+ HP sweep variants) at
//! reduced image size, attack ZFNet and the tested MLP.
use dnn_sim::OpClass;
use dnn_sim::{zoo, InputSpec, Model, TrainingConfig, TrainingSession};
use moscons::attack::{AttackConfig, Moscons};
use moscons::report::{class_accuracy, overall_op_accuracy, score_structure};

fn main() {
    let input = InputSpec::Image {
        height: 112,
        width: 112,
        channels: 3,
    };
    let iters = 8;
    // Paper-like batches, scaled down alongside the image size.
    let batch_of = |m: &Model| {
        if m.layers
            .iter()
            .all(|l| matches!(l, dnn_sim::Layer::Dense { .. }))
        {
            128
        } else {
            16
        }
    };
    let mut profiled: Vec<Model> = vec![
        zoo::profiled_mlp().with_input(input),
        zoo::alexnet().with_input(input),
        zoo::profiled_vgg19().with_input(input),
    ];
    profiled.extend(moscons::hp_sweep_variants(
        &zoo::alexnet().with_input(input),
        4,
        5,
    ));
    profiled.extend(moscons::hp_sweep_variants(
        &zoo::profiled_mlp().with_input(input),
        3,
        9,
    ));
    profiled.extend(moscons::hp_sweep_variants(
        &zoo::profiled_vgg19().with_input(input),
        2,
        13,
    ));
    let sessions: Vec<TrainingSession> = profiled
        .into_iter()
        .map(|m| {
            let b = batch_of(&m);
            TrainingSession::new(m, TrainingConfig::new(b, iters))
        })
        .collect();

    let t0 = std::time::Instant::now();
    let moscons = Moscons::profile(&sessions, AttackConfig::default());
    eprintln!("profiling+training took {:?}", t0.elapsed());

    for victim_model in [
        zoo::tested_mlp().with_input(input),
        zoo::zfnet().with_input(input),
    ] {
        let truth_string = victim_model.structure_string();
        let b = batch_of(&victim_model);
        let victim = TrainingSession::new(victim_model.clone(), TrainingConfig::new(b, iters));
        let t0 = std::time::Instant::now();
        let (ex, raw) = moscons.attack(&victim, 4242);
        eprintln!("attack took {:?}", t0.elapsed());
        println!("== {} ==", victim_model.name);
        println!("truth    : {}", truth_string);
        println!("recovered: {}", ex.structure);
        let score = score_structure(&victim_model, &ex.layers, ex.optimizer);
        println!(
            "AccuracyL = {:.1}%  AccuracyHP = {:.1}% ({}/{})",
            100.0 * score.layers,
            100.0 * score.hyper_params,
            score.hp_correct,
            score.hp_total
        );
        let labeled = moscons::LabeledTrace::from_raw(&raw, "victim");
        let gt_iters = labeled.split_iterations_ground_truth(6);
        if let Some(base) = ex.iterations.first() {
            if let Some(gt) = gt_iters.iter().find(|g| g.start.abs_diff(base.start) < 10) {
                let truth: Vec<OpClass> = labeled.samples[gt.clone()]
                    .iter()
                    .map(|s| s.class)
                    .collect();
                let m = truth.len().min(ex.fused_classes.len());
                println!(
                    "overall: pre {:.1}% voted {:.1}%",
                    100.0 * overall_op_accuracy(&ex.pre_voting_classes[..m], &truth[..m]),
                    100.0 * overall_op_accuracy(&ex.fused_classes[..m], &truth[..m])
                );
                for c in [
                    OpClass::Conv,
                    OpClass::MatMul,
                    OpClass::BiasAdd,
                    OpClass::Relu,
                    OpClass::Tanh,
                    OpClass::Sigmoid,
                    OpClass::Pool,
                    OpClass::Optimizer,
                ] {
                    if let Some(a) = class_accuracy(&ex.fused_classes[..m], &truth[..m], c) {
                        print!(" {}={:.0}%", c.letter(), 100.0 * a);
                    }
                }
                println!();
            }
        }
    }
}
