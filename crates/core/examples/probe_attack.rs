//! End-to-end probe: profile two small models, attack a third, print
//! recovered vs ground-truth structure.
#[allow(unused_imports)]
use dnn_sim as _;
use dnn_sim::{Activation, InputSpec, Layer, Model, Optimizer, TrainingConfig, TrainingSession};
use moscons::attack::{AttackConfig, Moscons};
use moscons::report::score_structure;

fn input() -> InputSpec {
    InputSpec::Image {
        height: 32,
        width: 32,
        channels: 3,
    }
}

fn main() {
    let profiled = moscons::random_profiling_models(10, input(), 20260704);
    let sessions: Vec<TrainingSession> = profiled
        .into_iter()
        .map(|m| TrainingSession::new(m, TrainingConfig::new(32, 8)))
        .collect();

    let t0 = std::time::Instant::now();
    let moscons = Moscons::profile(&sessions, AttackConfig::default());
    eprintln!("profiling + training took {:?}", t0.elapsed());

    let victim_model = Model::new(
        "v-cnn",
        input(),
        vec![
            Layer::conv(3, 128, 1),
            Layer::MaxPool,
            Layer::conv(5, 256, 1),
            Layer::MaxPool,
            Layer::dense(1024, Activation::Relu),
            Layer::dense(512, Activation::Relu),
        ],
        Optimizer::Gd,
    );
    let truth_string = victim_model.structure_string();
    let victim = TrainingSession::new(victim_model.clone(), TrainingConfig::new(32, 8));
    let t0 = std::time::Instant::now();
    let (extraction, _raw) = moscons.attack(&victim, 991);
    eprintln!("attack took {:?}", t0.elapsed());

    println!("iterations found : {}", extraction.iterations.len());
    println!("truth            : {}", truth_string);
    println!("recovered        : {}", extraction.structure);
    let score = score_structure(&victim_model, &extraction.layers, extraction.optimizer);
    println!(
        "AccuracyL = {:.1}%  AccuracyHP = {:.1}% ({}/{})",
        100.0 * score.layers,
        100.0 * score.hyper_params,
        score.hp_correct,
        score.hp_total
    );
    use dnn_sim::OpClass;
    use moscons::report::{class_accuracy, overall_op_accuracy};
    // Table-VII-style eval of fused classes vs ground truth on base iteration.
    let labeled = moscons::LabeledTrace::from_raw(&_raw, "victim");
    let gt_iters = labeled.split_iterations_ground_truth(6);
    if let (Some(base), false) = (
        extraction.iterations.first(),
        extraction.fused_classes.is_empty(),
    ) {
        // find gt iteration matching base
        if let Some(gt) = gt_iters.iter().find(|g| g.start.abs_diff(base.start) < 8) {
            let truth: Vec<OpClass> = labeled.samples[gt.clone()]
                .iter()
                .map(|s| s.class)
                .collect();
            let m = truth.len().min(extraction.fused_classes.len());
            let fused = &extraction.fused_classes[..m];
            let pre = &extraction.pre_voting_classes[..m];
            let truth = &truth[..m];
            println!(
                "overall op acc: pre-voting {:.1}%, voted {:.1}%",
                100.0 * overall_op_accuracy(pre, truth),
                100.0 * overall_op_accuracy(fused, truth)
            );
            for c in [
                OpClass::Conv,
                OpClass::MatMul,
                OpClass::BiasAdd,
                OpClass::Relu,
                OpClass::Pool,
                OpClass::Optimizer,
            ] {
                if let Some(a) = class_accuracy(fused, truth, c) {
                    print!(" {}={:.0}%", c.letter(), 100.0 * a);
                }
            }
            println!();
            let ts: String = truth.iter().map(|c| c.letter()).collect();
            let fs: String = fused.iter().map(|c| c.letter()).collect();
            let ps: String = pre.iter().map(|c| c.letter()).collect();
            println!("truth: {}", ts);
            println!("fused: {}", fs);
            println!("pre  : {}", ps);
        }
    }
}
