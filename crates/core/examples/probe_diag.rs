//! Diagnostic: Mlong/Mop train-set fit quality + confusion + sequence dump.
use dnn_sim::{
    Activation, InputSpec, Layer, Model, OpClass, Optimizer, TrainingConfig, TrainingSession,
};
use moscons::dataset::{fit_scaler, LabeledTrace};
use moscons::long_ops::{LongClass, LongOpModel, LstmTrainConfig};
use moscons::trace::{collect_trace, CollectionConfig};

fn main() {
    let input = InputSpec::Image {
        height: 32,
        width: 32,
        channels: 3,
    };
    let model = Model::new(
        "p-cnn",
        input,
        vec![
            Layer::conv(3, 64, 1),
            Layer::MaxPool,
            Layer::conv(5, 128, 1),
            Layer::conv(3, 256, 2),
            Layer::MaxPool,
            Layer::dense(512, Activation::Relu),
            Layer::dense(256, Activation::Tanh),
        ],
        Optimizer::Adam,
    );
    let session = TrainingSession::new(model, TrainingConfig::new(32, 8));
    let raw = collect_trace(
        &session,
        &CollectionConfig::paper(),
        &gpu_sim::GpuConfig::gtx_1080_ti(),
    );
    let trace = LabeledTrace::from_raw(&raw, "p");
    let iters = trace.split_iterations_ground_truth(6);
    eprintln!(
        "{} iterations; lengths: {:?}",
        iters.len(),
        iters.iter().map(|r| r.len()).collect::<Vec<_>>()
    );
    let scaler = fit_scaler(&[&trace]);
    let cfg = LstmTrainConfig::default();
    let m = LongOpModel::train(&[(&trace, iters.as_slice())], &scaler, &cfg);

    // Train-set accuracy + confusion
    let mut conf = [[0usize; 4]; 4];
    for r in &iters {
        let feats: Vec<Vec<f32>> = trace.samples[r.clone()]
            .iter()
            .map(|s| s.features.clone())
            .collect();
        let pred = m.predict(&feats, &scaler);
        for (p, s) in pred.iter().zip(&trace.samples[r.clone()]) {
            conf[LongClass::of(s.class).index()][p.index()] += 1;
        }
    }
    println!("Mlong TRAIN confusion (rows=truth C/M/O/N, cols=pred):");
    for (i, row) in conf.iter().enumerate() {
        let total: usize = row.iter().sum();
        println!(
            "  {:?}: {:?}  acc={:.2}",
            ["C", "M", "O", "N"][i],
            row,
            if total > 0 {
                row[i] as f64 / total as f64
            } else {
                0.0
            }
        );
    }
    // Dump a stretch of truth vs pred for iteration 0
    let r = &iters[0];
    let feats: Vec<Vec<f32>> = trace.samples[r.clone()]
        .iter()
        .map(|s| s.features.clone())
        .collect();
    let pred = m.predict(&feats, &scaler);
    let t: String = trace.samples[r.clone()]
        .iter()
        .map(|s| s.class.letter())
        .collect();
    let q: String = pred
        .iter()
        .map(|p| match p {
            LongClass::Conv => 'C',
            LongClass::MatMul => 'M',
            LongClass::Other => 'o',
            LongClass::Nop => 'N',
        })
        .collect();
    println!("truth: {}", t);
    println!("pred : {}", q);
    // class distribution of full-class ground truth
    let mut counts = std::collections::BTreeMap::new();
    for s in &trace.samples {
        *counts.entry(format!("{:?}", s.class)).or_insert(0usize) += 1;
    }
    println!("{:?}", counts);
    let _ = OpClass::Conv;
}
