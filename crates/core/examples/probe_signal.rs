//! Diagnostic: collect a trace from a mid-size model and print per-class
//! counter statistics to validate side-channel separability.
use dnn_sim::{zoo, TrainingConfig, TrainingSession};
use gpu_sim::{dominant_tag, GpuConfig};
use moscons::trace::{collect_trace, CollectionConfig};
use std::collections::BTreeMap;

fn main() {
    let model = zoo::tested_mlp();
    let mut tc = TrainingConfig::new(32, 3);
    tc.intra_stall_prob = 0.01;
    let session = TrainingSession::new(model, tc);
    let t0 = std::time::Instant::now();
    let trace = collect_trace(
        &session,
        &CollectionConfig::paper(),
        &GpuConfig::gtx_1080_ti(),
    );
    eprintln!(
        "collected {} samples in {:?}; iter = {:.1} ms; ops/iter = {}",
        trace.samples.len(),
        t0.elapsed(),
        trace.mean_iteration_us / 1000.0,
        session.ops().len()
    );

    let mut by_class: BTreeMap<String, Vec<[f64; 10]>> = BTreeMap::new();
    for s in &trace.samples {
        let label = dominant_tag(&trace.victim_log, s.start_us, s.end_us)
            .map(|t| {
                let (name, _) = dnn_sim::parse_op_tag(t);
                format!("{:?}", dnn_sim::OpKind::from_op_name(name).unwrap().class())
            })
            .unwrap_or_else(|| "NOP".into());
        by_class
            .entry(label)
            .or_default()
            .push(s.counters.as_array());
    }
    println!(
        "{:<10} {:>6} | {:>9} {:>9} {:>9} {:>9} {:>9}",
        "class", "n", "tex", "rd", "wr", "l2rd", "l2wr"
    );
    for (class, rows) in &by_class {
        let n = rows.len() as f64;
        let mean = |f: &dyn Fn(&[f64; 10]) -> f64| rows.iter().map(f).sum::<f64>() / n;
        let std = |f: &dyn Fn(&[f64; 10]) -> f64, m: f64| {
            (rows.iter().map(|r| (f(r) - m).powi(2)).sum::<f64>() / n).sqrt()
        };
        let tex = mean(&|r| r[0] + r[1]);
        let rd = mean(&|r| r[2] + r[3]);
        let wr = mean(&|r| r[4] + r[5]);
        let l2r = mean(&|r| r[6] + r[7]);
        let l2w = mean(&|r| r[8] + r[9]);
        let rds = std(&|r| r[2] + r[3], rd);
        println!(
            "{:<10} {:>6} | {:>9.0} {:>9.0}({:>6.0}) {:>9.0} {:>9.0} {:>9.0}",
            class,
            rows.len(),
            tex,
            rd,
            rds,
            wr,
            l2r,
            l2w
        );
    }
}
