//! Profiling-suite generation.
//!
//! The adversary controls the profiling phase entirely, so she can train as
//! many models of her own as she likes. The paper profiles MLP, AlexNet and
//! VGG19 and additionally *varies the hyper-parameters* of the profiled
//! models to train `Mhp` (§V-D: "we vary those hyper-parameters on the
//! profiled and tested models just for this evaluation step"). This module
//! generates such variation: randomized CNN/MLP structures covering the
//! hyper-parameter spaces of Table VIII, which keeps the LSTMs from
//! memorizing any single op order and forces them onto per-sample features.

use dnn_sim::{Activation, InputSpec, Layer, Model, Optimizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generates `count` randomized profiling models on the given input.
///
/// Roughly half are CNNs (1-4 conv layers with pooling, then 1-3 dense
/// layers) and half MLPs (2-6 dense layers); activations, optimizers,
/// filter sizes/counts, strides and neuron counts are drawn from the paper's
/// hyper-parameter spaces.
///
/// # Panics
///
/// Panics if `count == 0`.
pub fn random_profiling_models(count: usize, input: InputSpec, seed: u64) -> Vec<Model> {
    assert!(count > 0, "need at least one profiling model");
    let mut rng = StdRng::seed_from_u64(seed);
    let acts = [Activation::Relu, Activation::Tanh, Activation::Sigmoid];
    let optimizers = Optimizer::ALL;
    let filter_sizes = [1usize, 3, 5, 7, 9, 11, 13];
    let strides = [1usize, 1, 1, 2, 2, 4]; // bias toward common strides

    (0..count)
        .map(|i| {
            let mut layers = Vec::new();
            let cnn = i % 2 == 0;
            if cnn {
                let conv_layers = rng.gen_range(1..=4);
                let mut filters_log = rng.gen_range(6..=8); // 64..256 start
                for c in 0..conv_layers {
                    layers.push(Layer::Conv2D {
                        filter_size: *filter_sizes.choose(&mut rng).expect("nonempty"),
                        filters: 1usize << filters_log,
                        stride: *strides.choose(&mut rng).expect("nonempty"),
                        activation: *acts.choose(&mut rng).expect("nonempty"),
                    });
                    if rng.gen_bool(0.5) && c + 1 < conv_layers {
                        layers.push(Layer::MaxPool);
                    }
                    if filters_log < 12 && rng.gen_bool(0.6) {
                        filters_log += 1;
                    }
                }
                layers.push(Layer::MaxPool);
                for _ in 0..rng.gen_range(1..=3) {
                    layers.push(Layer::Dense {
                        units: 1usize << rng.gen_range(7..=12),
                        activation: *acts.choose(&mut rng).expect("nonempty"),
                    });
                }
            } else {
                for _ in 0..rng.gen_range(2..=6) {
                    layers.push(Layer::Dense {
                        units: 1usize << rng.gen_range(6..=14),
                        activation: *acts.choose(&mut rng).expect("nonempty"),
                    });
                }
            }
            Model::new(
                format!("profile_{:02}", i),
                input,
                layers,
                *optimizers.choose(&mut rng).expect("nonempty"),
            )
        })
        .collect()
}

/// Generates `count` randomized zoo-profiling models on the given input.
///
/// Extends [`random_profiling_models`] to the model-zoo op set: the models
/// rotate through residual-CNN, separable-CNN, attention-net and classic
/// CNN/MLP shapes, so with `count >= 3` every zoo op class (`Add`,
/// `Softmax`, `LayerNorm`, `Depthwise`) and every activation appears in the
/// profiling corpus — the [`crate::other_ops::OpVocab::Zoo`] `Mop` head
/// needs labeled samples of each.
///
/// # Panics
///
/// Panics if `count == 0` or `input` is not an image (the zoo's conv
/// families need spatial input).
pub fn random_zoo_profiling_models(count: usize, input: InputSpec, seed: u64) -> Vec<Model> {
    assert!(count > 0, "need at least one profiling model");
    assert!(
        matches!(input, InputSpec::Image { .. }),
        "zoo profiling needs image input"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5A00);
    let acts = [Activation::Relu, Activation::Tanh, Activation::Sigmoid];
    (0..count)
        .map(|i| {
            // Rotate activations deterministically so all three are seen
            // even with a small corpus.
            let act = acts[i % acts.len()];
            let mut layers = Vec::new();
            match i % 3 {
                0 => {
                    // Residual CNN: stem conv, two residual blocks, head.
                    let f = 1usize << rng.gen_range(6..=7);
                    layers.push(Layer::conv(3, f, 1));
                    layers.push(Layer::Residual {
                        filter_size: 2 * rng.gen_range(0usize..3) + 1,
                        filters: f,
                        activation: act,
                    });
                    layers.push(Layer::MaxPool);
                    layers.push(Layer::Residual {
                        filter_size: 3,
                        filters: 1usize << rng.gen_range(6..=8),
                        activation: *acts.choose(&mut rng).expect("nonempty"),
                    });
                    layers.push(Layer::MaxPool);
                    layers.push(Layer::dense(1usize << rng.gen_range(7..=10), act));
                }
                1 => {
                    // Separable CNN.
                    layers.push(Layer::SeparableConv2D {
                        filter_size: 2 * rng.gen_range(1usize..4) + 1,
                        filters: 1usize << rng.gen_range(6..=7),
                        stride: 1,
                        activation: act,
                    });
                    layers.push(Layer::MaxPool);
                    layers.push(Layer::SeparableConv2D {
                        filter_size: 3,
                        filters: 1usize << rng.gen_range(6..=8),
                        stride: *[1usize, 2].choose(&mut rng).expect("nonempty"),
                        activation: *acts.choose(&mut rng).expect("nonempty"),
                    });
                    layers.push(Layer::MaxPool);
                    layers.push(Layer::dense(1usize << rng.gen_range(7..=10), act));
                }
                _ => {
                    // Attention net over the flattened input.
                    layers.push(Layer::attention(1usize << rng.gen_range(7..=9)));
                    layers.push(Layer::attention(1usize << rng.gen_range(6..=8)));
                    layers.push(Layer::dense(1usize << rng.gen_range(7..=9), act));
                    layers.push(Layer::dense(
                        1usize << rng.gen_range(6..=8),
                        *acts.choose(&mut rng).expect("nonempty"),
                    ));
                }
            }
            Model::new(
                format!("zoo_profile_{:02}", i),
                input,
                layers,
                Optimizer::ALL[i % Optimizer::ALL.len()],
            )
        })
        .collect()
}

/// Hyper-parameter sweep variants of a base model: each variant changes one
/// hyper-parameter of one layer to another value in the Table VIII space
/// (the paper's procedure for evaluating `Mhp`).
pub fn hp_sweep_variants(base: &Model, count: usize, seed: u64) -> Vec<Model> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut variants = Vec::with_capacity(count);
    for v in 0..count {
        let mut layers = base.layers.clone();
        let trainable: Vec<usize> = layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.trainable())
            .map(|(i, _)| i)
            .collect();
        if let Some(&idx) = trainable[..].choose(&mut rng) {
            match &mut layers[idx] {
                Layer::Conv2D {
                    filter_size,
                    filters,
                    stride,
                    ..
                } => match rng.gen_range(0..3) {
                    0 => *filter_size = 2 * rng.gen_range(0usize..7) + 1,
                    1 => *filters = 1usize << rng.gen_range(6..=12),
                    _ => *stride = rng.gen_range(1..=4),
                },
                Layer::Dense { units, .. } => {
                    *units = 1usize << rng.gen_range(6..=14);
                }
                Layer::Residual {
                    filter_size,
                    filters,
                    ..
                } => match rng.gen_range(0..2) {
                    0 => *filter_size = 2 * rng.gen_range(0usize..3) + 1,
                    _ => *filters = 1usize << rng.gen_range(4..=8),
                },
                Layer::SeparableConv2D {
                    filter_size,
                    filters,
                    stride,
                    ..
                } => match rng.gen_range(0..3) {
                    0 => *filter_size = 2 * rng.gen_range(0usize..7) + 1,
                    1 => *filters = 1usize << rng.gen_range(6..=12),
                    _ => *stride = rng.gen_range(1..=4),
                },
                Layer::Attention { dim } => {
                    *dim = 1usize << rng.gen_range(5..=9);
                }
                Layer::MaxPool => {}
            }
        }
        let optimizer = if rng.gen_bool(0.3) {
            *Optimizer::ALL.choose(&mut rng).expect("nonempty")
        } else {
            base.optimizer
        };
        variants.push(Model::new(
            format!("{}_var{:02}", base.name, v),
            base.input,
            layers,
            optimizer,
        ));
    }
    variants
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> InputSpec {
        InputSpec::Image {
            height: 32,
            width: 32,
            channels: 3,
        }
    }

    #[test]
    fn generates_valid_diverse_models() {
        let models = random_profiling_models(10, input(), 7);
        assert_eq!(models.len(), 10);
        // Both CNNs and MLPs occur.
        assert!(models
            .iter()
            .any(|m| m.layers.iter().any(|l| matches!(l, Layer::Conv2D { .. }))));
        assert!(models
            .iter()
            .any(|m| m.layers.iter().all(|l| matches!(l, Layer::Dense { .. }))));
        // Structures differ.
        let strings: std::collections::HashSet<String> =
            models.iter().map(Model::structure_string).collect();
        assert!(strings.len() >= 8, "models too similar: {}", strings.len());
        // Every generated layer validates (Model::new checks) and every
        // hyper-parameter is inside the Table VIII spaces.
        use crate::hyperparams::HpKind;
        for m in &models {
            for (i, l) in m.layers.iter().enumerate() {
                match l {
                    Layer::Conv2D { .. } => {
                        assert!(HpKind::FilterSize.label_for_layer(m, i).is_some());
                        assert!(HpKind::Filters.label_for_layer(m, i).is_some());
                        assert!(HpKind::Stride.label_for_layer(m, i).is_some());
                    }
                    Layer::Dense { .. } => {
                        assert!(HpKind::Neurons.label_for_layer(m, i).is_some());
                    }
                    Layer::MaxPool => {}
                    _ => unreachable!("classic generator emits no zoo layers"),
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_profiling_models(5, input(), 42);
        let b = random_profiling_models(5, input(), 42);
        assert_eq!(
            a.iter().map(Model::structure_string).collect::<Vec<_>>(),
            b.iter().map(Model::structure_string).collect::<Vec<_>>()
        );
        let c = random_profiling_models(5, input(), 43);
        assert_ne!(
            a.iter().map(Model::structure_string).collect::<Vec<_>>(),
            c.iter().map(Model::structure_string).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sweep_variants_change_hyper_parameters() {
        let base = dnn_sim::zoo::zfnet();
        let variants = hp_sweep_variants(&base, 8, 3);
        assert_eq!(variants.len(), 8);
        let changed = variants
            .iter()
            .filter(|v| v.structure_string() != base.structure_string())
            .count();
        assert!(changed >= 6, "only {} variants changed", changed);
        // Layer count is preserved.
        assert!(variants.iter().all(|v| v.layers.len() == base.layers.len()));
    }
}
