//! Streaming attack engine — bounded-latency extraction.
//!
//! The batch pipeline ([`crate::attack::Moscons::extract`]) needs the whole
//! CUPTI sample stream before it can emit a single label. This module turns
//! the same attack path into a stream processor: samples are pushed one at a
//! time (or in chunks, as a live [`crate::trace`] spy session drains them),
//! iteration gaps are detected incrementally with one sample of lookahead,
//! and the `Mlong`/`Mop`/`Mhp` LSTMs run *stateful* chunked inference
//! (carrying `(h, c)` across chunks, see
//! [`ml::seq::SequenceClassifier::predict_proba_stream_chunks`]) so op and
//! hyper-parameter labels come out while the victim is still training.
//!
//! The contract that makes this safe to ship is **bitwise batch parity**:
//! draining an [`AttackStream`] over a trace and calling
//! [`AttackStream::finish`] produces the exact [`crate::attack::Extraction`]
//! (and therefore the exact golden [`crate::report::AttackReport`]) that
//! [`crate::attack::Moscons::extract`] produces on the same rows. The chain
//! is:
//!
//! 1. per-sample NOP flags are the same GBDT over the same
//!    [`crate::gap`] context rows ([`GapModel::predict_nop_scaled`]);
//! 2. [`SegmentSplitter`] is an event-driven replay of
//!    [`crate::dataset::split_on_nop_runs_bridged`] (property-tested below
//!    over random streams and chunkings);
//! 3. prepared rows (MinMax scale + one-step lookahead) are assembled
//!    per segment exactly as [`crate::dataset::with_lookahead`] does;
//! 4. stateful chunked LSTM inference is bitwise identical to the packed
//!    batch path for any chunking (proven by `ml::seq` property tests);
//! 5. the back half (voting, OpSeq parse, `Mhp` attach, syntax correction)
//!    is literally shared code: [`crate::attack::Moscons`]'s
//!    `assemble_extraction`.
//!
//! Memory is bounded while streaming: the splitter holds back at most
//! `nop_bridge` busy samples plus `th_gap - 1` undecided NOPs, the gap
//! detector one sample of lookahead, and each open segment at most one
//! classification chunk of prepared rows ([`STREAM_CHUNK_ENV`], default
//! [`DEFAULT_STREAM_CHUNK`]). Only the per-segment *label* sequences are
//! retained to the end — they are what [`AttackStream::finish`] feeds the
//! shared assembly — so label latency is bounded by
//! `th_gap + nop_bridge + chunk + 2` samples.

use std::collections::VecDeque;
use std::ops::Range;

use ml::{MinMaxScaler, StreamState};

use crate::attack::{Extraction, Moscons};
use crate::dataset::filter_valid_iterations;
use crate::gap::GapModel;
use crate::hyperparams::HpKind;
use crate::long_ops::LongClass;
use crate::other_ops::OtherClass;

/// Environment knob: rows per stateful classification chunk. Smaller chunks
/// lower label latency, larger chunks amortize GEMM setup. Any value yields
/// bitwise-identical labels (chunking invariance is the `ml::seq` streaming
/// contract); the knob trades only latency against throughput.
pub const STREAM_CHUNK_ENV: &str = "LEAKY_DNN_STREAM_CHUNK";

/// Default classification chunk when [`STREAM_CHUNK_ENV`] is unset.
pub const DEFAULT_STREAM_CHUNK: usize = 32;

fn env_chunk_rows() -> usize {
    std::env::var(STREAM_CHUNK_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_STREAM_CHUNK)
}

/// One incremental splitting decision, emitted by [`SegmentSplitter`].
///
/// Every pushed index resolves to exactly one [`SplitEvent::Assign`] or
/// [`SplitEvent::Discard`], in strictly increasing index order (decisions
/// for held-back samples are flushed before decisions for newer ones);
/// [`SplitEvent::Close`] fires after the last `Assign` of its range and
/// before any event of a later segment. Consumers can therefore drive a
/// FIFO of per-sample payloads with zero reordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SplitEvent {
    /// Sample `i` belongs to the currently open segment.
    Assign(usize),
    /// Sample `i` is gap filler between (or around) segments.
    Discard(usize),
    /// The segment covering this range is complete.
    Close(Range<usize>),
}

/// Incremental replay of [`crate::dataset::split_on_nop_runs_bridged`]:
/// feed per-sample NOP flags one at a time, get [`SplitEvent`]s out, and the
/// closed ranges equal the batch splitter's segments on the same flags —
/// for any chunking of the input.
///
/// Two pieces of bounded state make that possible:
///
/// * **bridge stage** — a BUSY run can only be flipped to NOP once it is
///   known to be interior (flanked by NOPs) and at most `bridge` long, so
///   up to `bridge` busy flags are held back until the next NOP arrives
///   (flip), the run outgrows the bridge (flush as busy), or the stream
///   ends (edge runs are never bridged);
/// * **segment stage** — a NOP run inside a segment is undecided until it
///   either reaches `th_gap` (close the segment *before* the run, discard
///   the run) or a BUSY sample claims it back into the segment, so up to
///   `th_gap - 1` NOP decisions are deferred.
#[derive(Debug, Clone)]
pub struct SegmentSplitter {
    th_gap: usize,
    bridge: usize,
    /// Index the next pushed flag will get.
    next: usize,
    /// Start of a held-back BUSY run still eligible for bridging.
    run_start: Option<usize>,
    /// Inside a BUSY run already ruled out for bridging (edge run, or
    /// longer than `bridge`): feed busy flags straight through.
    busy_passthrough: bool,
    /// Start of the open segment, if any.
    seg_start: Option<usize>,
    /// One past the last BUSY sample of the open segment (provisional end).
    seg_end: usize,
    /// Current NOP run length within the segment stage.
    nop_run: usize,
    finished: bool,
}

impl SegmentSplitter {
    /// A fresh splitter with the given gap threshold and busy-bridge width
    /// (see [`crate::gap::GapConfig`]).
    ///
    /// # Panics
    ///
    /// Panics if `th_gap == 0`.
    pub fn new(th_gap: usize, bridge: usize) -> Self {
        assert!(th_gap > 0, "th_gap must be positive");
        SegmentSplitter {
            th_gap,
            bridge,
            next: 0,
            run_start: None,
            busy_passthrough: false,
            seg_start: None,
            seg_end: 0,
            nop_run: 0,
            finished: false,
        }
    }

    /// Pushes the NOP flag of the next sample, appending any decisions it
    /// unlocks to `out`.
    ///
    /// # Panics
    ///
    /// Panics if called after [`SegmentSplitter::finish`].
    pub fn push(&mut self, nop: bool, out: &mut Vec<SplitEvent>) {
        assert!(!self.finished, "push after finish");
        let i = self.next;
        self.next += 1;
        if self.bridge == 0 {
            self.feed(i, nop, out);
            return;
        }
        if nop {
            self.busy_passthrough = false;
            if let Some(s) = self.run_start.take() {
                // Interior BUSY run of at most `bridge` samples, now flanked
                // by NOP on both sides: flip it (the isolated-missing-sample
                // repair of `split_on_nop_runs_bridged`).
                for j in s..i {
                    self.feed(j, true, out);
                }
            }
            self.feed(i, true, out);
        } else if self.busy_passthrough {
            self.feed(i, false, out);
        } else if let Some(s) = self.run_start {
            if i - s + 1 > self.bridge {
                // Run outgrew the bridge: it can never be flipped, flush it.
                self.run_start = None;
                self.busy_passthrough = true;
                for j in s..=i {
                    self.feed(j, false, out);
                }
            }
        } else if i == 0 {
            // A run starting at the stream edge is never bridged.
            self.busy_passthrough = true;
            self.feed(i, false, out);
        } else {
            self.run_start = Some(i);
        }
    }

    /// Ends the stream: flushes the held-back BUSY run (edge runs are never
    /// bridged), closes the open segment, and discards trailing NOPs.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn finish(&mut self, out: &mut Vec<SplitEvent>) {
        assert!(!self.finished, "finish called twice");
        self.finished = true;
        if let Some(s) = self.run_start.take() {
            for j in s..self.next {
                self.feed(j, false, out);
            }
        }
        if let Some(start) = self.seg_start.take() {
            // Trailing NOPs (a run shorter than th_gap) stay outside the
            // segment, exactly like the batch splitter's end trim.
            out.push(SplitEvent::Close(start..self.seg_end));
            for j in self.seg_end..self.next {
                out.push(SplitEvent::Discard(j));
            }
        }
    }

    /// Segment stage: consumes one (possibly bridged) flag.
    fn feed(&mut self, i: usize, nop: bool, out: &mut Vec<SplitEvent>) {
        if nop {
            self.nop_run += 1;
            match self.seg_start {
                // No open segment: gap filler, decided immediately.
                None => out.push(SplitEvent::Discard(i)),
                Some(start) => {
                    if self.nop_run == self.th_gap {
                        // The run that closes the segment: the segment ends
                        // at its last BUSY sample (batch: `i + 1 - th_gap`).
                        let end = self.seg_end;
                        self.seg_start = None;
                        out.push(SplitEvent::Close(start..end));
                        for j in end..=i {
                            out.push(SplitEvent::Discard(j));
                        }
                    }
                    // Shorter runs stay deferred: a later BUSY sample may
                    // claim them back into the segment.
                }
            }
        } else {
            if self.seg_start.is_none() {
                self.seg_start = Some(i);
                self.seg_end = i;
            }
            // This BUSY sample and any deferred interior NOPs before it all
            // belong to the segment.
            for j in self.seg_end..=i {
                out.push(SplitEvent::Assign(j));
            }
            self.seg_end = i + 1;
            self.nop_run = 0;
        }
    }
}

/// Incremental `Mgap`: scaled sample rows in, [`SplitEvent`]s out, with one
/// sample of lookahead (the GBDT's context row needs the *next* sample, see
/// [`GapModel::predict_nop_scaled`]). Closed ranges are bitwise identical
/// to [`GapModel::split_iterations`]'s pre-filter segments on the same rows,
/// for any chunking of the pushes.
#[derive(Debug)]
pub struct GapStream<'a> {
    gap: &'a GapModel,
    scaler: &'a MinMaxScaler,
    splitter: SegmentSplitter,
    /// Scaled row before `held` (the held row's `prev` context).
    prev: Option<Vec<f32>>,
    /// Most recent scaled row, awaiting its lookahead neighbour.
    held: Option<Vec<f32>>,
}

impl<'a> GapStream<'a> {
    /// A fresh gap stream over a trained model (splitting parameters come
    /// from [`GapModel::config`]).
    pub fn new(gap: &'a GapModel, scaler: &'a MinMaxScaler) -> Self {
        let cfg = gap.config();
        GapStream {
            gap,
            scaler,
            splitter: SegmentSplitter::new(cfg.th_gap, cfg.nop_bridge),
            prev: None,
            held: None,
        }
    }

    /// Pushes the next raw feature row (scaling it internally).
    pub fn push(&mut self, features: &[f32], out: &mut Vec<SplitEvent>) {
        self.push_scaled(self.scaler.transform_row(features), out);
    }

    /// Pushes the next already-scaled feature row.
    pub fn push_scaled(&mut self, scaled: Vec<f32>, out: &mut Vec<SplitEvent>) {
        if let Some(cur) = self.held.take() {
            let nop = self
                .gap
                .predict_nop_scaled(self.prev.as_deref(), &cur, Some(&scaled));
            self.splitter.push(nop, out);
            self.prev = Some(cur);
        }
        self.held = Some(scaled);
    }

    /// Ends the stream: the held row's lookahead is the stream edge (zeros),
    /// then the splitter flushes.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn finish(&mut self, out: &mut Vec<SplitEvent>) {
        if let Some(cur) = self.held.take() {
            let nop = self
                .gap
                .predict_nop_scaled(self.prev.as_deref(), &cur, None);
            self.splitter.push(nop, out);
            self.prev = Some(cur);
        }
        self.splitter.finish(out);
    }
}

/// One streamed per-sample label, emitted as soon as its classification
/// chunk completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamLabel {
    /// Trace sample index the label describes.
    pub sample: usize,
    /// Ordinal of the segment (pre-validity-filter) the sample belongs to.
    pub segment: usize,
    /// `Mlong` label.
    pub long: LongClass,
    /// `Mop` label.
    pub op: OtherClass,
    /// The five `Mhp` head labels, in [`HpKind::ALL`] order.
    pub hp: [usize; HpKind::ALL.len()],
}

/// A fully classified segment, retained for the final assembly (labels
/// only — the feature rows are gone).
#[derive(Debug, Clone)]
pub struct ClosedSegment {
    /// Trace range the segment covers.
    pub range: Range<usize>,
    /// Per-sample `Mlong` label indices.
    pub preds_long: Vec<usize>,
    /// Per-sample `Mop` label indices.
    pub preds_op: Vec<usize>,
    /// Per-sample `Mhp` label indices, one stream per head in
    /// [`HpKind::ALL`] order.
    pub hp_preds: Vec<Vec<usize>>,
}

/// Everything [`AttackStream::finish`] returns: the labels unlocked by the
/// end of the stream plus the batch-parity extraction.
#[derive(Debug)]
pub struct StreamOutcome {
    /// Labels emitted while flushing (chunk remainders and held-back rows).
    pub labels: Vec<StreamLabel>,
    /// The extraction — bitwise identical to
    /// [`crate::attack::Moscons::extract`] on the same rows.
    pub extraction: Extraction,
}

/// Per-open-segment streaming state: the `(h, c)` carries of all seven
/// LSTMs plus the label accumulators.
#[derive(Debug)]
struct OpenSegment {
    /// Trace index of the segment's first sample.
    start: usize,
    /// Rows already classified (labels emitted).
    classified: usize,
    /// Most recent assigned scaled row, awaiting its lookahead neighbour.
    last_scaled: Option<Vec<f32>>,
    /// Prepared (scaled + lookahead) rows awaiting classification.
    pending: Vec<Vec<f32>>,
    long_state: StreamState,
    op_state: StreamState,
    hp_states: Vec<StreamState>,
    preds_long: Vec<usize>,
    preds_op: Vec<usize>,
    hp_preds: Vec<Vec<usize>>,
}

impl OpenSegment {
    fn new(start: usize, moscons: &Moscons) -> Self {
        OpenSegment {
            start,
            classified: 0,
            last_scaled: None,
            pending: Vec::new(),
            long_state: moscons.long_model().classifier().stream_state(),
            op_state: moscons.op_model().classifier().stream_state(),
            hp_states: HpKind::ALL
                .iter()
                .map(|&k| moscons.hp_model(k).classifier().stream_state())
                .collect(),
            preds_long: Vec::new(),
            preds_op: Vec::new(),
            hp_preds: vec![Vec::new(); HpKind::ALL.len()],
        }
    }
}

/// The streaming attack path: push raw CUPTI feature rows as they arrive,
/// collect [`StreamLabel`]s with bounded latency, and get the batch-parity
/// [`Extraction`] at [`AttackStream::finish`].
///
/// f32 only by design: the int8 serving twins quantize activations with
/// per-batch composition-dependent scales, so int8 chunked inference is not
/// bit-stable against chunking — the bitwise golden contract lives on the
/// f32 path. Fleet-scale int8 serving instead batches *closed* segments
/// across sessions through the ordinary quantized batch entry points (see
/// [`crate::fleet`]).
#[derive(Debug)]
pub struct AttackStream<'a> {
    moscons: &'a Moscons,
    gap: GapStream<'a>,
    chunk_rows: usize,
    /// Index the next pushed row will get.
    next_index: usize,
    /// Scaled rows awaiting their Assign/Discard decision, in index order.
    fifo: VecDeque<(usize, Vec<f32>)>,
    open: Option<OpenSegment>,
    closed: Vec<ClosedSegment>,
    /// Scratch event buffer, reused across pushes.
    events: Vec<SplitEvent>,
}

impl<'a> AttackStream<'a> {
    /// A fresh stream over a trained [`Moscons`], with the classification
    /// chunk taken from [`STREAM_CHUNK_ENV`] (default
    /// [`DEFAULT_STREAM_CHUNK`]).
    pub fn new(moscons: &'a Moscons) -> Self {
        Self::with_chunk_rows(moscons, env_chunk_rows())
    }

    /// A fresh stream with an explicit classification chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_rows == 0`.
    pub fn with_chunk_rows(moscons: &'a Moscons, chunk_rows: usize) -> Self {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        AttackStream {
            moscons,
            gap: GapStream::new(moscons.gap_model(), moscons.scaler()),
            chunk_rows,
            next_index: 0,
            fifo: VecDeque::new(),
            open: None,
            closed: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Number of raw rows pushed so far.
    pub fn samples_pushed(&self) -> usize {
        self.next_index
    }

    /// Segments closed so far (pre-validity-filter).
    pub fn segments_closed(&self) -> usize {
        self.closed.len()
    }

    /// Pushes the next raw feature row
    /// ([`crate::dataset::counter_features`] output, time order), returning
    /// any labels it unlocked.
    pub fn push(&mut self, features: &[f32]) -> Vec<StreamLabel> {
        let scaled = self.moscons.scaler().transform_row(features);
        self.fifo.push_back((self.next_index, scaled.clone()));
        self.next_index += 1;
        let mut events = std::mem::take(&mut self.events);
        self.gap.push_scaled(scaled, &mut events);
        let mut labels = Vec::new();
        self.drain_events(&events, &mut labels);
        events.clear();
        self.events = events;
        labels
    }

    /// Ends the stream: flushes every held-back decision and chunk
    /// remainder, then runs the shared batch assembly over the closed
    /// segments. The returned extraction is bitwise identical to
    /// [`Moscons::extract`] on the same rows.
    pub fn finish(mut self) -> StreamOutcome {
        let mut events = std::mem::take(&mut self.events);
        self.gap.finish(&mut events);
        let mut labels = Vec::new();
        self.drain_events(&events, &mut labels);
        debug_assert!(self.fifo.is_empty(), "every row is decided at finish");
        debug_assert!(self.open.is_none(), "finish closes the open segment");

        let moscons = self.moscons;
        let gap_cfg = moscons.gap_model().config();
        let ranges: Vec<Range<usize>> = self.closed.iter().map(|c| c.range.clone()).collect();
        let valid = filter_valid_iterations(ranges, gap_cfg.r_min, gap_cfg.r_max);
        if valid.is_empty() {
            return StreamOutcome {
                labels,
                extraction: Moscons::empty_extraction(valid),
            };
        }
        let n = moscons.config().voting_iterations.min(valid.len());
        // The valid ranges are an in-order subsequence of the closed ranges
        // (segments are disjoint and increasing): two-pointer match.
        let mut preds_long = Vec::with_capacity(n);
        let mut preds_op = Vec::with_capacity(n);
        let mut base: Option<&ClosedSegment> = None;
        let mut ci = 0usize;
        for r in valid.iter().take(n) {
            while self.closed[ci].range != *r {
                ci += 1;
            }
            let seg = &self.closed[ci];
            preds_long.push(seg.preds_long.clone());
            preds_op.push(seg.preds_op.clone());
            base.get_or_insert(seg);
            ci += 1;
        }
        let Some(base) = base else {
            // n >= 1 whenever valid is non-empty, so the loop above always
            // seeds `base`; degrade to an empty extraction if it ever
            // doesn't instead of aborting the serving path.
            debug_assert!(false, "n >= 1 when valid is non-empty");
            return StreamOutcome {
                labels,
                extraction: Moscons::empty_extraction(valid),
            };
        };
        let extraction = moscons.assemble_extraction(valid, &preds_long, &preds_op, &base.hp_preds);
        StreamOutcome { labels, extraction }
    }

    /// Applies a batch of splitting decisions to the row FIFO and the open
    /// segment, classifying full chunks as they accumulate.
    fn drain_events(&mut self, events: &[SplitEvent], labels: &mut Vec<StreamLabel>) {
        let moscons = self.moscons;
        let chunk_rows = self.chunk_rows;
        for ev in events {
            match ev {
                SplitEvent::Assign(i) => {
                    let Some((idx, row)) = self.fifo.pop_front() else {
                        // Decision without a buffered row: drop it rather
                        // than abort the stream.
                        debug_assert!(false, "assigned row is buffered");
                        continue;
                    };
                    debug_assert_eq!(idx, *i, "decisions arrive in push order");
                    let seg_id = self.closed.len();
                    let seg = self
                        .open
                        .get_or_insert_with(|| OpenSegment::new(*i, moscons));
                    if let Some(prev) = seg.last_scaled.take() {
                        // Prepared row j of the segment is scaled[j] ++
                        // scaled[j+1] (`with_lookahead`): completing row
                        // j needs its successor.
                        let mut prepared = prev;
                        prepared.extend_from_slice(&row);
                        seg.pending.push(prepared);
                    }
                    seg.last_scaled = Some(row);
                    if seg.pending.len() >= chunk_rows {
                        Self::classify_pending(moscons, seg, seg_id, labels);
                    }
                }
                SplitEvent::Discard(i) => {
                    let Some((idx, _)) = self.fifo.pop_front() else {
                        debug_assert!(false, "discarded row is buffered");
                        continue;
                    };
                    debug_assert_eq!(idx, *i, "decisions arrive in push order");
                }
                SplitEvent::Close(range) => {
                    let seg_id = self.closed.len();
                    let Some(mut seg) = self.open.take() else {
                        // Close without an open segment: nothing to label.
                        debug_assert!(false, "close implies an open segment");
                        continue;
                    };
                    let Some(last) = seg.last_scaled.take() else {
                        debug_assert!(false, "segments are non-empty");
                        continue;
                    };
                    // The segment's final row is its own lookahead.
                    let mut prepared = last.clone();
                    prepared.extend_from_slice(&last);
                    seg.pending.push(prepared);
                    Self::classify_pending(moscons, &mut seg, seg_id, labels);
                    debug_assert_eq!(
                        seg.preds_long.len(),
                        range.len(),
                        "one label per segment sample"
                    );
                    self.closed.push(ClosedSegment {
                        range: range.clone(),
                        preds_long: seg.preds_long,
                        preds_op: seg.preds_op,
                        hp_preds: seg.hp_preds,
                    });
                }
            }
        }
    }

    /// Runs all seven LSTMs over the segment's pending prepared rows,
    /// advancing their `(h, c)` carries and emitting one label per row.
    fn classify_pending(
        moscons: &Moscons,
        seg: &mut OpenSegment,
        seg_id: usize,
        labels: &mut Vec<StreamLabel>,
    ) {
        if seg.pending.is_empty() {
            return;
        }
        let n_rows = seg.pending.len();
        let chunk: &[Vec<f32>] = &seg.pending;
        let pl = moscons
            .long_model()
            .classifier()
            .predict_stream_chunks(&[chunk], std::slice::from_mut(&mut seg.long_state))
            .pop()
            .unwrap_or_default();
        let po = moscons
            .op_model()
            .classifier()
            .predict_stream_chunks(&[chunk], std::slice::from_mut(&mut seg.op_state))
            .pop()
            .unwrap_or_default();
        let ph: Vec<Vec<usize>> = HpKind::ALL
            .iter()
            .zip(seg.hp_states.iter_mut())
            .map(|(&k, state)| {
                moscons
                    .hp_model(k)
                    .classifier()
                    .predict_stream_chunks(&[chunk], std::slice::from_mut(state))
                    .pop()
                    .unwrap_or_default()
            })
            .collect();
        // One prediction per pending row from every head — checked up front
        // so a short prediction batch drops the chunk (degradation) instead
        // of panicking row by row below.
        if pl.len() != n_rows || po.len() != n_rows || ph.iter().any(|p| p.len() != n_rows) {
            debug_assert!(false, "one prediction per pending row");
            seg.pending.clear();
            return;
        }
        for (k, (&long_cls, &op_cls)) in pl.iter().zip(po.iter()).enumerate() {
            let mut hp = [0usize; HpKind::ALL.len()];
            for (slot, preds) in hp.iter_mut().zip(&ph) {
                *slot = preds.get(k).copied().unwrap_or_default();
            }
            labels.push(StreamLabel {
                sample: seg.start + seg.classified + k,
                segment: seg_id,
                long: LongClass::from_index(long_cls),
                op: OtherClass::from_index(op_cls),
                hp,
            });
        }
        seg.classified += n_rows;
        seg.preds_long.extend_from_slice(&pl);
        seg.preds_op.extend_from_slice(&po);
        for (acc, p) in seg.hp_preds.iter_mut().zip(&ph) {
            acc.extend_from_slice(p);
        }
        seg.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::split_on_nop_runs_bridged;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn run_splitter(flags: &[bool], th_gap: usize, bridge: usize) -> Vec<SplitEvent> {
        let mut sp = SegmentSplitter::new(th_gap, bridge);
        let mut out = Vec::new();
        for &f in flags {
            sp.push(f, &mut out);
        }
        sp.finish(&mut out);
        out
    }

    fn segments_of(events: &[SplitEvent]) -> Vec<std::ops::Range<usize>> {
        events
            .iter()
            .filter_map(|e| match e {
                SplitEvent::Close(r) => Some(r.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn splitter_matches_batch_on_random_streams() {
        let mut rng = StdRng::seed_from_u64(0x51e9);
        for case in 0..500 {
            let len = rng.gen_range(0..=64);
            let density = rng.gen_range(0.1..0.9);
            let flags: Vec<bool> = (0..len).map(|_| rng.gen_bool(density)).collect();
            let th_gap = rng.gen_range(1..=8);
            let bridge = rng.gen_range(0..=3);
            let events = run_splitter(&flags, th_gap, bridge);
            let expect = split_on_nop_runs_bridged(&flags, th_gap, bridge);
            assert_eq!(
                segments_of(&events),
                expect,
                "case {case}: flags {flags:?} th_gap {th_gap} bridge {bridge}"
            );

            // Every index resolves exactly once, in strictly increasing
            // order, and Assign/Discard agree with segment membership.
            let mut next = 0usize;
            let mut assigned = vec![false; len];
            for e in &events {
                match e {
                    SplitEvent::Assign(i) | SplitEvent::Discard(i) => {
                        assert_eq!(*i, next, "case {case}: out-of-order decision");
                        assigned[*i] = matches!(e, SplitEvent::Assign(_));
                        next += 1;
                    }
                    SplitEvent::Close(_) => {}
                }
            }
            assert_eq!(next, len, "case {case}: undecided samples");
            for (i, &a) in assigned.iter().enumerate() {
                let inside = expect.iter().any(|r| r.contains(&i));
                assert_eq!(a, inside, "case {case}: sample {i} membership");
            }
        }
    }

    #[test]
    fn splitter_close_follows_its_assigns() {
        let mut rng = StdRng::seed_from_u64(0xc105e);
        for _ in 0..200 {
            let len = rng.gen_range(1..=48);
            let flags: Vec<bool> = (0..len).map(|_| rng.gen_bool(0.5)).collect();
            let events = run_splitter(&flags, rng.gen_range(1..=5), rng.gen_range(0..=2));
            let mut decided = 0usize;
            for e in &events {
                match e {
                    SplitEvent::Assign(_) | SplitEvent::Discard(_) => decided += 1,
                    SplitEvent::Close(r) => {
                        assert!(decided >= r.end, "close {r:?} fired before its last assign");
                    }
                }
            }
        }
    }

    #[test]
    fn splitter_handles_degenerate_streams() {
        // Empty stream.
        assert!(run_splitter(&[], 3, 1).is_empty());
        // All NOP: every sample discarded, no segment.
        let ev = run_splitter(&[true; 10], 3, 1);
        assert_eq!(segments_of(&ev), Vec::<std::ops::Range<usize>>::new());
        assert_eq!(
            ev.iter()
                .filter(|e| matches!(e, SplitEvent::Discard(_)))
                .count(),
            10
        );
        // All BUSY: one segment covering everything.
        let ev = run_splitter(&[false; 10], 3, 1);
        assert_eq!(segments_of(&ev), vec![0..10]);
    }

    #[test]
    fn env_chunk_parsing_rejects_garbage() {
        // Not an env-mutating test: just the parse contract of the default.
        assert_eq!(DEFAULT_STREAM_CHUNK, 32);
        assert!("0".parse::<usize>().ok().filter(|&n| n > 0).is_none());
    }
}
