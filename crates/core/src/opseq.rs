//! OpSeq assembly and layer reconstruction.
//!
//! Merges `Mlong`/`Mop` per-sample predictions into a single class stream,
//! collapses consecutive identical predictions (§IV-B "Collapsing ops"), and
//! parses the *forward-pass prefix* into layers: a `conv` followed by
//! `BiasAdd` and an activation is a convolutional layer, a `MatMul` group is
//! a fully-connected layer, `Pool` stands alone (§IV "combinations of
//! consecutive ops can be deterministically mapped to layers"). Parsing
//! stops where the pattern breaks — which is exactly where back-propagation
//! begins, since its mirrored op order cannot start a new layer.

use dnn_sim::{Activation, OpClass};
use serde::{Deserialize, Serialize};

use crate::long_ops::LongClass;
use crate::other_ops::OtherClass;

/// Merges the two classifiers: long classes pass through, `Other` positions
/// take `Mop`'s refined prediction.
///
/// # Panics
///
/// Panics if the sequences have different lengths.
pub fn merge_predictions(long: &[LongClass], other: &[OtherClass]) -> Vec<OpClass> {
    assert_eq!(long.len(), other.len(), "prediction length mismatch");
    long.iter()
        .zip(other)
        .map(|(&l, &o)| match l {
            LongClass::Conv => OpClass::Conv,
            LongClass::MatMul => OpClass::MatMul,
            LongClass::Nop => OpClass::Nop,
            LongClass::Other => o.op_class(),
        })
        .collect()
}

/// A collapsed run of identical predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpRun {
    /// The class of the run.
    pub class: OpClass,
    /// First sample index (inclusive).
    pub start: usize,
    /// Last sample index (inclusive).
    pub end: usize,
}

/// Collapses consecutive identical classes into runs, dropping NOP runs
/// (short NOPs occur inside iterations, §IV-A).
pub fn collapse(classes: &[OpClass]) -> Vec<OpRun> {
    let mut runs: Vec<OpRun> = Vec::new();
    for (i, &c) in classes.iter().enumerate() {
        if c == OpClass::Nop {
            continue;
        }
        // A run continues when only NOPs separate this sample from the
        // previous same-class sample.
        if let Some(last) = runs.last_mut() {
            if last.class == c && classes[last.end + 1..i].iter().all(|&x| x == OpClass::Nop) {
                last.end = i;
                continue;
            }
        }
        runs.push(OpRun {
            class: c,
            start: i,
            end: i,
        });
    }
    runs
}

/// The kind of a recovered layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveredKind {
    /// Convolutional layer.
    Conv,
    /// Fully-connected layer.
    Dense,
    /// Pooling layer.
    Pool,
}

impl RecoveredKind {
    /// Single-letter code (Table IX).
    pub fn letter(self) -> char {
        match self {
            RecoveredKind::Conv => 'C',
            RecoveredKind::Dense => 'M',
            RecoveredKind::Pool => 'P',
        }
    }
}

/// One recovered layer with optional hyper-parameters (filled in by the
/// hyper-parameter stage and the syntax corrector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveredLayer {
    /// Layer kind.
    pub kind: RecoveredKind,
    /// Recovered activation (`None` renders as the paper's red `X`).
    pub activation: Option<Activation>,
    /// Last sample index of the layer's forward region (where `Mhp` reads
    /// its prediction).
    pub last_sample: usize,
    /// Filter side (conv) — from `Mhp`.
    pub filter_size: Option<usize>,
    /// Filter count (conv) — from `Mhp`.
    pub filters: Option<usize>,
    /// Stride (conv) — from `Mhp`.
    pub stride: Option<usize>,
    /// Neuron count (dense) — from `Mhp`.
    pub units: Option<usize>,
}

impl RecoveredLayer {
    fn new(kind: RecoveredKind, activation: Option<Activation>, last_sample: usize) -> Self {
        RecoveredLayer {
            kind,
            activation,
            last_sample,
            filter_size: None,
            filters: None,
            stride: None,
            units: None,
        }
    }

    /// The Table IX structure fragment, with `X` for unknown values.
    pub fn structure_fragment(&self) -> String {
        let act = self.activation.map(|a| a.letter()).unwrap_or('X');
        let num = |v: Option<usize>| v.map(|x| x.to_string()).unwrap_or_else(|| "X".to_owned());
        match self.kind {
            RecoveredKind::Conv => format!(
                "C{},{},{},{}",
                num(self.filter_size),
                num(self.filters),
                num(self.stride),
                act
            ),
            RecoveredKind::Dense => format!("M{},{}", num(self.units), act),
            RecoveredKind::Pool => "P".to_owned(),
        }
    }
}

fn act_of(class: OpClass) -> Option<Activation> {
    match class {
        OpClass::Relu => Some(Activation::Relu),
        OpClass::Tanh => Some(Activation::Tanh),
        OpClass::Sigmoid => Some(Activation::Sigmoid),
        _ => None,
    }
}

/// Parses the forward-pass prefix of a collapsed run sequence into layers.
///
/// Grammar (greedy): `Conv [BiasAdd] [act]` → conv layer; `MatMul [BiasAdd]
/// [act]` → dense layer; `Pool` → pooling layer. The first run that cannot
/// begin a layer ends the forward pass.
pub fn parse_forward_layers(runs: &[OpRun]) -> Vec<RecoveredLayer> {
    let mut layers = Vec::new();
    let mut i = 0;
    while i < runs.len() {
        match runs[i].class {
            OpClass::Conv | OpClass::MatMul => {
                let kind = if runs[i].class == OpClass::Conv {
                    RecoveredKind::Conv
                } else {
                    RecoveredKind::Dense
                };
                let mut last = runs[i].end;
                i += 1;
                // Optional BiasAdd.
                let mut had_bias = false;
                if i < runs.len() && runs[i].class == OpClass::BiasAdd {
                    last = runs[i].end;
                    had_bias = true;
                    i += 1;
                }
                // Optional activation.
                let mut activation = None;
                if i < runs.len() {
                    if let Some(a) = act_of(runs[i].class) {
                        activation = Some(a);
                        last = runs[i].end;
                        i += 1;
                    }
                }
                // A bare MatMul (no BiasAdd, no activation) after the dense
                // head has started is the signature of back-propagation's
                // adjacent weight/input-gradient pair: it ends the forward
                // pass instead of producing a layer. (The first dense layer
                // is kept even when bare — its BiasAdd/activation may simply
                // have been too short to sample.)
                if kind == RecoveredKind::Dense
                    && !had_bias
                    && activation.is_none()
                    && layers.iter().any(|l: &RecoveredLayer| {
                        l.kind == RecoveredKind::Dense && l.activation.is_some()
                    })
                {
                    break;
                }
                layers.push(RecoveredLayer::new(kind, activation, last));
            }
            OpClass::Pool => {
                layers.push(RecoveredLayer::new(RecoveredKind::Pool, None, runs[i].end));
                i += 1;
            }
            _ => break, // back-propagation boundary
        }
    }
    layers
}

/// Estimates the sample index where back-propagation begins.
///
/// Every trainable layer's backward pass re-runs its long op with roughly
/// twice the forward cost (weight + input gradients), so the forward pass
/// owns about one third of all long-op samples; the boundary is where the
/// cumulative long count crosses that, extended through the current run and
/// the layer's trailing `BiasAdd`/activation samples.
pub fn forward_boundary(classes: &[OpClass]) -> usize {
    let total_long = classes.iter().filter(|c| c.is_long()).count();
    if total_long == 0 {
        return classes.len();
    }
    let target = ((total_long as f64) / 3.0).round().max(1.0) as usize;
    let mut seen = 0usize;
    let mut i = 0;
    while i < classes.len() {
        if classes[i].is_long() {
            seen += 1;
            if seen >= target {
                break;
            }
        }
        i += 1;
    }
    // Finish the current long run, then consume trailing BiasAdd/activation
    // (and interleaved NOP) samples belonging to the last forward layer.
    while i < classes.len() && classes[i].is_long() {
        i += 1;
    }
    while i < classes.len()
        && matches!(
            classes[i],
            OpClass::BiasAdd | OpClass::Relu | OpClass::Tanh | OpClass::Sigmoid | OpClass::Nop
        )
    {
        i += 1;
    }
    i
}

/// Lenient forward parse: like [`parse_forward_layers`], but restricted to
/// runs that start before `boundary` (from [`forward_boundary`]) and
/// *skipping* runs that cannot start a layer instead of stopping — a single
/// misclassified sample no longer truncates the whole structure.
pub fn parse_forward_layers_lenient(runs: &[OpRun], boundary: usize) -> Vec<RecoveredLayer> {
    let mut layers = Vec::new();
    let mut i = 0;
    while i < runs.len() && runs[i].start < boundary {
        match runs[i].class {
            OpClass::Conv | OpClass::MatMul => {
                let kind = if runs[i].class == OpClass::Conv {
                    RecoveredKind::Conv
                } else {
                    RecoveredKind::Dense
                };
                let mut last = runs[i].end;
                i += 1;
                if i < runs.len() && runs[i].start < boundary && runs[i].class == OpClass::BiasAdd {
                    last = runs[i].end;
                    i += 1;
                }
                let mut activation = None;
                if i < runs.len() && runs[i].start < boundary {
                    if let Some(a) = act_of(runs[i].class) {
                        activation = Some(a);
                        last = runs[i].end;
                        i += 1;
                    }
                }
                layers.push(RecoveredLayer::new(kind, activation, last));
            }
            OpClass::Pool => {
                layers.push(RecoveredLayer::new(RecoveredKind::Pool, None, runs[i].end));
                i += 1;
            }
            _ => i += 1, // skip a stray run instead of aborting
        }
    }
    layers
}

/// Formats a recovered structure as the paper's Table IX strings, e.g.
/// `C3,64,1,R-P-M4096,X-OptimizerAdam`.
pub fn structure_string(
    layers: &[RecoveredLayer],
    optimizer: Option<dnn_sim::Optimizer>,
) -> String {
    let mut parts: Vec<String> = layers
        .iter()
        .map(RecoveredLayer::structure_fragment)
        .collect();
    parts.push(match optimizer {
        Some(o) => format!("Optimizer{}", o.name()),
        None => "OptimizerX".to_owned(),
    });
    parts.join("-")
}

#[cfg(test)]
mod tests {
    use super::*;
    use OpClass::{BiasAdd, Conv, MatMul, Nop, Pool, Relu, Sigmoid, Tanh};

    #[test]
    fn merge_takes_refined_other_classes() {
        let long = vec![
            LongClass::Conv,
            LongClass::Other,
            LongClass::Nop,
            LongClass::Other,
        ];
        let other = vec![
            OtherClass::Pool, // ignored: long says Conv
            OtherClass::BiasAdd,
            OtherClass::Relu, // ignored: long says Nop
            OtherClass::Tanh,
        ];
        assert_eq!(
            merge_predictions(&long, &other),
            vec![Conv, BiasAdd, Nop, Tanh]
        );
    }

    #[test]
    fn collapse_merges_runs_and_drops_nops() {
        let classes = vec![Conv, Conv, Nop, Conv, BiasAdd, Relu, Relu, Nop, Nop, MatMul];
        let runs = collapse(&classes);
        let summary: Vec<(OpClass, usize, usize)> =
            runs.iter().map(|r| (r.class, r.start, r.end)).collect();
        // The Conv run continues across the single interleaved NOP.
        assert_eq!(
            summary,
            vec![(Conv, 0, 3), (BiasAdd, 4, 4), (Relu, 5, 6), (MatMul, 9, 9)]
        );
    }

    #[test]
    fn collapse_restarts_run_after_other_class() {
        let classes = vec![Conv, BiasAdd, Conv];
        let runs = collapse(&classes);
        assert_eq!(runs.len(), 3);
        assert_eq!(
            runs[2],
            OpRun {
                class: Conv,
                start: 2,
                end: 2
            }
        );
    }

    #[test]
    fn parse_stops_at_backward_boundary() {
        // Forward: C B R | P | M B R — then backward begins with ReLU's
        // grad collapsed into the forward R, so the next run is B.
        let classes = vec![
            Conv, BiasAdd, Relu, Pool, MatMul, BiasAdd,
            Relu, // forward (last R merges w/ grad)
            BiasAdd, MatMul, MatMul, Pool, Relu, BiasAdd, Conv, // backward
        ];
        let runs = collapse(&classes);
        let layers = parse_forward_layers(&runs);
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0].kind, RecoveredKind::Conv);
        assert_eq!(layers[0].activation, Some(Activation::Relu));
        assert_eq!(layers[1].kind, RecoveredKind::Pool);
        assert_eq!(layers[2].kind, RecoveredKind::Dense);
        // Layer boundaries carry the last forward sample index.
        assert_eq!(layers[0].last_sample, 2);
        assert_eq!(layers[2].last_sample, 6);
    }

    #[test]
    fn parse_tolerates_missing_bias_or_activation() {
        let classes = vec![Conv, Relu, MatMul, BiasAdd, Tanh, MatMul];
        let layers = parse_forward_layers(&collapse(&classes));
        // The trailing bare MatMul is a backward weight/input-gradient pair
        // (a dense layer already exists), so only two layers parse.
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].activation, Some(Activation::Relu));
        assert_eq!(layers[1].activation, Some(Activation::Tanh));
    }

    #[test]
    fn parse_keeps_first_bare_dense_layer() {
        // VGG-style: convs then a bare MatMul whose BiasAdd/act were too
        // short to sample — the first dense layer is kept.
        let classes = vec![Conv, BiasAdd, Relu, Pool, MatMul, MatMul];
        let layers = parse_forward_layers(&collapse(&classes));
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[2].kind, RecoveredKind::Dense);
    }

    #[test]
    fn mlp_parse() {
        let classes = vec![
            MatMul, BiasAdd, Relu, MatMul, BiasAdd, Tanh, MatMul, BiasAdd, Sigmoid,
            // backward
            BiasAdd, MatMul, MatMul,
        ];
        let layers = parse_forward_layers(&collapse(&classes));
        assert_eq!(layers.len(), 3);
        assert!(layers.iter().all(|l| l.kind == RecoveredKind::Dense));
        let acts: Vec<_> = layers.iter().map(|l| l.activation).collect();
        assert_eq!(
            acts,
            vec![
                Some(Activation::Relu),
                Some(Activation::Tanh),
                Some(Activation::Sigmoid)
            ]
        );
    }

    #[test]
    fn structure_string_renders_unknowns_as_x() {
        let mut conv = RecoveredLayer::new(RecoveredKind::Conv, Some(Activation::Relu), 0);
        conv.filter_size = Some(3);
        conv.filters = Some(64);
        conv.stride = Some(1);
        let dense = RecoveredLayer::new(RecoveredKind::Dense, None, 5);
        let s = structure_string(&[conv, dense], Some(dnn_sim::Optimizer::Adam));
        assert_eq!(s, "C3,64,1,R-MX,X-OptimizerAdam");
        let s = structure_string(&[], None);
        assert_eq!(s, "OptimizerX");
    }
}
