//! OpSeq assembly and layer reconstruction.
//!
//! Merges `Mlong`/`Mop` per-sample predictions into a single class stream,
//! collapses consecutive identical predictions (§IV-B "Collapsing ops"), and
//! parses the *forward-pass prefix* into layers: a `conv` followed by
//! `BiasAdd` and an activation is a convolutional layer, a `MatMul` group is
//! a fully-connected layer, `Pool` stands alone (§IV "combinations of
//! consecutive ops can be deterministically mapped to layers"). Parsing
//! stops where the pattern breaks — which is exactly where back-propagation
//! begins, since its mirrored op order cannot start a new layer.

use dnn_sim::{Activation, OpClass};
use serde::{Deserialize, Serialize};

use crate::long_ops::LongClass;
use crate::other_ops::OtherClass;

/// Merges the two classifiers: long classes pass through, `Other` positions
/// take `Mop`'s refined prediction.
///
/// # Panics
///
/// Panics if the sequences have different lengths.
pub fn merge_predictions(long: &[LongClass], other: &[OtherClass]) -> Vec<OpClass> {
    assert_eq!(long.len(), other.len(), "prediction length mismatch");
    long.iter()
        .zip(other)
        .map(|(&l, &o)| match l {
            LongClass::Conv => OpClass::Conv,
            LongClass::MatMul => OpClass::MatMul,
            LongClass::Nop => OpClass::Nop,
            LongClass::Other => o.op_class(),
        })
        .collect()
}

/// A collapsed run of identical predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpRun {
    /// The class of the run.
    pub class: OpClass,
    /// First sample index (inclusive).
    pub start: usize,
    /// Last sample index (inclusive).
    pub end: usize,
}

/// Collapses consecutive identical classes into runs, dropping NOP runs
/// (short NOPs occur inside iterations, §IV-A).
pub fn collapse(classes: &[OpClass]) -> Vec<OpRun> {
    let mut runs: Vec<OpRun> = Vec::new();
    for (i, &c) in classes.iter().enumerate() {
        if c == OpClass::Nop {
            continue;
        }
        // A run continues when only NOPs separate this sample from the
        // previous same-class sample.
        if let Some(last) = runs.last_mut() {
            if last.class == c && classes[last.end + 1..i].iter().all(|&x| x == OpClass::Nop) {
                last.end = i;
                continue;
            }
        }
        runs.push(OpRun {
            class: c,
            start: i,
            end: i,
        });
    }
    runs
}

/// The kind of a recovered layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveredKind {
    /// Convolutional layer.
    Conv,
    /// Fully-connected layer.
    Dense,
    /// Pooling layer.
    Pool,
    /// Depthwise-separable convolution (depthwise + pointwise pair).
    Separable,
    /// Attention block (MatMul–Softmax–MatMul with LayerNorm).
    Attention,
}

impl RecoveredKind {
    /// Single-letter code (Table IX).
    pub fn letter(self) -> char {
        match self {
            RecoveredKind::Conv => 'C',
            RecoveredKind::Dense => 'M',
            RecoveredKind::Pool => 'P',
            RecoveredKind::Separable => 'D',
            RecoveredKind::Attention => 'A',
        }
    }
}

/// One recovered layer with optional hyper-parameters (filled in by the
/// hyper-parameter stage and the syntax corrector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveredLayer {
    /// Layer kind.
    pub kind: RecoveredKind,
    /// Recovered activation (`None` renders as the paper's red `X`).
    pub activation: Option<Activation>,
    /// Last sample index of the layer's forward region (where `Mhp` reads
    /// its prediction).
    pub last_sample: usize,
    /// Filter side (conv) — from `Mhp`.
    pub filter_size: Option<usize>,
    /// Filter count (conv) — from `Mhp`.
    pub filters: Option<usize>,
    /// Stride (conv) — from `Mhp`.
    pub stride: Option<usize>,
    /// Neuron count (dense) — from `Mhp`.
    pub units: Option<usize>,
}

impl RecoveredLayer {
    fn new(kind: RecoveredKind, activation: Option<Activation>, last_sample: usize) -> Self {
        RecoveredLayer {
            kind,
            activation,
            last_sample,
            filter_size: None,
            filters: None,
            stride: None,
            units: None,
        }
    }

    /// The Table IX structure fragment, with `X` for unknown values.
    pub fn structure_fragment(&self) -> String {
        let act = self.activation.map(|a| a.letter()).unwrap_or('X');
        let num = |v: Option<usize>| v.map(|x| x.to_string()).unwrap_or_else(|| "X".to_owned());
        match self.kind {
            RecoveredKind::Conv => format!(
                "C{},{},{},{}",
                num(self.filter_size),
                num(self.filters),
                num(self.stride),
                act
            ),
            RecoveredKind::Dense => format!("M{},{}", num(self.units), act),
            RecoveredKind::Pool => "P".to_owned(),
            RecoveredKind::Separable => format!(
                "D{},{},{},{}",
                num(self.filter_size),
                num(self.filters),
                num(self.stride),
                act
            ),
            RecoveredKind::Attention => format!("A{}", num(self.units)),
        }
    }
}

fn act_of(class: OpClass) -> Option<Activation> {
    match class {
        OpClass::Relu => Some(Activation::Relu),
        OpClass::Tanh => Some(Activation::Tanh),
        OpClass::Sigmoid => Some(Activation::Sigmoid),
        _ => None,
    }
}

/// Parses the forward-pass prefix of a collapsed run sequence into layers.
///
/// Grammar (greedy): `Conv [BiasAdd] [act]` → conv layer; `MatMul [BiasAdd]
/// [act]` → dense layer; `Pool` → pooling layer. The first run that cannot
/// begin a layer ends the forward pass.
pub fn parse_forward_layers(runs: &[OpRun]) -> Vec<RecoveredLayer> {
    let mut layers = Vec::new();
    let mut i = 0;
    while i < runs.len() {
        match runs[i].class {
            OpClass::Conv | OpClass::MatMul => {
                let kind = if runs[i].class == OpClass::Conv {
                    RecoveredKind::Conv
                } else {
                    RecoveredKind::Dense
                };
                let mut last = runs[i].end;
                i += 1;
                // Optional BiasAdd.
                let mut had_bias = false;
                if i < runs.len() && runs[i].class == OpClass::BiasAdd {
                    last = runs[i].end;
                    had_bias = true;
                    i += 1;
                }
                // Optional activation.
                let mut activation = None;
                if i < runs.len() {
                    if let Some(a) = act_of(runs[i].class) {
                        activation = Some(a);
                        last = runs[i].end;
                        i += 1;
                    }
                }
                // A bare MatMul (no BiasAdd, no activation) after the dense
                // head has started is the signature of back-propagation's
                // adjacent weight/input-gradient pair: it ends the forward
                // pass instead of producing a layer. (The first dense layer
                // is kept even when bare — its BiasAdd/activation may simply
                // have been too short to sample.)
                if kind == RecoveredKind::Dense
                    && !had_bias
                    && activation.is_none()
                    && layers.iter().any(|l: &RecoveredLayer| {
                        l.kind == RecoveredKind::Dense && l.activation.is_some()
                    })
                {
                    break;
                }
                layers.push(RecoveredLayer::new(kind, activation, last));
            }
            OpClass::Pool => {
                layers.push(RecoveredLayer::new(RecoveredKind::Pool, None, runs[i].end));
                i += 1;
            }
            _ => break, // back-propagation boundary
        }
    }
    layers
}

/// Estimates the sample index where back-propagation begins.
///
/// Every trainable layer's backward pass re-runs its long op with roughly
/// twice the forward cost (weight + input gradients), so the forward pass
/// owns about one third of all long-op samples; the boundary is where the
/// cumulative long count crosses that, extended through the current run and
/// the layer's trailing `BiasAdd`/activation samples.
pub fn forward_boundary(classes: &[OpClass]) -> usize {
    let total_long = classes.iter().filter(|c| c.is_long()).count();
    if total_long == 0 {
        return classes.len();
    }
    let target = ((total_long as f64) / 3.0).round().max(1.0) as usize;
    let mut seen = 0usize;
    let mut i = 0;
    while i < classes.len() {
        if classes[i].is_long() {
            seen += 1;
            if seen >= target {
                break;
            }
        }
        i += 1;
    }
    // Finish the current long run, then consume trailing BiasAdd/activation
    // (and interleaved NOP) samples belonging to the last forward layer.
    while i < classes.len() && classes[i].is_long() {
        i += 1;
    }
    // The zoo classes (`Add`/`Softmax`/`LayerNorm`) also trail a forward
    // layer — a residual merge or attention tail; classic traces never
    // contain them, so the classic boundary is unchanged.
    while i < classes.len()
        && matches!(
            classes[i],
            OpClass::BiasAdd
                | OpClass::Relu
                | OpClass::Tanh
                | OpClass::Sigmoid
                | OpClass::Nop
                | OpClass::Add
                | OpClass::Softmax
                | OpClass::LayerNorm
        )
    {
        i += 1;
    }
    i
}

/// Lenient forward parse: like [`parse_forward_layers`], but restricted to
/// runs that start before `boundary` (from [`forward_boundary`]) and
/// *skipping* runs that cannot start a layer instead of stopping — a single
/// misclassified sample no longer truncates the whole structure.
pub fn parse_forward_layers_lenient(runs: &[OpRun], boundary: usize) -> Vec<RecoveredLayer> {
    let mut layers = Vec::new();
    let mut i = 0;
    while i < runs.len() && runs[i].start < boundary {
        match runs[i].class {
            OpClass::Conv | OpClass::MatMul => {
                let kind = if runs[i].class == OpClass::Conv {
                    RecoveredKind::Conv
                } else {
                    RecoveredKind::Dense
                };
                let mut last = runs[i].end;
                i += 1;
                if i < runs.len() && runs[i].start < boundary && runs[i].class == OpClass::BiasAdd {
                    last = runs[i].end;
                    i += 1;
                }
                let mut activation = None;
                if i < runs.len() && runs[i].start < boundary {
                    if let Some(a) = act_of(runs[i].class) {
                        activation = Some(a);
                        last = runs[i].end;
                        i += 1;
                    }
                }
                layers.push(RecoveredLayer::new(kind, activation, last));
            }
            OpClass::Pool => {
                layers.push(RecoveredLayer::new(RecoveredKind::Pool, None, runs[i].end));
                i += 1;
            }
            _ => i += 1, // skip a stray run instead of aborting
        }
    }
    layers
}

/// A recovered skip connection: layers `from..=to` sit on a residual
/// branch whose input (the output of layer `from - 1`, or the model input
/// when `from == 0`) is element-wise added to the output of layer `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Skip {
    /// First layer index on the branch (inclusive).
    pub from: usize,
    /// Last layer index on the branch (inclusive) — the merge point.
    pub to: usize,
}

/// Recovered structure in graph form: the layer chain plus any skip edges.
/// Classic parses produce no skips, in which case the graph is exactly the
/// old linear chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveredGraph {
    /// The recovered layers in execution order.
    pub layers: Vec<RecoveredLayer>,
    /// Skip edges over `layers` (empty for linear chains).
    pub skips: Vec<Skip>,
}

impl RecoveredGraph {
    /// Wraps a linear chain (no skip edges).
    pub fn linear(layers: Vec<RecoveredLayer>) -> Self {
        RecoveredGraph {
            layers,
            skips: Vec::new(),
        }
    }
}

/// Zoo-aware lenient forward parse: extends [`parse_forward_layers_lenient`]
/// with the model-zoo grammar and returns graph form.
///
/// - `MatMul Softmax [MatMul] [LayerNorm]` → one attention layer;
/// - `Depthwise [Conv] [BiasAdd] [act]` → one separable-conv layer (the
///   pointwise `Conv` is part of the layer, not a layer of its own);
/// - an `Add` run closes a residual branch: the trailing activation-less
///   conv layers (plus the activated conv that opened the block) become the
///   branch of a [`Skip`] edge, and the post-merge activation attaches to
///   the merge-point layer.
///
/// On a trace with none of the zoo classes this parses exactly like
/// [`parse_forward_layers_lenient`] and returns an empty skip list.
pub fn parse_forward_layers_zoo(runs: &[OpRun], boundary: usize) -> RecoveredGraph {
    let mut layers: Vec<RecoveredLayer> = Vec::new();
    let mut skips = Vec::new();
    let mut i = 0;
    while i < runs.len() && runs[i].start < boundary {
        match runs[i].class {
            OpClass::MatMul
                if i + 1 < runs.len()
                    && runs[i + 1].start < boundary
                    && runs[i + 1].class == OpClass::Softmax =>
            {
                // Attention block: scores MatMul, Softmax, values MatMul,
                // LayerNorm (the tail ops tolerate dropout under faults).
                let mut last = runs[i + 1].end;
                i += 2;
                if i < runs.len() && runs[i].start < boundary && runs[i].class == OpClass::MatMul {
                    last = runs[i].end;
                    i += 1;
                }
                if i < runs.len() && runs[i].start < boundary && runs[i].class == OpClass::LayerNorm
                {
                    last = runs[i].end;
                    i += 1;
                }
                layers.push(RecoveredLayer::new(RecoveredKind::Attention, None, last));
            }
            OpClass::Conv | OpClass::MatMul => {
                let kind = if runs[i].class == OpClass::Conv {
                    RecoveredKind::Conv
                } else {
                    RecoveredKind::Dense
                };
                let mut last = runs[i].end;
                i += 1;
                if i < runs.len() && runs[i].start < boundary && runs[i].class == OpClass::BiasAdd {
                    last = runs[i].end;
                    i += 1;
                }
                let mut activation = None;
                if i < runs.len() && runs[i].start < boundary {
                    if let Some(a) = act_of(runs[i].class) {
                        activation = Some(a);
                        last = runs[i].end;
                        i += 1;
                    }
                }
                layers.push(RecoveredLayer::new(kind, activation, last));
            }
            OpClass::Depthwise => {
                // Separable conv: depthwise, then the pointwise 1x1 conv,
                // bias and activation all belong to the same layer.
                let mut last = runs[i].end;
                i += 1;
                if i < runs.len() && runs[i].start < boundary && runs[i].class == OpClass::Conv {
                    last = runs[i].end;
                    i += 1;
                }
                if i < runs.len() && runs[i].start < boundary && runs[i].class == OpClass::BiasAdd {
                    last = runs[i].end;
                    i += 1;
                }
                let mut activation = None;
                if i < runs.len() && runs[i].start < boundary {
                    if let Some(a) = act_of(runs[i].class) {
                        activation = Some(a);
                        last = runs[i].end;
                        i += 1;
                    }
                }
                layers.push(RecoveredLayer::new(
                    RecoveredKind::Separable,
                    activation,
                    last,
                ));
            }
            OpClass::Pool => {
                layers.push(RecoveredLayer::new(RecoveredKind::Pool, None, runs[i].end));
                i += 1;
            }
            OpClass::Add => {
                let mut last = runs[i].end;
                i += 1;
                // The residual's final activation runs after the merge.
                let mut activation = None;
                if i < runs.len() && runs[i].start < boundary {
                    if let Some(a) = act_of(runs[i].class) {
                        activation = Some(a);
                        last = runs[i].end;
                        i += 1;
                    }
                }
                if let Some(to) = layers.len().checked_sub(1) {
                    if layers[to].kind == RecoveredKind::Conv {
                        // Walk back over the branch: its inner convs carry
                        // no post-activation (it runs after the merge);
                        // the activated conv before them opened the block.
                        let mut from = to;
                        while from > 0
                            && layers[from].kind == RecoveredKind::Conv
                            && layers[from].activation.is_none()
                            && layers[from - 1].kind == RecoveredKind::Conv
                        {
                            from -= 1;
                            if layers[from].activation.is_some() {
                                break;
                            }
                        }
                        skips.push(Skip { from, to });
                        if let Some(a) = activation {
                            layers[to].activation = Some(a);
                            layers[to].last_sample = last;
                        }
                    }
                }
            }
            _ => i += 1, // skip a stray run instead of aborting
        }
    }
    RecoveredGraph { layers, skips }
}

/// Formats a recovered structure as the paper's Table IX strings, e.g.
/// `C3,64,1,R-P-M4096,X-OptimizerAdam`.
pub fn structure_string(
    layers: &[RecoveredLayer],
    optimizer: Option<dnn_sim::Optimizer>,
) -> String {
    let mut parts: Vec<String> = layers
        .iter()
        .map(RecoveredLayer::structure_fragment)
        .collect();
    parts.push(match optimizer {
        Some(o) => format!("Optimizer{}", o.name()),
        None => "OptimizerX".to_owned(),
    });
    parts.join("-")
}

#[cfg(test)]
mod tests {
    use super::*;
    use OpClass::{BiasAdd, Conv, MatMul, Nop, Pool, Relu, Sigmoid, Tanh};

    #[test]
    fn merge_takes_refined_other_classes() {
        let long = vec![
            LongClass::Conv,
            LongClass::Other,
            LongClass::Nop,
            LongClass::Other,
        ];
        let other = vec![
            OtherClass::Pool, // ignored: long says Conv
            OtherClass::BiasAdd,
            OtherClass::Relu, // ignored: long says Nop
            OtherClass::Tanh,
        ];
        assert_eq!(
            merge_predictions(&long, &other),
            vec![Conv, BiasAdd, Nop, Tanh]
        );
    }

    #[test]
    fn collapse_merges_runs_and_drops_nops() {
        let classes = vec![Conv, Conv, Nop, Conv, BiasAdd, Relu, Relu, Nop, Nop, MatMul];
        let runs = collapse(&classes);
        let summary: Vec<(OpClass, usize, usize)> =
            runs.iter().map(|r| (r.class, r.start, r.end)).collect();
        // The Conv run continues across the single interleaved NOP.
        assert_eq!(
            summary,
            vec![(Conv, 0, 3), (BiasAdd, 4, 4), (Relu, 5, 6), (MatMul, 9, 9)]
        );
    }

    #[test]
    fn collapse_restarts_run_after_other_class() {
        let classes = vec![Conv, BiasAdd, Conv];
        let runs = collapse(&classes);
        assert_eq!(runs.len(), 3);
        assert_eq!(
            runs[2],
            OpRun {
                class: Conv,
                start: 2,
                end: 2
            }
        );
    }

    #[test]
    fn parse_stops_at_backward_boundary() {
        // Forward: C B R | P | M B R — then backward begins with ReLU's
        // grad collapsed into the forward R, so the next run is B.
        let classes = vec![
            Conv, BiasAdd, Relu, Pool, MatMul, BiasAdd,
            Relu, // forward (last R merges w/ grad)
            BiasAdd, MatMul, MatMul, Pool, Relu, BiasAdd, Conv, // backward
        ];
        let runs = collapse(&classes);
        let layers = parse_forward_layers(&runs);
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0].kind, RecoveredKind::Conv);
        assert_eq!(layers[0].activation, Some(Activation::Relu));
        assert_eq!(layers[1].kind, RecoveredKind::Pool);
        assert_eq!(layers[2].kind, RecoveredKind::Dense);
        // Layer boundaries carry the last forward sample index.
        assert_eq!(layers[0].last_sample, 2);
        assert_eq!(layers[2].last_sample, 6);
    }

    #[test]
    fn parse_tolerates_missing_bias_or_activation() {
        let classes = vec![Conv, Relu, MatMul, BiasAdd, Tanh, MatMul];
        let layers = parse_forward_layers(&collapse(&classes));
        // The trailing bare MatMul is a backward weight/input-gradient pair
        // (a dense layer already exists), so only two layers parse.
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].activation, Some(Activation::Relu));
        assert_eq!(layers[1].activation, Some(Activation::Tanh));
    }

    #[test]
    fn parse_keeps_first_bare_dense_layer() {
        // VGG-style: convs then a bare MatMul whose BiasAdd/act were too
        // short to sample — the first dense layer is kept.
        let classes = vec![Conv, BiasAdd, Relu, Pool, MatMul, MatMul];
        let layers = parse_forward_layers(&collapse(&classes));
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[2].kind, RecoveredKind::Dense);
    }

    #[test]
    fn mlp_parse() {
        let classes = vec![
            MatMul, BiasAdd, Relu, MatMul, BiasAdd, Tanh, MatMul, BiasAdd, Sigmoid,
            // backward
            BiasAdd, MatMul, MatMul,
        ];
        let layers = parse_forward_layers(&collapse(&classes));
        assert_eq!(layers.len(), 3);
        assert!(layers.iter().all(|l| l.kind == RecoveredKind::Dense));
        let acts: Vec<_> = layers.iter().map(|l| l.activation).collect();
        assert_eq!(
            acts,
            vec![
                Some(Activation::Relu),
                Some(Activation::Tanh),
                Some(Activation::Sigmoid)
            ]
        );
    }

    #[test]
    fn zoo_parse_matches_lenient_on_classic_traces() {
        let classes = vec![
            Conv, BiasAdd, Relu, Pool, MatMul, BiasAdd, Relu, BiasAdd, MatMul, MatMul,
        ];
        let runs = collapse(&classes);
        let boundary = forward_boundary(&classes);
        let graph = parse_forward_layers_zoo(&runs, boundary);
        assert_eq!(graph.layers, parse_forward_layers_lenient(&runs, boundary));
        assert!(graph.skips.is_empty());
    }

    #[test]
    fn zoo_parse_recovers_residual_block_as_skip_edge() {
        use OpClass::Add;
        // Stem conv, then a residual block: conv1 (activated), conv2, merge
        // Add, post-merge activation.
        let classes = vec![
            Conv, BiasAdd, Relu, // stem
            Conv, BiasAdd, Relu, // block conv1
            Conv, BiasAdd, // block conv2 (no act before the merge)
            Add, Relu, // merge + block activation
        ];
        let runs = collapse(&classes);
        let graph = parse_forward_layers_zoo(&runs, classes.len());
        let kinds: Vec<RecoveredKind> = graph.layers.iter().map(|l| l.kind).collect();
        assert_eq!(
            kinds,
            vec![
                RecoveredKind::Conv,
                RecoveredKind::Conv,
                RecoveredKind::Conv
            ]
        );
        assert_eq!(graph.skips, vec![Skip { from: 1, to: 2 }]);
        // The post-merge activation attaches to the merge-point conv.
        assert_eq!(graph.layers[2].activation, Some(Activation::Relu));
        assert_eq!(graph.layers[2].last_sample, 9);
    }

    #[test]
    fn zoo_parse_folds_separable_into_one_layer() {
        use OpClass::Depthwise;
        let classes = vec![
            Depthwise, Conv, BiasAdd, Relu, Pool, MatMul, BiasAdd, Sigmoid,
        ];
        let runs = collapse(&classes);
        let graph = parse_forward_layers_zoo(&runs, classes.len());
        let kinds: Vec<RecoveredKind> = graph.layers.iter().map(|l| l.kind).collect();
        assert_eq!(
            kinds,
            vec![
                RecoveredKind::Separable,
                RecoveredKind::Pool,
                RecoveredKind::Dense
            ]
        );
        assert_eq!(graph.layers[0].activation, Some(Activation::Relu));
        assert_eq!(graph.layers[0].last_sample, 3);
        assert!(graph.skips.is_empty());
    }

    #[test]
    fn zoo_parse_folds_attention_block() {
        use OpClass::{LayerNorm, Softmax};
        let classes = vec![
            MatMul, Softmax, MatMul, LayerNorm, // attention
            MatMul, BiasAdd, Relu, // dense head
        ];
        let runs = collapse(&classes);
        let graph = parse_forward_layers_zoo(&runs, classes.len());
        let kinds: Vec<RecoveredKind> = graph.layers.iter().map(|l| l.kind).collect();
        assert_eq!(kinds, vec![RecoveredKind::Attention, RecoveredKind::Dense]);
        assert_eq!(graph.layers[0].last_sample, 3);
        assert!(graph.skips.is_empty());
    }

    #[test]
    fn zoo_fragments_render() {
        let mut sep = RecoveredLayer::new(RecoveredKind::Separable, Some(Activation::Tanh), 0);
        sep.filter_size = Some(5);
        sep.filters = Some(128);
        sep.stride = Some(1);
        assert_eq!(sep.structure_fragment(), "D5,128,1,T");
        let mut att = RecoveredLayer::new(RecoveredKind::Attention, None, 0);
        att.units = Some(256);
        assert_eq!(att.structure_fragment(), "A256");
    }

    #[test]
    fn structure_string_renders_unknowns_as_x() {
        let mut conv = RecoveredLayer::new(RecoveredKind::Conv, Some(Activation::Relu), 0);
        conv.filter_size = Some(3);
        conv.filters = Some(64);
        conv.stride = Some(1);
        let dense = RecoveredLayer::new(RecoveredKind::Dense, None, 5);
        let s = structure_string(&[conv, dense], Some(dnn_sim::Optimizer::Adam));
        assert_eq!(s, "C3,64,1,R-MX,X-OptimizerAdam");
        let s = structure_string(&[], None);
        assert_eq!(s, "OptimizerX");
    }
}
