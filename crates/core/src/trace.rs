//! Side-channel trace collection: wires together the victim's training
//! session, the spy sampler, the slow-down hogs and the CUPTI session, and
//! returns the sample stream plus (in the profiling phase) the victim's
//! ground-truth timeline.

use cupti_sim::{table_iv_groups, CuptiSample, CuptiSession, CuptiStream, VmInstance};
use dnn_sim::TrainingSession;
use gpu_sim::{ContextId, Gpu, GpuConfig, KernelDesc, KernelRecord, SchedulerMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::slowdown::SlowdownConfig;
use crate::spy::SpyKernelKind;

/// Configuration of one collection run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectionConfig {
    /// Which probe kernel the sampler runs.
    pub spy_kernel: SpyKernelKind,
    /// Slow-down attack setting.
    pub slowdown: SlowdownConfig,
    /// Host poll period for CUPTI reads, microseconds.
    pub poll_period_us: f64,
    /// Seed for host-side randomness (gaps, stalls) and the engine.
    pub seed: u64,
}

impl CollectionConfig {
    /// The paper's attack setting: Conv200 sampler, 8-kernel slow-down.
    pub fn paper() -> Self {
        CollectionConfig {
            spy_kernel: SpyKernelKind::Conv200,
            slowdown: SlowdownConfig::paper(),
            poll_period_us: 1_000.0,
            seed: 0xCAFE,
        }
    }

    /// Returns the configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The raw product of one collection run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RawTrace {
    /// CUPTI samples in time order.
    pub samples: Vec<CuptiSample>,
    /// The victim's kernel records (ground truth — used for labeling in the
    /// profiling phase; at attack time the adversary must not look at it).
    pub victim_log: Vec<KernelRecord>,
    /// The collection configuration used.
    pub collection: CollectionConfig,
    /// Mean wall time of one victim iteration during the run, microseconds.
    pub mean_iteration_us: f64,
}

/// Collects a trace of a full training run (victim + sampler + hogs, MPS
/// off). Works for both the profiling phase (keep `victim_log`) and the
/// attack phase (ignore it).
///
/// The simulation is deterministic in its inputs, so results are memoized
/// through [`crate::cache`] (see `LEAKY_DNN_CACHE`); a hit is bitwise
/// identical to a fresh collection.
///
/// # Panics
///
/// Panics if the CUPTI session cannot be opened — construct the spy VM via
/// [`spy_vm`] which performs the §II-D driver downgrade first.
pub fn collect_trace(
    session: &TrainingSession,
    collection: &CollectionConfig,
    gpu_config: &GpuConfig,
) -> RawTrace {
    let effective_gpu = gpu_config.clone().with_seed(collection.seed ^ 0x5119);
    let fingerprint = cupti_sim::session_fingerprint(
        &table_iv_groups(),
        collection.poll_period_us,
        1.0, // `CuptiSession::open` default; `with_quantization` is not used here
    );
    let key = crate::cache::trace_key(session, collection, &effective_gpu, &fingerprint);
    crate::cache::trace_for(key, || {
        collect_trace_uncached(session, collection, gpu_config)
    })
}

/// The actual collection run behind [`collect_trace`], always simulating
/// from scratch: a [`SpySession`] driven to completion, accumulating the
/// incrementally emitted samples. The incremental CUPTI attribution is
/// bitwise identical to the old one-shot `collect_faulted` over the full
/// slice log (the [`cupti_sim::CuptiStream`] contract), so this refactor is
/// invisible to the golden reports.
fn collect_trace_uncached(
    session: &TrainingSession,
    collection: &CollectionConfig,
    gpu_config: &GpuConfig,
) -> RawTrace {
    let mut spy = SpySession::start(session, collection, gpu_config);
    let mut samples = Vec::new();
    while !spy.is_done() {
        samples.extend(spy.poll(1024));
    }
    spy.finish_into(samples, *collection)
}

/// A live collection run: the victim trains on the simulated GPU while the
/// adversary polls CUPTI samples out incrementally — the ingestion stage of
/// the streaming attack engine ([`crate::stream`]) and the unit the fleet
/// orchestrator ([`crate::fleet`]) multiplexes.
///
/// Wiring (contexts, slow-down hogs, spy auto-repeat, retry policy, seeds)
/// is identical to the batch collection path — [`collect_trace`] itself now
/// runs on top of this — so driving a session to completion and
/// concatenating its [`SpySession::poll`] outputs reproduces the batch
/// [`RawTrace`] bitwise.
#[derive(Debug)]
pub struct SpySession {
    gpu: Gpu,
    victim: ContextId,
    /// `Some` until [`SpySession::finish`]; incremental CUPTI attribution.
    stream: Option<CuptiStream>,
    poll_period_us: f64,
    /// Victim ops per training iteration (for the mean-iteration stat).
    per_iter: usize,
    done: bool,
}

/// What a finished [`SpySession`] hands back besides the streamed samples.
#[derive(Debug)]
pub struct SessionTail {
    /// Samples unlocked by the end of the run (held-back windows and the
    /// trailing gap).
    pub samples: Vec<CuptiSample>,
    /// The victim's kernel records (profiling-phase ground truth).
    pub victim_log: Vec<KernelRecord>,
    /// Mean wall time of one victim iteration, microseconds.
    pub mean_iteration_us: f64,
    /// Simulated end time of the run, microseconds.
    pub end_us: f64,
}

impl SpySession {
    /// Wires victim + sampler + hogs + CUPTI exactly like [`collect_trace`]
    /// and enqueues the victim's training run, without stepping the engine.
    ///
    /// # Panics
    ///
    /// Panics if the CUPTI session cannot be opened (see [`spy_vm`]).
    pub fn start(
        session: &TrainingSession,
        collection: &CollectionConfig,
        gpu_config: &GpuConfig,
    ) -> SpySession {
        let vm = spy_vm();
        let mut gpu = Gpu::new(
            gpu_config.clone().with_seed(collection.seed ^ 0x5119),
            SchedulerMode::TimeSliced,
        );
        // Context creation order: victim first (it is the MPS-priority
        // context in the comparison experiments; irrelevant under time
        // slicing).
        let victim = gpu.add_context("victim");
        let sampler = gpu.add_context("spy_sampler");
        gpu.monitor(sampler);
        collection.slowdown.launch(&mut gpu);

        let cupti = CuptiSession::open(&vm, sampler, table_iv_groups(), collection.poll_period_us)
            // Simulated CUPTI open cannot fail after spy_vm()'s driver
            // downgrade; a failure here is a sim-harness bug worth a loud
            // stop, not a serving condition. lint: allow(A2)
            .expect("CUPTI accessible after driver downgrade");
        let spy_kernel = collection
            .spy_kernel
            .kernel(cupti.replay_factor(), gpu.config());
        gpu.set_auto_repeat(sampler, spy_kernel);
        // Bounded-backoff retries for faulted spy launches; inert on the
        // clean path (launches only fail under an active FaultPlan).
        gpu.set_launch_retry(sampler, crate::spy::sampler_retry_policy());

        let mut rng = StdRng::seed_from_u64(collection.seed);
        session.enqueue(&mut gpu, victim, &mut rng);

        let faults = gpu.config().faults;
        let stream = CuptiStream::open(cupti, 0.0, faults);
        SpySession {
            gpu,
            victim,
            stream: Some(stream),
            poll_period_us: collection.poll_period_us,
            per_iter: session.ops().len(),
            done: false,
        }
    }

    /// Whether the victim's run (plus the trailing-gap tail) has completed.
    /// A done session emits nothing further from [`SpySession::poll`];
    /// [`SpySession::finish`] releases the held-back remainder.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Current simulated time, microseconds.
    pub fn now_us(&self) -> f64 {
        self.gpu.now_us()
    }

    /// Advances the simulation by up to `max_steps` engine events and
    /// returns the CUPTI samples that became attributable. When the queues
    /// drain, one final `2 x poll_period` tail run lets the sampler observe
    /// the trailing inter-iteration gap (exactly the batch path's epilogue)
    /// and the session becomes done.
    ///
    /// The step budget only controls poll granularity: the engine's event
    /// sequence — and therefore every emitted sample — is independent of
    /// how the budget slices it.
    pub fn poll(&mut self, max_steps: usize) -> Vec<CuptiSample> {
        if self.done {
            return Vec::new();
        }
        let mut steps = 0usize;
        while steps < max_steps {
            if self.gpu.has_pending_work() && self.gpu.step_once() {
                steps += 1;
            } else {
                // Queues drained: sample the trailing gap in one run, like
                // the batch path.
                let tail = self.gpu.now_us() + 2.0 * self.poll_period_us;
                self.gpu.run_until(tail);
                self.done = true;
                break;
            }
        }
        let slices = self.gpu.drain_counter_slices();
        self.stream
            .as_mut()
            .expect("stream alive until finish")
            .push(&slices, self.gpu.now_us())
    }

    /// Ends the run: flushes held-back windows and returns the tail.
    ///
    /// # Panics
    ///
    /// Panics if the session is not [`SpySession::is_done`] yet.
    pub fn finish(mut self) -> SessionTail {
        assert!(self.done, "drive the session with poll() until done");
        let end = self.gpu.now_us();
        let (kernels, slices) = self.gpu.take_logs();
        let mut stream = self.stream.take().expect("finish consumes the stream");
        let mut samples = stream.push(&slices, end);
        samples.extend(stream.finish(end));
        let victim_log: Vec<KernelRecord> = kernels
            .into_iter()
            .filter(|r| r.ctx == self.victim)
            // Session finalizer: runs once per trace when the run retires,
            // not in the steady sampling loop; the collect sizes the
            // per-session victim log. lint: allow(A1)
            .collect();

        let iters = victim_log.len() / self.per_iter.max(1);
        let mean_iteration_us = if iters > 0 {
            (0..iters)
                .map(|i| {
                    victim_log[(i + 1) * self.per_iter - 1].end_us
                        - victim_log[i * self.per_iter].start_us
                })
                .sum::<f64>()
                / iters as f64
        } else {
            0.0
        };
        SessionTail {
            samples,
            victim_log,
            mean_iteration_us,
            end_us: end,
        }
    }

    /// [`SpySession::finish`] packaged as a [`RawTrace`]: `streamed` is the
    /// concatenation of every [`SpySession::poll`] output so far.
    pub fn finish_into(
        self,
        mut streamed: Vec<CuptiSample>,
        collection: CollectionConfig,
    ) -> RawTrace {
        let tail = self.finish();
        streamed.extend(tail.samples);
        RawTrace {
            samples: streamed,
            victim_log: tail.victim_log,
            collection,
            mean_iteration_us: tail.mean_iteration_us,
        }
    }
}

/// A spy VM ready for CUPTI: freshly rented (patched driver), then
/// downgraded with the tenant's root privilege — the paper's §II-D bypass.
pub fn spy_vm() -> VmInstance {
    let mut vm = VmInstance::fresh_cloud_instance("spy-vm");
    vm.downgrade_driver()
        // The simulated downgrade is infallible on a fresh rented instance
        // (the tenant has root — the paper's §II-D bypass); failure would
        // be a sim-harness bug, not a serving condition. lint: allow(A2)
        .expect("tenant has root in their own VM");
    vm
}

/// Collects samples while the victim runs one fixed kernel in a loop (or
/// idles, when `victim_kernel` is `None`) — the micro-benchmark harness
/// behind Tables I and II. No slow-down hogs; one spy, one victim.
pub fn collect_microbench(
    victim_kernel: Option<KernelDesc>,
    spy: SpyKernelKind,
    duration_us: f64,
    poll_period_us: f64,
    gpu_config: &GpuConfig,
    seed: u64,
) -> Vec<CuptiSample> {
    let vm = spy_vm();
    let mut gpu = Gpu::new(
        gpu_config.clone().with_seed(seed),
        SchedulerMode::TimeSliced,
    );
    let victim = gpu.add_context("victim");
    let sampler = gpu.add_context("spy_sampler");
    gpu.monitor(sampler);
    let cupti = CuptiSession::open(&vm, sampler, table_iv_groups(), poll_period_us)
        .expect("CUPTI accessible after driver downgrade");
    gpu.set_auto_repeat(sampler, spy.kernel(cupti.replay_factor(), gpu.config()));
    gpu.set_launch_retry(sampler, crate::spy::sampler_retry_policy());
    if let Some(k) = victim_kernel {
        gpu.set_auto_repeat(victim, k);
    }
    gpu.run_until(duration_us);
    let faults = gpu.config().faults;
    let (_, slices) = gpu.take_logs();
    // Discard a warm-up prefix so steady-state statistics dominate.
    let warmup = duration_us * 0.2;
    cupti.collect_faulted(&slices, warmup, duration_us, &faults)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use dnn_sim::{zoo, Activation, InputSpec, Layer, Model, Optimizer, TrainingConfig};

    pub(crate) fn tiny_model() -> Model {
        Model::new(
            "tiny",
            InputSpec::Image {
                height: 16,
                width: 16,
                channels: 3,
            },
            vec![
                Layer::conv(3, 8, 1),
                Layer::MaxPool,
                Layer::dense(32, Activation::Relu),
            ],
            Optimizer::Gd,
        )
    }

    #[test]
    fn collect_trace_produces_samples_and_log() {
        let session = TrainingSession::new(tiny_model(), TrainingConfig::new(4, 2));
        let cfg = CollectionConfig {
            slowdown: SlowdownConfig { kernels: 2 },
            ..CollectionConfig::paper()
        };
        let trace = collect_trace(&session, &cfg, &GpuConfig::gtx_1080_ti());
        assert!(!trace.samples.is_empty());
        assert_eq!(trace.victim_log.len(), session.ops().len() * 2);
        assert!(trace.mean_iteration_us > 0.0);
        // Samples are contiguous, ordered windows.
        for w in trace.samples.windows(2) {
            assert!(w[1].start_us >= w[0].start_us);
        }
    }

    #[test]
    fn slowdown_stretches_iterations() {
        let session = TrainingSession::new(tiny_model(), TrainingConfig::new(4, 2));
        let slow = collect_trace(
            &session,
            &CollectionConfig::paper(),
            &GpuConfig::gtx_1080_ti(),
        );
        let fast = collect_trace(
            &session,
            &CollectionConfig {
                slowdown: SlowdownConfig::off(),
                ..CollectionConfig::paper()
            },
            &GpuConfig::gtx_1080_ti(),
        );
        assert!(
            slow.mean_iteration_us > 2.0 * fast.mean_iteration_us,
            "slow {} vs fast {}",
            slow.mean_iteration_us,
            fast.mean_iteration_us
        );
    }

    #[test]
    fn faulted_collection_is_deterministic_and_perturbed() {
        use gpu_sim::FaultPlan;
        let session = TrainingSession::new(tiny_model(), TrainingConfig::new(4, 2));
        let cfg = CollectionConfig {
            slowdown: SlowdownConfig { kernels: 2 },
            ..CollectionConfig::paper()
        };
        let clean_gpu = GpuConfig::gtx_1080_ti();
        let faulty_gpu = clean_gpu.clone().with_faults(FaultPlan::uniform(0.2, 9));

        let clean = collect_trace(&session, &cfg, &clean_gpu);
        let a = collect_trace(&session, &cfg, &faulty_gpu);
        // Defeat the memoization layer so the second run actually simulates.
        crate::cache::clear_memory();
        let b = collect_trace(&session, &cfg, &faulty_gpu);
        assert_eq!(a.samples, b.samples, "same plan => bitwise-identical");
        assert_eq!(a.victim_log.len(), b.victim_log.len());
        assert_ne!(a.samples, clean.samples, "active plan perturbs the trace");
        // The victim's op stream itself is never faulted: labels stay whole.
        assert_eq!(a.victim_log.len(), session.ops().len() * 2);
    }

    #[test]
    fn microbench_idle_vs_busy_differ() {
        let gpu_cfg = GpuConfig::gtx_1080_ti();
        let idle = collect_microbench(
            None,
            SpyKernelKind::Conv200,
            200_000.0,
            4_000.0,
            &gpu_cfg,
            1,
        );
        let ops = dnn_sim::plan_iteration(&zoo::vgg16(), 64);
        let conv = ops
            .iter()
            .find(|o| o.kind == dnn_sim::OpKind::Conv2D)
            .unwrap();
        let conv_kernel = dnn_sim::lower_op(conv, 0, &gpu_cfg);
        let busy = collect_microbench(
            Some(conv_kernel),
            SpyKernelKind::Conv200,
            200_000.0,
            4_000.0,
            &gpu_cfg,
            1,
        );
        let mean = |s: &[cupti_sim::CuptiSample]| {
            s.iter().map(|x| x.counters.dram_reads()).sum::<f64>() / s.len() as f64
        };
        let mi = mean(&idle);
        let mb = mean(&busy);
        assert!(mi != mb, "idle and busy identical: {} vs {}", mi, mb);
    }
}
