//! `Mlong` — the long-op classifier (§IV-B).
//!
//! An LSTM labels every sample of an iteration as `conv`, `MatMul`,
//! `OtherOp` or `NOP`. Convolutions and matrix multiplications dominate the
//! sample stream (they run longest), so the loss uses inverse-frequency
//! class weights — the paper's "weighted softmax and customized
//! cross-entropy loss to compensate for the imbalanced data".

use dnn_sim::OpClass;
use ml::loss::inverse_frequency_weights;
use ml::seq::{SeqClassifierConfig, SequenceClassifier};
use ml::{MinMaxScaler, SeqExample};
use serde::{Deserialize, Serialize};

use crate::dataset::LabeledTrace;

/// The four `Mlong` classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LongClass {
    /// Convolution (forward or backprop).
    Conv,
    /// Matrix multiplication.
    MatMul,
    /// Any other op.
    Other,
    /// No victim activity.
    Nop,
}

impl LongClass {
    /// All classes in model output order.
    pub const ALL: [LongClass; 4] = [
        LongClass::Conv,
        LongClass::MatMul,
        LongClass::Other,
        LongClass::Nop,
    ];

    /// Maps a ground-truth op class into the `Mlong` alphabet.
    pub fn of(class: OpClass) -> LongClass {
        match class {
            OpClass::Conv => LongClass::Conv,
            OpClass::MatMul => LongClass::MatMul,
            OpClass::Nop => LongClass::Nop,
            _ => LongClass::Other,
        }
    }

    /// Model output index.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("class in ALL")
    }

    /// Class from a model output index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn from_index(index: usize) -> LongClass {
        Self::ALL[index]
    }
}

/// Hyper-parameters shared by the LSTM inference models. The paper uses
/// LSTM-256 (Table III); the default here is smaller because the simulated
/// counter space is lower-dimensional than real hardware — both sizes are
/// supported.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LstmTrainConfig {
    /// Hidden units.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
    /// Minibatch size: examples whose averaged gradient feeds one Adam step
    /// (see [`ml::seq::SeqClassifierConfig::batch_size`]). Averaging damps
    /// the per-example step noise that otherwise destabilizes training on
    /// the heavily class-imbalanced iteration traces.
    pub batch_size: usize,
}

impl Default for LstmTrainConfig {
    fn default() -> Self {
        LstmTrainConfig {
            hidden: 64,
            epochs: 30,
            learning_rate: 0.01,
            seed: 0x10_57,
            batch_size: 4,
        }
    }
}

impl LstmTrainConfig {
    /// The paper's Table III geometry (LSTM-256).
    pub fn paper() -> Self {
        LstmTrainConfig {
            hidden: 256,
            ..Self::default()
        }
    }
}

/// Builds one training example from an iteration's samples.
fn iteration_example(
    trace: &LabeledTrace,
    range: &std::ops::Range<usize>,
    scaler: &MinMaxScaler,
) -> SeqExample {
    let samples = &trace.samples[range.clone()];
    let scaled: Vec<Vec<f32>> = samples
        .iter()
        .map(|s| scaler.transform_row(&s.features))
        .collect();
    let features = crate::dataset::with_lookahead(&scaled);
    let labels = samples
        .iter()
        .map(|s| LongClass::of(s.class).index())
        .collect();
    SeqExample::new(features, labels)
}

/// The trained `Mlong` model.
#[derive(Debug, Clone)]
pub struct LongOpModel {
    clf: SequenceClassifier,
}

impl LongOpModel {
    /// Trains on `(trace, iteration ranges)` pairs from the profiling phase.
    ///
    /// # Panics
    ///
    /// Panics if no iterations are provided.
    pub fn train(
        data: &[(&LabeledTrace, &[std::ops::Range<usize>])],
        scaler: &MinMaxScaler,
        config: &LstmTrainConfig,
    ) -> Self {
        let mut examples = Vec::new();
        for (trace, ranges) in data {
            for r in ranges.iter() {
                examples.push(iteration_example(trace, r, scaler));
            }
        }
        assert!(!examples.is_empty(), "Mlong needs at least one iteration");
        let weights =
            inverse_frequency_weights(examples.iter().flat_map(|e| e.labels.iter().copied()), 4);
        let mut cfg = SeqClassifierConfig::new(2 * crate::dataset::FEATURE_WIDTH, config.hidden, 4);
        cfg.epochs = config.epochs;
        cfg.learning_rate = config.learning_rate;
        cfg.seed = config.seed;
        cfg.batch_size = config.batch_size;
        cfg.class_weights = Some(weights);
        let mut clf = SequenceClassifier::new(cfg);
        clf.fit(&examples);
        LongOpModel { clf }
    }

    /// Classifies one iteration's raw samples.
    pub fn predict(&self, features: &[Vec<f32>], scaler: &MinMaxScaler) -> Vec<LongClass> {
        let scaled: Vec<Vec<f32>> = features.iter().map(|f| scaler.transform_row(f)).collect();
        self.clf
            .predict(&crate::dataset::with_lookahead(&scaled))
            .into_iter()
            .map(LongClass::from_index)
            .collect()
    }

    /// Per-timestep class probabilities for one iteration.
    pub fn predict_proba(&self, features: &[Vec<f32>], scaler: &MinMaxScaler) -> Vec<Vec<f32>> {
        let scaled: Vec<Vec<f32>> = features.iter().map(|f| scaler.transform_row(f)).collect();
        self.clf
            .predict_proba(&crate::dataset::with_lookahead(&scaled))
    }

    /// Classifies several iterations in one call: equal-length iterations
    /// share fused batched GEMMs (see
    /// [`SequenceClassifier::predict_proba_batch`]), bitwise identical to
    /// calling [`LongOpModel::predict`] once per iteration.
    pub fn predict_batch(
        &self,
        iterations: &[&[Vec<f32>]],
        scaler: &MinMaxScaler,
    ) -> Vec<Vec<LongClass>> {
        let prepared: Vec<Vec<Vec<f32>>> = iterations
            .iter()
            .map(|feats| {
                let scaled: Vec<Vec<f32>> = feats.iter().map(|f| scaler.transform_row(f)).collect();
                crate::dataset::with_lookahead(&scaled)
            })
            .collect();
        let refs: Vec<&[Vec<f32>]> = prepared.iter().map(|p| p.as_slice()).collect();
        self.clf
            .predict_batch(&refs)
            .into_iter()
            .map(|seq| seq.into_iter().map(LongClass::from_index).collect())
            .collect()
    }

    /// The underlying sequence classifier — the streaming engine
    /// ([`crate::stream`]) drives it directly with stateful chunked
    /// inference over prepared (scaled + lookahead) rows.
    pub fn classifier(&self) -> &SequenceClassifier {
        &self.clf
    }

    /// Post-training int8 quantization of the trained classifier (see
    /// [`ml::quant`]). A pure function of the f32 weights — no RNG, no
    /// calibration data — so the twin is deterministic and inference only;
    /// the f32 model keeps serving the bitwise-pinned paths.
    pub fn quantize(&self) -> QuantizedLongOpModel {
        QuantizedLongOpModel {
            clf: ml::quant::QuantizedSequenceClassifier::from_f32(&self.clf),
        }
    }
}

/// Int8 serving twin of [`LongOpModel`], built by [`LongOpModel::quantize`].
#[derive(Debug, Clone)]
pub struct QuantizedLongOpModel {
    clf: ml::quant::QuantizedSequenceClassifier,
}

impl QuantizedLongOpModel {
    /// Int8 counterpart of [`LongOpModel::predict_batch`]: identical scaler
    /// and lookahead preparation, quantized inference. Labels agree with
    /// the f32 path to ≥ 99% (measured by `serving_bench` and pinned in the
    /// golden quantization report) but are **not** bitwise equal —
    /// quantization is lossy by design.
    pub fn predict_batch(
        &self,
        iterations: &[&[Vec<f32>]],
        scaler: &MinMaxScaler,
    ) -> Vec<Vec<LongClass>> {
        let prepared: Vec<Vec<Vec<f32>>> = iterations
            .iter()
            .map(|feats| {
                let scaled: Vec<Vec<f32>> = feats.iter().map(|f| scaler.transform_row(f)).collect();
                crate::dataset::with_lookahead(&scaled)
            })
            .collect();
        let refs: Vec<&[Vec<f32>]> = prepared.iter().map(|p| p.as_slice()).collect();
        self.clf
            .predict_batch(&refs)
            .into_iter()
            .map(|seq| seq.into_iter().map(LongClass::from_index).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mapping() {
        assert_eq!(LongClass::of(OpClass::Conv), LongClass::Conv);
        assert_eq!(LongClass::of(OpClass::MatMul), LongClass::MatMul);
        assert_eq!(LongClass::of(OpClass::Relu), LongClass::Other);
        assert_eq!(LongClass::of(OpClass::Optimizer), LongClass::Other);
        assert_eq!(LongClass::of(OpClass::Nop), LongClass::Nop);
        for c in LongClass::ALL {
            assert_eq!(LongClass::from_index(c.index()), c);
        }
    }

    #[test]
    fn default_config_is_sane() {
        let c = LstmTrainConfig::default();
        assert!(c.hidden > 0 && c.epochs > 0);
        assert_eq!(LstmTrainConfig::paper().hidden, 256);
    }
}
