//! End-to-end MoSConS orchestration (Figure 4).
//!
//! **Profiling phase**: the adversary trains several models of her own on
//! the shared GPU, collects spy traces, labels them against the TensorFlow
//! timeline, and trains `Mgap`, `Mlong`, `Mop`, `Vlong`, `Vop` and the five
//! `Mhp` heads.
//!
//! **Attack phase**: she waits for the victim's training to start, runs the
//! spy + slow-down kernels, splits the sample stream into iterations with
//! `Mgap`, classifies ops per iteration, votes across iterations, collapses
//! and parses the OpSeq into layers, attaches hyper-parameters, and applies
//! DNN-syntax correction.

use dnn_sim::{OpClass, Optimizer, TrainingSession};
use gpu_sim::GpuConfig;
use ml::MinMaxScaler;
use serde::{Deserialize, Serialize};

use crate::dataset::{fit_scaler, LabeledTrace};
use crate::gap::{GapConfig, GapModel};
use crate::hyperparams::{HpKind, HpModel};
use crate::long_ops::{LongClass, LongOpModel, LstmTrainConfig, QuantizedLongOpModel};
use crate::opseq::{
    collapse, forward_boundary, merge_predictions, parse_forward_layers_lenient,
    parse_forward_layers_zoo, structure_string, RecoveredGraph, RecoveredKind, RecoveredLayer,
};
use crate::other_ops::{OpVocab, OtherClass, OtherOpModel, QuantizedOtherOpModel};
use crate::syntax::{correct_graph, SyntaxConfig};
use crate::trace::{collect_trace, CollectionConfig, RawTrace};
use crate::voting::{VotingExample, VotingModel};
use std::sync::OnceLock;

/// Numeric precision of the `Mlong`/`Mop` group classification during
/// extraction.
///
/// [`InferencePrecision::F32`] (the default) is the bitwise-pinned path all
/// golden f32 reports use. [`InferencePrecision::Int8`] routes the two op
/// classifiers through their post-training-quantized twins
/// ([`ml::quant`]) for serving throughput, trading bitwise equality for
/// ≥ 99% label agreement (pinned in the golden quantization report).
/// Training, gap splitting, voting and the `Mhp` heads always stay f32 —
/// the knob only changes which weights score the iteration group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InferencePrecision {
    /// Full-precision inference (bitwise-deterministic, golden-pinned).
    #[default]
    F32,
    /// Quantized int8 inference (deterministic, label-agreement-pinned).
    Int8,
}

/// Full attack configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// Spy/slow-down/sampling configuration.
    pub collection: CollectionConfig,
    /// Iteration-splitting parameters.
    pub gap: GapConfig,
    /// `Mlong`/`Mop` training configuration.
    pub op_lstm: LstmTrainConfig,
    /// `Vlong`/`Vop` training configuration.
    pub voting_lstm: LstmTrainConfig,
    /// `Mhp` training configuration (paper: LSTM-128).
    pub hp_lstm: LstmTrainConfig,
    /// Iterations fused by voting (paper §V-B: 5).
    pub voting_iterations: usize,
    /// Syntax-correction rules.
    pub syntax: SyntaxConfig,
    /// Simulated GPU.
    pub gpu: GpuConfig,
    /// `Mop` label space (serde-defaulted to [`OpVocab::Classic`] so every
    /// existing config — and cached trace key — keeps deserializing and the
    /// classic pipeline stays bitwise-identical).
    #[serde(default)]
    pub vocab: OpVocab,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            collection: CollectionConfig::paper(),
            gap: GapConfig::default(),
            op_lstm: LstmTrainConfig::default(),
            voting_lstm: LstmTrainConfig {
                hidden: 24,
                epochs: 24,
                ..LstmTrainConfig::default()
            },
            hp_lstm: LstmTrainConfig {
                hidden: 40,
                epochs: 24,
                ..LstmTrainConfig::default()
            },
            voting_iterations: 5,
            syntax: SyntaxConfig::default(),
            gpu: GpuConfig::gtx_1080_ti(),
            vocab: OpVocab::default(),
        }
    }
}

// The extraction fan-out gate lives with every other work-size gate in
// `ml::par::thresholds` (leaky-lint rule A4 keeps it that way). The
// `Mlong`/`Mop` group predictions no longer need a gate at all: they run as
// packed batches whose GEMM row blocks parallelize under the module's own
// `MIN_PARALLEL_GEMM_FLOPS`.
use ml::par::thresholds::MIN_PARALLEL_EXTRACT_ROWS;

/// A trained MoSConS instance.
#[derive(Debug)]
pub struct Moscons {
    config: AttackConfig,
    scaler: MinMaxScaler,
    gap: GapModel,
    m_long: LongOpModel,
    m_op: OtherOpModel,
    v_long: VotingModel,
    v_op: VotingModel,
    hp: Vec<HpModel>,
    /// Lazily-built int8 twins of `m_long`/`m_op` for
    /// [`InferencePrecision::Int8`]. Quantization is a pure function of the
    /// trained weights, so each twin is built at most once per instance.
    q_long: OnceLock<QuantizedLongOpModel>,
    q_op: OnceLock<QuantizedOtherOpModel>,
}

/// The product of one extraction.
#[derive(Debug, Clone)]
pub struct Extraction {
    /// Recovered layers after syntax correction.
    pub layers: Vec<RecoveredLayer>,
    /// Recovered optimizer.
    pub optimizer: Option<Optimizer>,
    /// Structure string in Table IX format.
    pub structure: String,
    /// Valid iteration ranges found by `Mgap`.
    pub iterations: Vec<std::ops::Range<usize>>,
    /// Fused per-sample classes on the base iteration's timeline.
    pub fused_classes: Vec<OpClass>,
    /// Pre-voting per-sample classes of the base iteration.
    pub pre_voting_classes: Vec<OpClass>,
    /// Plain per-position majority vote across the group (the non-learned
    /// baseline, for the voting ablation).
    pub majority_classes: Vec<OpClass>,
    /// Number of syntax edits applied.
    pub syntax_edits: usize,
}

impl Extraction {
    /// Flattens this extraction into a comparable, serializable
    /// [`crate::report::AttackReport`].
    pub fn report(&self) -> crate::report::AttackReport {
        crate::report::AttackReport::from_extraction(self)
    }
}

impl Moscons {
    /// Profiles the given training sessions (the adversary's own models) and
    /// trains the full inference stack.
    ///
    /// # Panics
    ///
    /// Panics if `sessions` is empty or any profiling run produces fewer
    /// than `voting_iterations` valid iterations.
    pub fn profile(sessions: &[TrainingSession], config: AttackConfig) -> Self {
        assert!(!sessions.is_empty(), "profiling needs at least one model");
        // Collect + label every profiling model. Each session's trace is
        // seeded independently, so the fan-out over the worker pool returns
        // the same traces as the serial loop.
        let traces: Vec<LabeledTrace> = ml::par::par_map(sessions, |i, session| {
            let raw = collect_trace(
                session,
                &config
                    .collection
                    .with_seed(config.collection.seed ^ (i as u64 * 7919)),
                &config.gpu,
            );
            LabeledTrace::from_raw(&raw, session.model().name.clone())
        });
        let trace_refs: Vec<&LabeledTrace> = traces.iter().collect();
        let scaler = fit_scaler(&trace_refs);
        let gap = GapModel::train(&trace_refs, &scaler, config.gap);

        // Ground-truth iteration ranges (profiling phase has the timeline).
        let ranges: Vec<Vec<std::ops::Range<usize>>> = traces
            .iter()
            .map(|t| t.split_iterations_ground_truth(config.gap.th_gap))
            .collect();

        let op_data: Vec<(&LabeledTrace, &[std::ops::Range<usize>])> = traces
            .iter()
            .zip(&ranges)
            .map(|(t, r)| (t, r.as_slice()))
            .collect();
        // The two op classifiers train on disjoint state, concurrently when
        // workers are available.
        let (m_long, m_op) = ml::par::join(
            || LongOpModel::train(&op_data, &scaler, &config.op_lstm),
            || OtherOpModel::train(&op_data, &scaler, &config.op_lstm, config.vocab),
        );

        // Voting training data: per trace, sliding groups of n iterations.
        let n = config.voting_iterations;
        let mut long_examples = Vec::new();
        let mut op_examples = Vec::new();
        for (trace, trace_ranges) in traces.iter().zip(&ranges) {
            // One feature materialization per range feeds both op models,
            // and each model classifies all ranges as one packed batch —
            // equal-length iterations share fused GEMMs, bitwise identical
            // to looping over iterations (see
            // [`ml::seq::SequenceClassifier::predict_proba_batch`]).
            let range_feats: Vec<Vec<Vec<f32>>> = trace_ranges
                .iter()
                .map(|r| {
                    trace.samples[r.clone()]
                        .iter()
                        .map(|s| s.features.clone())
                        .collect()
                })
                .collect();
            let feat_refs: Vec<&[Vec<f32>]> = range_feats.iter().map(|f| f.as_slice()).collect();
            let preds_long: Vec<Vec<usize>> = m_long
                .predict_batch(&feat_refs, &scaler)
                .into_iter()
                .map(|seq| seq.into_iter().map(LongClass::index).collect())
                .collect();
            let preds_op: Vec<Vec<usize>> = m_op
                .predict_batch(&feat_refs, &scaler)
                .into_iter()
                .map(|seq| seq.into_iter().map(OtherClass::index).collect())
                .collect();
            for g in 0..trace_ranges.len().saturating_sub(n - 1) {
                let base = &trace_ranges[g];
                let truth_long: Vec<usize> = trace.samples[base.clone()]
                    .iter()
                    .map(|s| LongClass::of(s.class).index())
                    .collect();
                long_examples.push(VotingExample::new(
                    preds_long[g..g + n].to_vec(),
                    truth_long,
                ));
                let mut truth_op = Vec::with_capacity(base.len());
                let mut mask_op = Vec::with_capacity(base.len());
                for s in &trace.samples[base.clone()] {
                    match OtherClass::of(s.class) {
                        Some(c) => {
                            truth_op.push(c.index());
                            mask_op.push(true);
                        }
                        None => {
                            truth_op.push(0);
                            mask_op.push(false);
                        }
                    }
                }
                op_examples.push(VotingExample::with_mask(
                    preds_op[g..g + n].to_vec(),
                    truth_op,
                    mask_op,
                ));
            }
        }
        assert!(
            !long_examples.is_empty(),
            "profiling runs must contain at least {} iterations each",
            n
        );
        // Hyper-parameter training data.
        let hp_data: Vec<(&LabeledTrace, &dnn_sim::Model, &[std::ops::Range<usize>])> = traces
            .iter()
            .zip(sessions)
            .zip(&ranges)
            .map(|((t, s), r)| (t, s.model(), r.as_slice()))
            .collect();

        // `Vlong`, `Vop` and the five `Mhp` heads are mutually independent
        // models, so all seven train as one coarse fan-out over the worker
        // pool — one model per task, the granularity at which there is
        // enough work to amortize a dispatch. Every individual training is
        // bitwise thread-count invariant and `par_map` returns results in
        // task order, so the fan-out is bitwise identical to the serial
        // sequence. The five `Mhp` heads go first: they are the oversized
        // tasks of the seven (wider LSTM over full iteration sequences vs.
        // the voting models' short label windows), and `par_map`'s dynamic
        // pickup hands out tasks in list order — scheduling the heavy ones
        // first keeps the tail of the fan-out from serializing behind one
        // straggler Mhp head that was picked up last.
        #[derive(Clone, Copy)]
        enum TailTask {
            VotingLong,
            VotingOp,
            Hp(HpKind),
        }
        enum TailModel {
            Voting(VotingModel),
            Hp(HpModel),
        }
        let tasks: Vec<TailTask> = HpKind::ALL
            .into_iter()
            .map(TailTask::Hp)
            .chain([TailTask::VotingLong, TailTask::VotingOp])
            .collect();
        let mut tail = ml::par::par_map(&tasks, |_, &task| match task {
            TailTask::VotingLong => TailModel::Voting(VotingModel::train(
                &long_examples,
                4,
                n,
                &config.voting_lstm,
            )),
            TailTask::VotingOp => TailModel::Voting(VotingModel::train(
                &op_examples,
                config.vocab.other_classes(),
                n,
                &config.voting_lstm,
            )),
            TailTask::Hp(kind) => {
                TailModel::Hp(HpModel::train(kind, &hp_data, &scaler, &config.hp_lstm))
            }
        })
        .into_iter();
        let hp: Vec<HpModel> = tail
            .by_ref()
            .take(HpKind::ALL.len())
            .map(|t| match t {
                TailModel::Hp(h) => h,
                TailModel::Voting(_) => unreachable!("tasks 0..5 train Mhp heads"),
            })
            .collect();
        let Some(TailModel::Voting(v_long)) = tail.next() else {
            unreachable!("task 5 trains Vlong")
        };
        let Some(TailModel::Voting(v_op)) = tail.next() else {
            unreachable!("task 6 trains Vop")
        };

        Moscons {
            config,
            scaler,
            gap,
            m_long,
            m_op,
            v_long,
            v_op,
            hp,
            q_long: OnceLock::new(),
            q_op: OnceLock::new(),
        }
    }

    /// The configuration this instance was trained with.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// The trained gap model (exposed for the Table VI bench).
    pub fn gap_model(&self) -> &GapModel {
        &self.gap
    }

    /// The fitted scaler.
    pub fn scaler(&self) -> &MinMaxScaler {
        &self.scaler
    }

    /// The trained `Mlong` model.
    pub fn long_model(&self) -> &LongOpModel {
        &self.m_long
    }

    /// The trained `Mop` model.
    pub fn op_model(&self) -> &OtherOpModel {
        &self.m_op
    }

    /// The trained `Mhp` head for one hyper-parameter kind.
    pub fn hp_model(&self, kind: HpKind) -> &HpModel {
        self.hp
            .iter()
            .find(|h| h.kind() == kind)
            // Construction invariant: `train` builds exactly one head per
            // HpKind; a missing head is a training bug, not a serving
            // condition. lint: allow(A2)
            .expect("all five heads are trained")
    }

    /// The trained `Vlong` voting model.
    pub fn voting_long(&self) -> &VotingModel {
        &self.v_long
    }

    /// The trained `Vop` voting model.
    pub fn voting_op(&self) -> &VotingModel {
        &self.v_op
    }

    /// The lazily-quantized int8 twin of `Mlong` (built on first use).
    pub fn quantized_long_model(&self) -> &QuantizedLongOpModel {
        self.q_long.get_or_init(|| self.m_long.quantize())
    }

    /// The lazily-quantized int8 twin of `Mop` (built on first use).
    pub fn quantized_op_model(&self) -> &QuantizedOtherOpModel {
        self.q_op.get_or_init(|| self.m_op.quantize())
    }

    /// Runs the full extraction on a victim's sample stream at the default
    /// [`InferencePrecision::F32`] — the bitwise-pinned path every existing
    /// caller and golden report goes through, untouched by the int8 knob.
    ///
    /// `features` is the attack-time CUPTI sample stream, already passed
    /// through [`crate::dataset::counter_features`] (as [`Moscons::attack`]
    /// does), in time order.
    pub fn extract(&self, features: &[Vec<f32>]) -> Extraction {
        self.extract_with_precision(features, InferencePrecision::F32)
    }

    /// [`Moscons::extract`] with an explicit op-classifier precision.
    pub fn extract_with_precision(
        &self,
        features: &[Vec<f32>],
        precision: InferencePrecision,
    ) -> Extraction {
        let iterations = self.gap.split_iterations(features, &self.scaler);
        if iterations.is_empty() {
            return Self::empty_extraction(iterations);
        }
        let n = self.config.voting_iterations.min(iterations.len());
        let group = &iterations[..n];

        // Per-iteration predictions as one packed batch per model:
        // equal-length iterations in the group share fused GEMMs, and the
        // GEMM row blocks fan out over the worker pool on their own when
        // the batch carries enough FLOPs (see [`ml::matrix`]). Bitwise
        // identical to classifying each iteration separately.
        let group_feats: Vec<&[Vec<f32>]> = group.iter().map(|r| &features[r.clone()]).collect();
        let (long_classes, op_classes) = match precision {
            InferencePrecision::F32 => (
                self.m_long.predict_batch(&group_feats, &self.scaler),
                self.m_op.predict_batch(&group_feats, &self.scaler),
            ),
            InferencePrecision::Int8 => (
                self.quantized_long_model()
                    .predict_batch(&group_feats, &self.scaler),
                self.quantized_op_model()
                    .predict_batch(&group_feats, &self.scaler),
            ),
        };
        let preds_long: Vec<Vec<usize>> = long_classes
            .into_iter()
            .map(|seq| seq.into_iter().map(LongClass::index).collect())
            .collect();
        let preds_op: Vec<Vec<usize>> = op_classes
            .into_iter()
            .map(|seq| seq.into_iter().map(OtherClass::index).collect())
            .collect();

        // Hyper-parameters on the base iteration's feature stream.
        let base = &iterations[0];
        let base_feats = &features[base.clone()];
        let hp_preds: Vec<Vec<usize>> = ml::par::par_map_if_work(
            base_feats.len(),
            MIN_PARALLEL_EXTRACT_ROWS,
            &self.hp,
            |_, h| h.predict(base_feats, &self.scaler),
        );

        self.assemble_extraction(iterations, &preds_long, &preds_op, &hp_preds)
    }

    /// The empty-stream extraction (`Mgap` found no valid iterations).
    pub(crate) fn empty_extraction(iterations: Vec<std::ops::Range<usize>>) -> Extraction {
        Extraction {
            layers: Vec::new(),
            optimizer: None,
            structure: structure_string(&[], None),
            iterations,
            fused_classes: Vec::new(),
            pre_voting_classes: Vec::new(),
            majority_classes: Vec::new(),
            syntax_edits: 0,
        }
    }

    /// Assembles the final [`Extraction`] from already-computed per-iteration
    /// labels: voting fusion, OpSeq collapse/parse, hyper-parameter
    /// attachment, optimizer vote and syntax correction.
    ///
    /// This is the pure back half of [`Moscons::extract_with_precision`] —
    /// it looks only at labels and lengths, never at features — shared
    /// verbatim with the streaming engine ([`crate::stream::AttackStream`]),
    /// which is what reduces the streaming-vs-batch golden proof to label
    /// equality.
    ///
    /// `iterations` are the valid iteration ranges, `preds_long`/`preds_op`
    /// the per-iteration label sequences of the first
    /// `voting_iterations.min(len)` of them, and `hp_preds` the five `Mhp`
    /// head outputs over the base (first) iteration.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is non-empty but the label groups are empty
    /// or inconsistent with it.
    pub(crate) fn assemble_extraction(
        &self,
        iterations: Vec<std::ops::Range<usize>>,
        preds_long: &[Vec<usize>],
        preds_op: &[Vec<usize>],
        hp_preds: &[Vec<usize>],
    ) -> Extraction {
        if iterations.is_empty() {
            return Self::empty_extraction(iterations);
        }
        let base_len = iterations[0].len();
        assert_eq!(preds_long.len(), preds_op.len(), "one group per model");
        assert_eq!(hp_preds.len(), self.hp.len(), "one stream per Mhp head");
        assert!(
            hp_preds.iter().all(|p| p.len() == base_len),
            "Mhp labels must cover the base iteration"
        );

        // Voting on the base timeline.
        let fused_long: Vec<LongClass> = self
            .v_long
            .fuse(preds_long)
            .into_iter()
            .map(LongClass::from_index)
            .collect();
        let fused_op: Vec<OtherClass> = self
            .v_op
            .fuse(preds_op)
            .into_iter()
            .map(OtherClass::from_index)
            .collect();
        let fused = merge_predictions(&fused_long, &fused_op);

        let majority = merge_predictions(
            &crate::voting::majority_vote(preds_long, 4)
                .into_iter()
                .map(LongClass::from_index)
                .collect::<Vec<_>>(),
            &crate::voting::majority_vote(preds_op, self.config.vocab.other_classes())
                .into_iter()
                .map(OtherClass::from_index)
                .collect::<Vec<_>>(),
        );

        let pre_voting = merge_predictions(
            &preds_long[0]
                .iter()
                .map(|&i| LongClass::from_index(i))
                .collect::<Vec<_>>(),
            &preds_op[0]
                .iter()
                .map(|&i| OtherClass::from_index(i))
                .collect::<Vec<_>>(),
        );

        // Collapse + parse the forward prefix (boundary-bounded, lenient).
        // Classic keeps the linear-chain parser verbatim; Zoo uses the
        // graph-aware parser, which degenerates to the same layer list on
        // traces without zoo ops.
        let runs = collapse(&fused);
        let boundary = forward_boundary(&fused);
        let mut graph = match self.config.vocab {
            OpVocab::Classic => {
                RecoveredGraph::linear(parse_forward_layers_lenient(&runs, boundary))
            }
            OpVocab::Zoo => parse_forward_layers_zoo(&runs, boundary),
        };

        // Hyper-parameters at each layer's last forward sample.
        for layer in graph.layers.iter_mut() {
            let pos = layer.last_sample.min(base_len.saturating_sub(1));
            match layer.kind {
                RecoveredKind::Conv | RecoveredKind::Separable => {
                    layer.filters = Some(HpKind::Filters.decode(hp_preds[0][pos]));
                    layer.filter_size = Some(HpKind::FilterSize.decode(hp_preds[1][pos]));
                    layer.stride = Some(HpKind::Stride.decode(hp_preds[3][pos]));
                }
                RecoveredKind::Dense | RecoveredKind::Attention => {
                    layer.units = Some(HpKind::Neurons.decode(hp_preds[2][pos]));
                }
                RecoveredKind::Pool => {}
            }
        }

        // Optimizer: majority of the Mhp optimizer head over the samples the
        // op models attribute to the optimizer tail.
        let optimizer = {
            let opt_positions: Vec<usize> = fused
                .iter()
                .enumerate()
                .filter(|(_, &c)| c == OpClass::Optimizer)
                .map(|(i, _)| i.min(base_len.saturating_sub(1)))
                .collect();
            let positions: Vec<usize> = if opt_positions.is_empty() {
                // Fallback: the last 10% of the iteration.
                let start = base_len.saturating_sub(base_len / 10 + 1);
                (start..base_len).collect()
            } else {
                opt_positions
            };
            let mut counts = [0usize; 3];
            for &p in &positions {
                counts[hp_preds[4][p].min(2)] += 1;
            }
            // Last maximum wins, matching Iterator::max_by_key's tie rule,
            // without an Option to unwrap on the serving path.
            let mut best = 0usize;
            for i in 1..3 {
                if counts[i] >= counts[best] {
                    best = i;
                }
            }
            (counts[best] > 0).then(|| HpKind::class_optimizer(best))
        };

        let syntax_edits = correct_graph(&mut graph, &self.config.syntax);
        let structure = structure_string(&graph.layers, optimizer);

        Extraction {
            layers: graph.layers,
            optimizer,
            structure,
            iterations,
            fused_classes: fused,
            pre_voting_classes: pre_voting,
            majority_classes: majority,
            syntax_edits,
        }
    }

    /// Convenience: collect a victim trace and extract in one call (at the
    /// default f32 precision).
    pub fn attack(&self, victim: &TrainingSession, seed: u64) -> (Extraction, RawTrace) {
        self.attack_on(victim, seed, &self.config.gpu)
    }

    /// [`Moscons::attack`] with an explicit op-classifier precision —
    /// opt-in int8 serving for fleet-scale classification; f32 callers are
    /// untouched.
    pub fn attack_with_precision(
        &self,
        victim: &TrainingSession,
        seed: u64,
        precision: InferencePrecision,
    ) -> (Extraction, RawTrace) {
        self.attack_on_with_precision(victim, seed, &self.config.gpu, precision)
    }

    /// [`Moscons::attack`] against an explicit GPU configuration — the knob
    /// for noise and fault-sensitivity studies: profile once on clean
    /// hardware, then attack the same victim under increasingly hostile
    /// [`gpu_sim::FaultPlan`]s without retraining anything.
    pub fn attack_on(
        &self,
        victim: &TrainingSession,
        seed: u64,
        gpu: &gpu_sim::GpuConfig,
    ) -> (Extraction, RawTrace) {
        self.attack_on_with_precision(victim, seed, gpu, InferencePrecision::F32)
    }

    /// [`Moscons::attack_on`] with an explicit op-classifier precision.
    /// Trace collection (and therefore the content-addressed trace cache)
    /// is precision-independent: only the classification differs.
    pub fn attack_on_with_precision(
        &self,
        victim: &TrainingSession,
        seed: u64,
        gpu: &gpu_sim::GpuConfig,
        precision: InferencePrecision,
    ) -> (Extraction, RawTrace) {
        let raw = collect_trace(victim, &self.config.collection.with_seed(seed), gpu);
        let features = crate::cache::counter_feature_matrix(&raw);
        (self.extract_with_precision(&features, precision), raw)
    }
}
