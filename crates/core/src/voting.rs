//! `Vlong` / `Vop` — the LSTM voting models (§IV-B).
//!
//! Training takes many iterations, so the same OpSeq is observed repeatedly;
//! the voting models consume `n` iterations' per-sample predictions (as
//! stacked one-hot vectors) and emit a corrected sequence. Following the
//! paper, the sequences are **not aligned** beforehand — the first
//! iteration's timeline is the base and the LSTM memorizes offsets.

use ml::data::one_hot;
use ml::seq::{SeqClassifierConfig, SequenceClassifier};
use ml::SeqExample;
use serde::{Deserialize, Serialize};

use crate::long_ops::LstmTrainConfig;

/// One voting training example: `n` prediction sequences plus the ground
/// truth aligned to the first sequence's timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VotingExample {
    /// Per-iteration predicted class indices (first = base timeline).
    pub iterations: Vec<Vec<usize>>,
    /// Ground-truth class indices for the base timeline.
    pub truth: Vec<usize>,
    /// Loss mask for the base timeline (`Vop` only counts OtherOp losses).
    pub mask: Vec<bool>,
}

impl VotingExample {
    /// Validates shape invariants.
    ///
    /// # Panics
    ///
    /// Panics if there are no iterations or the truth length differs from
    /// the base iteration's.
    pub fn new(iterations: Vec<Vec<usize>>, truth: Vec<usize>) -> Self {
        let mask = vec![true; truth.len()];
        Self::with_mask(iterations, truth, mask)
    }

    /// Creates an example with an explicit loss mask.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn with_mask(iterations: Vec<Vec<usize>>, truth: Vec<usize>, mask: Vec<bool>) -> Self {
        assert!(
            !iterations.is_empty(),
            "voting needs at least one iteration"
        );
        assert_eq!(
            iterations[0].len(),
            truth.len(),
            "truth must align with the base iteration"
        );
        assert_eq!(truth.len(), mask.len(), "mask must align with the truth");
        VotingExample {
            iterations,
            truth,
            mask,
        }
    }
}

/// Builds the stacked-one-hot feature matrix for a group of iteration
/// predictions: timestep `t` concatenates each iteration's one-hot at `t`
/// (all-zeros where an iteration is shorter than the base).
fn stack_features(iterations: &[Vec<usize>], n: usize, classes: usize) -> Vec<Vec<f32>> {
    let base_len = iterations[0].len();
    (0..base_len)
        .map(|t| {
            let mut row = Vec::with_capacity(n * classes);
            for i in 0..n {
                match iterations.get(i).and_then(|seq| seq.get(t)) {
                    Some(&c) => row.extend(one_hot(c, classes)),
                    None => row.extend(std::iter::repeat_n(0.0, classes)),
                }
            }
            row
        })
        .collect()
}

/// An LSTM that fuses `n` iterations' predictions into one sequence.
#[derive(Debug, Clone)]
pub struct VotingModel {
    clf: SequenceClassifier,
    classes: usize,
    n_iterations: usize,
}

impl VotingModel {
    /// Trains a voting model for `classes`-way predictions over groups of
    /// `n_iterations` iterations.
    ///
    /// # Panics
    ///
    /// Panics if `examples` is empty or shapes are inconsistent.
    pub fn train(
        examples: &[VotingExample],
        classes: usize,
        n_iterations: usize,
        config: &LstmTrainConfig,
    ) -> Self {
        assert!(!examples.is_empty(), "voting model needs training examples");
        let seqs: Vec<SeqExample> = examples
            .iter()
            .map(|ex| {
                let features = stack_features(&ex.iterations, n_iterations, classes);
                SeqExample::with_mask(features, ex.truth.clone(), ex.mask.clone())
            })
            .collect();
        let mut cfg = SeqClassifierConfig::new(n_iterations * classes, config.hidden, classes);
        cfg.epochs = config.epochs;
        cfg.learning_rate = config.learning_rate;
        cfg.seed = config.seed ^ 0x0516;
        cfg.batch_size = config.batch_size;
        let mut clf = SequenceClassifier::new(cfg);
        clf.fit(&seqs);
        VotingModel {
            clf,
            classes,
            n_iterations,
        }
    }

    /// Number of classes being fused.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of iterations the model was trained to fuse.
    pub fn n_iterations(&self) -> usize {
        self.n_iterations
    }

    /// Fuses a group of prediction sequences into one corrected sequence on
    /// the first sequence's timeline. Extra iterations beyond the trained
    /// `n` are ignored; missing ones appear as all-zero inputs.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is empty.
    pub fn fuse(&self, iterations: &[Vec<usize>]) -> Vec<usize> {
        assert!(!iterations.is_empty(), "fuse needs at least one iteration");
        let features = stack_features(iterations, self.n_iterations, self.classes);
        self.clf.predict(&features)
    }
}

/// Plain per-timestep majority vote over prediction sequences (the
/// non-learned baseline the LSTM voting models are compared against in the
/// ablation bench). Ties go to the earliest iteration's prediction.
pub fn majority_vote(iterations: &[Vec<usize>], classes: usize) -> Vec<usize> {
    assert!(!iterations.is_empty(), "majority vote needs input");
    let base_len = iterations[0].len();
    (0..base_len)
        .map(|t| {
            let mut counts = vec![0usize; classes];
            for seq in iterations {
                if let Some(&c) = seq.get(t) {
                    counts[c] += 1;
                }
            }
            let mut best = iterations[0][t];
            for (c, &n) in counts.iter().enumerate() {
                if n > counts[best] {
                    best = c;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_copies(
        truth: &[usize],
        classes: usize,
        n: usize,
        flip_every: usize,
    ) -> Vec<Vec<usize>> {
        (0..n)
            .map(|i| {
                truth
                    .iter()
                    .enumerate()
                    .map(|(t, &c)| {
                        if (t + i) % flip_every == 0 {
                            (c + 1) % classes
                        } else {
                            c
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn stacked_features_have_expected_shape() {
        let iters = vec![vec![0, 1, 2], vec![2, 0]];
        let f = stack_features(&iters, 3, 3);
        assert_eq!(f.len(), 3);
        assert_eq!(f[0].len(), 9);
        // Second timestep: iteration 0 -> class 1, iteration 1 -> class 0,
        // iteration 2 absent (zeros).
        assert_eq!(f[1], vec![0.0, 1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        // Third timestep: iteration 1 exhausted -> zeros.
        assert_eq!(&f[2][3..6], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn voting_corrects_independent_errors() {
        // Truth is a repeating pattern; each iteration flips a different
        // subset of positions. Voting should recover the truth better than
        // any single iteration.
        let truth: Vec<usize> = (0..24).map(|t| (t / 4) % 3).collect();
        let mut examples = Vec::new();
        for g in 0..6 {
            let iters = noisy_copies(&truth, 3, 5, 5 + g % 3);
            examples.push(VotingExample::new(iters, truth.clone()));
        }
        let cfg = LstmTrainConfig {
            hidden: 16,
            epochs: 30,
            ..LstmTrainConfig::default()
        };
        let model = VotingModel::train(&examples, 3, 5, &cfg);
        let test_iters = noisy_copies(&truth, 3, 5, 6);
        let fused = model.fuse(&test_iters);
        let fused_acc = fused.iter().zip(&truth).filter(|(a, b)| a == b).count();
        let single_acc = test_iters[0]
            .iter()
            .zip(&truth)
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            fused_acc >= single_acc,
            "voting made things worse: {} vs {}",
            fused_acc,
            single_acc
        );
        assert!(fused_acc as f64 / truth.len() as f64 > 0.85);
    }

    #[test]
    fn majority_vote_basics() {
        let iters = vec![vec![0, 1, 1], vec![0, 1, 0], vec![1, 1, 0]];
        assert_eq!(majority_vote(&iters, 2), vec![0, 1, 0]);
    }

    #[test]
    fn majority_vote_handles_short_iterations() {
        let iters = vec![vec![0, 1, 1, 1], vec![0, 1], vec![0, 0]];
        let v = majority_vote(&iters, 2);
        assert_eq!(v.len(), 4);
        assert_eq!(v[0], 0);
        assert_eq!(v[3], 1);
    }

    #[test]
    #[should_panic(expected = "truth must align")]
    fn misaligned_truth_panics() {
        let _ = VotingExample::new(vec![vec![0, 1]], vec![0]);
    }
}
