//! `Mop` — the OtherOp classifier (§IV-B).
//!
//! Classifies the non-long ops: `BiasAdd`, the activations, pooling and the
//! optimizer's apply ops. The paper's loss customization is reproduced
//! exactly: samples whose ground truth is a long op or NOP are fed forward
//! (the LSTM keeps its memory of them) but contribute **no loss** — "the
//! loss resulted from Conv2D, Conv2DBackprop and NOP samples are all
//! neglected".

use dnn_sim::OpClass;
use ml::loss::inverse_frequency_weights;
use ml::seq::{SeqClassifierConfig, SequenceClassifier};
use ml::{MinMaxScaler, SeqExample};
use serde::{Deserialize, Serialize};

use crate::dataset::LabeledTrace;
use crate::long_ops::LstmTrainConfig;

/// The `Mop` output alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OtherClass {
    /// Bias addition (forward or gradient).
    BiasAdd,
    /// ReLU (forward or gradient).
    Relu,
    /// Tanh (forward or gradient).
    Tanh,
    /// Sigmoid (forward or gradient).
    Sigmoid,
    /// Max pooling (forward or gradient).
    Pool,
    /// Optimizer apply op.
    Optimizer,
}

impl OtherClass {
    /// All classes in model output order.
    pub const ALL: [OtherClass; 6] = [
        OtherClass::BiasAdd,
        OtherClass::Relu,
        OtherClass::Tanh,
        OtherClass::Sigmoid,
        OtherClass::Pool,
        OtherClass::Optimizer,
    ];

    /// Maps an op class into the `Mop` alphabet; `None` for long ops / NOP.
    pub fn of(class: OpClass) -> Option<OtherClass> {
        match class {
            OpClass::BiasAdd => Some(OtherClass::BiasAdd),
            OpClass::Relu => Some(OtherClass::Relu),
            OpClass::Tanh => Some(OtherClass::Tanh),
            OpClass::Sigmoid => Some(OtherClass::Sigmoid),
            OpClass::Pool => Some(OtherClass::Pool),
            OpClass::Optimizer => Some(OtherClass::Optimizer),
            OpClass::Conv | OpClass::MatMul | OpClass::Nop => None,
        }
    }

    /// Back to the shared [`OpClass`] alphabet.
    pub fn op_class(self) -> OpClass {
        match self {
            OtherClass::BiasAdd => OpClass::BiasAdd,
            OtherClass::Relu => OpClass::Relu,
            OtherClass::Tanh => OpClass::Tanh,
            OtherClass::Sigmoid => OpClass::Sigmoid,
            OtherClass::Pool => OpClass::Pool,
            OtherClass::Optimizer => OpClass::Optimizer,
        }
    }

    /// Model output index.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("class in ALL")
    }

    /// Class from a model output index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 6`.
    pub fn from_index(index: usize) -> OtherClass {
        Self::ALL[index]
    }
}

/// The trained `Mop` model.
#[derive(Debug, Clone)]
pub struct OtherOpModel {
    clf: SequenceClassifier,
}

impl OtherOpModel {
    /// Trains on profiling iterations, masking long-op and NOP losses.
    ///
    /// # Panics
    ///
    /// Panics if no iterations are provided.
    pub fn train(
        data: &[(&LabeledTrace, &[std::ops::Range<usize>])],
        scaler: &MinMaxScaler,
        config: &LstmTrainConfig,
    ) -> Self {
        let mut examples = Vec::new();
        for (trace, ranges) in data {
            for r in ranges.iter() {
                let samples = &trace.samples[r.clone()];
                let scaled: Vec<Vec<f32>> = samples
                    .iter()
                    .map(|s| scaler.transform_row(&s.features))
                    .collect();
                let features = crate::dataset::with_lookahead(&scaled);
                let mut labels = Vec::with_capacity(samples.len());
                let mut mask = Vec::with_capacity(samples.len());
                for s in samples {
                    match OtherClass::of(s.class) {
                        Some(c) => {
                            labels.push(c.index());
                            mask.push(true);
                        }
                        None => {
                            labels.push(0);
                            mask.push(false);
                        }
                    }
                }
                examples.push(SeqExample::with_mask(features, labels, mask));
            }
        }
        assert!(!examples.is_empty(), "Mop needs at least one iteration");
        let weights = inverse_frequency_weights(
            examples.iter().flat_map(|e| {
                e.labels
                    .iter()
                    .zip(&e.mask)
                    .filter(|(_, &m)| m)
                    .map(|(&l, _)| l)
            }),
            6,
        );
        let mut cfg = SeqClassifierConfig::new(2 * crate::dataset::FEATURE_WIDTH, config.hidden, 6);
        cfg.epochs = config.epochs;
        cfg.learning_rate = config.learning_rate;
        cfg.seed = config.seed ^ 0x0707;
        cfg.batch_size = config.batch_size;
        cfg.class_weights = Some(weights);
        let mut clf = SequenceClassifier::new(cfg);
        clf.fit(&examples);
        OtherOpModel { clf }
    }

    /// Classifies every sample of one iteration (predictions at long-op
    /// positions exist but are only *used* where `Mlong` said OtherOp — the
    /// paper notes they still feed the LSTM state).
    pub fn predict(&self, features: &[Vec<f32>], scaler: &MinMaxScaler) -> Vec<OtherClass> {
        let scaled: Vec<Vec<f32>> = features.iter().map(|f| scaler.transform_row(f)).collect();
        self.clf
            .predict(&crate::dataset::with_lookahead(&scaled))
            .into_iter()
            .map(OtherClass::from_index)
            .collect()
    }

    /// Classifies several iterations in one call: equal-length iterations
    /// share fused batched GEMMs (see
    /// [`SequenceClassifier::predict_proba_batch`]), bitwise identical to
    /// calling [`OtherOpModel::predict`] once per iteration.
    pub fn predict_batch(
        &self,
        iterations: &[&[Vec<f32>]],
        scaler: &MinMaxScaler,
    ) -> Vec<Vec<OtherClass>> {
        let prepared: Vec<Vec<Vec<f32>>> = iterations
            .iter()
            .map(|feats| {
                let scaled: Vec<Vec<f32>> = feats.iter().map(|f| scaler.transform_row(f)).collect();
                crate::dataset::with_lookahead(&scaled)
            })
            .collect();
        let refs: Vec<&[Vec<f32>]> = prepared.iter().map(|p| p.as_slice()).collect();
        self.clf
            .predict_batch(&refs)
            .into_iter()
            .map(|seq| seq.into_iter().map(OtherClass::from_index).collect())
            .collect()
    }

    /// The underlying sequence classifier — the streaming engine
    /// ([`crate::stream`]) drives it directly with stateful chunked
    /// inference over prepared (scaled + lookahead) rows.
    pub fn classifier(&self) -> &SequenceClassifier {
        &self.clf
    }

    /// Post-training int8 quantization of the trained classifier (see
    /// [`ml::quant`] and [`crate::long_ops::LongOpModel::quantize`]).
    pub fn quantize(&self) -> QuantizedOtherOpModel {
        QuantizedOtherOpModel {
            clf: ml::quant::QuantizedSequenceClassifier::from_f32(&self.clf),
        }
    }
}

/// Int8 serving twin of [`OtherOpModel`], built by
/// [`OtherOpModel::quantize`].
#[derive(Debug, Clone)]
pub struct QuantizedOtherOpModel {
    clf: ml::quant::QuantizedSequenceClassifier,
}

impl QuantizedOtherOpModel {
    /// Int8 counterpart of [`OtherOpModel::predict_batch`]: identical scaler
    /// and lookahead preparation, quantized inference (≥ 99% label
    /// agreement with f32, not bitwise equality).
    pub fn predict_batch(
        &self,
        iterations: &[&[Vec<f32>]],
        scaler: &MinMaxScaler,
    ) -> Vec<Vec<OtherClass>> {
        let prepared: Vec<Vec<Vec<f32>>> = iterations
            .iter()
            .map(|feats| {
                let scaled: Vec<Vec<f32>> = feats.iter().map(|f| scaler.transform_row(f)).collect();
                crate::dataset::with_lookahead(&scaled)
            })
            .collect();
        let refs: Vec<&[Vec<f32>]> = prepared.iter().map(|p| p.as_slice()).collect();
        self.clf
            .predict_batch(&refs)
            .into_iter()
            .map(|seq| seq.into_iter().map(OtherClass::from_index).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mapping_round_trips() {
        for c in OtherClass::ALL {
            assert_eq!(OtherClass::from_index(c.index()), c);
            assert_eq!(OtherClass::of(c.op_class()), Some(c));
        }
        assert_eq!(OtherClass::of(OpClass::Conv), None);
        assert_eq!(OtherClass::of(OpClass::MatMul), None);
        assert_eq!(OtherClass::of(OpClass::Nop), None);
    }
}
