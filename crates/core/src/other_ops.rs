//! `Mop` — the OtherOp classifier (§IV-B).
//!
//! Classifies the non-long ops: `BiasAdd`, the activations, pooling and the
//! optimizer's apply ops. The paper's loss customization is reproduced
//! exactly: samples whose ground truth is a long op or NOP are fed forward
//! (the LSTM keeps its memory of them) but contribute **no loss** — "the
//! loss resulted from Conv2D, Conv2DBackprop and NOP samples are all
//! neglected".

use dnn_sim::OpClass;
use ml::loss::inverse_frequency_weights;
use ml::seq::{SeqClassifierConfig, SequenceClassifier};
use ml::{MinMaxScaler, SeqExample};
use serde::{Deserialize, Serialize};

use crate::dataset::LabeledTrace;
use crate::long_ops::LstmTrainConfig;

/// Which `Mop` label space an attacker trains and serves with.
///
/// `Classic` is the paper's six-class alphabet and is the default: every
/// existing config deserializes to it (`#[serde(default)]` at the config
/// field) and its training/inference paths are bitwise-identical to the
/// pre-zoo pipeline. `Zoo` appends the model-zoo classes (`Add`, `Softmax`,
/// `LayerNorm`, `Depthwise`), growing the LSTM output layer — a different
/// model, so a deliberate opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum OpVocab {
    /// The paper's Table VII alphabet (6 `Mop` classes).
    #[default]
    Classic,
    /// Classic plus the model-zoo classes (10 `Mop` classes).
    Zoo,
}

impl OpVocab {
    /// Number of `Mop` output classes under this vocabulary.
    pub fn other_classes(self) -> usize {
        match self {
            OpVocab::Classic => 6,
            OpVocab::Zoo => OtherClass::ALL.len(),
        }
    }
}

/// The `Mop` output alphabet (classic classes first so classic model output
/// indices never move when the zoo classes are appended).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OtherClass {
    /// Bias addition (forward or gradient).
    BiasAdd,
    /// ReLU (forward or gradient).
    Relu,
    /// Tanh (forward or gradient).
    Tanh,
    /// Sigmoid (forward or gradient).
    Sigmoid,
    /// Max pooling (forward or gradient).
    Pool,
    /// Optimizer apply op.
    Optimizer,
    /// Two-input add (residual skip connections).
    Add,
    /// Softmax (forward or gradient).
    Softmax,
    /// Layer normalization (forward or gradient).
    LayerNorm,
    /// Depthwise convolution (forward or backprops) — short enough to sit in
    /// the `Mop` alphabet rather than `Mlong`'s.
    Depthwise,
}

impl OtherClass {
    /// All classes in model output order ([`OpVocab::Classic`] uses the
    /// first six, [`OpVocab::Zoo`] all of them).
    pub const ALL: [OtherClass; 10] = [
        OtherClass::BiasAdd,
        OtherClass::Relu,
        OtherClass::Tanh,
        OtherClass::Sigmoid,
        OtherClass::Pool,
        OtherClass::Optimizer,
        OtherClass::Add,
        OtherClass::Softmax,
        OtherClass::LayerNorm,
        OtherClass::Depthwise,
    ];

    /// Maps an op class into the `Mop` alphabet; `None` for long ops / NOP.
    pub fn of(class: OpClass) -> Option<OtherClass> {
        match class {
            OpClass::BiasAdd => Some(OtherClass::BiasAdd),
            OpClass::Relu => Some(OtherClass::Relu),
            OpClass::Tanh => Some(OtherClass::Tanh),
            OpClass::Sigmoid => Some(OtherClass::Sigmoid),
            OpClass::Pool => Some(OtherClass::Pool),
            OpClass::Optimizer => Some(OtherClass::Optimizer),
            OpClass::Add => Some(OtherClass::Add),
            OpClass::Softmax => Some(OtherClass::Softmax),
            OpClass::LayerNorm => Some(OtherClass::LayerNorm),
            OpClass::Depthwise => Some(OtherClass::Depthwise),
            OpClass::Conv | OpClass::MatMul | OpClass::Nop => None,
        }
    }

    /// Back to the shared [`OpClass`] alphabet.
    pub fn op_class(self) -> OpClass {
        match self {
            OtherClass::BiasAdd => OpClass::BiasAdd,
            OtherClass::Relu => OpClass::Relu,
            OtherClass::Tanh => OpClass::Tanh,
            OtherClass::Sigmoid => OpClass::Sigmoid,
            OtherClass::Pool => OpClass::Pool,
            OtherClass::Optimizer => OpClass::Optimizer,
            OtherClass::Add => OpClass::Add,
            OtherClass::Softmax => OpClass::Softmax,
            OtherClass::LayerNorm => OpClass::LayerNorm,
            OtherClass::Depthwise => OpClass::Depthwise,
        }
    }

    /// Model output index.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("class in ALL")
    }

    /// Class from a model output index.
    ///
    /// An out-of-range index degrades to [`OtherClass::BiasAdd`] (class 0)
    /// in release builds — this sits on the fleet-serving path, where one
    /// malformed prediction must not abort the process — and trips a
    /// `debug_assert!` in debug builds.
    pub fn from_index(index: usize) -> OtherClass {
        match Self::ALL.get(index) {
            Some(&c) => c,
            None => {
                debug_assert!(false, "OtherClass index {} out of range", index);
                OtherClass::BiasAdd
            }
        }
    }
}

/// The trained `Mop` model.
#[derive(Debug, Clone)]
pub struct OtherOpModel {
    clf: SequenceClassifier,
}

impl OtherOpModel {
    /// Trains on profiling iterations, masking long-op and NOP losses.
    ///
    /// `vocab` sizes the output layer: under [`OpVocab::Classic`] any sample
    /// whose label falls outside the six classic classes is additionally
    /// loss-masked (a no-op on classic profiling data, which never contains
    /// zoo ops — the classic path stays bitwise-identical).
    ///
    /// # Panics
    ///
    /// Panics if no iterations are provided.
    pub fn train(
        data: &[(&LabeledTrace, &[std::ops::Range<usize>])],
        scaler: &MinMaxScaler,
        config: &LstmTrainConfig,
        vocab: OpVocab,
    ) -> Self {
        let n_classes = vocab.other_classes();
        let mut examples = Vec::new();
        for (trace, ranges) in data {
            for r in ranges.iter() {
                let samples = &trace.samples[r.clone()];
                let scaled: Vec<Vec<f32>> = samples
                    .iter()
                    .map(|s| scaler.transform_row(&s.features))
                    .collect();
                let features = crate::dataset::with_lookahead(&scaled);
                let mut labels = Vec::with_capacity(samples.len());
                let mut mask = Vec::with_capacity(samples.len());
                for s in samples {
                    match OtherClass::of(s.class) {
                        Some(c) if c.index() < n_classes => {
                            labels.push(c.index());
                            mask.push(true);
                        }
                        _ => {
                            labels.push(0);
                            mask.push(false);
                        }
                    }
                }
                examples.push(SeqExample::with_mask(features, labels, mask));
            }
        }
        assert!(!examples.is_empty(), "Mop needs at least one iteration");
        let weights = inverse_frequency_weights(
            examples.iter().flat_map(|e| {
                e.labels
                    .iter()
                    .zip(&e.mask)
                    .filter(|(_, &m)| m)
                    .map(|(&l, _)| l)
            }),
            n_classes,
        );
        let mut cfg =
            SeqClassifierConfig::new(2 * crate::dataset::FEATURE_WIDTH, config.hidden, n_classes);
        cfg.epochs = config.epochs;
        cfg.learning_rate = config.learning_rate;
        cfg.seed = config.seed ^ 0x0707;
        cfg.batch_size = config.batch_size;
        cfg.class_weights = Some(weights);
        let mut clf = SequenceClassifier::new(cfg);
        clf.fit(&examples);
        OtherOpModel { clf }
    }

    /// Classifies every sample of one iteration (predictions at long-op
    /// positions exist but are only *used* where `Mlong` said OtherOp — the
    /// paper notes they still feed the LSTM state).
    pub fn predict(&self, features: &[Vec<f32>], scaler: &MinMaxScaler) -> Vec<OtherClass> {
        let scaled: Vec<Vec<f32>> = features.iter().map(|f| scaler.transform_row(f)).collect();
        self.clf
            .predict(&crate::dataset::with_lookahead(&scaled))
            .into_iter()
            .map(OtherClass::from_index)
            .collect()
    }

    /// Classifies several iterations in one call: equal-length iterations
    /// share fused batched GEMMs (see
    /// [`SequenceClassifier::predict_proba_batch`]), bitwise identical to
    /// calling [`OtherOpModel::predict`] once per iteration.
    pub fn predict_batch(
        &self,
        iterations: &[&[Vec<f32>]],
        scaler: &MinMaxScaler,
    ) -> Vec<Vec<OtherClass>> {
        let prepared: Vec<Vec<Vec<f32>>> = iterations
            .iter()
            .map(|feats| {
                let scaled: Vec<Vec<f32>> = feats.iter().map(|f| scaler.transform_row(f)).collect();
                crate::dataset::with_lookahead(&scaled)
            })
            .collect();
        let refs: Vec<&[Vec<f32>]> = prepared.iter().map(|p| p.as_slice()).collect();
        self.clf
            .predict_batch(&refs)
            .into_iter()
            .map(|seq| seq.into_iter().map(OtherClass::from_index).collect())
            .collect()
    }

    /// The underlying sequence classifier — the streaming engine
    /// ([`crate::stream`]) drives it directly with stateful chunked
    /// inference over prepared (scaled + lookahead) rows.
    pub fn classifier(&self) -> &SequenceClassifier {
        &self.clf
    }

    /// Post-training int8 quantization of the trained classifier (see
    /// [`ml::quant`] and [`crate::long_ops::LongOpModel::quantize`]).
    pub fn quantize(&self) -> QuantizedOtherOpModel {
        QuantizedOtherOpModel {
            clf: ml::quant::QuantizedSequenceClassifier::from_f32(&self.clf),
        }
    }
}

/// Int8 serving twin of [`OtherOpModel`], built by
/// [`OtherOpModel::quantize`].
#[derive(Debug, Clone)]
pub struct QuantizedOtherOpModel {
    clf: ml::quant::QuantizedSequenceClassifier,
}

impl QuantizedOtherOpModel {
    /// Int8 counterpart of [`OtherOpModel::predict_batch`]: identical scaler
    /// and lookahead preparation, quantized inference (≥ 99% label
    /// agreement with f32, not bitwise equality).
    pub fn predict_batch(
        &self,
        iterations: &[&[Vec<f32>]],
        scaler: &MinMaxScaler,
    ) -> Vec<Vec<OtherClass>> {
        let prepared: Vec<Vec<Vec<f32>>> = iterations
            .iter()
            .map(|feats| {
                let scaled: Vec<Vec<f32>> = feats.iter().map(|f| scaler.transform_row(f)).collect();
                crate::dataset::with_lookahead(&scaled)
            })
            .collect();
        let refs: Vec<&[Vec<f32>]> = prepared.iter().map(|p| p.as_slice()).collect();
        self.clf
            .predict_batch(&refs)
            .into_iter()
            .map(|seq| seq.into_iter().map(OtherClass::from_index).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mapping_round_trips() {
        for c in OtherClass::ALL {
            assert_eq!(OtherClass::from_index(c.index()), c);
            assert_eq!(OtherClass::of(c.op_class()), Some(c));
        }
        assert_eq!(OtherClass::of(OpClass::Conv), None);
        assert_eq!(OtherClass::of(OpClass::MatMul), None);
        assert_eq!(OtherClass::of(OpClass::Nop), None);
    }
}
