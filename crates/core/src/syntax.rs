//! DNN-syntax correction (§IV-D).
//!
//! After op inference, the recovered structure still contains errors; the
//! paper corrects them with heuristics every ML practitioner knows:
//!
//! 1. a conv/MatMul is always followed by `BiasAdd` + an activation (the
//!    parser already inserts the layer; here we repair missing activations);
//! 2. a model usually uses a single activation type, so a clear majority
//!    overrides stragglers — applied separately to the conv stack and the
//!    dense head, and only when a 2/3 majority exists (the profiled MLP
//!    legitimately mixes activations);
//! 3. pooling presupposes a preceding convolution: leading pools and pools
//!    directly after dense layers are artifacts and are dropped;
//! 4. filter/neuron counts come out of `Mhp`'s power-of-two label space by
//!    construction, implementing the paper's "set to the power of two" rule.

use dnn_sim::Activation;
use serde::{Deserialize, Serialize};

use crate::opseq::{RecoveredGraph, RecoveredKind, RecoveredLayer};

/// Which corrections to apply (all on by default; the ablation bench turns
/// them off individually).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyntaxConfig {
    /// Fill missing activations with the (group) majority.
    pub fill_missing_activations: bool,
    /// Override minority activations when a 2/3 majority exists.
    pub harmonize_activations: bool,
    /// Drop pools that no conv layer precedes.
    pub drop_orphan_pools: bool,
    /// Drop conv layers appearing after the dense head begins (sequential
    /// CNNs never interleave convolutions into the classifier head).
    pub drop_conv_after_dense: bool,
}

impl Default for SyntaxConfig {
    fn default() -> Self {
        SyntaxConfig {
            fill_missing_activations: true,
            harmonize_activations: true,
            drop_orphan_pools: true,
            drop_conv_after_dense: true,
        }
    }
}

fn majority_activation(layers: &[&RecoveredLayer]) -> Option<(Activation, usize, usize)> {
    let mut counts = [0usize; 3];
    let mut total = 0usize;
    for l in layers {
        if let Some(a) = l.activation {
            let idx = match a {
                Activation::Relu => 0,
                Activation::Tanh => 1,
                Activation::Sigmoid => 2,
            };
            counts[idx] += 1;
            total += 1;
        }
    }
    if total == 0 {
        return None;
    }
    // Last maximum wins, matching Iterator::max_by_key's tie rule, without
    // an Option to unwrap on the serving path.
    let mut best = 0usize;
    for i in 1..3 {
        if counts[i] >= counts[best] {
            best = i;
        }
    }
    let act = [Activation::Relu, Activation::Tanh, Activation::Sigmoid][best];
    Some((act, counts[best], total))
}

/// Applies the syntax corrections in place, returning the number of edits.
///
/// Thin linear-chain adapter over [`correct_graph`]: the chain is wrapped
/// in a skip-free [`RecoveredGraph`], which routes to the original chain
/// corrector byte-for-byte.
pub fn correct(layers: &mut Vec<RecoveredLayer>, config: &SyntaxConfig) -> usize {
    let mut graph = RecoveredGraph::linear(std::mem::take(layers));
    let edits = correct_graph(&mut graph, config);
    *layers = graph.layers;
    edits
}

/// DAG-aware syntax correction (§IV-D extended to the model zoo).
///
/// A graph without skip edges is corrected by the original chain rules —
/// bitwise-identical to the pre-graph [`correct`]. With skip edges:
///
/// - the drop rules run with *in-branch protection*: a layer on a residual
///   branch is structural (the skip edge proves it executed) and is never
///   dropped; surviving indices remap the skip edges;
/// - *merge-point shape agreement*: the element-wise `Add` at a skip's
///   merge requires every conv on the branch to produce the block's width,
///   so branch conv filter counts are set to the merge-point conv's
///   (per-path dimension chaining; the power-of-two rule already holds by
///   `Mhp` label-space construction);
/// - the activation fill/harmonize rules are unchanged (branch and trunk
///   share the block's activation by construction).
pub fn correct_graph(graph: &mut RecoveredGraph, config: &SyntaxConfig) -> usize {
    if graph.skips.is_empty() {
        return correct_chain(&mut graph.layers, config);
    }
    let mut edits = 0usize;
    let n = graph.layers.len();
    let protected: std::collections::HashSet<usize> = graph
        .skips
        .iter()
        .flat_map(|s| s.from..=s.to.min(n.saturating_sub(1)))
        .collect();
    let mut keep = vec![true; n];

    if config.drop_conv_after_dense {
        let mut seen_dense = false;
        for (i, l) in graph.layers.iter().enumerate() {
            match l.kind {
                RecoveredKind::Dense | RecoveredKind::Attention => seen_dense = true,
                RecoveredKind::Conv | RecoveredKind::Separable
                    if seen_dense && !protected.contains(&i) =>
                {
                    keep[i] = false;
                }
                _ => {}
            }
        }
    }

    if config.drop_orphan_pools {
        let mut seen_conv = false;
        for (i, l) in graph.layers.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            match l.kind {
                RecoveredKind::Conv | RecoveredKind::Separable => seen_conv = true,
                RecoveredKind::Dense | RecoveredKind::Attention => seen_conv = false,
                RecoveredKind::Pool => {
                    if !seen_conv && !protected.contains(&i) {
                        keep[i] = false;
                    }
                }
            }
        }
    }

    // Rebuild the chain and remap the skip edges onto surviving indices
    // (branch endpoints are protected, so the remap is total on them).
    if keep.iter().any(|&k| !k) {
        let mut remap = vec![usize::MAX; n];
        let mut survivors = Vec::with_capacity(n);
        for (i, l) in graph.layers.iter().enumerate() {
            if keep[i] {
                remap[i] = survivors.len();
                survivors.push(*l);
            }
        }
        edits += n - survivors.len();
        graph.layers = survivors;
        for s in graph.skips.iter_mut() {
            s.from = remap[s.from];
            s.to = remap[s.to];
        }
    }

    // Merge-point shape agreement per skip edge.
    for s in &graph.skips {
        let Some(target) = graph.layers.get(s.to).and_then(|l| l.filters) else {
            continue;
        };
        for i in s.from..s.to.min(graph.layers.len()) {
            let l = &mut graph.layers[i];
            if matches!(l.kind, RecoveredKind::Conv | RecoveredKind::Separable)
                && l.filters != Some(target)
            {
                l.filters = Some(target);
                edits += 1;
            }
        }
    }

    edits + activation_pass(&mut graph.layers, config)
}

/// The original linear-chain corrector ([`correct`]'s pre-graph body).
fn correct_chain(layers: &mut Vec<RecoveredLayer>, config: &SyntaxConfig) -> usize {
    let mut edits = 0usize;

    if config.drop_conv_after_dense {
        let before = layers.len();
        // Sequential models never interleave the two stacks: either the
        // dense predictions ahead of the first conv are artifacts (a CNN) or
        // the conv predictions are (an MLP). Decide by majority: whichever
        // side is smaller is the misclassification.
        let conv_total = layers
            .iter()
            .filter(|l| l.kind == RecoveredKind::Conv)
            .count();
        if let Some(first_conv) = layers.iter().position(|l| l.kind == RecoveredKind::Conv) {
            let dense_before = layers[..first_conv]
                .iter()
                .filter(|l| l.kind == RecoveredKind::Dense)
                .count();
            if conv_total > dense_before && dense_before > 0 {
                // CNN with stray leading denses: drop them so the conv stack
                // survives the conv-after-dense rule below.
                let mut idx = 0;
                layers.retain(|l| {
                    let keep = !(l.kind == RecoveredKind::Dense && idx < first_conv);
                    idx += 1;
                    keep
                });
            }
        }
        let mut seen_dense = false;
        layers.retain(|l| match l.kind {
            RecoveredKind::Dense | RecoveredKind::Attention => {
                seen_dense = true;
                true
            }
            RecoveredKind::Conv | RecoveredKind::Separable => !seen_dense,
            RecoveredKind::Pool => true,
        });
        // A lone leading conv in an otherwise all-dense model (no pooling)
        // is an artifact: MLPs flatten immediately.
        let conv_count = layers
            .iter()
            .filter(|l| l.kind == RecoveredKind::Conv)
            .count();
        let pool_count = layers
            .iter()
            .filter(|l| l.kind == RecoveredKind::Pool)
            .count();
        let dense_count = layers
            .iter()
            .filter(|l| l.kind == RecoveredKind::Dense)
            .count();
        if conv_count == 1 && pool_count == 0 && dense_count >= 2 {
            layers.retain(|l| l.kind != RecoveredKind::Conv);
        }
        edits += before - layers.len();
    }

    if config.drop_orphan_pools {
        let mut seen_conv = false;
        let before = layers.len();
        layers.retain(|l| match l.kind {
            RecoveredKind::Conv | RecoveredKind::Separable => {
                seen_conv = true;
                true
            }
            RecoveredKind::Dense | RecoveredKind::Attention => {
                // A dense layer ends the conv stack; later pools are bogus.
                seen_conv = false;
                true
            }
            RecoveredKind::Pool => seen_conv,
        });
        edits += before - layers.len();
    }

    edits + activation_pass(layers, config)
}

/// The activation fill/harmonize rules, applied per group (the conv stack —
/// including separable convs — and the dense head). Shared verbatim by the
/// chain and graph correctors.
fn activation_pass(layers: &mut [RecoveredLayer], config: &SyntaxConfig) -> usize {
    let mut edits = 0usize;
    for group_kind in [RecoveredKind::Conv, RecoveredKind::Dense] {
        let in_group = |k: RecoveredKind| match group_kind {
            RecoveredKind::Conv => matches!(k, RecoveredKind::Conv | RecoveredKind::Separable),
            _ => k == group_kind,
        };
        let group: Vec<&RecoveredLayer> = layers.iter().filter(|l| in_group(l.kind)).collect();
        let Some((majority, votes, total)) = majority_activation(&group) else {
            continue;
        };
        let strong_majority = 3 * votes >= 2 * total;
        for l in layers.iter_mut().filter(|l| in_group(l.kind)) {
            match l.activation {
                None if config.fill_missing_activations => {
                    l.activation = Some(majority);
                    edits += 1;
                }
                Some(a)
                    if config.harmonize_activations
                        && strong_majority
                        && total >= 3
                        && a != majority =>
                {
                    l.activation = Some(majority);
                    edits += 1;
                }
                _ => {}
            }
        }
    }
    edits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(act: Option<Activation>) -> RecoveredLayer {
        RecoveredLayer {
            kind: RecoveredKind::Conv,
            activation: act,
            last_sample: 0,
            filter_size: Some(3),
            filters: Some(64),
            stride: Some(1),
            units: None,
        }
    }

    fn dense(act: Option<Activation>) -> RecoveredLayer {
        RecoveredLayer {
            kind: RecoveredKind::Dense,
            activation: act,
            last_sample: 0,
            filter_size: None,
            filters: None,
            stride: None,
            units: Some(4096),
        }
    }

    fn pool() -> RecoveredLayer {
        RecoveredLayer {
            kind: RecoveredKind::Pool,
            activation: None,
            last_sample: 0,
            filter_size: None,
            filters: None,
            stride: None,
            units: None,
        }
    }

    #[test]
    fn fills_missing_activation_with_majority() {
        let mut layers = vec![
            conv(Some(Activation::Relu)),
            conv(Some(Activation::Relu)),
            conv(None),
        ];
        let edits = correct(&mut layers, &SyntaxConfig::default());
        assert_eq!(edits, 1);
        assert_eq!(layers[2].activation, Some(Activation::Relu));
    }

    #[test]
    fn harmonizes_clear_majority_but_not_mixed_mlps() {
        // Conv stack: 4 ReLU + 1 Tanh → harmonized.
        let mut layers = vec![
            conv(Some(Activation::Relu)),
            conv(Some(Activation::Relu)),
            conv(Some(Activation::Relu)),
            conv(Some(Activation::Relu)),
            conv(Some(Activation::Tanh)),
        ];
        correct(&mut layers, &SyntaxConfig::default());
        assert!(layers
            .iter()
            .all(|l| l.activation == Some(Activation::Relu)));

        // Balanced MLP activations (no 2/3 majority) stay untouched.
        let mut layers = vec![
            dense(Some(Activation::Relu)),
            dense(Some(Activation::Tanh)),
            dense(Some(Activation::Sigmoid)),
            dense(Some(Activation::Relu)),
            dense(Some(Activation::Tanh)),
        ];
        let before = layers.clone();
        correct(&mut layers, &SyntaxConfig::default());
        assert_eq!(layers, before);
    }

    #[test]
    fn leading_dense_misclassifications_do_not_delete_the_conv_stack() {
        // Regression: a stray dense prediction ahead of the conv stack used
        // to set `seen_dense` and wipe every conv layer.
        let mut layers = vec![
            dense(Some(Activation::Relu)), // artifact
            conv(Some(Activation::Relu)),
            conv(Some(Activation::Relu)),
            pool(),
            dense(Some(Activation::Relu)), // the real head
        ];
        correct(&mut layers, &SyntaxConfig::default());
        let kinds: Vec<RecoveredKind> = layers.iter().map(|l| l.kind).collect();
        assert_eq!(
            kinds,
            vec![
                RecoveredKind::Conv,
                RecoveredKind::Conv,
                RecoveredKind::Pool,
                RecoveredKind::Dense
            ]
        );
    }

    #[test]
    fn drops_orphan_pools() {
        let mut layers = vec![
            pool(), // leading pool: artifact
            conv(Some(Activation::Relu)),
            pool(), // legitimate
            dense(Some(Activation::Relu)),
            pool(), // after dense: artifact
        ];
        let edits = correct(&mut layers, &SyntaxConfig::default());
        assert_eq!(edits, 2);
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0].kind, RecoveredKind::Conv);
        assert_eq!(layers[1].kind, RecoveredKind::Pool);
        assert_eq!(layers[2].kind, RecoveredKind::Dense);
    }

    #[test]
    fn graph_without_skips_is_bitwise_the_chain_corrector() {
        let layers = vec![
            dense(Some(Activation::Relu)), // artifact ahead of the stack
            conv(Some(Activation::Relu)),
            conv(None),
            pool(),
            dense(None),
        ];
        let mut chain = layers.clone();
        let chain_edits = correct(&mut chain, &SyntaxConfig::default());
        let mut graph = RecoveredGraph::linear(layers);
        let graph_edits = correct_graph(&mut graph, &SyntaxConfig::default());
        assert_eq!(graph_edits, chain_edits);
        assert_eq!(graph.layers, chain);
        assert!(graph.skips.is_empty());
    }

    #[test]
    fn merge_point_shape_agreement_chains_branch_filters() {
        let mut c1 = conv(Some(Activation::Relu));
        c1.filters = Some(64); // misread: the merge proves 128
        let mut c2 = conv(Some(Activation::Relu));
        c2.filters = Some(128);
        let mut graph = RecoveredGraph {
            layers: vec![conv(Some(Activation::Relu)), c1, c2],
            skips: vec![crate::opseq::Skip { from: 1, to: 2 }],
        };
        let edits = correct_graph(&mut graph, &SyntaxConfig::default());
        assert_eq!(edits, 1);
        assert_eq!(graph.layers[1].filters, Some(128));
        // The trunk conv ahead of the branch is untouched.
        assert_eq!(graph.layers[0].filters, Some(64));
    }

    #[test]
    fn dag_correction_beats_linear_on_residual_structures() {
        use crate::report::score_structure;
        use dnn_sim::{InputSpec, Layer, Model, Optimizer};
        let truth = Model::new(
            "res",
            InputSpec::Image {
                height: 32,
                width: 32,
                channels: 3,
            },
            vec![
                Layer::conv(3, 64, 1),
                Layer::Residual {
                    filter_size: 3,
                    filters: 128,
                    activation: Activation::Relu,
                },
                Layer::dense(4096, Activation::Relu),
            ],
            Optimizer::Adam,
        );
        // Recovered: stem + the block's two convs + head. `Mhp` misread the
        // first branch conv's filter count; only the skip edge carries the
        // evidence that the merge forces it to 128.
        let recovered = || {
            let mut c1 = conv(Some(Activation::Relu));
            c1.filters = Some(64);
            let mut c2 = conv(Some(Activation::Relu));
            c2.filters = Some(128);
            vec![
                conv(Some(Activation::Relu)),
                c1,
                c2,
                dense(Some(Activation::Relu)),
            ]
        };
        let mut chain = recovered();
        correct(&mut chain, &SyntaxConfig::default());
        let chain_score = score_structure(&truth, &chain, Some(Optimizer::Adam));

        let mut graph = RecoveredGraph {
            layers: recovered(),
            skips: vec![crate::opseq::Skip { from: 1, to: 2 }],
        };
        correct_graph(&mut graph, &SyntaxConfig::default());
        let graph_score = score_structure(&truth, &graph.layers, Some(Optimizer::Adam));

        assert!(
            graph_score.hp_correct > chain_score.hp_correct,
            "DAG correction must fix the branch filters: chain {} vs graph {}",
            chain_score.hp_correct,
            graph_score.hp_correct
        );
    }

    #[test]
    fn skip_branch_layers_survive_drop_rules() {
        // Two stray leading denses would normally wipe the conv stack
        // (conv-after-dense rule); the skip edge proves the convs executed.
        let mut graph = RecoveredGraph {
            layers: vec![
                dense(Some(Activation::Relu)),
                dense(Some(Activation::Relu)),
                conv(Some(Activation::Relu)),
                conv(Some(Activation::Relu)),
                dense(Some(Activation::Relu)),
            ],
            skips: vec![crate::opseq::Skip { from: 2, to: 3 }],
        };
        correct_graph(&mut graph, &SyntaxConfig::default());
        assert_eq!(graph.layers.len(), 5, "branch layers are protected");

        // Without the skip, the same chain loses its convs.
        let mut chain = vec![
            dense(Some(Activation::Relu)),
            dense(Some(Activation::Relu)),
            conv(Some(Activation::Relu)),
            conv(Some(Activation::Relu)),
            dense(Some(Activation::Relu)),
        ];
        correct(&mut chain, &SyntaxConfig::default());
        assert_eq!(chain.len(), 3);
    }

    #[test]
    fn drop_rules_remap_skip_edges() {
        let mut graph = RecoveredGraph {
            layers: vec![
                pool(), // orphan leading pool: dropped
                conv(Some(Activation::Relu)),
                conv(Some(Activation::Relu)),
                conv(Some(Activation::Relu)),
                dense(Some(Activation::Relu)),
            ],
            skips: vec![crate::opseq::Skip { from: 2, to: 3 }],
        };
        correct_graph(&mut graph, &SyntaxConfig::default());
        assert_eq!(graph.layers.len(), 4);
        assert_eq!(graph.skips, vec![crate::opseq::Skip { from: 1, to: 2 }]);
    }

    #[test]
    fn disabled_rules_do_nothing() {
        let cfg = SyntaxConfig {
            fill_missing_activations: false,
            harmonize_activations: false,
            drop_orphan_pools: false,
            drop_conv_after_dense: false,
        };
        let mut layers = vec![pool(), conv(None)];
        let edits = correct(&mut layers, &cfg);
        assert_eq!(edits, 0);
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[1].activation, None);
    }
}
