//! `Mhp` — hyper-parameter inference (§IV-C).
//!
//! One LSTM per hyper-parameter kind (filters, filter size, neurons, stride,
//! optimizer), LSTM-128 in the paper's Table III. Labels are attached to the
//! **last sample of each layer** ("it encourages Mhp to make full use of the
//! information from all the samples related to the layer"); everything else
//! is loss-masked. The optimizer, a model-level hyper-parameter, is labeled
//! on the optimizer-apply samples at the iteration tail.

use dnn_sim::{Layer, Model, OpClass, Optimizer};
use ml::seq::{SeqClassifierConfig, SequenceClassifier};
use ml::{MinMaxScaler, SeqExample};
use serde::{Deserialize, Serialize};

use crate::dataset::LabeledTrace;
use crate::long_ops::LstmTrainConfig;

/// Which hyper-parameter a model head predicts (paper Table VIII:
/// HP1 = filters, HP2 = filter size, HP3 = neurons, HP4 = stride,
/// HP5 = optimizer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HpKind {
    /// Number of convolution filters (64..4096, powers of two).
    Filters,
    /// Convolution filter side (1, 3, ..., 13).
    FilterSize,
    /// Dense-layer neuron count (64..16384, powers of two).
    Neurons,
    /// Convolution stride (1..4).
    Stride,
    /// Training optimizer (GD / Adam / Adagrad).
    Optimizer,
}

impl HpKind {
    /// All kinds in Table VIII order.
    pub const ALL: [HpKind; 5] = [
        HpKind::Filters,
        HpKind::FilterSize,
        HpKind::Neurons,
        HpKind::Stride,
        HpKind::Optimizer,
    ];

    /// Number of classes in this kind's label space.
    pub fn classes(self) -> usize {
        match self {
            HpKind::Filters => 7,    // 2^6 .. 2^12
            HpKind::FilterSize => 7, // 1, 3, 5, 7, 9, 11, 13
            HpKind::Neurons => 9,    // 2^6 .. 2^14
            HpKind::Stride => 4,     // 1..4
            HpKind::Optimizer => 3,  // GD, Adam, Adagrad
        }
    }

    /// Encodes a hyper-parameter value as a class index; `None` when the
    /// value is outside the profiled space.
    pub fn encode(self, value: usize) -> Option<usize> {
        match self {
            HpKind::Filters => {
                let log = value.checked_ilog2()? as usize;
                (value.is_power_of_two() && (6..=12).contains(&log)).then(|| log - 6)
            }
            HpKind::Neurons => {
                let log = value.checked_ilog2()? as usize;
                (value.is_power_of_two() && (6..=14).contains(&log)).then(|| log - 6)
            }
            HpKind::FilterSize => {
                (value % 2 == 1 && (1..=13).contains(&value)).then(|| (value - 1) / 2)
            }
            HpKind::Stride => (1..=4).contains(&value).then(|| value - 1),
            HpKind::Optimizer => (value < 3).then_some(value),
        }
    }

    /// Decodes a class index back into the hyper-parameter value.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range for the kind.
    pub fn decode(self, class: usize) -> usize {
        assert!(
            class < self.classes(),
            "class {} out of range for {:?}",
            class,
            self
        );
        match self {
            HpKind::Filters => 1 << (class + 6),
            HpKind::Neurons => 1 << (class + 6),
            HpKind::FilterSize => 2 * class + 1,
            HpKind::Stride => class + 1,
            HpKind::Optimizer => class,
        }
    }

    /// Optimizer ↔ class index mapping.
    pub fn optimizer_class(optimizer: Optimizer) -> usize {
        match optimizer {
            Optimizer::Gd => 0,
            Optimizer::Adam => 1,
            Optimizer::Adagrad => 2,
        }
    }

    /// Inverse of [`HpKind::optimizer_class`].
    ///
    /// An out-of-range class degrades to [`Optimizer::Gd`] (class 0) in
    /// release builds — this sits on the fleet-serving path, where one
    /// malformed prediction must not abort the process — and trips a
    /// `debug_assert!` in debug builds.
    pub fn class_optimizer(class: usize) -> Optimizer {
        match class {
            0 => Optimizer::Gd,
            1 => Optimizer::Adam,
            2 => Optimizer::Adagrad,
            _ => {
                debug_assert!(false, "optimizer class {} out of range", class);
                Optimizer::Gd
            }
        }
    }

    /// Ground-truth label for layer `layer` of `model`, if this kind applies.
    pub fn label_for_layer(self, model: &Model, layer: usize) -> Option<usize> {
        match (self, model.layers.get(layer)?) {
            (HpKind::Filters, Layer::Conv2D { filters, .. }) => self.encode(*filters),
            (HpKind::FilterSize, Layer::Conv2D { filter_size, .. }) => self.encode(*filter_size),
            (HpKind::Stride, Layer::Conv2D { stride, .. }) => self.encode(*stride),
            (HpKind::Neurons, Layer::Dense { units, .. }) => self.encode(*units),
            (HpKind::Filters, Layer::Residual { filters, .. }) => self.encode(*filters),
            (HpKind::FilterSize, Layer::Residual { filter_size, .. }) => self.encode(*filter_size),
            (HpKind::Filters, Layer::SeparableConv2D { filters, .. }) => self.encode(*filters),
            (HpKind::FilterSize, Layer::SeparableConv2D { filter_size, .. }) => {
                self.encode(*filter_size)
            }
            (HpKind::Stride, Layer::SeparableConv2D { stride, .. }) => self.encode(*stride),
            // The attention width lives in the neuron space (powers of two).
            (HpKind::Neurons, Layer::Attention { dim }) => self.encode(*dim),
            _ => None,
        }
    }
}

/// Index of the last sample of layer `layer`'s forward region: the end of
/// the first run of the layer's samples, tolerating short interruptions by
/// unlabeled (NOP) samples.
pub fn forward_last_sample(
    layer_indices: impl IntoIterator<Item = Option<usize>>,
    layer: usize,
) -> Option<usize> {
    let mut last = None;
    let mut interruptions = 0usize;
    for (i, li) in layer_indices.into_iter().enumerate() {
        match li {
            Some(l) if l == layer => {
                last = Some(i);
                interruptions = 0;
            }
            None if last.is_some() => {
                interruptions += 1;
                if interruptions > 2 {
                    break;
                }
            }
            Some(_) if last.is_some() => break,
            _ => {}
        }
    }
    last
}

/// The trained `Mhp` head for one hyper-parameter kind.
#[derive(Debug, Clone)]
pub struct HpModel {
    kind: HpKind,
    clf: SequenceClassifier,
}

impl HpModel {
    /// Trains a head on `(trace, model, iteration ranges)` triples.
    ///
    /// For per-layer kinds, the label goes on the *last sample* of each
    /// applicable layer within an iteration; for the optimizer kind, on the
    /// optimizer-apply samples. Everything else is masked.
    ///
    /// # Panics
    ///
    /// Panics if no labeled sample exists in the training data.
    pub fn train(
        kind: HpKind,
        data: &[(&LabeledTrace, &Model, &[std::ops::Range<usize>])],
        scaler: &MinMaxScaler,
        config: &LstmTrainConfig,
    ) -> Self {
        let mut examples = Vec::new();
        let mut labeled = 0usize;
        for (trace, model, ranges) in data {
            for r in ranges.iter() {
                let samples = &trace.samples[r.clone()];
                let scaled: Vec<Vec<f32>> = samples
                    .iter()
                    .map(|s| scaler.transform_row(&s.features))
                    .collect();
                let features = crate::dataset::with_lookahead(&scaled);
                let mut labels = vec![0usize; samples.len()];
                let mut mask = vec![false; samples.len()];
                match kind {
                    HpKind::Optimizer => {
                        let class = HpKind::optimizer_class(model.optimizer);
                        for (i, s) in samples.iter().enumerate() {
                            if s.class == OpClass::Optimizer {
                                labels[i] = class;
                                mask[i] = true;
                                labeled += 1;
                            }
                        }
                    }
                    _ => {
                        // Last sample of each layer's *forward* region (the
                        // first contiguous run of the layer's samples); the
                        // attack queries the parser's forward positions, so
                        // training labels must sit there too, not at the
                        // layer's back-propagation tail.
                        for (layer_idx, _) in model.layers.iter().enumerate() {
                            let Some(class) = kind.label_for_layer(model, layer_idx) else {
                                continue;
                            };
                            if let Some(last) = forward_last_sample(
                                samples.iter().map(|s| s.layer_index),
                                layer_idx,
                            ) {
                                labels[last] = class;
                                mask[last] = true;
                                labeled += 1;
                            }
                        }
                    }
                }
                examples.push(SeqExample::with_mask(features, labels, mask));
            }
        }
        assert!(labeled > 0, "no labeled samples for {:?}", kind);
        let mut cfg = SeqClassifierConfig::new(
            2 * crate::dataset::FEATURE_WIDTH,
            config.hidden,
            kind.classes(),
        );
        cfg.epochs = config.epochs;
        cfg.learning_rate = config.learning_rate;
        cfg.seed = config.seed ^ (kind as u64).wrapping_mul(0x9e37);
        cfg.batch_size = config.batch_size;
        let mut clf = SequenceClassifier::new(cfg);
        clf.fit(&examples);
        HpModel { kind, clf }
    }

    /// The hyper-parameter kind this head predicts.
    pub fn kind(&self) -> HpKind {
        self.kind
    }

    /// Predicts the class at a specific sample position of an iteration
    /// (the recovered layer's last sample).
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    pub fn predict_at(
        &self,
        features: &[Vec<f32>],
        scaler: &MinMaxScaler,
        position: usize,
    ) -> usize {
        assert!(position < features.len(), "position out of range");
        self.predict(features, scaler)[position]
    }

    /// Predicts classes for the whole iteration (callers pick positions).
    pub fn predict(&self, features: &[Vec<f32>], scaler: &MinMaxScaler) -> Vec<usize> {
        let scaled: Vec<Vec<f32>> = features.iter().map(|f| scaler.transform_row(f)).collect();
        self.clf.predict(&crate::dataset::with_lookahead(&scaled))
    }

    /// The underlying sequence classifier — the streaming engine
    /// ([`crate::stream`]) drives it directly with stateful chunked
    /// inference over prepared (scaled + lookahead) rows.
    pub fn classifier(&self) -> &SequenceClassifier {
        &self.clf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for k in HpKind::ALL {
            for c in 0..k.classes() {
                let v = k.decode(c);
                assert_eq!(k.encode(v), Some(c), "{:?} class {}", k, c);
            }
        }
    }

    #[test]
    fn encode_rejects_out_of_space_values() {
        assert_eq!(HpKind::Filters.encode(100), None); // not a power of two
        assert_eq!(HpKind::Filters.encode(32), None); // below range
        assert_eq!(HpKind::Neurons.encode(32768), None); // above range
        assert_eq!(HpKind::FilterSize.encode(4), None); // even
        assert_eq!(HpKind::FilterSize.encode(15), None); // too large
        assert_eq!(HpKind::Stride.encode(0), None);
        assert_eq!(HpKind::Stride.encode(5), None);
    }

    #[test]
    fn paper_hp_spaces() {
        assert_eq!(HpKind::Filters.decode(0), 64);
        assert_eq!(HpKind::Filters.decode(6), 4096);
        assert_eq!(HpKind::Neurons.decode(8), 16384);
        assert_eq!(HpKind::FilterSize.decode(6), 13);
        assert_eq!(HpKind::Stride.decode(3), 4);
    }

    #[test]
    fn optimizer_class_round_trip() {
        for o in Optimizer::ALL {
            assert_eq!(HpKind::class_optimizer(HpKind::optimizer_class(o)), o);
        }
    }

    #[test]
    fn label_for_layer_respects_kind() {
        let model = dnn_sim::zoo::alexnet();
        // Layer 0 is conv(11, 96, 4) — but 96 is not a power of two, so the
        // filters label is None (outside the profiled space), while filter
        // size and stride encode fine.
        assert_eq!(HpKind::FilterSize.label_for_layer(&model, 0), Some(5));
        assert_eq!(HpKind::Stride.label_for_layer(&model, 0), Some(3));
        assert_eq!(HpKind::Filters.label_for_layer(&model, 0), None);
        assert_eq!(HpKind::Neurons.label_for_layer(&model, 0), None);
        // Layer 8 is dense(4096).
        assert_eq!(HpKind::Neurons.label_for_layer(&model, 8), Some(6));
    }
}
