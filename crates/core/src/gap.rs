//! `Mgap` — iteration splitting (§IV-A).
//!
//! A LightGBM-style GBDT classifies each MinMax-scaled sample into `NOP` or
//! `BUSY`; iterations are split wherever at least `TH_gap` consecutive `NOP`
//! samples occur, and iterations whose sample count falls outside
//! `[R_min, R_max]` x the mean are discarded as incomplete.

use dnn_sim::OpClass;
use ml::gbdt::{GbdtBinaryClassifier, GbdtConfig};
use ml::MinMaxScaler;
use serde::{Deserialize, Serialize};

use crate::dataset::{filter_valid_iterations, split_on_nop_runs_bridged, LabeledTrace};

/// Splitting parameters (§V-A: `TH_gap = 6`, `R_min = 0.8`, `R_max = 1.2`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapConfig {
    /// Minimum consecutive NOP samples that constitute an iteration gap.
    pub th_gap: usize,
    /// Minimum iteration length as a ratio of the mean.
    pub r_min: f64,
    /// Maximum iteration length as a ratio of the mean.
    pub r_max: f64,
    /// Missing-sample tolerance: BUSY runs of at most this many samples that
    /// are flanked by NOPs are bridged before gap splitting (see
    /// [`crate::dataset::split_on_nop_runs_bridged`]). `0` (the default, and
    /// the paper's implicit setting) disables bridging; fault-tolerant runs
    /// use `1`–`2` to survive missed CUPTI polls.
    pub nop_bridge: usize,
}

impl Default for GapConfig {
    fn default() -> Self {
        GapConfig {
            th_gap: 6,
            r_min: 0.8,
            r_max: 1.2,
            nop_bridge: 0,
        }
    }
}

/// Per-class evaluation of the splitter (Table VI rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapEvaluation {
    /// Ground-truth NOP sample count.
    pub nop_total: usize,
    /// Correctly identified NOP samples.
    pub nop_correct: usize,
    /// Ground-truth BUSY sample count.
    pub busy_total: usize,
    /// Correctly identified BUSY samples.
    pub busy_correct: usize,
}

impl GapEvaluation {
    /// NOP recall.
    pub fn nop_accuracy(&self) -> f64 {
        if self.nop_total == 0 {
            0.0
        } else {
            self.nop_correct as f64 / self.nop_total as f64
        }
    }

    /// BUSY recall.
    pub fn busy_accuracy(&self) -> f64 {
        if self.busy_total == 0 {
            0.0
        } else {
            self.busy_correct as f64 / self.busy_total as f64
        }
    }
}

/// The trained gap detector.
#[derive(Debug, Clone)]
pub struct GapModel {
    gbdt: GbdtBinaryClassifier,
    config: GapConfig,
}

/// Builds the context-augmented feature row for position `i` of a scaled
/// sample stream: the sample itself plus its immediate neighbours (zeros at
/// the stream edges). An iteration gap is a *run* of quiet samples, so the
/// neighbourhood carries most of the discriminating power.
fn context_row(scaled: &[Vec<f32>], i: usize) -> Vec<f32> {
    context_row_parts(
        i.checked_sub(1)
            .and_then(|j| scaled.get(j))
            .map(|r| r.as_slice()),
        &scaled[i],
        scaled.get(i + 1).map(|r| r.as_slice()),
    )
}

/// [`context_row`] from explicit neighbour slices (`None` = stream edge,
/// zero-padded) — the form the incremental splitter can evaluate with one
/// sample of lookahead instead of the whole trace.
fn context_row_parts(prev: Option<&[f32]>, cur: &[f32], next: Option<&[f32]>) -> Vec<f32> {
    let width = cur.len();
    let mut row = Vec::with_capacity(3 * width);
    match prev {
        Some(prev) => row.extend_from_slice(prev),
        None => row.extend(std::iter::repeat_n(0.0, width)),
    }
    row.extend_from_slice(cur);
    match next {
        Some(next) => row.extend_from_slice(next),
        None => row.extend(std::iter::repeat_n(0.0, width)),
    }
    row
}

impl GapModel {
    /// Trains on labeled profiling traces (true = NOP).
    ///
    /// # Panics
    ///
    /// Panics if the traces contain no samples.
    pub fn train(traces: &[&LabeledTrace], scaler: &MinMaxScaler, config: GapConfig) -> Self {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for t in traces {
            let scaled: Vec<Vec<f32>> = t
                .samples
                .iter()
                .map(|s| scaler.transform_row(&s.features))
                .collect();
            for (i, s) in t.samples.iter().enumerate() {
                rows.push(context_row(&scaled, i));
                labels.push(s.class == OpClass::Nop);
            }
        }
        let gbdt = GbdtBinaryClassifier::fit(
            &rows,
            &labels,
            &GbdtConfig {
                rounds: 40,
                ..GbdtConfig::default()
            },
        );
        GapModel { gbdt, config }
    }

    /// The splitting parameters.
    pub fn config(&self) -> GapConfig {
        self.config
    }

    /// Predicts NOP flags for a raw (unscaled) sample stream.
    pub fn predict_nop(&self, features: &[Vec<f32>], scaler: &MinMaxScaler) -> Vec<bool> {
        if features.is_empty() {
            return Vec::new();
        }
        let scaled: Vec<Vec<f32>> = features.iter().map(|f| scaler.transform_row(f)).collect();
        (0..scaled.len())
            .map(|i| self.gbdt.predict(&context_row(&scaled, i)))
            .collect()
    }

    /// Predicts the NOP flag for one position given its already-scaled
    /// neighbourhood (`None` = stream edge). Evaluating this per position
    /// over a stream is bitwise identical to [`GapModel::predict_nop`] on
    /// the whole trace — same context row, same GBDT — which is what lets
    /// the streaming splitter decide each sample with one sample of
    /// lookahead (see [`crate::stream`]).
    pub fn predict_nop_scaled(
        &self,
        prev: Option<&[f32]>,
        cur: &[f32],
        next: Option<&[f32]>,
    ) -> bool {
        self.gbdt.predict(&context_row_parts(prev, cur, next))
    }

    /// Splits a sample stream into valid iterations: predict NOPs, split on
    /// `TH_gap` runs, drop out-of-band segments.
    pub fn split_iterations(
        &self,
        features: &[Vec<f32>],
        scaler: &MinMaxScaler,
    ) -> Vec<std::ops::Range<usize>> {
        let nops = self.predict_nop(features, scaler);
        let segments = split_on_nop_runs_bridged(&nops, self.config.th_gap, self.config.nop_bridge);
        filter_valid_iterations(segments, self.config.r_min, self.config.r_max)
    }

    /// Evaluates NOP/BUSY recall against ground truth (Table VI).
    pub fn evaluate(&self, trace: &LabeledTrace, scaler: &MinMaxScaler) -> GapEvaluation {
        let mut eval = GapEvaluation {
            nop_total: 0,
            nop_correct: 0,
            busy_total: 0,
            busy_correct: 0,
        };
        let features: Vec<Vec<f32>> = trace.samples.iter().map(|s| s.features.clone()).collect();
        let preds = self.predict_nop(&features, scaler);
        for (s, &pred_nop) in trace.samples.iter().zip(&preds) {
            if s.class == OpClass::Nop {
                eval.nop_total += 1;
                if pred_nop {
                    eval.nop_correct += 1;
                }
            } else {
                eval.busy_total += 1;
                if !pred_nop {
                    eval.busy_correct += 1;
                }
            }
        }
        eval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::fit_scaler;
    use crate::trace::{collect_trace, CollectionConfig};
    use dnn_sim::{
        Activation, InputSpec, Layer, Model, Optimizer, TrainingConfig, TrainingSession,
    };
    use gpu_sim::GpuConfig;

    fn mlp_trace(units: usize, iterations: usize, seed: u64) -> LabeledTrace {
        let model = Model::new(
            format!("mlp{}", units),
            InputSpec::Image {
                height: 16,
                width: 16,
                channels: 3,
            },
            vec![
                Layer::dense(units, Activation::Relu),
                Layer::dense(units / 2, Activation::Tanh),
            ],
            Optimizer::Gd,
        );
        let session = TrainingSession::new(model, TrainingConfig::new(32, iterations));
        let raw = collect_trace(
            &session,
            &CollectionConfig::paper().with_seed(seed),
            &GpuConfig::gtx_1080_ti(),
        );
        LabeledTrace::from_raw(&raw, format!("mlp{}", units))
    }

    #[test]
    fn gap_model_splits_iterations_accurately() {
        let train = mlp_trace(768, 4, 11);
        let test = mlp_trace(1024, 4, 77);
        let scaler = fit_scaler(&[&train]);
        let model = GapModel::train(&[&train], &scaler, GapConfig::default());

        // Table VI: both NOP and BUSY recall should be high.
        let eval = model.evaluate(&test, &scaler);
        assert!(eval.nop_total > 0 && eval.busy_total > 0);
        assert!(
            eval.nop_accuracy() > 0.85,
            "NOP recall {}",
            eval.nop_accuracy()
        );
        assert!(
            eval.busy_accuracy() > 0.80,
            "BUSY recall {}",
            eval.busy_accuracy()
        );

        // And it should find the right number of iterations.
        let features: Vec<Vec<f32>> = test.samples.iter().map(|s| s.features.clone()).collect();
        let iters = model.split_iterations(&features, &scaler);
        assert!(
            (3..=4).contains(&iters.len()),
            "expected ~4 iterations, got {:?}",
            iters.len()
        );
    }

    #[test]
    fn default_config_matches_paper() {
        let c = GapConfig::default();
        assert_eq!(c.th_gap, 6);
        assert_eq!(c.r_min, 0.8);
        assert_eq!(c.r_max, 1.2);
        assert_eq!(c.nop_bridge, 0, "bridging is opt-in: clean path unchanged");
    }
}
