//! Accuracy reporting: the paper's `AccuracyL` (layer sequence) and
//! `AccuracyHP` (hyper-parameters) of Table IX, plus per-class op accuracy
//! for Table VII.

use dnn_sim::{Layer, Model, OpClass};
use serde::{Deserialize, Serialize};

use crate::opseq::{RecoveredKind, RecoveredLayer};

/// Longest-common-subsequence alignment between two sequences under an
/// equality predicate; returns index pairs of matched elements.
pub fn lcs_pairs<A, B>(a: &[A], b: &[B], eq: impl Fn(&A, &B) -> bool) -> Vec<(usize, usize)> {
    let n = a.len();
    let m = b.len();
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i][j] = if eq(&a[i], &b[j]) {
                dp[i + 1][j + 1] + 1
            } else {
                dp[i + 1][j].max(dp[i][j + 1])
            };
        }
    }
    let mut pairs = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if eq(&a[i], &b[j]) && dp[i][j] == dp[i + 1][j + 1] + 1 {
            pairs.push((i, j));
            i += 1;
            j += 1;
        } else if dp[i + 1][j] >= dp[i][j + 1] {
            i += 1;
        } else {
            j += 1;
        }
    }
    pairs
}

fn kind_of(layer: &Layer) -> RecoveredKind {
    match layer {
        Layer::Conv2D { .. } => RecoveredKind::Conv,
        Layer::Dense { .. } => RecoveredKind::Dense,
        Layer::MaxPool => RecoveredKind::Pool,
        // A residual block is recovered as its constituent convs plus a
        // skip edge, so it aligns against a recovered Conv.
        Layer::Residual { .. } => RecoveredKind::Conv,
        Layer::SeparableConv2D { .. } => RecoveredKind::Separable,
        Layer::Attention { .. } => RecoveredKind::Attention,
    }
}

/// Table IX accuracies for one extraction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StructureAccuracy {
    /// Fraction of ground-truth layers matched in order (`AccuracyL`).
    pub layers: f64,
    /// Fraction of hyper-parameters recovered correctly (`AccuracyHP`):
    /// conv layers contribute filter size, filters, stride and activation;
    /// dense layers neurons and activation; plus one slot for the optimizer.
    pub hyper_params: f64,
    /// Ground-truth layer count.
    pub truth_layers: usize,
    /// Recovered layer count.
    pub recovered_layers: usize,
    /// Total hyper-parameter slots.
    pub hp_total: usize,
    /// Correct hyper-parameter slots.
    pub hp_correct: usize,
}

/// Scores a recovered structure against the ground-truth model.
pub fn score_structure(
    truth: &Model,
    recovered: &[RecoveredLayer],
    recovered_optimizer: Option<dnn_sim::Optimizer>,
) -> StructureAccuracy {
    // AccuracyL: LCS over layer kinds.
    let pairs = lcs_pairs(&truth.layers, recovered, |t, r| kind_of(t) == r.kind);
    let layers_acc = if truth.layers.is_empty() {
        0.0
    } else {
        pairs.len() as f64 / truth.layers.len() as f64
    };

    // AccuracyHP over aligned layers; unmatched truth layers count all their
    // slots as wrong.
    let mut hp_total = 1usize; // optimizer slot
    let mut hp_correct = 0usize;
    if recovered_optimizer == Some(truth.optimizer) {
        hp_correct += 1;
    }
    let mut matched: Vec<Option<usize>> = vec![None; truth.layers.len()];
    for (t, r) in &pairs {
        matched[*t] = Some(*r);
    }
    for (t_idx, layer) in truth.layers.iter().enumerate() {
        match *layer {
            Layer::Conv2D {
                filter_size,
                filters,
                stride,
                activation,
            } => {
                hp_total += 4;
                if let Some(r) = matched[t_idx].map(|r| &recovered[r]) {
                    if r.filter_size == Some(filter_size) {
                        hp_correct += 1;
                    }
                    if r.filters == Some(filters) {
                        hp_correct += 1;
                    }
                    if r.stride == Some(stride) {
                        hp_correct += 1;
                    }
                    if r.activation == Some(activation) {
                        hp_correct += 1;
                    }
                }
            }
            Layer::Dense { units, activation } => {
                hp_total += 2;
                if let Some(r) = matched[t_idx].map(|r| &recovered[r]) {
                    if r.units == Some(units) {
                        hp_correct += 1;
                    }
                    if r.activation == Some(activation) {
                        hp_correct += 1;
                    }
                }
            }
            Layer::Residual {
                filter_size,
                filters,
                activation,
            } => {
                hp_total += 3;
                if let Some(r) = matched[t_idx].map(|r| &recovered[r]) {
                    if r.filter_size == Some(filter_size) {
                        hp_correct += 1;
                    }
                    if r.filters == Some(filters) {
                        hp_correct += 1;
                    }
                    if r.activation == Some(activation) {
                        hp_correct += 1;
                    }
                }
            }
            Layer::SeparableConv2D {
                filter_size,
                filters,
                stride,
                activation,
            } => {
                hp_total += 4;
                if let Some(r) = matched[t_idx].map(|r| &recovered[r]) {
                    if r.filter_size == Some(filter_size) {
                        hp_correct += 1;
                    }
                    if r.filters == Some(filters) {
                        hp_correct += 1;
                    }
                    if r.stride == Some(stride) {
                        hp_correct += 1;
                    }
                    if r.activation == Some(activation) {
                        hp_correct += 1;
                    }
                }
            }
            Layer::Attention { dim } => {
                hp_total += 1;
                if let Some(r) = matched[t_idx].map(|r| &recovered[r]) {
                    if r.units == Some(dim) {
                        hp_correct += 1;
                    }
                }
            }
            Layer::MaxPool => {}
        }
    }

    StructureAccuracy {
        layers: layers_acc,
        hyper_params: hp_correct as f64 / hp_total as f64,
        truth_layers: truth.layers.len(),
        recovered_layers: recovered.len(),
        hp_total,
        hp_correct,
    }
}

/// A comparable, serializable record of one end-to-end extraction.
///
/// [`crate::attack::Extraction`] carries borrowing-heavy intermediates; this
/// flattens the externally meaningful outcome so two runs can be compared
/// with `==` (the determinism tests diff reports produced under different
/// worker-pool sizes) or archived as JSON next to benchmark output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackReport {
    /// Structure string in Table IX format.
    pub structure: String,
    /// Recovered layers after syntax correction.
    pub layers: Vec<RecoveredLayer>,
    /// Recovered optimizer.
    pub optimizer: Option<dnn_sim::Optimizer>,
    /// Valid iteration ranges found by `Mgap`.
    pub iterations: Vec<std::ops::Range<usize>>,
    /// Fused per-sample classes on the base iteration's timeline.
    pub fused_classes: Vec<OpClass>,
    /// Pre-voting per-sample classes of the base iteration.
    pub pre_voting_classes: Vec<OpClass>,
    /// Plain per-position majority vote across the group.
    pub majority_classes: Vec<OpClass>,
    /// Number of syntax edits applied.
    pub syntax_edits: usize,
}

impl AttackReport {
    /// Snapshots an extraction.
    pub fn from_extraction(e: &crate::attack::Extraction) -> Self {
        AttackReport {
            structure: e.structure.clone(),
            layers: e.layers.clone(),
            optimizer: e.optimizer,
            iterations: e.iterations.clone(),
            fused_classes: e.fused_classes.clone(),
            pre_voting_classes: e.pre_voting_classes.clone(),
            majority_classes: e.majority_classes.clone(),
            syntax_edits: e.syntax_edits,
        }
    }
}

/// Per-class op-inference accuracy (one Table VII cell): fraction of samples
/// with ground truth `class` that were predicted as `class`.
pub fn class_accuracy(pred: &[OpClass], truth: &[OpClass], class: OpClass) -> Option<f64> {
    assert_eq!(pred.len(), truth.len(), "sequence length mismatch");
    let total = truth.iter().filter(|&&t| t == class).count();
    if total == 0 {
        return None;
    }
    let correct = pred
        .iter()
        .zip(truth)
        .filter(|(p, t)| **t == class && p == t)
        .count();
    Some(correct as f64 / total as f64)
}

/// Overall accuracy over non-NOP samples (Table VII "Overall" column).
pub fn overall_op_accuracy(pred: &[OpClass], truth: &[OpClass]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "sequence length mismatch");
    let busy: Vec<usize> = (0..truth.len())
        .filter(|&i| truth[i] != OpClass::Nop)
        .collect();
    if busy.is_empty() {
        return 0.0;
    }
    let correct = busy.iter().filter(|&&i| pred[i] == truth[i]).count();
    correct as f64 / busy.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_sim::{zoo, Activation};

    fn rec(kind: RecoveredKind) -> RecoveredLayer {
        RecoveredLayer {
            kind,
            activation: Some(Activation::Relu),
            last_sample: 0,
            filter_size: Some(3),
            filters: Some(64),
            stride: Some(1),
            units: Some(4096),
        }
    }

    #[test]
    fn lcs_alignment() {
        let a = ['a', 'b', 'c', 'd'];
        let b = ['a', 'c', 'd'];
        let pairs = lcs_pairs(&a, &b, |x, y| x == y);
        assert_eq!(pairs, vec![(0, 0), (2, 1), (3, 2)]);
        let pairs = lcs_pairs(&a, &[] as &[char], |x, y| x == y);
        assert!(pairs.is_empty());
    }

    #[test]
    fn perfect_recovery_scores_one() {
        let truth = zoo::vgg16();
        let recovered: Vec<RecoveredLayer> = truth
            .layers
            .iter()
            .map(|l| match *l {
                Layer::Conv2D {
                    filter_size,
                    filters,
                    stride,
                    activation,
                } => RecoveredLayer {
                    kind: RecoveredKind::Conv,
                    activation: Some(activation),
                    last_sample: 0,
                    filter_size: Some(filter_size),
                    filters: Some(filters),
                    stride: Some(stride),
                    units: None,
                },
                Layer::Dense { units, activation } => RecoveredLayer {
                    kind: RecoveredKind::Dense,
                    activation: Some(activation),
                    last_sample: 0,
                    filter_size: None,
                    filters: None,
                    stride: None,
                    units: Some(units),
                },
                Layer::MaxPool => rec(RecoveredKind::Pool),
                _ => unreachable!("vgg16 contains no zoo layers"),
            })
            .collect();
        let score = score_structure(&truth, &recovered, Some(truth.optimizer));
        assert_eq!(score.layers, 1.0);
        assert_eq!(score.hyper_params, 1.0);
        assert_eq!(score.hp_total, 13 * 4 + 3 * 2 + 1);
    }

    #[test]
    fn missing_layers_reduce_both_scores() {
        let truth = zoo::tested_mlp(); // 5 dense layers
        let recovered = vec![rec(RecoveredKind::Dense); 3];
        let score = score_structure(&truth, &recovered, None);
        assert!((score.layers - 3.0 / 5.0).abs() < 1e-9);
        assert!(score.hyper_params < 1.0);
    }

    #[test]
    fn wrong_hp_counts_against_hp_accuracy_only() {
        let truth = zoo::tested_mlp();
        let mut recovered = vec![rec(RecoveredKind::Dense); 5];
        for (r, layer) in recovered.iter_mut().zip(&truth.layers) {
            if let Layer::Dense { units, activation } = *layer {
                r.units = Some(units);
                r.activation = Some(activation);
            }
        }
        recovered[0].units = Some(128); // one wrong unit count
        let score = score_structure(&truth, &recovered, Some(truth.optimizer));
        assert_eq!(score.layers, 1.0);
        // 5 dense x 2 + optimizer = 11 slots; 1 wrong.
        assert_eq!(score.hp_total, 11);
        assert_eq!(score.hp_correct, 10);
    }

    #[test]
    fn class_accuracy_and_overall() {
        use OpClass::{Conv, MatMul, Nop, Relu};
        let truth = vec![Conv, Conv, Relu, Nop, MatMul];
        let pred = vec![Conv, MatMul, Relu, Nop, MatMul];
        assert_eq!(class_accuracy(&pred, &truth, Conv), Some(0.5));
        assert_eq!(class_accuracy(&pred, &truth, Relu), Some(1.0));
        assert_eq!(class_accuracy(&pred, &truth, OpClass::Pool), None);
        assert!((overall_op_accuracy(&pred, &truth) - 0.75).abs() < 1e-9);
    }
}
