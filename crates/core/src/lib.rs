//! # `moscons` — Model Secret Extraction with GPU Context Switching
//!
//! The attack contributed by *Leaky DNN: Stealing Deep-learning Model Secret
//! with GPU Context-switching Side-channel* (DSN 2020), reproduced on the
//! workspace's simulated substrate:
//!
//! * [`spy`] — the probe kernels of Table I (4 blocks x 32 threads; Conv200
//!   is the paper's choice);
//! * [`slowdown`] — the §IV slow-down attack (8 hog kernels in 4 groups);
//! * [`trace`] — collection runs wiring victim + sampler + hogs + CUPTI;
//! * [`cache`] — content-addressed memoization of collection runs and
//!   feature matrices (`LEAKY_DNN_CACHE=off|mem|disk`);
//! * [`dataset`] — timeline alignment (largest-overlap labeling, §V-A),
//!   MinMax scaling, iteration slicing;
//! * [`gap`] — `Mgap`, the GBDT NOP/BUSY splitter (`TH_gap`/`R_min`/`R_max`);
//! * [`long_ops`] / [`other_ops`] — `Mlong` and `Mop`, the LSTM op
//!   classifiers with the paper's weighted / masked losses;
//! * [`voting`] — `Vlong`/`Vop`, LSTM voting across iterations;
//! * [`hyperparams`] — `Mhp`, per-hyper-parameter LSTM heads;
//! * [`opseq`] — collapsing and forward-prefix layer parsing;
//! * [`syntax`] — DNN-syntax correction (§IV-D);
//! * [`attack`] — the end-to-end [`attack::Moscons`] orchestration;
//! * [`stream`] — the streaming attack engine: incremental gap splitting +
//!   stateful LSTM inference, labels with bounded latency, and a final
//!   extraction bitwise equal to the batch attack;
//! * [`fleet`] — the sharded orchestrator multiplexing N concurrent spy
//!   sessions over the worker pool with bounded queues and back-pressure;
//! * [`report`] — `AccuracyL` / `AccuracyHP` / per-class scoring.
//!
//! # Examples
//!
//! ```no_run
//! use dnn_sim::{zoo, TrainingConfig, TrainingSession};
//! use moscons::attack::{AttackConfig, Moscons};
//!
//! // Profile the adversary's own models...
//! let profiled: Vec<TrainingSession> = zoo::profiled_models()
//!     .into_iter()
//!     .map(|m| TrainingSession::new(m, TrainingConfig::new(16, 8)))
//!     .collect();
//! let moscons = Moscons::profile(&profiled, AttackConfig::default());
//! // ...then attack the victim.
//! let victim = TrainingSession::new(zoo::vgg16(), TrainingConfig::new(16, 8));
//! let (extraction, _trace) = moscons.attack(&victim, 42);
//! println!("recovered: {}", extraction.structure);
//! ```

// Enforced statically here and by leaky-lint rule D5: this crate's
// determinism contract is easier to audit with zero unsafe code.
#![forbid(unsafe_code)]

pub mod attack;
pub mod cache;
pub mod dataset;
pub mod fleet;
pub mod gap;
pub mod hyperparams;
pub mod long_ops;
pub mod opseq;
pub mod other_ops;
pub mod profiling;
pub mod report;
pub mod slowdown;
pub mod spy;
pub mod stream;
pub mod syntax;
pub mod trace;
pub mod voting;

pub use attack::{AttackConfig, Extraction, InferencePrecision, Moscons};
pub use cache::{CacheMode, EXTRACTOR_VERSION, TRACE_SCHEMA_VERSION};
pub use dataset::LabeledTrace;
pub use fleet::{
    run_fleet, FleetConfig, FleetOutcome, OverflowPolicy, SessionOutcome, SessionSpec,
};
pub use gap::{GapConfig, GapModel};
pub use hyperparams::{HpKind, HpModel};
pub use long_ops::{LongClass, LongOpModel, LstmTrainConfig, QuantizedLongOpModel};
pub use opseq::{
    forward_boundary, parse_forward_layers_lenient, parse_forward_layers_zoo, RecoveredGraph,
    RecoveredKind, RecoveredLayer, Skip,
};
pub use other_ops::{OpVocab, OtherClass, OtherOpModel, QuantizedOtherOpModel};
pub use profiling::{hp_sweep_variants, random_profiling_models, random_zoo_profiling_models};
pub use report::{score_structure, AttackReport, StructureAccuracy};
pub use slowdown::SlowdownConfig;
pub use spy::{sampler_retry_policy, SpyKernelKind};
pub use stream::{
    AttackStream, GapStream, SegmentSplitter, SplitEvent, StreamLabel, StreamOutcome,
};
pub use syntax::{correct, correct_graph, SyntaxConfig};
pub use trace::{collect_trace, CollectionConfig, RawTrace};
pub use voting::{majority_vote, VotingModel};
