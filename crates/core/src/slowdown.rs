//! The slow-down attack (§IV).
//!
//! One spy kernel cannot sample long victim ops often enough, so the
//! attacker launches additional *hog* kernels whose only purpose is to take
//! scheduler slices away from the victim, stretching every victim op across
//! more rounds and giving the sampler more readings per op.
//!
//! The paper settles on 8 kernels arranged in 4 groups `G_0..G_3`, where
//! group `G_i` uses `4·2^i` blocks and `4·2^i·32` threads; slow-down
//! saturates beyond that because slice grants stop growing once a kernel
//! covers every SM.

use gpu_sim::{ContextId, Gpu, KernelDesc, KernelFootprint};
use serde::{Deserialize, Serialize};

/// Configuration of the slow-down attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowdownConfig {
    /// Number of hog kernels (the paper uses 8; 0 disables the attack).
    pub kernels: usize,
}

impl SlowdownConfig {
    /// The paper's 8-kernel configuration.
    pub fn paper() -> Self {
        SlowdownConfig { kernels: 8 }
    }

    /// No slow-down (plain single-spy sampling, as in Tables I/II).
    pub fn off() -> Self {
        SlowdownConfig { kernels: 0 }
    }

    /// Launch geometry (blocks, threads-per-block) of hog `index`, following
    /// the paper's grouping: kernels `2i` and `2i+1` form group `G_i` with
    /// `4·2^i` blocks of 32 threads.
    pub fn hog_geometry(index: usize) -> (u32, u32) {
        let group = (index / 2) as u32;
        (4 * (1 << group), 32)
    }

    /// Builds the hog kernel for slot `index`: a long-running compute kernel
    /// with a negligible memory footprint (it must steal time, not pollute
    /// the cache the sampler probes).
    pub fn hog_kernel(index: usize, config: &gpu_sim::GpuConfig) -> KernelDesc {
        let (blocks, tpb) = Self::hog_geometry(index);
        let occ = gpu_sim::Occupancy::of_launch(blocks, tpb, config)
            .fraction()
            .max(1e-3);
        // ~3 slices of work per launch so a hog never yields early.
        let dur = 3.0 * config.time_slice_us;
        let fp = KernelFootprint {
            flops: config.compute_throughput * occ * dur,
            read_bytes: 8.0 * 1024.0,
            write_bytes: 0.0,
            tex_read_bytes: 0.0,
            working_set: 8.0 * 1024.0,
            tex_working_set: 0.0,
        };
        KernelDesc::new(format!("spy_hog_{}", index), blocks, tpb, fp)
    }

    /// Creates one context per hog on `gpu` and sets them auto-repeating.
    /// Returns the created contexts.
    pub fn launch(&self, gpu: &mut Gpu) -> Vec<ContextId> {
        let cfg = gpu.config().clone();
        (0..self.kernels)
            .map(|i| {
                let ctx = gpu.add_context(format!("spy_hog_{}", i));
                gpu.set_auto_repeat(ctx, Self::hog_kernel(i, &cfg));
                ctx
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, SchedulerMode};

    #[test]
    fn paper_geometry() {
        // G_0: 4 blocks, G_1: 8, G_2: 16, G_3: 32 — two kernels each.
        assert_eq!(SlowdownConfig::hog_geometry(0), (4, 32));
        assert_eq!(SlowdownConfig::hog_geometry(1), (4, 32));
        assert_eq!(SlowdownConfig::hog_geometry(2), (8, 32));
        assert_eq!(SlowdownConfig::hog_geometry(5), (16, 32));
        assert_eq!(SlowdownConfig::hog_geometry(7), (32, 32));
    }

    #[test]
    fn launch_creates_contexts() {
        let mut gpu = Gpu::new(GpuConfig::gtx_1080_ti(), SchedulerMode::TimeSliced);
        let _victim = gpu.add_context("victim");
        let hogs = SlowdownConfig::paper().launch(&mut gpu);
        assert_eq!(hogs.len(), 8);
        let off = SlowdownConfig::off();
        assert!(off.launch(&mut gpu).is_empty());
    }

    #[test]
    fn hogs_have_negligible_cache_footprint() {
        let cfg = GpuConfig::gtx_1080_ti();
        for i in 0..8 {
            let k = SlowdownConfig::hog_kernel(i, &cfg);
            assert!(k.footprint.total_working_set() < 16.0 * 1024.0);
            assert!(k.footprint.write_bytes == 0.0);
        }
    }

    #[test]
    fn more_kernels_slow_the_victim_more_and_saturate() {
        // The core slow-down claim: victim wall time grows with hog count
        // and the growth flattens (paper §IV).
        let victim_work_us = 10_000.0;
        let wall = |hogs: usize| {
            let mut cfg = GpuConfig::gtx_1080_ti();
            cfg.slice_jitter = 0.0;
            cfg.counter_noise = 0.0;
            let mut gpu = Gpu::new(cfg.clone(), SchedulerMode::TimeSliced);
            let victim = gpu.add_context("victim");
            let fp = KernelFootprint {
                flops: cfg.compute_throughput * victim_work_us,
                ..KernelFootprint::empty()
            };
            gpu.enqueue(victim, KernelDesc::new("victim", 56, 1024, fp));
            SlowdownConfig { kernels: hogs }.launch(&mut gpu);
            gpu.run_until_queues_drain();
            gpu.kernel_log()
                .iter()
                .find(|r| &*r.name == "victim")
                .expect("victim ran")
                .duration_us()
        };
        let w0 = wall(0);
        let w2 = wall(2);
        let w8 = wall(8);
        assert!(w2 > 1.5 * w0, "2 hogs: {} vs {}", w2, w0);
        assert!(w8 > 1.5 * w2, "8 hogs: {} vs {}", w8, w2);
    }

    #[test]
    fn per_kernel_geometry_growth_saturates() {
        // The paper's §IV observation that higher block/thread counts stop
        // helping: a hog already covering the SMs gains nothing from more
        // blocks, because scheduler slice grants saturate at full occupancy.
        let victim_work_us = 10_000.0;
        let wall = |blocks: u32, tpb: u32| {
            let mut cfg = GpuConfig::gtx_1080_ti();
            cfg.slice_jitter = 0.0;
            cfg.counter_noise = 0.0;
            let mut gpu = Gpu::new(cfg.clone(), SchedulerMode::TimeSliced);
            let victim = gpu.add_context("victim");
            let vfp = KernelFootprint {
                flops: cfg.compute_throughput * victim_work_us,
                ..KernelFootprint::empty()
            };
            gpu.enqueue(victim, KernelDesc::new("victim", 56, 1024, vfp));
            let hog_ctx = gpu.add_context("hog");
            let occ = gpu_sim::Occupancy::of_launch(blocks, tpb, &cfg)
                .fraction()
                .max(1e-3);
            let hfp = KernelFootprint {
                flops: cfg.compute_throughput * occ * 3.0 * cfg.time_slice_us,
                read_bytes: 8.0 * 1024.0,
                working_set: 8.0 * 1024.0,
                ..KernelFootprint::empty()
            };
            gpu.set_auto_repeat(hog_ctx, KernelDesc::new("hog", blocks, tpb, hfp));
            gpu.run_until_queues_drain();
            gpu.kernel_log()
                .iter()
                .find(|r| &*r.name == "victim")
                .expect("victim ran")
                .duration_us()
        };
        let small = wall(4, 32);
        let full = wall(64, 1024);
        let huge = wall(1024, 1024);
        assert!(full > small, "bigger hogs should slow the victim more");
        // Beyond full occupancy the extra geometry buys (almost) nothing.
        assert!(
            (huge - full).abs() / full < 0.05,
            "saturation violated: full {} vs huge {}",
            full,
            huge
        );
    }
}
