//! Content-addressed trace and feature cache.
//!
//! Collecting one profiling trace means simulating an entire training run —
//! tens of thousands of scheduler slices — yet the result is a pure function
//! of its inputs: the GPU configuration, the victim's model and training
//! loop, the spy/slow-down/sampling configuration and the CUPTI session
//! shape. This module memoizes [`crate::trace::collect_trace`] on a stable
//! 64-bit key over exactly those inputs, and memoizes the derived
//! [`crate::dataset::counter_features`] matrices on the content of the
//! sample stream they came from.
//!
//! Three modes, selected by the `LEAKY_DNN_CACHE` environment variable:
//!
//! * `off` — every collection simulates from scratch (the pre-cache
//!   behaviour);
//! * `mem` (default) — traces are memoized for the lifetime of the process;
//! * `disk` — additionally persisted under `target/leaky-dnn-cache/`
//!   (override the directory with `LEAKY_DNN_CACHE_DIR`), so repeated bench
//!   and experiment runs skip collection entirely.
//!
//! Because the simulator is deterministic, a cache hit is *bitwise*
//! identical to a fresh collection — the disk codec round-trips every `f64`
//! through its bit pattern rather than decimal text, and
//! `tests/determinism.rs` asserts `off` vs `disk` end-to-end report
//! equality. Keys mix in schema/extractor version constants, so changing
//! either the trace layout or the feature definition invalidates old
//! entries instead of replaying them.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

use cupti_sim::CuptiSample;
use dnn_sim::TrainingSession;
use gpu_sim::{ContextId, CounterId, CounterValues, GpuConfig, KernelRecord};
use serde::{Serialize, Value};

use crate::dataset::counter_features;
use crate::trace::{CollectionConfig, RawTrace};

/// Bump when the [`RawTrace`] layout or collection semantics change.
pub const TRACE_SCHEMA_VERSION: u32 = 1;
/// Bump when [`counter_features`] changes (it is baked into cached feature
/// matrices).
pub const EXTRACTOR_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// mode
// ---------------------------------------------------------------------------

/// Cache behaviour, from `LEAKY_DNN_CACHE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Always recollect.
    Off,
    /// Memoize in-process.
    Mem,
    /// Memoize in-process and persist to disk.
    Disk,
}

impl CacheMode {
    /// Reads the mode from the environment (`off` / `mem` / `disk`,
    /// case-insensitive). Unset or unrecognized values mean [`CacheMode::Mem`].
    pub fn from_env() -> Self {
        match std::env::var("LEAKY_DNN_CACHE") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "off" | "0" | "none" => CacheMode::Off,
                "disk" => CacheMode::Disk,
                _ => CacheMode::Mem,
            },
            Err(_) => CacheMode::Mem,
        }
    }
}

fn cache_dir() -> PathBuf {
    match std::env::var("LEAKY_DNN_CACHE_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from("target").join("leaky-dnn-cache"),
    }
}

// ---------------------------------------------------------------------------
// keys: FNV-1a over a canonical serialization
// ---------------------------------------------------------------------------

/// Incremental FNV-1a 64-bit hasher. FNV is not cryptographic; it is stable
/// across platforms and Rust versions (unlike `DefaultHasher`), which is what
/// an on-disk cache key needs.
#[derive(Debug, Clone)]
pub struct KeyHasher {
    state: u64,
}

impl KeyHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        KeyHasher {
            state: Self::OFFSET,
        }
    }

    /// Mixes raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Mixes a string, length-prefixed so concatenations cannot collide.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Mixes a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Mixes an `f64` by bit pattern (so `-0.0` and `0.0` differ, as do any
    /// two values the simulation could distinguish).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Mixes a serde value tree, canonically: every node is tagged so
    /// different shapes with equal leaves cannot collide.
    pub fn write_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.write_u64(0),
            Value::Bool(b) => {
                self.write_u64(1);
                self.write_u64(*b as u64);
            }
            Value::Number(n) => {
                self.write_u64(2);
                self.write_f64(*n);
            }
            Value::String(s) => {
                self.write_u64(3);
                self.write_str(s);
            }
            Value::Array(items) => {
                self.write_u64(4);
                self.write_u64(items.len() as u64);
                for item in items {
                    self.write_value(item);
                }
            }
            Value::Object(fields) => {
                self.write_u64(5);
                self.write_u64(fields.len() as u64);
                for (k, item) in fields {
                    self.write_str(k);
                    self.write_value(item);
                }
            }
        }
    }

    /// Mixes any serializable structure via its canonical value tree.
    pub fn write_serialize<T: Serialize + ?Sized>(&mut self, v: &T) {
        self.write_value(&v.to_json_value());
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        KeyHasher::new()
    }
}

/// The content address of one collection run: every input that shapes the
/// resulting [`RawTrace`]. `gpu_config` must be the *effective* configuration
/// (after the collection seed is folded in, as `collect_trace` does).
pub fn trace_key(
    session: &TrainingSession,
    collection: &CollectionConfig,
    gpu_config: &GpuConfig,
    cupti_fingerprint: &str,
) -> u64 {
    let mut h = KeyHasher::new();
    h.write_str("leaky-dnn-trace");
    h.write_u64(TRACE_SCHEMA_VERSION as u64);
    h.write_serialize(session.model());
    h.write_serialize(session.config());
    h.write_serialize(collection);
    h.write_serialize(gpu_config);
    h.write_str(cupti_fingerprint);
    h.finish()
}

// ---------------------------------------------------------------------------
// in-memory stores
// ---------------------------------------------------------------------------

fn trace_store() -> &'static Mutex<HashMap<u64, Arc<RawTrace>>> {
    static STORE: OnceLock<Mutex<HashMap<u64, Arc<RawTrace>>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(HashMap::new()))
}

type FeatureMatrix = Arc<Vec<Vec<f32>>>;

fn feature_store() -> &'static Mutex<HashMap<u64, FeatureMatrix>> {
    static STORE: OnceLock<Mutex<HashMap<u64, FeatureMatrix>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Drops every memoized trace and feature matrix (tests and long-lived
/// processes that want cold-start timings).
pub fn clear_memory() {
    trace_store().lock().expect("trace cache poisoned").clear();
    feature_store()
        .lock()
        .expect("feature cache poisoned")
        .clear();
}

/// Number of traces currently memoized (diagnostics).
pub fn memoized_traces() -> usize {
    trace_store().lock().expect("trace cache poisoned").len()
}

/// Returns the trace for `key`, collecting it with `collect` on a miss.
///
/// On [`CacheMode::Off`] this is a passthrough. On a miss both `mem` and
/// `disk` insert the collected trace into the process-wide map; `disk` also
/// persists it. Concurrent misses on the same key may collect twice — the
/// simulator is deterministic, so both produce identical bytes and either
/// may win the insert.
pub fn trace_for(key: u64, collect: impl FnOnce() -> RawTrace) -> RawTrace {
    let mode = CacheMode::from_env();
    if mode == CacheMode::Off {
        return collect();
    }
    if let Some(hit) = trace_store()
        .lock()
        .expect("trace cache poisoned")
        .get(&key)
        .cloned()
    {
        return (*hit).clone();
    }
    if mode == CacheMode::Disk {
        if let Some(trace) = disk_read(key) {
            let arc = Arc::new(trace);
            trace_store()
                .lock()
                .expect("trace cache poisoned")
                .insert(key, Arc::clone(&arc));
            return (*arc).clone();
        }
    }
    let trace = collect();
    let arc = Arc::new(trace);
    trace_store()
        .lock()
        .expect("trace cache poisoned")
        .insert(key, Arc::clone(&arc));
    if mode == CacheMode::Disk {
        disk_write(key, &arc);
    }
    (*arc).clone()
}

/// The feature matrix of a trace's sample stream ([`counter_features`] per
/// sample), memoized on the content of the samples plus
/// [`EXTRACTOR_VERSION`]. Two traces with bitwise-equal sample streams (e.g.
/// a cached and a fresh collection of the same run) share one matrix.
pub fn counter_feature_matrix(raw: &RawTrace) -> FeatureMatrix {
    let compute = || -> FeatureMatrix {
        Arc::new(
            raw.samples
                .iter()
                .map(|s| counter_features(&s.to_features()))
                .collect(),
        )
    };
    if CacheMode::from_env() == CacheMode::Off {
        return compute();
    }
    let mut h = KeyHasher::new();
    h.write_str("leaky-dnn-features");
    h.write_u64(EXTRACTOR_VERSION as u64);
    h.write_u64(raw.samples.len() as u64);
    for s in &raw.samples {
        h.write_f64(s.start_us);
        h.write_f64(s.end_us);
        for v in s.counters.as_array() {
            h.write_f64(v);
        }
    }
    let key = h.finish();
    if let Some(hit) = feature_store()
        .lock()
        .expect("feature cache poisoned")
        .get(&key)
        .cloned()
    {
        return hit;
    }
    let matrix = compute();
    feature_store()
        .lock()
        .expect("feature cache poisoned")
        .insert(key, Arc::clone(&matrix));
    matrix
}

// ---------------------------------------------------------------------------
// disk codec
// ---------------------------------------------------------------------------
//
// The vendored serde stand-in can serialize but not deserialize, so the
// on-disk format is a small hand-written line codec. Every f64 travels as
// its 16-hex-digit bit pattern (bitwise-exact round trip, including -0.0 and
// subnormals); strings travel hex-encoded so names never fight the
// whitespace framing.

fn hex_str(s: &str) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(2 * s.len());
    for b in s.as_bytes() {
        write!(out, "{:02x}", b).expect("write to string");
    }
    out
}

fn unhex_str(s: &str) -> Option<String> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut bytes = Vec::with_capacity(s.len() / 2);
    for i in (0..s.len()).step_by(2) {
        bytes.push(u8::from_str_radix(s.get(i..i + 2)?, 16).ok()?);
    }
    String::from_utf8(bytes).ok()
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn unhex_f64(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Encodes a trace (with its key, for integrity checking) into the cache
/// file format.
pub fn encode_trace(key: u64, trace: &RawTrace) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "leaky-dnn-trace v{}", TRACE_SCHEMA_VERSION).expect("write to string");
    writeln!(out, "key {:016x}", key).expect("write to string");
    // CollectionConfig is re-derivable from the key's inputs, but carrying it
    // keeps RawTrace self-contained; SpyKernelKind travels by name.
    writeln!(
        out,
        "collection {} {} {} {:016x}",
        trace.collection.spy_kernel.name(),
        trace.collection.slowdown.kernels,
        f64_hex(trace.collection.poll_period_us),
        trace.collection.seed,
    )
    .expect("write to string");
    writeln!(
        out,
        "mean_iteration_us {}",
        f64_hex(trace.mean_iteration_us)
    )
    .expect("write to string");
    writeln!(out, "samples {}", trace.samples.len()).expect("write to string");
    for s in &trace.samples {
        write!(out, "{} {}", f64_hex(s.start_us), f64_hex(s.end_us)).expect("write to string");
        for v in s.counters.as_array() {
            write!(out, " {}", f64_hex(v)).expect("write to string");
        }
        out.push('\n');
    }
    writeln!(out, "victim_log {}", trace.victim_log.len()).expect("write to string");
    for r in &trace.victim_log {
        writeln!(
            out,
            "{} {} {} {} {}",
            r.ctx.index(),
            f64_hex(r.start_us),
            f64_hex(r.end_us),
            hex_str(&r.name),
            r.op_tag.as_deref().map_or_else(|| "-".to_owned(), hex_str),
        )
        .expect("write to string");
    }
    out
}

/// Decodes a cache file produced by [`encode_trace`], checking the embedded
/// key against `expect_key`. Any mismatch or corruption yields `None` (a
/// cache miss, never an error).
pub fn decode_trace(text: &str, expect_key: u64) -> Option<RawTrace> {
    let mut lines = text.lines();
    let header = lines.next()?;
    if header != format!("leaky-dnn-trace v{}", TRACE_SCHEMA_VERSION) {
        return None;
    }
    let key_line = lines.next()?.strip_prefix("key ")?;
    if u64::from_str_radix(key_line, 16).ok()? != expect_key {
        return None;
    }
    let mut coll = lines.next()?.strip_prefix("collection ")?.split(' ');
    let spy_kernel = {
        let name = coll.next()?;
        *crate::spy::SpyKernelKind::ALL
            .iter()
            .find(|k| k.name() == name)?
    };
    let slowdown = crate::slowdown::SlowdownConfig {
        kernels: coll.next()?.parse().ok()?,
    };
    let poll_period_us = unhex_f64(coll.next()?)?;
    let seed = u64::from_str_radix(coll.next()?, 16).ok()?;
    let collection = CollectionConfig {
        spy_kernel,
        slowdown,
        poll_period_us,
        seed,
    };
    let mean_iteration_us = unhex_f64(lines.next()?.strip_prefix("mean_iteration_us ")?)?;

    let n_samples: usize = lines.next()?.strip_prefix("samples ")?.parse().ok()?;
    let mut samples = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        let mut parts = lines.next()?.split(' ');
        let start_us = unhex_f64(parts.next()?)?;
        let end_us = unhex_f64(parts.next()?)?;
        let mut counters = CounterValues::zero();
        for id in CounterId::ALL {
            counters.add_to(id, unhex_f64(parts.next()?)?);
        }
        if parts.next().is_some() {
            return None;
        }
        samples.push(CuptiSample {
            start_us,
            end_us,
            counters,
        });
    }

    let n_records: usize = lines.next()?.strip_prefix("victim_log ")?.parse().ok()?;
    let mut victim_log = Vec::with_capacity(n_records);
    for _ in 0..n_records {
        let mut parts = lines.next()?.split(' ');
        let ctx = ContextId::from_index(parts.next()?.parse().ok()?);
        let start_us = unhex_f64(parts.next()?)?;
        let end_us = unhex_f64(parts.next()?)?;
        let name: Arc<str> = unhex_str(parts.next()?)?.into();
        let op_tag: Option<Arc<str>> = match parts.next()? {
            "-" => None,
            tag => Some(unhex_str(tag)?.into()),
        };
        if parts.next().is_some() {
            return None;
        }
        victim_log.push(KernelRecord {
            ctx,
            name,
            op_tag,
            start_us,
            end_us,
        });
    }
    if lines.next().is_some() {
        return None;
    }

    Some(RawTrace {
        samples,
        victim_log,
        collection,
        mean_iteration_us,
    })
}

fn disk_path(key: u64) -> PathBuf {
    cache_dir().join(format!("trace-{:016x}.txt", key))
}

fn disk_read(key: u64) -> Option<RawTrace> {
    let text = std::fs::read_to_string(disk_path(key)).ok()?;
    decode_trace(&text, key)
}

fn disk_write(key: u64, trace: &RawTrace) {
    // Persistence is best-effort: an unwritable directory degrades to `mem`
    // behaviour rather than failing the collection. Write through a
    // temporary file so concurrent processes never observe a torn entry.
    let dir = cache_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let tmp = dir.join(format!("trace-{:016x}.tmp-{}", key, std::process::id()));
    if std::fs::write(&tmp, encode_trace(key, trace)).is_ok() {
        let _ = std::fs::rename(&tmp, disk_path(key));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::collect_trace;
    use dnn_sim::{TrainingConfig, TrainingSession};

    fn tiny_session() -> TrainingSession {
        TrainingSession::new(crate::trace::tests::tiny_model(), TrainingConfig::new(4, 2))
    }

    fn tiny_trace() -> RawTrace {
        let cfg = CollectionConfig {
            slowdown: crate::slowdown::SlowdownConfig { kernels: 2 },
            ..CollectionConfig::paper()
        };
        collect_trace(&tiny_session(), &cfg, &GpuConfig::gtx_1080_ti())
    }

    fn assert_traces_bitwise_equal(a: &RawTrace, b: &RawTrace) {
        assert_eq!(a.samples.len(), b.samples.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.start_us.to_bits(), y.start_us.to_bits());
            assert_eq!(x.end_us.to_bits(), y.end_us.to_bits());
            for (u, v) in x.counters.as_array().iter().zip(y.counters.as_array()) {
                assert_eq!(u.to_bits(), v.to_bits());
            }
        }
        assert_eq!(a.victim_log, b.victim_log);
        assert_eq!(a.collection, b.collection);
        assert_eq!(a.mean_iteration_us.to_bits(), b.mean_iteration_us.to_bits());
    }

    #[test]
    fn disk_codec_round_trips_bitwise() {
        let mut trace = tiny_trace();
        // Exercise the awkward encodings explicitly.
        trace.mean_iteration_us = -0.0;
        trace.samples[0].start_us = f64::from_bits(0x0000_0000_0000_0001); // subnormal
        let encoded = encode_trace(42, &trace);
        let decoded = decode_trace(&encoded, 42).expect("decodes");
        assert_traces_bitwise_equal(&trace, &decoded);
        // Re-encoding the decoded trace is byte-identical (fixed point).
        assert_eq!(encode_trace(42, &decoded), encoded);
    }

    #[test]
    fn decode_rejects_key_mismatch_and_corruption() {
        let trace = tiny_trace();
        let encoded = encode_trace(7, &trace);
        assert!(decode_trace(&encoded, 7).is_some());
        assert!(decode_trace(&encoded, 8).is_none(), "wrong key must miss");
        let truncated = &encoded[..encoded.len() / 2];
        assert!(decode_trace(truncated, 7).is_none());
        let wrong_version = encoded.replacen(&format!("v{}", TRACE_SCHEMA_VERSION), "v999", 1);
        assert!(decode_trace(&wrong_version, 7).is_none());
    }

    #[test]
    fn key_changes_with_every_component() {
        let session = tiny_session();
        let collection = CollectionConfig::paper();
        let gpu = GpuConfig::gtx_1080_ti();
        let fp = "cupti-v1";
        let base = trace_key(&session, &collection, &gpu, fp);
        assert_eq!(
            base,
            trace_key(&session, &collection, &gpu, fp),
            "key must be stable"
        );

        let other_seed = collection.with_seed(collection.seed ^ 1);
        assert_ne!(base, trace_key(&session, &other_seed, &gpu, fp));

        let other_spy = CollectionConfig {
            spy_kernel: crate::spy::SpyKernelKind::MatMul,
            ..collection
        };
        assert_ne!(base, trace_key(&session, &other_spy, &gpu, fp));

        let mut other_gpu = gpu.clone();
        other_gpu.time_slice_us *= 2.0;
        assert_ne!(base, trace_key(&session, &collection, &other_gpu, fp));

        let other_model = TrainingSession::new(
            dnn_sim::zoo::tested_mlp(),
            dnn_sim::TrainingConfig::new(4, 2),
        );
        assert_ne!(base, trace_key(&other_model, &collection, &gpu, fp));

        let mut other_batch_cfg = session.config().clone();
        other_batch_cfg.batch += 1;
        let other_batch = TrainingSession::new(session.model().clone(), other_batch_cfg);
        assert_ne!(base, trace_key(&other_batch, &collection, &gpu, fp));

        assert_ne!(base, trace_key(&session, &collection, &gpu, "cupti-v2"));
    }

    #[test]
    fn feature_matrix_matches_direct_computation_and_is_shared() {
        let trace = tiny_trace();
        let direct: Vec<Vec<f32>> = trace
            .samples
            .iter()
            .map(|s| counter_features(&s.to_features()))
            .collect();
        let cached = counter_feature_matrix(&trace);
        assert_eq!(*cached, direct);
        // A bitwise-equal trace (e.g. a fresh collection of the same run)
        // shares the same matrix allocation.
        let again = counter_feature_matrix(&trace.clone());
        assert!(Arc::ptr_eq(&cached, &again));
    }

    #[test]
    fn fnv_vectors() {
        // Reference FNV-1a 64 digests, so the on-disk key space is pinned.
        let digest = |s: &str| {
            let mut h = KeyHasher::new();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(digest(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest("foobar"), 0x85944171f73967e8);
    }
}
