//! Fleet orchestrator: N concurrent spy sessions multiplexed over the
//! worker pool.
//!
//! Each [`SessionSpec`] gets its own seeded [`crate::trace::SpySession`]
//! (one simulated GPU + victim each, with a per-session
//! [`gpu_sim::FaultPlan`] riding in its [`GpuConfig`]) and a
//! **fixed-capacity ring buffer** (`VecDeque`) of feature rows between the
//! ingestion stage and the classification stage. The orchestrator runs
//! deterministic lockstep rounds:
//!
//! 1. **poll** — every live session advances its engine by a fixed step
//!    budget and drains newly attributable CUPTI samples
//!    ([`ml::par::par_map_mut`]: sessions are mutually independent, so the
//!    fan-out is bitwise identical to a serial sweep at any worker count);
//! 2. **ingest** — samples become feature rows and enter the session's
//!    bounded queue. Back-pressure is explicit: [`OverflowPolicy::Stall`]
//!    pauses a session's polling while its queue is full (lossless — the
//!    agreement-bench mode), [`OverflowPolicy::DropOldest`] evicts the
//!    oldest undrained rows onto a *counted* overflow path. Memory is
//!    bounded either way;
//! 3. **classify** — each session drains at most `drain_per_round` rows.
//!    At [`InferencePrecision::F32`] the rows feed the session's own
//!    [`crate::stream::AttackStream`] (stateful streaming LSTMs, labels
//!    with bounded latency, final extraction bitwise equal to the batch
//!    attack). At [`InferencePrecision::Int8`] rows feed a
//!    [`crate::stream::GapStream`] only; segments that close in a round
//!    are batched **across sessions** into one quantized
//!    `predict_batch` call per op model (the int8 serving path), and each
//!    session's final report is the ordinary batch
//!    [`Moscons::extract_with_precision`] at int8 — exactly the semantics
//!    of [`Moscons::attack_with_precision`].
//!
//! Determinism: rounds are a pure function of the specs and the config —
//! worker count, scheduling and session completion order never feed back
//! into any session's inputs (see `tests/determinism.rs`).

use std::collections::VecDeque;
use std::ops::Range;

use cupti_sim::CuptiSample;
use dnn_sim::TrainingSession;
use gpu_sim::GpuConfig;

use crate::attack::{Extraction, InferencePrecision, Moscons};
use crate::dataset::counter_features;
use crate::stream::{AttackStream, GapStream, SplitEvent};
use crate::trace::SpySession;

/// What happens when a session's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Pause the session's polling until the consumer catches up. Lossless:
    /// every sample reaches the classifier, so the streamed extraction
    /// stays bitwise equal to the batch attack.
    Stall,
    /// Keep polling; evict the oldest undrained rows and count them in
    /// [`SessionOutcome::overflow_dropped`]. Lossy but never unbounded.
    DropOldest,
}

/// Fleet sizing and scheduling knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Ring-buffer capacity (feature rows) per session. Polling may
    /// momentarily overshoot by one poll's yield under
    /// [`OverflowPolicy::Stall`]; eviction keeps the queue at capacity
    /// under [`OverflowPolicy::DropOldest`].
    pub queue_capacity: usize,
    /// Back-pressure policy for full queues.
    pub overflow: OverflowPolicy,
    /// Op-classifier precision (see module docs for how the two modes
    /// differ structurally).
    pub precision: InferencePrecision,
    /// Engine events each live session advances per poll round.
    pub poll_steps: usize,
    /// Maximum rows a session drains from its queue per classify round.
    pub drain_per_round: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            queue_capacity: 256,
            overflow: OverflowPolicy::Stall,
            precision: InferencePrecision::F32,
            poll_steps: 256,
            drain_per_round: 64,
        }
    }
}

/// One victim to attack: seed and GPU (faults included) are per-session.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The victim's training session.
    pub victim: TrainingSession,
    /// Collection seed (same meaning as [`Moscons::attack`]'s `seed`).
    pub seed: u64,
    /// Simulated GPU for this session, carrying its
    /// [`gpu_sim::FaultPlan`].
    pub gpu: GpuConfig,
}

/// Per-session result of a fleet run.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The extraction. F32: bitwise equal to
    /// [`Moscons::attack_on`] on the same victim/seed/GPU (when lossless).
    /// Int8: [`Moscons::extract_with_precision`] at int8 over the streamed
    /// rows.
    pub extraction: Extraction,
    /// Label emission latency, in samples, for every streamed label
    /// (distance between a sample entering the classifier and its label
    /// coming out).
    pub label_latencies: Vec<usize>,
    /// Rows evicted by [`OverflowPolicy::DropOldest`] (always 0 under
    /// [`OverflowPolicy::Stall`]).
    pub overflow_dropped: usize,
    /// CUPTI samples the session streamed in total.
    pub samples_streamed: usize,
}

impl SessionOutcome {
    /// Number of streamed labels the session emitted.
    pub fn labels_emitted(&self) -> usize {
        self.label_latencies.len()
    }
}

/// The whole fleet's result.
#[derive(Debug)]
pub struct FleetOutcome {
    /// One outcome per input spec, in spec order.
    pub sessions: Vec<SessionOutcome>,
    /// Lockstep rounds the fleet ran.
    pub rounds: usize,
}

/// Mode-specific classification state of one session.
#[derive(Debug)]
enum Engine<'a> {
    /// Full streaming attack path (gap + stateful LSTMs). Boxed: the
    /// stream (7 classifier states + buffers) dwarfs the int8 variant.
    F32 {
        stream: Option<Box<AttackStream<'a>>>,
    },
    /// Incremental gap detection only; classification happens
    /// cross-session on closed segments, raw rows retained for the final
    /// batch-semantics report.
    Int8 {
        gap: GapStream<'a>,
        features: Vec<Vec<f32>>,
        events: Vec<SplitEvent>,
    },
}

#[derive(Debug)]
struct SessionState<'a> {
    moscons: &'a Moscons,
    /// `Some` until the run (incl. the trailing-gap tail) has been drained.
    spy: Option<SpySession>,
    queue: VecDeque<Vec<f32>>,
    /// Rows drained into the classification engine so far.
    processed: usize,
    overflow_dropped: usize,
    samples_streamed: usize,
    engine: Engine<'a>,
    label_latencies: Vec<usize>,
    extraction: Option<Extraction>,
    finalized: bool,
}

impl<'a> SessionState<'a> {
    fn start(moscons: &'a Moscons, spec: &SessionSpec, config: &FleetConfig) -> Self {
        let collection = moscons.config().collection.with_seed(spec.seed);
        let spy = SpySession::start(&spec.victim, &collection, &spec.gpu);
        let engine = match config.precision {
            InferencePrecision::F32 => Engine::F32 {
                stream: Some(Box::new(AttackStream::new(moscons))),
            },
            InferencePrecision::Int8 => Engine::Int8 {
                gap: GapStream::new(moscons.gap_model(), moscons.scaler()),
                features: Vec::new(),
                events: Vec::new(),
            },
        };
        SessionState {
            moscons,
            spy: Some(spy),
            queue: VecDeque::new(),
            processed: 0,
            overflow_dropped: 0,
            samples_streamed: 0,
            engine,
            label_latencies: Vec::new(),
            extraction: None,
            finalized: false,
        }
    }

    /// Poll phase: advance the engine unless back-pressure says wait.
    fn poll_round(&mut self, config: &FleetConfig) -> Vec<CuptiSample> {
        if config.overflow == OverflowPolicy::Stall && self.queue.len() >= config.queue_capacity {
            // Back-pressure: the consumer is behind, pause the producer.
            return Vec::new();
        }
        let Some(spy) = self.spy.as_mut() else {
            return Vec::new();
        };
        if !spy.is_done() {
            return spy.poll(config.poll_steps);
        }
        // Run complete: release the held-back tail and retire the session.
        match self.spy.take() {
            Some(spy) => spy.finish().samples,
            None => Vec::new(),
        }
    }

    /// Ingest phase: samples become queued feature rows, bounded.
    fn ingest(&mut self, samples: Vec<CuptiSample>, config: &FleetConfig) {
        for s in samples {
            self.samples_streamed += 1;
            self.queue.push_back(counter_features(&s.to_features()));
            if config.overflow == OverflowPolicy::DropOldest {
                while self.queue.len() > config.queue_capacity {
                    self.queue.pop_front();
                    self.overflow_dropped += 1;
                }
            }
        }
    }

    /// Classify phase, f32 mode: feed the session's streaming attack path.
    fn drain_f32(&mut self, config: &FleetConfig) {
        if self.finalized {
            return;
        }
        let Engine::F32 { stream } = &mut self.engine else {
            // Mixed-up engine: skip the round rather than abort the fleet.
            debug_assert!(false, "f32 fleet builds f32 engines");
            return;
        };
        let Some(live) = stream.as_mut() else {
            // Stream already consumed: nothing left to classify.
            debug_assert!(false, "stream alive until finalize");
            return;
        };
        for _ in 0..config.drain_per_round {
            let Some(row) = self.queue.pop_front() else {
                break;
            };
            self.processed += 1;
            let now = live.samples_pushed(); // index this row gets
            for label in live.push(&row) {
                self.label_latencies.push(now - label.sample);
            }
        }
        if !self.finalized && self.spy.is_none() && self.queue.is_empty() {
            let total = live.samples_pushed();
            let Some(finished) = stream.take() else {
                debug_assert!(false, "finalize once");
                return;
            };
            let outcome = finished.finish();
            let now = total.saturating_sub(1);
            for label in &outcome.labels {
                self.label_latencies.push(now - label.sample);
            }
            self.extraction = Some(outcome.extraction);
            self.finalized = true;
        }
    }

    /// Classify phase, int8 mode: incremental gap detection; returns the
    /// segments that closed this round (classified cross-session by the
    /// caller).
    fn drain_int8(&mut self, config: &FleetConfig) -> Vec<Range<usize>> {
        if self.finalized {
            return Vec::new();
        }
        let Engine::Int8 {
            gap,
            features,
            events,
        } = &mut self.engine
        else {
            // Mixed-up engine: skip the round rather than abort the fleet.
            debug_assert!(false, "int8 fleet builds int8 engines");
            return Vec::new();
        };
        let mut closed = Vec::new();
        for _ in 0..config.drain_per_round {
            let Some(row) = self.queue.pop_front() else {
                break;
            };
            self.processed += 1;
            events.clear();
            gap.push(&row, events);
            features.push(row);
            for e in events.drain(..) {
                if let SplitEvent::Close(r) = e {
                    closed.push(r);
                }
            }
        }
        if !self.finalized && self.spy.is_none() && self.queue.is_empty() {
            events.clear();
            gap.finish(events);
            for e in events.drain(..) {
                if let SplitEvent::Close(r) = e {
                    closed.push(r);
                }
            }
            self.extraction = Some(
                self.moscons
                    .extract_with_precision(features, InferencePrecision::Int8),
            );
            self.finalized = true;
        }
        closed
    }

    fn into_outcome(self) -> SessionOutcome {
        SessionOutcome {
            extraction: self.extraction.expect("fleet loop runs to finalization"),
            label_latencies: self.label_latencies,
            overflow_dropped: self.overflow_dropped,
            samples_streamed: self.samples_streamed,
        }
    }
}

/// Runs every session to completion and returns per-session outcomes in
/// spec order. See the module docs for the round structure and the
/// determinism contract.
///
/// # Panics
///
/// Panics if any sizing knob is zero.
pub fn run_fleet(moscons: &Moscons, specs: &[SessionSpec], config: &FleetConfig) -> FleetOutcome {
    assert!(config.queue_capacity > 0, "queue_capacity must be positive");
    assert!(config.poll_steps > 0, "poll_steps must be positive");
    assert!(
        config.drain_per_round > 0,
        "drain_per_round must be positive"
    );
    let mut states: Vec<SessionState> = specs
        .iter()
        .map(|spec| SessionState::start(moscons, spec, config))
        .collect();
    let mut rounds = 0usize;
    while states.iter().any(|s| !s.finalized) {
        rounds += 1;
        // Poll: independent engines, order-free fan-out.
        let polled: Vec<Vec<CuptiSample>> =
            ml::par::par_map_mut(&mut states, |_, st| st.poll_round(config));
        // Ingest: sequential, bounded.
        for (st, samples) in states.iter_mut().zip(polled) {
            st.ingest(samples, config);
        }
        // Classify.
        match config.precision {
            InferencePrecision::F32 => {
                ml::par::par_map_mut(&mut states, |_, st| st.drain_f32(config));
            }
            InferencePrecision::Int8 => {
                let closed: Vec<Vec<Range<usize>>> =
                    ml::par::par_map_mut(&mut states, |_, st| st.drain_int8(config));
                classify_closed_cross_session(moscons, &mut states, &closed);
            }
        }
    }
    FleetOutcome {
        sessions: states.into_iter().map(SessionState::into_outcome).collect(),
        rounds,
    }
}

/// Int8 serving: every segment that closed this round, across all
/// sessions, goes through ONE quantized `predict_batch` call per op model
/// (equal-length segments share fused int8 GEMMs regardless of which
/// session they came from).
fn classify_closed_cross_session(
    moscons: &Moscons,
    states: &mut [SessionState],
    closed: &[Vec<Range<usize>>],
) {
    let mut owners: Vec<(usize, Range<usize>)> = Vec::new();
    for (si, ranges) in closed.iter().enumerate() {
        for r in ranges {
            owners.push((si, r.clone()));
        }
    }
    if owners.is_empty() {
        return;
    }
    // Contract with the caller: `closed` came from these sessions, so every
    // owner's session index is in range (checked up front — one malformed
    // batch must not abort the fleet mid-scatter).
    assert!(
        owners.iter().all(|(si, _)| *si < states.len()),
        "closed segment lists are parallel to states"
    );
    {
        let refs: Vec<&[Vec<f32>]> = owners
            .iter()
            .map(|(si, r)| {
                let Engine::Int8 { features, .. } = &states[*si].engine else {
                    // Mixed-up engine: classify an empty segment instead of
                    // aborting the whole fleet.
                    debug_assert!(false, "int8 fleet builds int8 engines");
                    return &[][..];
                };
                features.get(r.clone()).unwrap_or(&[][..])
            })
            .collect();
        // The serving path itself: labels are emitted here; the final
        // per-session report re-scores its voting group with identical
        // batch semantics at finalization.
        let long = moscons
            .quantized_long_model()
            .predict_batch(&refs, moscons.scaler());
        let op = moscons
            .quantized_op_model()
            .predict_batch(&refs, moscons.scaler());
        debug_assert_eq!(long.len(), owners.len());
        debug_assert_eq!(op.len(), owners.len());
    }
    for (si, r) in owners {
        let st = &mut states[si];
        let now = st.processed.saturating_sub(1);
        for sample in r {
            st.label_latencies.push(now.saturating_sub(sample));
        }
    }
}
