//! The spy program's probe kernels.
//!
//! §III-C: the spy runs dummy kernels with 4 blocks x 32 threads and measures
//! the context-switching penalty caused by the victim kernels that ran in
//! between. Five candidate kernels are evaluated (Table I); `Conv200` wins —
//! it has the largest overlap with DNN ops in requested units and
//! memory-access patterns (large reuse working set, texture usage, an
//! in-place dirty output buffer) and a short execution time, so it both
//! *feels* the victim's evictions strongly and samples often.

use std::fmt;

use gpu_sim::{GpuConfig, KernelDesc, KernelFootprint, RetryPolicy};
use serde::{Deserialize, Serialize};

/// The spy's launch geometry (paper §III-C: 4 blocks, 32 threads → 4 SMs).
pub const SPY_BLOCKS: u32 = 4;
/// Threads per spy block.
pub const SPY_THREADS_PER_BLOCK: u32 = 32;

/// The five candidate spy kernels of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpyKernelKind {
    /// Element-wise vector addition: negligible footprint.
    VectorAdd,
    /// Element-wise vector multiplication.
    VectorMul,
    /// Small dense matrix multiplication.
    MatMul,
    /// 100x100 convolution.
    Conv100,
    /// 200x200 convolution — the paper's choice.
    Conv200,
}

impl SpyKernelKind {
    /// All candidates in Table I order.
    pub const ALL: [SpyKernelKind; 5] = [
        SpyKernelKind::VectorAdd,
        SpyKernelKind::VectorMul,
        SpyKernelKind::MatMul,
        SpyKernelKind::Conv100,
        SpyKernelKind::Conv200,
    ];

    /// Display name as in Table I.
    pub fn name(self) -> &'static str {
        match self {
            SpyKernelKind::VectorAdd => "VectorAdd",
            SpyKernelKind::VectorMul => "VectorMul",
            SpyKernelKind::MatMul => "MatMul",
            SpyKernelKind::Conv100 => "Conv100",
            SpyKernelKind::Conv200 => "Conv200",
        }
    }

    /// Builds the kernel description, optionally stretched by a CUPTI replay
    /// factor (see [`cupti_sim::replay_factor`]).
    ///
    /// The footprints encode the probe-quality spectrum of Table I: the
    /// vector kernels barely touch memory (tiny, unstable readings), the
    /// small MatMul holds a modest reuse set, and the convolutions combine a
    /// large global + texture working set with an in-place dirty output —
    /// maximal overlap with DNN kernels' resource usage.
    pub fn kernel(self, replay_factor: f64, config: &GpuConfig) -> KernelDesc {
        assert!(replay_factor >= 1.0, "replay factor must be >= 1");
        let kib = 1024.0;
        let (dur_us, read, write, tex_read, ws, tex_ws) = match self {
            SpyKernelKind::VectorAdd => (80.0, 24.0 * kib, 8.0 * kib, 0.0, 16.0 * kib, 0.0),
            SpyKernelKind::VectorMul => (100.0, 32.0 * kib, 8.0 * kib, 0.0, 24.0 * kib, 0.0),
            SpyKernelKind::MatMul => (400.0, 96.0 * kib, 32.0 * kib, 0.0, 256.0 * kib, 0.0),
            SpyKernelKind::Conv100 => (
                250.0,
                96.0 * kib,
                64.0 * kib,
                48.0 * kib,
                160.0 * kib,
                96.0 * kib,
            ),
            SpyKernelKind::Conv200 => (
                500.0,
                160.0 * kib,
                256.0 * kib,
                96.0 * kib,
                512.0 * kib,
                256.0 * kib,
            ),
        };
        // The spy's 4 blocks occupy 4 SMs; duration is compute-driven at that
        // occupancy, stretched by the profiling replay factor.
        let occ = gpu_sim::Occupancy::of_launch(SPY_BLOCKS, SPY_THREADS_PER_BLOCK, config)
            .fraction()
            .max(1e-3);
        let flops = config.compute_throughput * occ * dur_us * replay_factor;
        let fp = KernelFootprint {
            flops,
            read_bytes: read,
            write_bytes: write,
            tex_read_bytes: tex_read,
            working_set: ws,
            tex_working_set: tex_ws,
        };
        KernelDesc::new(
            format!("spy_{}", self.name()),
            SPY_BLOCKS,
            SPY_THREADS_PER_BLOCK,
            fp,
        )
    }
}

impl fmt::Display for SpyKernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// First-retry backoff after a failed spy launch, microseconds. Matches the
/// host-side relaunch latency: the first retry is just the next loop turn.
pub const RETRY_BASE_US: f64 = 30.0;
/// Backoff growth per consecutive failure.
pub const RETRY_FACTOR: f64 = 2.0;
/// Backoff ceiling, microseconds. Bounded well below one poll period so that
/// even a burst of failed launches cannot silence the sampler for a whole
/// CUPTI window — the stream degrades to sparser samples instead of
/// developing false iteration gaps.
pub const RETRY_CAP_US: f64 = 480.0;

/// The sampler's launch-retry schedule: bounded exponential backoff. Failed
/// launches only occur under an active fault plan
/// (`gpu_sim::FaultPlan::launch_fail_prob`); on the clean path the policy is
/// installed but never consulted, so it cannot perturb clean traces.
pub fn sampler_retry_policy() -> RetryPolicy {
    RetryPolicy {
        base_us: RETRY_BASE_US,
        factor: RETRY_FACTOR,
        cap_us: RETRY_CAP_US,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spy_geometry_matches_paper() {
        let cfg = GpuConfig::gtx_1080_ti();
        for kind in SpyKernelKind::ALL {
            let k = kind.kernel(1.0, &cfg);
            assert_eq!(k.blocks, 4);
            assert_eq!(k.threads_per_block, 32);
            assert_eq!(k.occupancy(&cfg).sms_used(), 4);
        }
    }

    #[test]
    fn conv200_has_largest_probe_footprint() {
        let cfg = GpuConfig::gtx_1080_ti();
        let conv200 = SpyKernelKind::Conv200.kernel(1.0, &cfg);
        for kind in [
            SpyKernelKind::VectorAdd,
            SpyKernelKind::VectorMul,
            SpyKernelKind::MatMul,
        ] {
            let other = kind.kernel(1.0, &cfg);
            assert!(
                conv200.footprint.total_working_set() > other.footprint.total_working_set(),
                "{} should have a smaller probe set",
                kind
            );
        }
        assert!(conv200.footprint.tex_working_set > 0.0);
    }

    #[test]
    fn replay_factor_stretches_duration() {
        let cfg = GpuConfig::gtx_1080_ti();
        let base = SpyKernelKind::Conv200
            .kernel(1.0, &cfg)
            .nominal_duration_us(&cfg);
        let replay = SpyKernelKind::Conv200
            .kernel(1.24, &cfg)
            .nominal_duration_us(&cfg);
        assert!(replay > base * 1.2, "{} vs {}", base, replay);
    }

    #[test]
    fn retry_policy_is_bounded_below_the_poll_period() {
        let policy = sampler_retry_policy();
        // Backoff grows but saturates at the cap...
        assert!(policy.backoff_us(2) > policy.backoff_us(1));
        assert_eq!(policy.backoff_us(64), RETRY_CAP_US);
        // ...and the cap stays well inside the paper's 1 ms poll period, so
        // failed launches thin the sample stream rather than hollow it out.
        assert!(RETRY_CAP_US < crate::trace::CollectionConfig::paper().poll_period_us / 2.0);
    }

    #[test]
    fn vector_kernels_are_short() {
        let cfg = GpuConfig::gtx_1080_ti();
        let va = SpyKernelKind::VectorAdd
            .kernel(1.0, &cfg)
            .nominal_duration_us(&cfg);
        let c200 = SpyKernelKind::Conv200
            .kernel(1.0, &cfg)
            .nominal_duration_us(&cfg);
        assert!(va < c200 / 3.0);
    }
}
