//! Labeled datasets: aligning spy samples with the victim's ground-truth
//! timeline (profiling phase, §V-A), scaling features, and slicing sample
//! streams into iterations.

use dnn_sim::{parse_op_tag, OpClass, OpKind};
use gpu_sim::dominant_tag;
use ml::MinMaxScaler;
use serde::{Deserialize, Serialize};

use crate::trace::RawTrace;

/// Width of the model feature vectors produced by [`counter_features`].
pub const FEATURE_WIDTH: usize = 13;

/// Converts a raw 10-counter vector into model features: `ln(1 + x)` per
/// counter, plus three scale-invariant ratios (texture/read, write/read and
/// L2-write/L2-read shares). The counters are heavy-tailed (idle-drain
/// windows reach 10^5 sectors while element-wise penalties sit around 10^2);
/// without the log, MinMax scaling crushes everything informative into a
/// sliver near zero, and the ratios expose op *type* independently of layer
/// *size*.
pub fn counter_features(raw: &[f32]) -> Vec<f32> {
    assert_eq!(raw.len(), 10, "expected the 10 Table IV counters");
    let mut out: Vec<f32> = raw.iter().map(|&v| (1.0 + v.max(0.0)).ln()).collect();
    let tex = raw[0] + raw[1];
    let rd = raw[2] + raw[3];
    let wr = raw[4] + raw[5];
    let l2r = raw[6] + raw[7];
    let l2w = raw[8] + raw[9];
    out.push(tex / (rd + 1.0));
    out.push(wr / (rd + 1.0));
    out.push(l2w / (l2r + 1.0));
    debug_assert_eq!(out.len(), FEATURE_WIDTH);
    out
}

/// One spy sample with ground-truth annotation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledSample {
    /// Log-scaled 10-dimensional counter vector (see [`counter_features`]).
    pub features: Vec<f32>,
    /// Ground-truth op class (`Nop` when no victim op overlapped).
    pub class: OpClass,
    /// Ground-truth op kind, when an op overlapped.
    pub kind: Option<OpKind>,
    /// Model layer the dominant op belonged to.
    pub layer_index: Option<usize>,
    /// Window start (microseconds) — kept for iteration slicing.
    pub start_us: f64,
}

/// A fully labeled trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabeledTrace {
    /// Samples in time order.
    pub samples: Vec<LabeledSample>,
    /// Name of the victim model (for bookkeeping).
    pub model_name: String,
}

impl LabeledTrace {
    /// Labels every sample of a raw trace against its victim timeline using
    /// the paper's largest-overlap rule.
    pub fn from_raw(raw: &RawTrace, model_name: impl Into<String>) -> Self {
        let samples = raw
            .samples
            .iter()
            .map(|s| {
                let tag = dominant_tag(&raw.victim_log, s.start_us, s.end_us);
                let (class, kind, layer_index) = match tag {
                    Some(t) => {
                        let (name, layer) = parse_op_tag(t);
                        match OpKind::from_op_name(name) {
                            Some(k) => (k.class(), Some(k), layer),
                            None => (OpClass::Nop, None, None),
                        }
                    }
                    None => (OpClass::Nop, None, None),
                };
                LabeledSample {
                    features: counter_features(&s.to_features()),
                    class,
                    kind,
                    layer_index,
                    start_us: s.start_us,
                }
            })
            .collect();
        LabeledTrace {
            samples,
            model_name: model_name.into(),
        }
    }

    /// Splits the trace into iterations using the **ground-truth** NOP
    /// labels (available to the adversary in the profiling phase; the attack
    /// phase uses `Mgap` instead). An iteration boundary is a run of at
    /// least `th_gap` consecutive NOP samples.
    pub fn split_iterations_ground_truth(&self, th_gap: usize) -> Vec<std::ops::Range<usize>> {
        split_on_nop_runs(
            &self
                .samples
                .iter()
                .map(|s| s.class == OpClass::Nop)
                .collect::<Vec<_>>(),
            th_gap,
        )
    }

    /// Per-class sample counts (diagnostics and Table VI denominators).
    pub fn class_counts(&self) -> Vec<(OpClass, usize)> {
        OpClass::ALL
            .iter()
            .map(|&c| (c, self.samples.iter().filter(|s| s.class == c).count()))
            .filter(|(_, n)| *n > 0)
            .collect()
    }
}

/// Splits a boolean NOP sequence into busy segments separated by runs of at
/// least `th_gap` NOPs. Returned ranges cover busy regions (leading/trailing
/// NOP runs excluded, shorter NOP runs kept inside segments).
pub fn split_on_nop_runs(is_nop: &[bool], th_gap: usize) -> Vec<std::ops::Range<usize>> {
    assert!(th_gap > 0, "th_gap must be positive");
    let mut segments = Vec::new();
    let mut seg_start: Option<usize> = None;
    let mut nop_run = 0usize;
    for (i, &nop) in is_nop.iter().enumerate() {
        if nop {
            nop_run += 1;
            if nop_run == th_gap {
                // Close the current segment before this run.
                if let Some(start) = seg_start.take() {
                    let end = i + 1 - th_gap;
                    if end > start {
                        segments.push(start..end);
                    }
                }
            }
        } else {
            if seg_start.is_none() {
                seg_start = Some(i);
            }
            nop_run = 0;
        }
    }
    if let Some(start) = seg_start {
        let mut end = is_nop.len();
        // Trim trailing NOPs (a run shorter than th_gap may remain).
        while end > start && is_nop[end - 1] {
            end -= 1;
        }
        if end > start {
            segments.push(start..end);
        }
    }
    segments
}

/// Fault-tolerant variant of [`split_on_nop_runs`]: BUSY runs of at most
/// `bridge` samples that are flanked by NOPs on both sides are treated as
/// NOP before splitting. A missed host poll (see
/// `CuptiSession::collect_faulted`) merges a quiet window into its busy
/// successor, planting an isolated busy-looking sample inside a real
/// iteration gap; without bridging, that one sample cuts the `TH_gap` run
/// in two and glues two iterations together. `bridge == 0` is exactly
/// [`split_on_nop_runs`].
pub fn split_on_nop_runs_bridged(
    is_nop: &[bool],
    th_gap: usize,
    bridge: usize,
) -> Vec<std::ops::Range<usize>> {
    if bridge == 0 {
        return split_on_nop_runs(is_nop, th_gap);
    }
    let mut bridged = is_nop.to_vec();
    let mut i = 0;
    while i < bridged.len() {
        if !bridged[i] {
            let start = i;
            while i < bridged.len() && !bridged[i] {
                i += 1;
            }
            // Flanked on both sides by NOP (interior run) and short enough.
            let flanked = start > 0 && i < bridged.len();
            if flanked && i - start <= bridge {
                for b in bridged.iter_mut().take(i).skip(start) {
                    *b = true;
                }
            }
        } else {
            i += 1;
        }
    }
    split_on_nop_runs(&bridged, th_gap)
}

/// Drops segments whose length is outside `[r_min, r_max]` times the
/// typical segment length — the paper's incomplete-iteration filter (§IV-A).
/// We use the median rather than the paper's average: a single truncated
/// segment otherwise drags the reference down far enough to reject every
/// complete iteration.
pub fn filter_valid_iterations(
    segments: Vec<std::ops::Range<usize>>,
    r_min: f64,
    r_max: f64,
) -> Vec<std::ops::Range<usize>> {
    if segments.is_empty() {
        return segments;
    }
    let mut lens: Vec<usize> = segments.iter().map(|s| s.len()).collect();
    lens.sort_unstable();
    let median = lens[lens.len() / 2] as f64;
    segments
        .into_iter()
        .filter(|s| {
            let l = s.len() as f64;
            l >= median * r_min && l <= median * r_max
        })
        .collect()
}

/// Augments each scaled feature row with the next row (one-step lookahead):
/// the op classifiers' LSTM is unidirectional, and the sample *after* an op
/// boundary often carries the op's penalty readings. The final row repeats
/// itself as its own lookahead.
pub fn with_lookahead(scaled: &[Vec<f32>]) -> Vec<Vec<f32>> {
    (0..scaled.len())
        .map(|i| {
            let mut row = scaled[i].clone();
            let next = scaled.get(i + 1).unwrap_or(&scaled[i]);
            row.extend_from_slice(next);
            row
        })
        .collect()
}

/// Fits the MinMax scaler over every sample of the given traces (§IV-A
/// pre-processing).
pub fn fit_scaler(traces: &[&LabeledTrace]) -> MinMaxScaler {
    let rows: Vec<Vec<f32>> = traces
        .iter()
        .flat_map(|t| t.samples.iter().map(|s| s.features.clone()))
        .collect();
    MinMaxScaler::fit(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_on_nop_runs_basic() {
        // B B N N N B B N B  with th_gap = 3
        let nop = [false, false, true, true, true, false, false, true, false];
        let segs = split_on_nop_runs(&nop, 3);
        assert_eq!(segs, vec![0..2, 5..9]);
        // Shorter runs stay inside segments; trailing busy kept.
    }

    #[test]
    fn split_trims_leading_and_trailing_nops() {
        let nop = [true, true, false, false, true, true];
        let segs = split_on_nop_runs(&nop, 2);
        assert_eq!(segs, vec![2..4]);
    }

    #[test]
    fn split_all_nop_is_empty() {
        let nop = [true; 10];
        assert!(split_on_nop_runs(&nop, 3).is_empty());
    }

    #[test]
    fn bridged_split_absorbs_isolated_busy_samples() {
        // A real gap of 6 NOPs with one busy-looking sample in the middle
        // (a missed poll merged a quiet window into its successor).
        let nop = [
            false, false, true, true, true, false, true, true, true, false, false,
        ];
        // Unbridged: the spurious sample cuts the gap in two 3-runs < TH_gap,
        // gluing the two iterations together.
        assert_eq!(split_on_nop_runs(&nop, 6), vec![0..11]);
        // Bridge = 1 restores the split.
        assert_eq!(split_on_nop_runs_bridged(&nop, 6, 1), vec![0..2, 9..11]);
    }

    #[test]
    fn bridge_zero_is_exactly_the_plain_splitter() {
        let patterns: Vec<Vec<bool>> = vec![
            vec![false, false, true, true, true, false, false, true, false],
            vec![true, true, false, false, true, true],
            vec![true; 10],
            vec![false; 10],
            vec![],
        ];
        for p in patterns {
            for th in 1..5 {
                assert_eq!(
                    split_on_nop_runs_bridged(&p, th, 0),
                    split_on_nop_runs(&p, th)
                );
            }
        }
    }

    #[test]
    fn bridge_does_not_flip_long_busy_runs_or_edges() {
        // A 3-sample busy run survives bridge = 2.
        let nop = [true, false, false, false, true, true];
        assert_eq!(
            split_on_nop_runs_bridged(&nop, 2, 2),
            split_on_nop_runs(&nop, 2)
        );
        // Edge busy runs (not flanked on both sides) are never bridged.
        let nop = [false, true, true, false];
        assert_eq!(split_on_nop_runs_bridged(&nop, 2, 1), vec![0..1, 3..4]);
    }

    #[test]
    fn filter_valid_iterations_drops_outliers() {
        let segs = vec![0..10, 10..20, 20..23, 23..33];
        // Median length = 10; the truncated 3-sample segment is dropped.
        let kept = filter_valid_iterations(segs, 0.8, 1.2);
        assert_eq!(kept, vec![0..10, 10..20, 23..33]);
    }

    #[test]
    fn filter_empty_is_empty() {
        assert!(filter_valid_iterations(vec![], 0.8, 1.2).is_empty());
    }

    #[test]
    fn labeled_trace_from_tiny_run() {
        use crate::trace::{collect_trace, CollectionConfig};
        use dnn_sim::{TrainingConfig, TrainingSession};
        let model = dnn_sim::Model::new(
            "t",
            dnn_sim::InputSpec::Image {
                height: 16,
                width: 16,
                channels: 3,
            },
            vec![dnn_sim::Layer::dense(32, dnn_sim::Activation::Relu)],
            dnn_sim::Optimizer::Gd,
        );
        let session = TrainingSession::new(model, TrainingConfig::new(4, 2));
        let raw = collect_trace(
            &session,
            &CollectionConfig::paper(),
            &gpu_sim::GpuConfig::gtx_1080_ti(),
        );
        let labeled = LabeledTrace::from_raw(&raw, "t");
        assert_eq!(labeled.samples.len(), raw.samples.len());
        // Both busy and NOP samples must exist.
        assert!(labeled.samples.iter().any(|s| s.class == OpClass::Nop));
        assert!(labeled.samples.iter().any(|s| s.class == OpClass::MatMul));
        // Ground-truth iteration splitting finds the two iterations.
        let iters = labeled.split_iterations_ground_truth(6);
        assert_eq!(iters.len(), 2, "{:?}", iters);
        // Scaler fits without panicking and produces unit-range features.
        let scaler = fit_scaler(&[&labeled]);
        let t = scaler.transform_row(&labeled.samples[0].features);
        assert!(t.iter().all(|v| (0.0..=1.0).contains(v)));
    }
}
