//! Op → kernel lowering: converts each planned [`Op`] into a [`KernelDesc`]
//! whose footprint (streaming traffic, working sets, texture usage) is
//! derived from the op's tensor volumes.
//!
//! The traffic multipliers below are modeling knobs (documented in
//! DESIGN.md): they encode the *relative* memory behaviour of the cuDNN
//! kernels — convolutions route filters and input tiles through the texture
//! path, transcendental activations make more passes over their tensors than
//! ReLU, `BiasAddGrad` writes almost nothing, optimizers differ in how many
//! state tensors they stream — which is exactly the structure the
//! side-channel transports.

use gpu_sim::{GpuConfig, KernelDesc, KernelFootprint};

use crate::ops::{Op, OpKind};
use crate::tensor::ELEM_BYTES;

/// Cap on the cacheable weight working set (most of L2).
const WS_WEIGHT_CAP: f64 = 2.4 * 1024.0 * 1024.0;
/// Cap on the texture-tagged working set.
const WS_TEX_CAP: f64 = 1.6 * 1024.0 * 1024.0;
/// Working set of element-wise streaming ops (a few tile buffers).
const WS_ELEMWISE: f64 = 48.0 * 1024.0;

/// Ground-truth tag attached to a lowered kernel: `"{op_name}@{layer}"`.
pub fn op_tag(op: &Op) -> String {
    match op.layer_index {
        Some(l) => format!("{}@{}", op.kind.op_name(), l),
        None => op.kind.op_name().to_owned(),
    }
}

/// Parses an op tag back into `(op_name, layer_index)`.
pub fn parse_op_tag(tag: &str) -> (&str, Option<usize>) {
    match tag.split_once('@') {
        Some((name, layer)) => (name, layer.parse().ok()),
        None => (tag, None),
    }
}

/// Lowers one op into a kernel description. `seq_index` makes the kernel
/// name unique within an iteration (and stable across iterations, so the
/// engine's per-kernel warm-state tracking carries over).
pub fn lower_op(op: &Op, seq_index: usize, config: &GpuConfig) -> KernelDesc {
    let in_b = op.in_elems as f64 * ELEM_BYTES;
    let out_b = op.out_elems as f64 * ELEM_BYTES;
    let w_b = op.weight_elems as f64 * ELEM_BYTES;

    let fp = match op.kind {
        OpKind::Conv2D => KernelFootprint {
            flops: op.flops,
            read_bytes: in_b + w_b,
            write_bytes: out_b,
            tex_read_bytes: 0.6 * in_b + w_b,
            working_set: (w_b + in_b / op.in_elems.max(1) as f64 * 64.0).min(WS_WEIGHT_CAP),
            tex_working_set: w_b.min(WS_TEX_CAP),
        },
        OpKind::Conv2DBackpropFilter => KernelFootprint {
            flops: op.flops,
            read_bytes: in_b + out_b,
            write_bytes: w_b,
            tex_read_bytes: 0.4 * (in_b + out_b),
            working_set: (w_b + 128.0 * 1024.0).min(WS_WEIGHT_CAP),
            tex_working_set: (0.6 * w_b).min(WS_TEX_CAP),
        },
        OpKind::Conv2DBackpropInput => KernelFootprint {
            flops: op.flops,
            read_bytes: in_b + w_b,
            write_bytes: out_b,
            tex_read_bytes: 0.5 * in_b + w_b,
            working_set: (w_b + 128.0 * 1024.0).min(WS_WEIGHT_CAP),
            tex_working_set: w_b.min(WS_TEX_CAP),
        },
        OpKind::MatMul => KernelFootprint {
            flops: op.flops,
            read_bytes: in_b + w_b,
            write_bytes: out_b,
            tex_read_bytes: 0.0,
            working_set: (w_b + in_b / 8.0).min(WS_WEIGHT_CAP),
            tex_working_set: 0.0,
        },
        // The bias broadcast re-reads the bias vector per tile, giving
        // BiasAdd a read multiplier between ReLU's 1.0 and Sigmoid's 1.75 —
        // its forward footprint is otherwise identical to an activation.
        OpKind::BiasAdd => elementwise(op, 1.4, 1.0),
        OpKind::BiasAddGrad => KernelFootprint {
            // Reduction into the bias vector: reads the tensor, writes ~0.
            flops: op.flops,
            read_bytes: in_b,
            write_bytes: 1024.0,
            tex_read_bytes: 0.0,
            working_set: 32.0 * 1024.0,
            tex_working_set: 0.0,
        },
        OpKind::Relu => elementwise(op, 1.0, 1.0),
        OpKind::ReluGrad => elementwise(op, 2.0, 1.0),
        // Transcendental activations use multi-pass range reduction; tanh is
        // the costliest, sigmoid sits between tanh and ReLU.
        OpKind::Tanh => elementwise(op, 3.0, 1.0),
        OpKind::TanhGrad => elementwise(op, 3.6, 1.0),
        OpKind::Sigmoid => elementwise(op, 1.8, 1.0),
        OpKind::SigmoidGrad => elementwise(op, 2.3, 1.0),
        // Pooling gathers 2x2 windows across rows: poorly-coalesced reads
        // and a row-buffer working set far larger than an element-wise op's.
        OpKind::MaxPool => KernelFootprint {
            flops: op.flops,
            read_bytes: 1.3 * in_b,
            write_bytes: out_b,
            tex_read_bytes: 0.0,
            working_set: 384.0 * 1024.0,
            tex_working_set: 0.0,
        },
        OpKind::MaxPoolGrad => KernelFootprint {
            flops: op.flops,
            read_bytes: 1.3 * in_b + 0.5 * out_b,
            write_bytes: out_b,
            tex_read_bytes: 0.0,
            working_set: 384.0 * 1024.0,
            tex_working_set: 0.0,
        },
        // Two-input streaming add: reads both operands once (the 2.0 covers
        // the second input — `in_elems` already counts both tensors, so this
        // stays structurally an element-wise op with a second read stream).
        OpKind::Add => elementwise(op, 1.0, 1.0),
        // Softmax makes a max pass, an exp+sum pass and a normalize pass.
        OpKind::Softmax => elementwise(op, 2.5, 1.0),
        OpKind::SoftmaxGrad => elementwise(op, 3.0, 1.0),
        // LayerNorm: mean/variance reduction pass plus the normalize pass
        // that re-reads the tensor and the gain/bias vectors.
        OpKind::LayerNorm => elementwise(op, 2.2, 1.0),
        OpKind::LayerNormGrad => elementwise(op, 3.2, 1.0),
        // Depthwise convolutions keep the texture path of the dense convs
        // but touch only one filter per channel: tiny weight working set,
        // traffic dominated by the activation tiles.
        OpKind::DepthwiseConv2dNative => KernelFootprint {
            flops: op.flops,
            read_bytes: in_b + w_b,
            write_bytes: out_b,
            tex_read_bytes: 0.6 * in_b + w_b,
            working_set: (w_b + 96.0 * 1024.0).min(WS_WEIGHT_CAP),
            tex_working_set: (w_b + 64.0 * 1024.0).min(WS_TEX_CAP),
        },
        OpKind::DepthwiseConv2dNativeBackpropFilter => KernelFootprint {
            flops: op.flops,
            read_bytes: in_b + out_b,
            write_bytes: w_b,
            tex_read_bytes: 0.4 * (in_b + out_b),
            working_set: (w_b + 96.0 * 1024.0).min(WS_WEIGHT_CAP),
            tex_working_set: (w_b + 32.0 * 1024.0).min(WS_TEX_CAP),
        },
        OpKind::DepthwiseConv2dNativeBackpropInput => KernelFootprint {
            flops: op.flops,
            read_bytes: in_b + w_b,
            write_bytes: out_b,
            tex_read_bytes: 0.5 * in_b + w_b,
            working_set: (w_b + 96.0 * 1024.0).min(WS_WEIGHT_CAP),
            tex_working_set: (w_b + 64.0 * 1024.0).min(WS_TEX_CAP),
        },
        OpKind::ApplyGd => apply(op, 2.0, 1.0),
        OpKind::ApplyAdagrad => apply(op, 3.0, 2.0),
        OpKind::ApplyAdam => apply(op, 4.0, 3.0),
    };

    // TensorFlow grabs the whole device for every kernel.
    let blocks = (config.num_sms as u32) * 2;
    KernelDesc::new(
        format!("{}_{}", op.kind.op_name(), seq_index),
        blocks,
        1024,
        fp,
    )
    .with_tag(op_tag(op))
}

fn elementwise(op: &Op, read_passes: f64, write_passes: f64) -> KernelFootprint {
    let in_b = op.in_elems as f64 * ELEM_BYTES;
    let out_b = op.out_elems as f64 * ELEM_BYTES;
    KernelFootprint {
        flops: op.flops,
        read_bytes: read_passes * in_b,
        write_bytes: write_passes * out_b,
        tex_read_bytes: 0.0,
        working_set: WS_ELEMWISE,
        tex_working_set: 0.0,
    }
}

fn apply(op: &Op, read_tensors: f64, write_tensors: f64) -> KernelFootprint {
    let var_b = op.weight_elems as f64 * ELEM_BYTES;
    KernelFootprint {
        flops: op.flops,
        read_bytes: read_tensors * var_b,
        write_bytes: write_tensors * var_b,
        tex_read_bytes: 0.0,
        working_set: WS_ELEMWISE,
        tex_working_set: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpClass;

    fn op(kind: OpKind, in_e: usize, out_e: usize, w_e: usize, flops: f64) -> Op {
        Op {
            kind,
            layer_index: Some(3),
            in_elems: in_e,
            out_elems: out_e,
            weight_elems: w_e,
            flops,
        }
    }

    #[test]
    fn tag_round_trip() {
        let o = op(OpKind::Conv2D, 100, 100, 9, 1e6);
        let tag = op_tag(&o);
        assert_eq!(tag, "Conv2D@3");
        assert_eq!(parse_op_tag(&tag), ("Conv2D", Some(3)));
        assert_eq!(parse_op_tag("MatMul"), ("MatMul", None));
    }

    #[test]
    fn conv_uses_texture_path_and_matmul_does_not() {
        let cfg = GpuConfig::gtx_1080_ti();
        let conv = lower_op(&op(OpKind::Conv2D, 1 << 20, 1 << 20, 1 << 16, 1e9), 0, &cfg);
        let mm = lower_op(&op(OpKind::MatMul, 1 << 20, 1 << 20, 1 << 16, 1e9), 1, &cfg);
        assert!(conv.footprint.tex_read_bytes > 0.0);
        assert!(conv.footprint.tex_working_set > 0.0);
        assert_eq!(mm.footprint.tex_read_bytes, 0.0);
        assert_eq!(mm.footprint.tex_working_set, 0.0);
    }

    #[test]
    fn transcendental_activations_stream_more_than_relu() {
        let cfg = GpuConfig::gtx_1080_ti();
        let n = 1 << 20;
        let relu = lower_op(&op(OpKind::Relu, n, n, 0, n as f64), 0, &cfg);
        let tanh = lower_op(&op(OpKind::Tanh, n, n, 0, n as f64), 1, &cfg);
        let sig = lower_op(&op(OpKind::Sigmoid, n, n, 0, n as f64), 2, &cfg);
        assert!(tanh.footprint.read_bytes > sig.footprint.read_bytes);
        assert!(sig.footprint.read_bytes > relu.footprint.read_bytes);
    }

    #[test]
    fn bias_add_grad_writes_almost_nothing() {
        let cfg = GpuConfig::gtx_1080_ti();
        let n = 1 << 20;
        let b = lower_op(&op(OpKind::BiasAdd, n, n, 0, n as f64), 0, &cfg);
        let bg = lower_op(&op(OpKind::BiasAddGrad, n, 0, 0, n as f64), 1, &cfg);
        assert!(bg.footprint.write_bytes < b.footprint.write_bytes / 100.0);
    }

    #[test]
    fn optimizer_traffic_ordering() {
        let cfg = GpuConfig::gtx_1080_ti();
        let v = 1 << 20;
        let gd = lower_op(&op(OpKind::ApplyGd, v, v, v, v as f64), 0, &cfg);
        let ag = lower_op(&op(OpKind::ApplyAdagrad, v, v, v, v as f64), 1, &cfg);
        let adam = lower_op(&op(OpKind::ApplyAdam, v, v, v, v as f64), 2, &cfg);
        assert!(adam.footprint.stream_bytes() > ag.footprint.stream_bytes());
        assert!(ag.footprint.stream_bytes() > gd.footprint.stream_bytes());
    }

    #[test]
    fn depthwise_uses_texture_path_with_small_weight_set() {
        let cfg = GpuConfig::gtx_1080_ti();
        let dw = lower_op(
            &op(OpKind::DepthwiseConv2dNative, 1 << 20, 1 << 20, 9 * 64, 1e8),
            0,
            &cfg,
        );
        let conv = lower_op(&op(OpKind::Conv2D, 1 << 20, 1 << 20, 1 << 18, 1e9), 1, &cfg);
        assert!(dw.footprint.tex_read_bytes > 0.0);
        assert!(dw.footprint.working_set < conv.footprint.working_set);
    }

    #[test]
    fn normalization_ops_stream_more_than_relu() {
        let cfg = GpuConfig::gtx_1080_ti();
        let n = 1 << 20;
        let relu = lower_op(&op(OpKind::Relu, n, n, 0, n as f64), 0, &cfg);
        let sm = lower_op(&op(OpKind::Softmax, n, n, 0, n as f64), 1, &cfg);
        let ln = lower_op(&op(OpKind::LayerNorm, n, n, 0, n as f64), 2, &cfg);
        assert!(sm.footprint.read_bytes > relu.footprint.read_bytes);
        assert!(ln.footprint.read_bytes > relu.footprint.read_bytes);
        assert_eq!(sm.footprint.tex_read_bytes, 0.0);
    }

    #[test]
    fn working_sets_are_capped_at_l2_scale() {
        let cfg = GpuConfig::gtx_1080_ti();
        // A 512 MiB weight matrix must not claim a 512 MiB working set.
        let huge = lower_op(
            &op(OpKind::MatMul, 1 << 24, 1 << 24, 1 << 27, 1e12),
            0,
            &cfg,
        );
        assert!(huge.footprint.working_set <= cfg.l2_bytes);
    }

    #[test]
    fn kernel_names_unique_per_sequence_index_and_tagged() {
        let cfg = GpuConfig::gtx_1080_ti();
        let a = lower_op(&op(OpKind::MatMul, 10, 10, 10, 10.0), 4, &cfg);
        let b = lower_op(&op(OpKind::MatMul, 10, 10, 10, 10.0), 9, &cfg);
        assert_ne!(a.name, b.name);
        assert_eq!(a.op_tag.as_deref(), Some("MatMul@3"));
        assert_eq!(OpClass::MatMul, op(OpKind::MatMul, 1, 1, 1, 1.0).class());
    }
}
