//! The TensorFlow-timeline-style profiler.
//!
//! TensorFlow's `timeline` module logs every op's name, start/end timestamp
//! and parameters to a JSON file loadable in `chrome://tracing` (paper
//! §II-C). The adversary uses it *offline, on her own profiling runs* to
//! label spy samples with ground truth (§V-A). This module exports the
//! engine's kernel log in the same Chrome trace-event format.

use gpu_sim::{ContextId, KernelRecord};
use serde::Serialize;

/// One Chrome trace-event (complete-event flavour, `ph = "X"`).
#[derive(Debug, Clone, Serialize)]
pub struct TraceEvent {
    /// Event name (kernel name).
    pub name: String,
    /// Phase: always `"X"` (complete event).
    pub ph: &'static str,
    /// Start timestamp, microseconds.
    pub ts: f64,
    /// Duration, microseconds.
    pub dur: f64,
    /// Process id (we use the context index).
    pub pid: usize,
    /// Thread id (always 0 — one compute stream).
    pub tid: usize,
    /// Extra arguments (the ground-truth op tag).
    pub args: TraceArgs,
}

/// `args` payload of a trace event.
#[derive(Debug, Clone, Serialize)]
pub struct TraceArgs {
    /// The framework-level op tag, e.g. `Conv2D@3`.
    pub op: Option<String>,
}

/// Converts kernel records of one context into Chrome trace events.
pub fn trace_events(records: &[KernelRecord], ctx: ContextId) -> Vec<TraceEvent> {
    records
        .iter()
        .filter(|r| r.ctx == ctx)
        .map(|r| TraceEvent {
            name: r.name.to_string(),
            ph: "X",
            ts: r.start_us,
            dur: r.duration_us(),
            pid: r.ctx.index(),
            tid: 0,
            args: TraceArgs {
                op: r.op_tag.as_deref().map(str::to_owned),
            },
        })
        .collect()
}

/// Serializes the records of `ctx` as a `chrome://tracing`-loadable JSON
/// document (`{"traceEvents": [...]}`), like TensorFlow's timeline files.
///
/// # Panics
///
/// Panics only if JSON serialization fails, which cannot happen for these
/// types.
pub fn chrome_trace_json(records: &[KernelRecord], ctx: ContextId) -> String {
    #[derive(Serialize)]
    struct Doc {
        #[serde(rename = "traceEvents")]
        trace_events: Vec<TraceEvent>,
    }
    serde_json::to_string_pretty(&Doc {
        trace_events: trace_events(records, ctx),
    })
    .expect("trace serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ctx: usize, name: &str, tag: Option<&str>, t0: f64, t1: f64) -> KernelRecord {
        KernelRecord {
            ctx: ContextId::test_value(ctx),
            name: name.into(),
            op_tag: tag.map(Into::into),
            start_us: t0,
            end_us: t1,
        }
    }

    #[test]
    fn filters_by_context() {
        let records = vec![
            rec(0, "Conv2D_0", Some("Conv2D@0"), 0.0, 10.0),
            rec(1, "spy", None, 0.0, 5.0),
            rec(0, "BiasAdd_1", Some("BiasAdd@0"), 10.0, 12.0),
        ];
        let events = trace_events(&records, ContextId::test_value(0));
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "Conv2D_0");
        assert_eq!(events[1].dur, 2.0);
    }

    #[test]
    fn json_is_valid_chrome_trace() {
        let records = vec![rec(0, "MatMul_3", Some("MatMul@2"), 5.0, 9.5)];
        let json = chrome_trace_json(&records, ContextId::test_value(0));
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[0]["name"], "MatMul_3");
        assert_eq!(events[0]["args"]["op"], "MatMul@2");
        assert_eq!(events[0]["ts"], 5.0);
        assert_eq!(events[0]["dur"], 4.5);
    }

    #[test]
    fn empty_log_yields_empty_document() {
        let json = chrome_trace_json(&[], ContextId::test_value(0));
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(doc["traceEvents"].as_array().unwrap().is_empty());
    }
}
