//! The training-step planner: lowers a [`Model`] into the serialized op
//! sequence one training iteration executes on the compute stream
//! (forward pass, then back-propagation in reverse layer order, then the
//! optimizer's apply ops), exactly the structure §IV-B describes:
//!
//! > "a convolutional layer sequentially invokes conv, BiasAdd and an
//! > activation op [...] During back-propagation, it calculates the gradient
//! > in a reverse order [...] ReLUgrad, BiasAddGrad and Conv2DBackprop".

use crate::layer::{Activation, Layer};
use crate::model::Model;
use crate::ops::{Op, OpKind};
use crate::tensor::{conv_out_size, TensorShape};

fn act_kind(a: Activation) -> OpKind {
    match a {
        Activation::Relu => OpKind::Relu,
        Activation::Tanh => OpKind::Tanh,
        Activation::Sigmoid => OpKind::Sigmoid,
    }
}

fn act_grad_kind(a: Activation) -> OpKind {
    match a {
        Activation::Relu => OpKind::ReluGrad,
        Activation::Tanh => OpKind::TanhGrad,
        Activation::Sigmoid => OpKind::SigmoidGrad,
    }
}

/// Per-layer shape information resolved during the forward walk.
#[derive(Debug, Clone)]
struct LayerShapes {
    input: TensorShape,
    output: TensorShape,
    weight_elems: usize,
}

/// Plans the op sequence of one training iteration.
///
/// # Panics
///
/// Panics if a convolutional or pooling layer appears after the activations
/// have been flattened by a dense layer.
pub fn plan_iteration(model: &Model, batch: usize) -> Vec<Op> {
    assert!(batch > 0, "batch size must be positive");
    let mut shapes: Vec<LayerShapes> = Vec::with_capacity(model.layers.len());
    let mut shape = model.input.shape(batch);

    // Forward shape resolution.
    for (i, layer) in model.layers.iter().enumerate() {
        match *layer {
            Layer::Conv2D {
                filter_size,
                filters,
                stride,
                ..
            } => {
                let (h, w, c) = match shape {
                    TensorShape::Nhwc {
                        height,
                        width,
                        channels,
                        ..
                    } => (height, width, channels),
                    TensorShape::Flat { .. } => panic!("layer {}: conv after flatten", i),
                };
                let out = TensorShape::nhwc(
                    batch,
                    conv_out_size(h, stride),
                    conv_out_size(w, stride),
                    filters,
                );
                shapes.push(LayerShapes {
                    input: shape,
                    output: out,
                    weight_elems: filter_size * filter_size * c * filters,
                });
                shape = out;
            }
            Layer::Dense { units, .. } => {
                let flat = shape.flattened();
                let in_features = flat.elements_per_item();
                let out = TensorShape::flat(batch, units);
                shapes.push(LayerShapes {
                    input: flat,
                    output: out,
                    weight_elems: in_features * units,
                });
                shape = out;
            }
            Layer::MaxPool => {
                let (h, w, c) = match shape {
                    TensorShape::Nhwc {
                        height,
                        width,
                        channels,
                        ..
                    } => (height, width, channels),
                    TensorShape::Flat { .. } => panic!("layer {}: pool after flatten", i),
                };
                let out = TensorShape::nhwc(batch, h.div_ceil(2), w.div_ceil(2), c);
                shapes.push(LayerShapes {
                    input: shape,
                    output: out,
                    weight_elems: 0,
                });
                shape = out;
            }
        }
    }

    let mut ops = Vec::new();

    // Forward pass.
    for (i, layer) in model.layers.iter().enumerate() {
        let s = &shapes[i];
        let in_e = s.input.num_elements();
        let out_e = s.output.num_elements();
        match *layer {
            Layer::Conv2D {
                filter_size,
                activation,
                ..
            } => {
                let flops = 2.0
                    * (filter_size * filter_size) as f64
                    * channels_of(&s.input) as f64
                    * out_e as f64;
                ops.push(Op {
                    kind: OpKind::Conv2D,
                    layer_index: Some(i),
                    in_elems: in_e,
                    out_elems: out_e,
                    weight_elems: s.weight_elems,
                    flops,
                });
                push_bias_and_act(&mut ops, i, out_e, activation, false);
            }
            Layer::Dense { activation, .. } => {
                // flops = 2 * batch * in_features * units = 2 * in_e/batch...
                let in_features = s.input.elements_per_item();
                let units = s.output.elements_per_item();
                let flops = 2.0 * batch as f64 * in_features as f64 * units as f64;
                ops.push(Op {
                    kind: OpKind::MatMul,
                    layer_index: Some(i),
                    in_elems: in_e,
                    out_elems: out_e,
                    weight_elems: s.weight_elems,
                    flops,
                });
                push_bias_and_act(&mut ops, i, out_e, activation, false);
            }
            Layer::MaxPool => {
                ops.push(Op {
                    kind: OpKind::MaxPool,
                    layer_index: Some(i),
                    in_elems: in_e,
                    out_elems: out_e,
                    weight_elems: 0,
                    flops: in_e as f64,
                });
            }
        }
    }

    // Backward pass, reverse layer order.
    for (i, layer) in model.layers.iter().enumerate().rev() {
        let s = &shapes[i];
        let in_e = s.input.num_elements();
        let out_e = s.output.num_elements();
        match *layer {
            Layer::Conv2D {
                filter_size,
                activation,
                ..
            } => {
                push_bias_and_act(&mut ops, i, out_e, activation, true);
                let flops = 2.0
                    * (filter_size * filter_size) as f64
                    * channels_of(&s.input) as f64
                    * out_e as f64;
                ops.push(Op {
                    kind: OpKind::Conv2DBackpropFilter,
                    layer_index: Some(i),
                    in_elems: in_e,
                    out_elems: out_e,
                    weight_elems: s.weight_elems,
                    flops,
                });
                if i > 0 {
                    ops.push(Op {
                        kind: OpKind::Conv2DBackpropInput,
                        layer_index: Some(i),
                        in_elems: out_e,
                        out_elems: in_e,
                        weight_elems: s.weight_elems,
                        flops,
                    });
                }
            }
            Layer::Dense { activation, .. } => {
                push_bias_and_act(&mut ops, i, out_e, activation, true);
                let in_features = s.input.elements_per_item();
                let units = s.output.elements_per_item();
                let flops = 2.0 * batch as f64 * in_features as f64 * units as f64;
                // Weight gradient (x^T * dy).
                ops.push(Op {
                    kind: OpKind::MatMul,
                    layer_index: Some(i),
                    in_elems: in_e + out_e,
                    out_elems: s.weight_elems,
                    weight_elems: s.weight_elems,
                    flops,
                });
                // Input gradient (dy * W^T).
                if i > 0 {
                    ops.push(Op {
                        kind: OpKind::MatMul,
                        layer_index: Some(i),
                        in_elems: out_e,
                        out_elems: in_e,
                        weight_elems: s.weight_elems,
                        flops,
                    });
                }
            }
            Layer::MaxPool => {
                ops.push(Op {
                    kind: OpKind::MaxPoolGrad,
                    layer_index: Some(i),
                    in_elems: out_e,
                    out_elems: in_e,
                    weight_elems: 0,
                    flops: in_e as f64,
                });
            }
        }
    }

    // Optimizer apply ops: one per trainable variable (weights and biases of
    // each trainable layer, shallow-to-deep as TF serializes them).
    let apply_kind = OpKind::apply_of(model.optimizer);
    let state = model.optimizer.state_slots() as f64;
    for (i, layer) in model.layers.iter().enumerate() {
        if !layer.trainable() {
            continue;
        }
        let s = &shapes[i];
        let bias_elems = s.output.elements_per_item();
        for var_elems in [s.weight_elems, bias_elems] {
            ops.push(Op {
                kind: apply_kind,
                layer_index: Some(i),
                in_elems: var_elems,
                out_elems: var_elems,
                weight_elems: var_elems,
                flops: var_elems as f64 * (2.0 + 3.0 * state),
            });
        }
    }

    ops
}

fn channels_of(shape: &TensorShape) -> usize {
    match *shape {
        TensorShape::Nhwc { channels, .. } => channels,
        TensorShape::Flat { features, .. } => features,
    }
}

fn push_bias_and_act(
    ops: &mut Vec<Op>,
    layer: usize,
    out_e: usize,
    activation: Activation,
    grad: bool,
) {
    if grad {
        // Reverse order on the backward pass: activation grad, then bias grad.
        ops.push(Op {
            kind: act_grad_kind(activation),
            layer_index: Some(layer),
            in_elems: out_e,
            out_elems: out_e,
            weight_elems: 0,
            flops: out_e as f64 * 2.0,
        });
        ops.push(Op {
            kind: OpKind::BiasAddGrad,
            layer_index: Some(layer),
            in_elems: out_e,
            out_elems: 0,
            weight_elems: 0,
            flops: out_e as f64,
        });
    } else {
        ops.push(Op {
            kind: OpKind::BiasAdd,
            layer_index: Some(layer),
            in_elems: out_e,
            out_elems: out_e,
            weight_elems: 0,
            flops: out_e as f64,
        });
        ops.push(Op {
            kind: act_kind(activation),
            layer_index: Some(layer),
            in_elems: out_e,
            out_elems: out_e,
            weight_elems: 0,
            flops: out_e as f64 * 2.0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Optimizer;
    use crate::model::{zoo, InputSpec, Model};
    use crate::ops::OpClass;

    fn tiny_cnn() -> Model {
        Model::new(
            "tiny",
            InputSpec::Image {
                height: 8,
                width: 8,
                channels: 3,
            },
            vec![
                Layer::conv(3, 4, 1),
                Layer::MaxPool,
                Layer::dense(10, Activation::Relu),
            ],
            Optimizer::Gd,
        )
    }

    #[test]
    fn forward_order_matches_paper() {
        let ops = plan_iteration(&tiny_cnn(), 2);
        let names: Vec<&str> = ops.iter().map(|o| o.kind.op_name()).collect();
        // Forward: Conv2D, BiasAdd, Relu, MaxPool, MatMul, BiasAdd, Relu.
        assert_eq!(
            &names[..7],
            &["Conv2D", "BiasAdd", "Relu", "MaxPool", "MatMul", "BiasAdd", "Relu"]
        );
    }

    #[test]
    fn backward_is_reverse_order_with_grads() {
        let ops = plan_iteration(&tiny_cnn(), 2);
        let names: Vec<&str> = ops.iter().map(|o| o.kind.op_name()).collect();
        // Backward starts right after forward (index 7): dense grads first.
        assert_eq!(names[7], "ReluGrad");
        assert_eq!(names[8], "BiasAddGrad");
        assert_eq!(names[9], "MatMul"); // weight grad
        assert_eq!(names[10], "MatMul"); // input grad
        assert_eq!(names[11], "MaxPoolGrad");
        assert_eq!(names[12], "ReluGrad");
        assert_eq!(names[13], "BiasAddGrad");
        assert_eq!(names[14], "Conv2DBackpropFilter");
        // First layer: no input gradient.
        assert!(!names[15..].contains(&"Conv2DBackpropInput"));
    }

    #[test]
    fn apply_ops_count_matches_trainable_vars() {
        let ops = plan_iteration(&tiny_cnn(), 2);
        let applies = ops
            .iter()
            .filter(|o| o.class() == OpClass::Optimizer)
            .count();
        // 2 trainable layers x (weights + bias).
        assert_eq!(applies, 4);
        assert!(ops
            .iter()
            .filter(|o| o.class() == OpClass::Optimizer)
            .all(|o| o.kind.op_name() == "ApplyGradientDescent"));
    }

    #[test]
    fn vgg16_iteration_has_about_130_ops() {
        // §V-E: "a VGG16 training iteration [...] consisting of 130 ops".
        // Ours plans 153 (TF 1.x fuses a few element-wise pairs we keep
        // separate); same order of magnitude.
        let ops = plan_iteration(&zoo::vgg16(), 64);
        assert!(
            (110..=170).contains(&ops.len()),
            "VGG16 iteration has {} ops",
            ops.len()
        );
    }

    #[test]
    fn deeper_mlp_layers_have_larger_matmuls() {
        let ops = plan_iteration(&zoo::profiled_mlp(), 128);
        let matmul_flops: Vec<f64> = ops
            .iter()
            .take_while(|o| o.class() != OpClass::Optimizer)
            .filter(|o| o.kind == OpKind::MatMul)
            .map(|o| o.flops)
            .collect();
        // Forward matmuls grow with the neuron doubling (except the first,
        // which is huge because of the flattened image input).
        let fwd = &matmul_flops[..9];
        assert!(fwd[8] > fwd[4], "{:?}", fwd);
        assert!(fwd[4] > fwd[2], "{:?}", fwd);
    }

    #[test]
    fn stride_reduces_conv_cost() {
        let mk = |stride| {
            Model::new(
                "s",
                InputSpec::Image {
                    height: 32,
                    width: 32,
                    channels: 3,
                },
                vec![Layer::conv(3, 8, stride)],
                Optimizer::Gd,
            )
        };
        let f1 = plan_iteration(&mk(1), 4)[0].flops;
        let f2 = plan_iteration(&mk(2), 4)[0].flops;
        assert!(
            (f1 / f2 - 4.0).abs() < 0.5,
            "stride-2 conv should be ~4x cheaper: {} vs {}",
            f1,
            f2
        );
    }

    #[test]
    fn every_op_has_layer_index() {
        let ops = plan_iteration(&zoo::tested_mlp(), 8);
        assert!(ops.iter().all(|o| o.layer_index.is_some()));
    }
}
