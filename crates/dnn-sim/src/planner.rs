//! The training-step planner: lowers a [`Model`] into the serialized op
//! sequence one training iteration executes on the compute stream
//! (forward pass, then back-propagation in reverse layer order, then the
//! optimizer's apply ops), exactly the structure §IV-B describes:
//!
//! > "a convolutional layer sequentially invokes conv, BiasAdd and an
//! > activation op [...] During back-propagation, it calculates the gradient
//! > in a reverse order [...] ReLUgrad, BiasAddGrad and Conv2DBackprop".

use serde::{Deserialize, Serialize};

use crate::layer::{Activation, Layer};
use crate::model::Model;
use crate::ops::{Op, OpKind};
use crate::tensor::{conv_out_size, TensorShape};

/// Whether an iteration is a full training step or a forward-only inference
/// pass (the zoo's inference workloads plan no gradient or apply ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Forward pass, back-propagation and optimizer applies.
    #[default]
    Training,
    /// Forward pass only.
    Inference,
}

fn act_kind(a: Activation) -> OpKind {
    match a {
        Activation::Relu => OpKind::Relu,
        Activation::Tanh => OpKind::Tanh,
        Activation::Sigmoid => OpKind::Sigmoid,
    }
}

fn act_grad_kind(a: Activation) -> OpKind {
    match a {
        Activation::Relu => OpKind::ReluGrad,
        Activation::Tanh => OpKind::TanhGrad,
        Activation::Sigmoid => OpKind::SigmoidGrad,
    }
}

/// Per-layer shape information resolved during the forward walk.
#[derive(Debug, Clone)]
struct LayerShapes {
    input: TensorShape,
    output: TensorShape,
    weight_elems: usize,
}

/// Plans the op sequence of one training iteration
/// ([`ExecutionMode::Training`]).
///
/// # Panics
///
/// Panics if a convolutional or pooling layer appears after the activations
/// have been flattened by a dense layer.
pub fn plan_iteration(model: &Model, batch: usize) -> Vec<Op> {
    plan_iteration_mode(model, batch, ExecutionMode::Training)
}

/// Plans the op sequence of one iteration in the given execution mode:
/// forward pass always; back-propagation and optimizer applies only under
/// [`ExecutionMode::Training`].
///
/// # Panics
///
/// Panics if a convolutional or pooling layer appears after the activations
/// have been flattened by a dense layer.
pub fn plan_iteration_mode(model: &Model, batch: usize, mode: ExecutionMode) -> Vec<Op> {
    assert!(batch > 0, "batch size must be positive");
    let mut shapes: Vec<LayerShapes> = Vec::with_capacity(model.layers.len());
    let mut shape = model.input.shape(batch);

    // Forward shape resolution.
    for (i, layer) in model.layers.iter().enumerate() {
        match *layer {
            Layer::Conv2D {
                filter_size,
                filters,
                stride,
                ..
            } => {
                let (h, w, c) = match shape {
                    TensorShape::Nhwc {
                        height,
                        width,
                        channels,
                        ..
                    } => (height, width, channels),
                    TensorShape::Flat { .. } => panic!("layer {}: conv after flatten", i),
                };
                let out = TensorShape::nhwc(
                    batch,
                    conv_out_size(h, stride),
                    conv_out_size(w, stride),
                    filters,
                );
                shapes.push(LayerShapes {
                    input: shape,
                    output: out,
                    weight_elems: filter_size * filter_size * c * filters,
                });
                shape = out;
            }
            Layer::Dense { units, .. } => {
                let flat = shape.flattened();
                let in_features = flat.elements_per_item();
                let out = TensorShape::flat(batch, units);
                shapes.push(LayerShapes {
                    input: flat,
                    output: out,
                    weight_elems: in_features * units,
                });
                shape = out;
            }
            Layer::MaxPool => {
                let (h, w, c) = match shape {
                    TensorShape::Nhwc {
                        height,
                        width,
                        channels,
                        ..
                    } => (height, width, channels),
                    TensorShape::Flat { .. } => panic!("layer {}: pool after flatten", i),
                };
                let out = TensorShape::nhwc(batch, h.div_ceil(2), w.div_ceil(2), c);
                shapes.push(LayerShapes {
                    input: shape,
                    output: out,
                    weight_elems: 0,
                });
                shape = out;
            }
            Layer::Residual {
                filter_size,
                filters,
                ..
            } => {
                let (h, w, c) = match shape {
                    TensorShape::Nhwc {
                        height,
                        width,
                        channels,
                        ..
                    } => (height, width, channels),
                    TensorShape::Flat { .. } => panic!("layer {}: residual after flatten", i),
                };
                // Stride-1 SAME on both convs keeps the spatial dims, so the
                // skip path needs no resampling — only a 1x1 projection when
                // the channel count changes.
                let out = TensorShape::nhwc(batch, h, w, filters);
                let mut weight_elems = filter_size * filter_size * c * filters
                    + filter_size * filter_size * filters * filters;
                if c != filters {
                    weight_elems += c * filters;
                }
                shapes.push(LayerShapes {
                    input: shape,
                    output: out,
                    weight_elems,
                });
                shape = out;
            }
            Layer::SeparableConv2D {
                filter_size,
                filters,
                stride,
                ..
            } => {
                let (h, w, c) = match shape {
                    TensorShape::Nhwc {
                        height,
                        width,
                        channels,
                        ..
                    } => (height, width, channels),
                    TensorShape::Flat { .. } => panic!("layer {}: separable after flatten", i),
                };
                let out = TensorShape::nhwc(
                    batch,
                    conv_out_size(h, stride),
                    conv_out_size(w, stride),
                    filters,
                );
                shapes.push(LayerShapes {
                    input: shape,
                    output: out,
                    // Depthwise filters (one per input channel) plus the 1x1
                    // pointwise mixing weights.
                    weight_elems: filter_size * filter_size * c + c * filters,
                });
                shape = out;
            }
            Layer::Attention { dim } => {
                let flat = shape.flattened();
                let in_features = flat.elements_per_item();
                let out = TensorShape::flat(batch, dim);
                shapes.push(LayerShapes {
                    input: flat,
                    output: out,
                    // Two projection matrices (scores and values) plus the
                    // LayerNorm gain and bias.
                    weight_elems: 2 * in_features * dim + 2 * dim,
                });
                shape = out;
            }
        }
    }

    let mut ops = Vec::new();

    // Forward pass.
    for (i, layer) in model.layers.iter().enumerate() {
        let s = &shapes[i];
        let in_e = s.input.num_elements();
        let out_e = s.output.num_elements();
        match *layer {
            Layer::Conv2D {
                filter_size,
                activation,
                ..
            } => {
                let flops = 2.0
                    * (filter_size * filter_size) as f64
                    * channels_of(&s.input) as f64
                    * out_e as f64;
                ops.push(Op {
                    kind: OpKind::Conv2D,
                    layer_index: Some(i),
                    in_elems: in_e,
                    out_elems: out_e,
                    weight_elems: s.weight_elems,
                    flops,
                });
                push_bias_and_act(&mut ops, i, out_e, activation, false);
            }
            Layer::Dense { activation, .. } => {
                // flops = 2 * batch * in_features * units = 2 * in_e/batch...
                let in_features = s.input.elements_per_item();
                let units = s.output.elements_per_item();
                let flops = 2.0 * batch as f64 * in_features as f64 * units as f64;
                ops.push(Op {
                    kind: OpKind::MatMul,
                    layer_index: Some(i),
                    in_elems: in_e,
                    out_elems: out_e,
                    weight_elems: s.weight_elems,
                    flops,
                });
                push_bias_and_act(&mut ops, i, out_e, activation, false);
            }
            Layer::MaxPool => {
                ops.push(Op {
                    kind: OpKind::MaxPool,
                    layer_index: Some(i),
                    in_elems: in_e,
                    out_elems: out_e,
                    weight_elems: 0,
                    flops: in_e as f64,
                });
            }
            Layer::Residual {
                filter_size,
                filters,
                activation,
            } => {
                let c = channels_of(&s.input);
                let fs2 = filter_size * filter_size;
                let conv1_flops = 2.0 * fs2 as f64 * c as f64 * out_e as f64;
                ops.push(Op {
                    kind: OpKind::Conv2D,
                    layer_index: Some(i),
                    in_elems: in_e,
                    out_elems: out_e,
                    weight_elems: fs2 * c * filters,
                    flops: conv1_flops,
                });
                push_bias_and_act(&mut ops, i, out_e, activation, false);
                let conv2_flops = 2.0 * fs2 as f64 * filters as f64 * out_e as f64;
                ops.push(Op {
                    kind: OpKind::Conv2D,
                    layer_index: Some(i),
                    in_elems: out_e,
                    out_elems: out_e,
                    weight_elems: fs2 * filters * filters,
                    flops: conv2_flops,
                });
                ops.push(Op {
                    kind: OpKind::BiasAdd,
                    layer_index: Some(i),
                    in_elems: out_e,
                    out_elems: out_e,
                    weight_elems: 0,
                    flops: out_e as f64,
                });
                if c != filters {
                    // 1x1 projection so the skip path matches channels.
                    ops.push(Op {
                        kind: OpKind::Conv2D,
                        layer_index: Some(i),
                        in_elems: in_e,
                        out_elems: out_e,
                        weight_elems: c * filters,
                        flops: 2.0 * c as f64 * out_e as f64,
                    });
                }
                ops.push(Op {
                    kind: OpKind::Add,
                    layer_index: Some(i),
                    in_elems: 2 * out_e,
                    out_elems: out_e,
                    weight_elems: 0,
                    flops: out_e as f64,
                });
                ops.push(Op {
                    kind: act_kind(activation),
                    layer_index: Some(i),
                    in_elems: out_e,
                    out_elems: out_e,
                    weight_elems: 0,
                    flops: out_e as f64 * 2.0,
                });
            }
            Layer::SeparableConv2D {
                filter_size,
                filters,
                activation,
                ..
            } => {
                let c = channels_of(&s.input);
                let fs2 = filter_size * filter_size;
                // Same spatial dims as the output, channel count preserved.
                let dw_out = out_e / filters * c;
                ops.push(Op {
                    kind: OpKind::DepthwiseConv2dNative,
                    layer_index: Some(i),
                    in_elems: in_e,
                    out_elems: dw_out,
                    weight_elems: fs2 * c,
                    flops: 2.0 * fs2 as f64 * dw_out as f64,
                });
                ops.push(Op {
                    kind: OpKind::Conv2D,
                    layer_index: Some(i),
                    in_elems: dw_out,
                    out_elems: out_e,
                    weight_elems: c * filters,
                    flops: 2.0 * c as f64 * out_e as f64,
                });
                push_bias_and_act(&mut ops, i, out_e, activation, false);
            }
            Layer::Attention { dim } => {
                let in_features = s.input.elements_per_item();
                let proj_w = in_features * dim;
                let mm_flops = 2.0 * batch as f64 * in_features as f64 * dim as f64;
                ops.push(Op {
                    kind: OpKind::MatMul,
                    layer_index: Some(i),
                    in_elems: in_e,
                    out_elems: out_e,
                    weight_elems: proj_w,
                    flops: mm_flops,
                });
                ops.push(Op {
                    kind: OpKind::Softmax,
                    layer_index: Some(i),
                    in_elems: out_e,
                    out_elems: out_e,
                    weight_elems: 0,
                    flops: out_e as f64 * 5.0,
                });
                ops.push(Op {
                    kind: OpKind::MatMul,
                    layer_index: Some(i),
                    in_elems: in_e + out_e,
                    out_elems: out_e,
                    weight_elems: proj_w,
                    flops: mm_flops,
                });
                ops.push(Op {
                    kind: OpKind::LayerNorm,
                    layer_index: Some(i),
                    in_elems: out_e,
                    out_elems: out_e,
                    weight_elems: 2 * dim,
                    flops: out_e as f64 * 8.0,
                });
            }
        }
    }

    if mode == ExecutionMode::Inference {
        return ops;
    }

    // Backward pass, reverse layer order.
    for (i, layer) in model.layers.iter().enumerate().rev() {
        let s = &shapes[i];
        let in_e = s.input.num_elements();
        let out_e = s.output.num_elements();
        match *layer {
            Layer::Conv2D {
                filter_size,
                activation,
                ..
            } => {
                push_bias_and_act(&mut ops, i, out_e, activation, true);
                let flops = 2.0
                    * (filter_size * filter_size) as f64
                    * channels_of(&s.input) as f64
                    * out_e as f64;
                ops.push(Op {
                    kind: OpKind::Conv2DBackpropFilter,
                    layer_index: Some(i),
                    in_elems: in_e,
                    out_elems: out_e,
                    weight_elems: s.weight_elems,
                    flops,
                });
                if i > 0 {
                    ops.push(Op {
                        kind: OpKind::Conv2DBackpropInput,
                        layer_index: Some(i),
                        in_elems: out_e,
                        out_elems: in_e,
                        weight_elems: s.weight_elems,
                        flops,
                    });
                }
            }
            Layer::Dense { activation, .. } => {
                push_bias_and_act(&mut ops, i, out_e, activation, true);
                let in_features = s.input.elements_per_item();
                let units = s.output.elements_per_item();
                let flops = 2.0 * batch as f64 * in_features as f64 * units as f64;
                // Weight gradient (x^T * dy).
                ops.push(Op {
                    kind: OpKind::MatMul,
                    layer_index: Some(i),
                    in_elems: in_e + out_e,
                    out_elems: s.weight_elems,
                    weight_elems: s.weight_elems,
                    flops,
                });
                // Input gradient (dy * W^T).
                if i > 0 {
                    ops.push(Op {
                        kind: OpKind::MatMul,
                        layer_index: Some(i),
                        in_elems: out_e,
                        out_elems: in_e,
                        weight_elems: s.weight_elems,
                        flops,
                    });
                }
            }
            Layer::MaxPool => {
                ops.push(Op {
                    kind: OpKind::MaxPoolGrad,
                    layer_index: Some(i),
                    in_elems: out_e,
                    out_elems: in_e,
                    weight_elems: 0,
                    flops: in_e as f64,
                });
            }
            Layer::Residual {
                filter_size,
                filters,
                activation,
            } => {
                let c = channels_of(&s.input);
                let fs2 = filter_size * filter_size;
                let conv1_flops = 2.0 * fs2 as f64 * c as f64 * out_e as f64;
                let conv2_flops = 2.0 * fs2 as f64 * filters as f64 * out_e as f64;
                // Final activation, then the skip-add accumulates the branch
                // gradients back together.
                ops.push(Op {
                    kind: act_grad_kind(activation),
                    layer_index: Some(i),
                    in_elems: out_e,
                    out_elems: out_e,
                    weight_elems: 0,
                    flops: out_e as f64 * 2.0,
                });
                ops.push(Op {
                    kind: OpKind::Add,
                    layer_index: Some(i),
                    in_elems: 2 * out_e,
                    out_elems: out_e,
                    weight_elems: 0,
                    flops: out_e as f64,
                });
                if c != filters {
                    ops.push(Op {
                        kind: OpKind::Conv2DBackpropFilter,
                        layer_index: Some(i),
                        in_elems: in_e,
                        out_elems: out_e,
                        weight_elems: c * filters,
                        flops: 2.0 * c as f64 * out_e as f64,
                    });
                }
                ops.push(Op {
                    kind: OpKind::BiasAddGrad,
                    layer_index: Some(i),
                    in_elems: out_e,
                    out_elems: 0,
                    weight_elems: 0,
                    flops: out_e as f64,
                });
                ops.push(Op {
                    kind: OpKind::Conv2DBackpropFilter,
                    layer_index: Some(i),
                    in_elems: out_e,
                    out_elems: out_e,
                    weight_elems: fs2 * filters * filters,
                    flops: conv2_flops,
                });
                // conv2 always needs its input gradient: it feeds conv1
                // inside the block.
                ops.push(Op {
                    kind: OpKind::Conv2DBackpropInput,
                    layer_index: Some(i),
                    in_elems: out_e,
                    out_elems: out_e,
                    weight_elems: fs2 * filters * filters,
                    flops: conv2_flops,
                });
                push_bias_and_act(&mut ops, i, out_e, activation, true);
                ops.push(Op {
                    kind: OpKind::Conv2DBackpropFilter,
                    layer_index: Some(i),
                    in_elems: in_e,
                    out_elems: out_e,
                    weight_elems: fs2 * c * filters,
                    flops: conv1_flops,
                });
                if i > 0 {
                    ops.push(Op {
                        kind: OpKind::Conv2DBackpropInput,
                        layer_index: Some(i),
                        in_elems: out_e,
                        out_elems: in_e,
                        weight_elems: fs2 * c * filters,
                        flops: conv1_flops,
                    });
                }
            }
            Layer::SeparableConv2D {
                filter_size,
                filters,
                activation,
                ..
            } => {
                let c = channels_of(&s.input);
                let fs2 = filter_size * filter_size;
                let dw_out = out_e / filters * c;
                push_bias_and_act(&mut ops, i, out_e, activation, true);
                ops.push(Op {
                    kind: OpKind::Conv2DBackpropFilter,
                    layer_index: Some(i),
                    in_elems: dw_out,
                    out_elems: out_e,
                    weight_elems: c * filters,
                    flops: 2.0 * c as f64 * out_e as f64,
                });
                // The pointwise conv always needs its input gradient: it
                // feeds the depthwise pass inside the layer.
                ops.push(Op {
                    kind: OpKind::Conv2DBackpropInput,
                    layer_index: Some(i),
                    in_elems: out_e,
                    out_elems: dw_out,
                    weight_elems: c * filters,
                    flops: 2.0 * c as f64 * out_e as f64,
                });
                ops.push(Op {
                    kind: OpKind::DepthwiseConv2dNativeBackpropFilter,
                    layer_index: Some(i),
                    in_elems: in_e,
                    out_elems: dw_out,
                    weight_elems: fs2 * c,
                    flops: 2.0 * fs2 as f64 * dw_out as f64,
                });
                if i > 0 {
                    ops.push(Op {
                        kind: OpKind::DepthwiseConv2dNativeBackpropInput,
                        layer_index: Some(i),
                        in_elems: dw_out,
                        out_elems: in_e,
                        weight_elems: fs2 * c,
                        flops: 2.0 * fs2 as f64 * dw_out as f64,
                    });
                }
            }
            Layer::Attention { dim } => {
                let in_features = s.input.elements_per_item();
                let proj_w = in_features * dim;
                let mm_flops = 2.0 * batch as f64 * in_features as f64 * dim as f64;
                ops.push(Op {
                    kind: OpKind::LayerNormGrad,
                    layer_index: Some(i),
                    in_elems: out_e,
                    out_elems: out_e,
                    weight_elems: 2 * dim,
                    flops: out_e as f64 * 8.0,
                });
                // Values-projection weight gradient.
                ops.push(Op {
                    kind: OpKind::MatMul,
                    layer_index: Some(i),
                    in_elems: in_e + out_e,
                    out_elems: proj_w,
                    weight_elems: proj_w,
                    flops: mm_flops,
                });
                ops.push(Op {
                    kind: OpKind::SoftmaxGrad,
                    layer_index: Some(i),
                    in_elems: out_e,
                    out_elems: out_e,
                    weight_elems: 0,
                    flops: out_e as f64 * 5.0,
                });
                // Scores-projection weight gradient.
                ops.push(Op {
                    kind: OpKind::MatMul,
                    layer_index: Some(i),
                    in_elems: in_e + out_e,
                    out_elems: proj_w,
                    weight_elems: proj_w,
                    flops: mm_flops,
                });
                if i > 0 {
                    ops.push(Op {
                        kind: OpKind::MatMul,
                        layer_index: Some(i),
                        in_elems: out_e,
                        out_elems: in_e,
                        weight_elems: proj_w,
                        flops: mm_flops,
                    });
                }
            }
        }
    }

    // Optimizer apply ops: one per trainable variable (weights and biases of
    // each trainable layer, shallow-to-deep as TF serializes them).
    let apply_kind = OpKind::apply_of(model.optimizer);
    let state = model.optimizer.state_slots() as f64;
    for (i, layer) in model.layers.iter().enumerate() {
        if !layer.trainable() {
            continue;
        }
        let s = &shapes[i];
        let bias_elems = s.output.elements_per_item();
        for var_elems in [s.weight_elems, bias_elems] {
            ops.push(Op {
                kind: apply_kind,
                layer_index: Some(i),
                in_elems: var_elems,
                out_elems: var_elems,
                weight_elems: var_elems,
                flops: var_elems as f64 * (2.0 + 3.0 * state),
            });
        }
    }

    ops
}

fn channels_of(shape: &TensorShape) -> usize {
    match *shape {
        TensorShape::Nhwc { channels, .. } => channels,
        TensorShape::Flat { features, .. } => features,
    }
}

fn push_bias_and_act(
    ops: &mut Vec<Op>,
    layer: usize,
    out_e: usize,
    activation: Activation,
    grad: bool,
) {
    if grad {
        // Reverse order on the backward pass: activation grad, then bias grad.
        ops.push(Op {
            kind: act_grad_kind(activation),
            layer_index: Some(layer),
            in_elems: out_e,
            out_elems: out_e,
            weight_elems: 0,
            flops: out_e as f64 * 2.0,
        });
        ops.push(Op {
            kind: OpKind::BiasAddGrad,
            layer_index: Some(layer),
            in_elems: out_e,
            out_elems: 0,
            weight_elems: 0,
            flops: out_e as f64,
        });
    } else {
        ops.push(Op {
            kind: OpKind::BiasAdd,
            layer_index: Some(layer),
            in_elems: out_e,
            out_elems: out_e,
            weight_elems: 0,
            flops: out_e as f64,
        });
        ops.push(Op {
            kind: act_kind(activation),
            layer_index: Some(layer),
            in_elems: out_e,
            out_elems: out_e,
            weight_elems: 0,
            flops: out_e as f64 * 2.0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Optimizer;
    use crate::model::{zoo, InputSpec, Model};
    use crate::ops::OpClass;

    fn tiny_cnn() -> Model {
        Model::new(
            "tiny",
            InputSpec::Image {
                height: 8,
                width: 8,
                channels: 3,
            },
            vec![
                Layer::conv(3, 4, 1),
                Layer::MaxPool,
                Layer::dense(10, Activation::Relu),
            ],
            Optimizer::Gd,
        )
    }

    #[test]
    fn forward_order_matches_paper() {
        let ops = plan_iteration(&tiny_cnn(), 2);
        let names: Vec<&str> = ops.iter().map(|o| o.kind.op_name()).collect();
        // Forward: Conv2D, BiasAdd, Relu, MaxPool, MatMul, BiasAdd, Relu.
        assert_eq!(
            &names[..7],
            &["Conv2D", "BiasAdd", "Relu", "MaxPool", "MatMul", "BiasAdd", "Relu"]
        );
    }

    #[test]
    fn backward_is_reverse_order_with_grads() {
        let ops = plan_iteration(&tiny_cnn(), 2);
        let names: Vec<&str> = ops.iter().map(|o| o.kind.op_name()).collect();
        // Backward starts right after forward (index 7): dense grads first.
        assert_eq!(names[7], "ReluGrad");
        assert_eq!(names[8], "BiasAddGrad");
        assert_eq!(names[9], "MatMul"); // weight grad
        assert_eq!(names[10], "MatMul"); // input grad
        assert_eq!(names[11], "MaxPoolGrad");
        assert_eq!(names[12], "ReluGrad");
        assert_eq!(names[13], "BiasAddGrad");
        assert_eq!(names[14], "Conv2DBackpropFilter");
        // First layer: no input gradient.
        assert!(!names[15..].contains(&"Conv2DBackpropInput"));
    }

    #[test]
    fn apply_ops_count_matches_trainable_vars() {
        let ops = plan_iteration(&tiny_cnn(), 2);
        let applies = ops
            .iter()
            .filter(|o| o.class() == OpClass::Optimizer)
            .count();
        // 2 trainable layers x (weights + bias).
        assert_eq!(applies, 4);
        assert!(ops
            .iter()
            .filter(|o| o.class() == OpClass::Optimizer)
            .all(|o| o.kind.op_name() == "ApplyGradientDescent"));
    }

    #[test]
    fn vgg16_iteration_has_about_130_ops() {
        // §V-E: "a VGG16 training iteration [...] consisting of 130 ops".
        // Ours plans 153 (TF 1.x fuses a few element-wise pairs we keep
        // separate); same order of magnitude.
        let ops = plan_iteration(&zoo::vgg16(), 64);
        assert!(
            (110..=170).contains(&ops.len()),
            "VGG16 iteration has {} ops",
            ops.len()
        );
    }

    #[test]
    fn deeper_mlp_layers_have_larger_matmuls() {
        let ops = plan_iteration(&zoo::profiled_mlp(), 128);
        let matmul_flops: Vec<f64> = ops
            .iter()
            .take_while(|o| o.class() != OpClass::Optimizer)
            .filter(|o| o.kind == OpKind::MatMul)
            .map(|o| o.flops)
            .collect();
        // Forward matmuls grow with the neuron doubling (except the first,
        // which is huge because of the flattened image input).
        let fwd = &matmul_flops[..9];
        assert!(fwd[8] > fwd[4], "{:?}", fwd);
        assert!(fwd[4] > fwd[2], "{:?}", fwd);
    }

    #[test]
    fn stride_reduces_conv_cost() {
        let mk = |stride| {
            Model::new(
                "s",
                InputSpec::Image {
                    height: 32,
                    width: 32,
                    channels: 3,
                },
                vec![Layer::conv(3, 8, stride)],
                Optimizer::Gd,
            )
        };
        let f1 = plan_iteration(&mk(1), 4)[0].flops;
        let f2 = plan_iteration(&mk(2), 4)[0].flops;
        assert!(
            (f1 / f2 - 4.0).abs() < 0.5,
            "stride-2 conv should be ~4x cheaper: {} vs {}",
            f1,
            f2
        );
    }

    #[test]
    fn every_op_has_layer_index() {
        let ops = plan_iteration(&zoo::tested_mlp(), 8);
        assert!(ops.iter().all(|o| o.layer_index.is_some()));
    }

    fn tiny_image() -> InputSpec {
        InputSpec::Image {
            height: 8,
            width: 8,
            channels: 3,
        }
    }

    #[test]
    fn residual_block_plans_two_convs_projection_and_skip_add() {
        let model = Model::new(
            "res",
            tiny_image(),
            vec![Layer::residual(3, 8)],
            Optimizer::Gd,
        );
        let ops = plan_iteration(&model, 2);
        let names: Vec<&str> = ops.iter().map(|o| o.kind.op_name()).collect();
        // 3 input channels != 8 filters, so the skip path gets a projection.
        assert_eq!(
            &names[..8],
            &["Conv2D", "BiasAdd", "Relu", "Conv2D", "BiasAdd", "Conv2D", "Add", "Relu"]
        );
        // Backward mirrors: final act grad, skip-add gradient accumulation,
        // then the conv grads (conv2 always emits its input gradient).
        assert_eq!(names[8], "ReluGrad");
        assert_eq!(names[9], "Add");
        assert!(names[10..].contains(&"Conv2DBackpropFilter"));
        assert!(names[10..].contains(&"Conv2DBackpropInput"));
    }

    #[test]
    fn residual_without_channel_change_skips_projection() {
        let model = Model::new(
            "res",
            tiny_image(),
            vec![Layer::conv(3, 8, 1), Layer::residual(3, 8)],
            Optimizer::Gd,
        );
        let ops = plan_iteration(&model, 2);
        let forward_convs = ops
            .iter()
            .take_while(|o| o.kind != OpKind::ReluGrad)
            .filter(|o| o.kind == OpKind::Conv2D && o.layer_index == Some(1))
            .count();
        assert_eq!(forward_convs, 2, "no 1x1 projection when channels agree");
    }

    #[test]
    fn separable_plans_depthwise_then_pointwise() {
        let model = Model::new(
            "sep",
            tiny_image(),
            vec![Layer::separable(3, 8, 1)],
            Optimizer::Gd,
        );
        let ops = plan_iteration(&model, 2);
        let names: Vec<&str> = ops.iter().map(|o| o.kind.op_name()).collect();
        assert_eq!(
            &names[..4],
            &["DepthwiseConv2dNative", "Conv2D", "BiasAdd", "Relu"]
        );
        assert!(names.contains(&"DepthwiseConv2dNativeBackpropFilter"));
        // Depthwise weights are per-channel only: far fewer than pointwise.
        assert_eq!(ops[0].weight_elems, 3 * 3 * 3);
        assert_eq!(ops[1].weight_elems, 3 * 8);
    }

    #[test]
    fn attention_plans_matmul_softmax_matmul_layernorm() {
        let model = Model::new(
            "attn",
            tiny_image(),
            vec![Layer::attention(64)],
            Optimizer::Gd,
        );
        let ops = plan_iteration(&model, 2);
        let names: Vec<&str> = ops.iter().map(|o| o.kind.op_name()).collect();
        assert_eq!(&names[..4], &["MatMul", "Softmax", "MatMul", "LayerNorm"]);
        assert_eq!(names[4], "LayerNormGrad");
        assert!(names.contains(&"SoftmaxGrad"));
    }

    #[test]
    fn inference_mode_plans_forward_only() {
        for model in [
            tiny_cnn(),
            Model::new(
                "mix",
                tiny_image(),
                vec![
                    Layer::residual(3, 8),
                    Layer::separable(3, 16, 1),
                    Layer::attention(64),
                ],
                Optimizer::Adam,
            ),
        ] {
            let train = plan_iteration_mode(&model, 2, ExecutionMode::Training);
            let infer = plan_iteration_mode(&model, 2, ExecutionMode::Inference);
            assert!(infer.len() < train.len());
            // The inference plan is exactly the training plan's forward
            // prefix.
            assert_eq!(&train[..infer.len()], &infer[..]);
            assert!(infer.iter().all(|o| {
                !o.kind.op_name().contains("Grad")
                    && !o.kind.op_name().contains("Backprop")
                    && !o.kind.op_name().starts_with("Apply")
            }));
        }
    }
}
