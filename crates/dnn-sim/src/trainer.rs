//! Training sessions: drive a model's iterations on the GPU engine, with the
//! host-side behaviour the attack exploits — an input-pipeline gap between
//! iterations (what `Mgap` detects) and occasional intra-iteration stalls
//! (the false-NOP noise `TH_gap` exists to reject, §IV-A).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use gpu_sim::{ContextId, Gpu};

use crate::kernels::lower_op;
use crate::model::Model;
use crate::ops::Op;
use crate::planner::{plan_iteration_mode, ExecutionMode};

/// Host-side training-loop configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Mini-batch size.
    pub batch: usize,
    /// Number of iterations to enqueue.
    pub iterations: usize,
    /// Mean host gap between iterations (input pipeline), microseconds.
    pub gap_us: f64,
    /// Relative jitter on the gap (uniform ±fraction).
    pub gap_jitter: f64,
    /// Probability of a short host stall after any op.
    pub intra_stall_prob: f64,
    /// Length of an intra-iteration stall, microseconds.
    pub intra_stall_us: f64,
    /// Execution mode: full training steps or forward-only inference
    /// (serde-defaulted to [`ExecutionMode::Training`] so cached trace keys
    /// of existing configs keep deserializing).
    #[serde(default)]
    pub mode: ExecutionMode,
}

impl TrainingConfig {
    /// Defaults matching the paper's setting (gap long enough to hold well
    /// over `TH_gap = 6` spy samples).
    pub fn new(batch: usize, iterations: usize) -> Self {
        TrainingConfig {
            batch,
            iterations,
            gap_us: 35_000.0,
            gap_jitter: 0.25,
            intra_stall_prob: 0.015,
            intra_stall_us: 3_000.0,
            mode: ExecutionMode::Training,
        }
    }

    /// [`TrainingConfig::new`] with forward-only iterations (an inference
    /// serving loop instead of a training loop).
    pub fn inference(batch: usize, iterations: usize) -> Self {
        TrainingConfig {
            mode: ExecutionMode::Inference,
            ..TrainingConfig::new(batch, iterations)
        }
    }
}

/// A model plus its training-loop configuration, ready to enqueue on a GPU.
#[derive(Debug, Clone)]
pub struct TrainingSession {
    model: Model,
    config: TrainingConfig,
    ops: Vec<Op>,
}

impl TrainingSession {
    /// Plans the per-iteration op sequence for the model.
    pub fn new(model: Model, config: TrainingConfig) -> Self {
        let ops = plan_iteration_mode(&model, config.batch, config.mode);
        TrainingSession { model, config, ops }
    }

    /// The model being trained.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    /// The planned op sequence of one iteration.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Enqueues all configured iterations on `ctx`, with inter-iteration
    /// gaps and random intra-iteration stalls. Also enables
    /// yield-on-completion for the context (TensorFlow's op-by-op launch
    /// behaviour).
    pub fn enqueue(&self, gpu: &mut Gpu, ctx: ContextId, rng: &mut StdRng) {
        gpu.set_yield_on_completion(ctx, true);
        let cfg = gpu.config().clone();
        for _iter in 0..self.config.iterations {
            for (i, op) in self.ops.iter().enumerate() {
                gpu.enqueue(ctx, lower_op(op, i, &cfg));
                if self.config.intra_stall_prob > 0.0 && rng.gen_bool(self.config.intra_stall_prob)
                {
                    gpu.enqueue_host_gap(ctx, self.config.intra_stall_us);
                }
            }
            let jitter = 1.0 + rng.gen_range(-self.config.gap_jitter..=self.config.gap_jitter);
            gpu.enqueue_host_gap(ctx, self.config.gap_us * jitter);
        }
    }

    /// Runs the session alone on a fresh GPU and returns the mean iteration
    /// wall time in microseconds — the victim's baseline performance used in
    /// the paper's §V-F slow-down measurements.
    pub fn baseline_iteration_us(&self, gpu_config: gpu_sim::GpuConfig) -> f64 {
        use rand::SeedableRng;
        let mut session = self.clone();
        session.config.iterations = session.config.iterations.min(3);
        session.config.intra_stall_prob = 0.0;
        let mut gpu = Gpu::new(gpu_config, gpu_sim::SchedulerMode::TimeSliced);
        let ctx = gpu.add_context("victim");
        let mut rng = StdRng::seed_from_u64(7);
        session.enqueue(&mut gpu, ctx, &mut rng);
        gpu.run_until_queues_drain();
        let log = gpu.kernel_log();
        assert!(!log.is_empty(), "no kernels executed");
        let per_iter = session.ops.len();
        let iters = log.len() / per_iter;
        assert!(iters >= 1, "fewer kernels than one iteration");
        // Average over complete iterations, excluding the host gaps.
        let mut total = 0.0;
        for i in 0..iters {
            let first = &log[i * per_iter];
            let last = &log[(i + 1) * per_iter - 1];
            total += last.end_us - first.start_us;
        }
        total / iters as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, Layer, Optimizer};
    use crate::model::{zoo, InputSpec, Model};
    use gpu_sim::{GpuConfig, SchedulerMode};
    use rand::SeedableRng;

    fn small_model() -> Model {
        Model::new(
            "small",
            InputSpec::Image {
                height: 16,
                width: 16,
                channels: 3,
            },
            vec![
                Layer::conv(3, 8, 1),
                Layer::MaxPool,
                Layer::dense(32, Activation::Relu),
            ],
            Optimizer::Adam,
        )
    }

    #[test]
    fn enqueues_ops_times_iterations() {
        let session = TrainingSession::new(small_model(), TrainingConfig::new(4, 3));
        let mut gpu = Gpu::new(GpuConfig::gtx_1080_ti(), SchedulerMode::TimeSliced);
        let ctx = gpu.add_context("victim");
        let mut rng = StdRng::seed_from_u64(1);
        session.enqueue(&mut gpu, ctx, &mut rng);
        gpu.run_until_queues_drain();
        assert_eq!(
            gpu.kernel_log().len(),
            session.ops().len() * 3,
            "every op of every iteration must execute"
        );
    }

    #[test]
    fn inference_sessions_plan_forward_only() {
        let train = TrainingSession::new(small_model(), TrainingConfig::new(4, 2));
        let infer = TrainingSession::new(small_model(), TrainingConfig::inference(4, 2));
        assert!(infer.ops().len() < train.ops().len());
        assert!(infer.ops().iter().all(|o| {
            let name = o.kind.op_name();
            !name.contains("Grad") && !name.contains("Backprop") && !name.starts_with("Apply")
        }));
    }

    #[test]
    fn iterations_are_separated_by_gaps() {
        let mut cfg = TrainingConfig::new(4, 2);
        cfg.intra_stall_prob = 0.0;
        cfg.gap_us = 20_000.0;
        cfg.gap_jitter = 0.0;
        let session = TrainingSession::new(small_model(), cfg);
        let mut gpu = Gpu::new(GpuConfig::gtx_1080_ti(), SchedulerMode::TimeSliced);
        let ctx = gpu.add_context("victim");
        let mut rng = StdRng::seed_from_u64(1);
        session.enqueue(&mut gpu, ctx, &mut rng);
        gpu.run_until_queues_drain();
        let log = gpu.kernel_log();
        let n = session.ops().len();
        let gap = log[n].start_us - log[n - 1].end_us;
        assert!(gap >= 19_000.0, "inter-iteration gap was {}", gap);
    }

    #[test]
    fn baseline_vgg16_iteration_near_paper_number() {
        // §V-F: 431.18 ms per VGG16 batch-64 iteration on the 1080 Ti.
        // We accept a generous band — the shape matters, not the digit.
        let session = TrainingSession::new(zoo::vgg16(), TrainingConfig::new(64, 2));
        let us = session.baseline_iteration_us(GpuConfig::gtx_1080_ti());
        // Ours lands near ~1 s because element-wise ops are not fused;
        // same order of magnitude as the paper's 431 ms.
        assert!(
            (150_000.0..1_500_000.0).contains(&us),
            "VGG16 iteration {} us is out of band",
            us
        );
    }

    #[test]
    fn mlp_is_much_faster_than_vgg16() {
        let vgg = TrainingSession::new(zoo::vgg16(), TrainingConfig::new(64, 1))
            .baseline_iteration_us(GpuConfig::gtx_1080_ti());
        let mlp = TrainingSession::new(zoo::tested_mlp(), TrainingConfig::new(128, 1))
            .baseline_iteration_us(GpuConfig::gtx_1080_ti());
        assert!(mlp < vgg / 2.0, "mlp {} vs vgg {}", mlp, vgg);
    }
}
