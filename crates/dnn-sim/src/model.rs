//! Sequential models and the paper's model zoo.
//!
//! Table V defines the three models the adversary *profiles* (customized
//! 9-layer MLP, AlexNet, customized VGG19) and Table IX the three models she
//! *attacks* (customized 5-layer MLP, ZFNet, VGG16) — chosen to test transfer
//! within a family (VGG19 → VGG16) and across families (AlexNet → ZFNet).

use serde::{Deserialize, Serialize};

use crate::layer::{Activation, Layer, Optimizer};
use crate::tensor::TensorShape;

/// Input specification of a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputSpec {
    /// Image input `height` x `width` x `channels` (fed to conv stacks, or
    /// flattened for MLPs).
    Image {
        /// Height in pixels.
        height: usize,
        /// Width in pixels.
        width: usize,
        /// Channels.
        channels: usize,
    },
}

impl InputSpec {
    /// Standard ImageNet-preprocessed input (the paper resizes 64x64 images
    /// to 224x224, §V-A).
    pub fn imagenet() -> Self {
        InputSpec::Image {
            height: 224,
            width: 224,
            channels: 3,
        }
    }

    /// The activation shape for a given batch size.
    pub fn shape(&self, batch: usize) -> TensorShape {
        match *self {
            InputSpec::Image {
                height,
                width,
                channels,
            } => TensorShape::nhwc(batch, height, width, channels),
        }
    }
}

/// A sequential DNN model: the structural secret the attack targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    /// Model name.
    pub name: String,
    /// Input specification.
    pub input: InputSpec,
    /// Layer stack.
    pub layers: Vec<Layer>,
    /// Training optimizer.
    pub optimizer: Optimizer,
}

impl Model {
    /// Creates a model, validating every layer.
    ///
    /// # Panics
    ///
    /// Panics if any layer is invalid or the stack is empty.
    pub fn new(
        name: impl Into<String>,
        input: InputSpec,
        layers: Vec<Layer>,
        optimizer: Optimizer,
    ) -> Self {
        assert!(!layers.is_empty(), "model needs at least one layer");
        for (i, l) in layers.iter().enumerate() {
            if let Err(e) = l.validate() {
                panic!("layer {}: {}", i, e);
            }
        }
        Model {
            name: name.into(),
            input,
            layers,
            optimizer,
        }
    }

    /// Returns the model with a different input specification (used to run
    /// the zoo at reduced image sizes — the paper's §V-B notes batch and
    /// image size barely affect the attack, which our scaled runs exploit).
    pub fn with_input(mut self, input: InputSpec) -> Self {
        self.input = input;
        self
    }

    /// Number of trainable layers.
    pub fn trainable_layers(&self) -> usize {
        self.layers.iter().filter(|l| l.trainable()).count()
    }

    /// The paper's structure string, e.g.
    /// `C3,64,1,R-P-M4096,R-OptimizerAdam`.
    pub fn structure_string(&self) -> String {
        let mut parts: Vec<String> = self.layers.iter().map(Layer::structure_fragment).collect();
        parts.push(format!("Optimizer{}", self.optimizer.name()));
        parts.join("-")
    }

    /// Total trainable parameters given the input spec (weights + biases).
    pub fn parameter_count(&self, batch: usize) -> usize {
        let mut shape = self.input.shape(batch);
        let mut params = 0usize;
        for layer in &self.layers {
            match *layer {
                Layer::Conv2D {
                    filter_size,
                    filters,
                    stride,
                    ..
                } => {
                    let (h, w, c) = match shape {
                        TensorShape::Nhwc {
                            height,
                            width,
                            channels,
                            ..
                        } => (height, width, channels),
                        TensorShape::Flat { .. } => {
                            panic!("conv layer after flatten in model {}", self.name)
                        }
                    };
                    params += filter_size * filter_size * c * filters + filters;
                    shape = TensorShape::nhwc(
                        batch,
                        crate::tensor::conv_out_size(h, stride),
                        crate::tensor::conv_out_size(w, stride),
                        filters,
                    );
                }
                Layer::Dense { units, .. } => {
                    let in_features = shape.elements_per_item();
                    params += in_features * units + units;
                    shape = TensorShape::flat(batch, units);
                }
                Layer::MaxPool => {
                    if let TensorShape::Nhwc {
                        height,
                        width,
                        channels,
                        ..
                    } = shape
                    {
                        shape = TensorShape::nhwc(
                            batch,
                            height.div_ceil(2),
                            width.div_ceil(2),
                            channels,
                        );
                    }
                }
                Layer::Residual {
                    filter_size,
                    filters,
                    ..
                } => {
                    let (h, w, c) = match shape {
                        TensorShape::Nhwc {
                            height,
                            width,
                            channels,
                            ..
                        } => (height, width, channels),
                        TensorShape::Flat { .. } => {
                            panic!("residual layer after flatten in model {}", self.name)
                        }
                    };
                    params += filter_size * filter_size * c * filters + filters;
                    params += filter_size * filter_size * filters * filters + filters;
                    if c != filters {
                        params += c * filters;
                    }
                    shape = TensorShape::nhwc(batch, h, w, filters);
                }
                Layer::SeparableConv2D {
                    filter_size,
                    filters,
                    stride,
                    ..
                } => {
                    let (h, w, c) = match shape {
                        TensorShape::Nhwc {
                            height,
                            width,
                            channels,
                            ..
                        } => (height, width, channels),
                        TensorShape::Flat { .. } => {
                            panic!("separable layer after flatten in model {}", self.name)
                        }
                    };
                    params += filter_size * filter_size * c + c * filters + filters;
                    shape = TensorShape::nhwc(
                        batch,
                        crate::tensor::conv_out_size(h, stride),
                        crate::tensor::conv_out_size(w, stride),
                        filters,
                    );
                }
                Layer::Attention { dim } => {
                    let in_features = shape.elements_per_item();
                    params += 2 * in_features * dim + 2 * dim;
                    shape = TensorShape::flat(batch, dim);
                }
            }
        }
        params
    }
}

/// The model zoo: every structure from Table V (profiled) and Table IX
/// (tested ground truth).
pub mod zoo {
    use super::*;
    use Activation::{Relu, Sigmoid, Tanh};

    /// Customized 9-layer MLP the adversary profiles (Table V).
    pub fn profiled_mlp() -> Model {
        Model::new(
            "Cust. MLP (profiled)",
            InputSpec::imagenet(),
            vec![
                Layer::dense(64, Relu),
                Layer::dense(128, Tanh),
                Layer::dense(256, Sigmoid),
                Layer::dense(512, Relu),
                Layer::dense(1024, Tanh),
                Layer::dense(2048, Sigmoid),
                Layer::dense(4096, Relu),
                Layer::dense(8192, Relu),
                Layer::dense(16384, Sigmoid),
            ],
            Optimizer::Adagrad,
        )
    }

    /// AlexNet as profiled (Table V).
    pub fn alexnet() -> Model {
        Model::new(
            "AlexNet",
            InputSpec::imagenet(),
            vec![
                Layer::conv(11, 96, 4),
                Layer::MaxPool,
                Layer::conv(5, 256, 1),
                Layer::MaxPool,
                Layer::conv(3, 384, 1),
                Layer::conv(3, 384, 1),
                Layer::conv(3, 256, 1),
                Layer::MaxPool,
                Layer::dense(4096, Relu),
                Layer::dense(4096, Relu),
                Layer::dense(1000, Relu),
            ],
            Optimizer::Adam,
        )
    }

    /// The customized VGG19 of Table V (non-standard filter sizes/counts).
    pub fn profiled_vgg19() -> Model {
        Model::new(
            "Cust. VGG19",
            InputSpec::imagenet(),
            vec![
                Layer::conv(13, 64, 1),
                Layer::conv(13, 64, 1),
                Layer::MaxPool,
                Layer::conv(11, 192, 1),
                Layer::conv(9, 256, 1),
                Layer::MaxPool,
                Layer::conv(7, 256, 1),
                Layer::conv(5, 256, 1),
                Layer::conv(3, 256, 1),
                Layer::conv(1, 256, 1),
                Layer::MaxPool,
                Layer::conv(3, 512, 1),
                Layer::conv(3, 512, 1),
                Layer::conv(3, 512, 1),
                Layer::conv(3, 512, 1),
                Layer::MaxPool,
                Layer::conv(1, 512, 1),
                Layer::conv(1, 1024, 1),
                Layer::conv(1, 2048, 1),
                Layer::conv(1, 4096, 1),
                Layer::MaxPool,
                Layer::dense(4096, Relu),
                Layer::dense(4096, Relu),
                Layer::dense(1000, Relu),
            ],
            Optimizer::Gd,
        )
    }

    /// Customized 5-layer MLP the adversary attacks (Table IX ground truth).
    pub fn tested_mlp() -> Model {
        Model::new(
            "Cust. MLP (tested)",
            InputSpec::imagenet(),
            vec![
                Layer::dense(64, Relu),
                Layer::dense(512, Tanh),
                Layer::dense(1024, Sigmoid),
                Layer::dense(2048, Relu),
                Layer::dense(8192, Tanh),
            ],
            Optimizer::Gd,
        )
    }

    /// ZFNet as attacked (Table IX ground truth).
    pub fn zfnet() -> Model {
        Model::new(
            "ZFNet",
            InputSpec::imagenet(),
            vec![
                Layer::conv(7, 96, 2),
                Layer::MaxPool,
                Layer::conv(5, 256, 2),
                Layer::MaxPool,
                Layer::conv(3, 512, 1),
                Layer::conv(3, 1024, 1),
                Layer::conv(3, 512, 1),
                Layer::MaxPool,
                Layer::dense(4096, Relu),
                Layer::dense(4096, Relu),
                Layer::dense(1000, Relu),
            ],
            Optimizer::Adam,
        )
    }

    /// VGG16 as attacked (Table IX ground truth).
    pub fn vgg16() -> Model {
        Model::new(
            "VGG16",
            InputSpec::imagenet(),
            vec![
                Layer::conv(3, 64, 1),
                Layer::conv(3, 64, 1),
                Layer::MaxPool,
                Layer::conv(3, 128, 1),
                Layer::conv(3, 128, 1),
                Layer::MaxPool,
                Layer::conv(3, 256, 1),
                Layer::conv(3, 256, 1),
                Layer::conv(3, 256, 1),
                Layer::MaxPool,
                Layer::conv(3, 512, 1),
                Layer::conv(3, 512, 1),
                Layer::conv(3, 512, 1),
                Layer::MaxPool,
                Layer::conv(3, 512, 1),
                Layer::conv(3, 512, 1),
                Layer::conv(3, 512, 1),
                Layer::MaxPool,
                Layer::dense(4096, Relu),
                Layer::dense(4096, Relu),
                Layer::dense(1000, Relu),
            ],
            Optimizer::Adam,
        )
    }

    /// The three profiled models (attack training set).
    pub fn profiled_models() -> Vec<Model> {
        vec![profiled_mlp(), alexnet(), profiled_vgg19()]
    }

    /// The three tested models (attack targets).
    pub fn tested_models() -> Vec<Model> {
        vec![tested_mlp(), zfnet(), vgg16()]
    }

    /// Family tags of the victim-zoo conformance matrix. The `inference`
    /// family reuses the linear CNN under forward-only execution
    /// ([`crate::ExecutionMode::Inference`]), so [`family_model`] maps it to
    /// the same structure as `linear`.
    pub const FAMILIES: [&str; 5] = ["linear", "residual", "separable", "attention", "inference"];

    /// Small linear-chain CNN: the classic Table V/IX shape at zoo scale.
    pub fn linear_cnn() -> Model {
        Model::new(
            "Linear CNN (zoo)",
            InputSpec::imagenet(),
            vec![
                Layer::conv(3, 64, 1),
                Layer::MaxPool,
                Layer::conv(5, 128, 1),
                Layer::MaxPool,
                Layer::dense(1024, Relu),
                Layer::dense(256, Relu),
            ],
            Optimizer::Adam,
        )
    }

    /// ResNet-style victim: conv stem, two residual blocks, dense head.
    pub fn residual_cnn() -> Model {
        Model::new(
            "Residual CNN (zoo)",
            InputSpec::imagenet(),
            vec![
                Layer::conv(3, 64, 1),
                Layer::MaxPool,
                Layer::residual(3, 64),
                Layer::residual(3, 128),
                Layer::MaxPool,
                Layer::dense(512, Relu),
                Layer::dense(128, Relu),
            ],
            Optimizer::Adam,
        )
    }

    /// MobileNet-style victim built from depthwise-separable convolutions.
    pub fn separable_cnn() -> Model {
        Model::new(
            "Separable CNN (zoo)",
            InputSpec::imagenet(),
            vec![
                Layer::separable(3, 64, 1),
                Layer::MaxPool,
                Layer::separable(5, 128, 1),
                Layer::MaxPool,
                Layer::dense(1024, Relu),
                Layer::dense(256, Relu),
            ],
            Optimizer::Adagrad,
        )
    }

    /// Transformer-style victim: stacked attention blocks and a dense head.
    pub fn attention_net() -> Model {
        Model::new(
            "Attention net (zoo)",
            InputSpec::imagenet(),
            vec![
                Layer::attention(256),
                Layer::attention(128),
                Layer::dense(512, Relu),
                Layer::dense(64, Relu),
            ],
            Optimizer::Gd,
        )
    }

    /// The victim model of a conformance family ([`FAMILIES`]); `None` for
    /// unknown tags.
    pub fn family_model(family: &str) -> Option<Model> {
        match family {
            "linear" | "inference" => Some(linear_cnn()),
            "residual" => Some(residual_cnn()),
            "separable" => Some(separable_cnn()),
            "attention" => Some(attention_net()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::zoo::*;
    use super::*;

    #[test]
    fn structure_strings_match_table_v() {
        assert_eq!(
            profiled_mlp().structure_string(),
            "M64,R-M128,T-M256,S-M512,R-M1024,T-M2048,S-M4096,R-M8192,R-M16384,S-OptimizerAdagrad"
        );
        assert!(alexnet()
            .structure_string()
            .starts_with("C11,96,4,R-P-C5,256,1,R-P-"));
        assert!(alexnet()
            .structure_string()
            .ends_with("M1000,R-OptimizerAdam"));
    }

    #[test]
    fn structure_strings_match_table_ix() {
        assert_eq!(
            tested_mlp().structure_string(),
            "M64,R-M512,T-M1024,S-M2048,R-M8192,T-OptimizerGD"
        );
        assert!(zfnet()
            .structure_string()
            .starts_with("C7,96,2,R-P-C5,256,2,R-P-C3,512,1,R-C3,1024,1,R-C3,512,1,R-P-"));
        let vgg = vgg16().structure_string();
        assert_eq!(vgg.matches("C3,").count(), 13, "VGG16 has 13 conv layers");
        assert_eq!(vgg.matches('P').count(), 5);
    }

    #[test]
    fn layer_counts() {
        assert_eq!(profiled_mlp().layers.len(), 9);
        assert_eq!(tested_mlp().layers.len(), 5);
        assert_eq!(vgg16().layers.len(), 13 + 5 + 3);
        assert_eq!(profiled_vgg19().layers.len(), 16 + 5 + 3);
        assert_eq!(zfnet().trainable_layers(), 5 + 3);
    }

    #[test]
    fn vgg16_parameter_count_is_plausible() {
        // Real VGG16 has ~138M parameters.
        let p = vgg16().parameter_count(1);
        assert!(
            (120_000_000..160_000_000).contains(&p),
            "unexpected parameter count {}",
            p
        );
    }

    #[test]
    fn alexnet_shapes_flow() {
        // Parameter counting exercises the full shape propagation; a panic
        // here would mean the conv/pool arithmetic broke.
        let p = alexnet().parameter_count(1);
        assert!(p > 10_000_000, "{}", p);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_model_panics() {
        let _ = Model::new("x", InputSpec::imagenet(), vec![], Optimizer::Gd);
    }

    #[test]
    fn zoo_groups() {
        assert_eq!(profiled_models().len(), 3);
        assert_eq!(tested_models().len(), 3);
    }

    #[test]
    fn family_models_cover_every_tag() {
        for family in FAMILIES {
            let m = family_model(family).unwrap_or_else(|| panic!("no model for {family}"));
            assert!(m.parameter_count(1) > 0);
        }
        assert_eq!(family_model("linear"), family_model("inference"));
        assert!(family_model("nope").is_none());
    }

    #[test]
    fn zoo_family_parameter_counts_flow() {
        // Exercises the residual/separable/attention shape propagation.
        let res = residual_cnn().parameter_count(1);
        let sep = separable_cnn().parameter_count(1);
        let attn = attention_net().parameter_count(1);
        assert!(res > 0 && sep > 0 && attn > 0);
        // A separable conv has far fewer parameters than its dense
        // counterpart would: depthwise 3x3x64 + pointwise 64x128 vs
        // 3x3x64x128.
        let sep_layer = Layer::separable(3, 128, 1);
        let conv_layer = Layer::conv(3, 128, 1);
        let mk = |l| {
            Model::new(
                "p",
                InputSpec::Image {
                    height: 16,
                    width: 16,
                    channels: 64,
                },
                vec![l],
                Optimizer::Gd,
            )
            .parameter_count(1)
        };
        assert!(mk(sep_layer) < mk(conv_layer) / 4);
    }

    #[test]
    fn zoo_family_structure_strings() {
        assert!(residual_cnn().structure_string().contains("E3,64,R"));
        assert!(separable_cnn().structure_string().contains("D5,128,1,R"));
        assert!(attention_net().structure_string().starts_with("A256-A128-"));
    }
}
