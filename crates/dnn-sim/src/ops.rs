//! Training-step operations and their classification taxonomy.
//!
//! A training iteration is a sequence of *ops* (paper terminology): forward
//! ops per layer, their gradient counterparts in reverse order, and the
//! optimizer's apply ops. The attack's inference models classify spy samples
//! into the [`OpClass`] alphabet of Table VII (`C`, `M`, `B`, `R`, `P`, `T`,
//! `S`), plus `Opt` for optimizer apply ops and `NOP` for idle gaps.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::layer::Optimizer;

/// Concrete TensorFlow-level operation kinds emitted by the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum OpKind {
    Conv2D,
    Conv2DBackpropFilter,
    Conv2DBackpropInput,
    MatMul,
    BiasAdd,
    BiasAddGrad,
    Relu,
    ReluGrad,
    Tanh,
    TanhGrad,
    Sigmoid,
    SigmoidGrad,
    MaxPool,
    MaxPoolGrad,
    Add,
    Softmax,
    SoftmaxGrad,
    LayerNorm,
    LayerNormGrad,
    DepthwiseConv2dNative,
    DepthwiseConv2dNativeBackpropFilter,
    DepthwiseConv2dNativeBackpropInput,
    ApplyGd,
    ApplyAdam,
    ApplyAdagrad,
}

impl OpKind {
    /// The TensorFlow op name (what the timeline profiler logs).
    pub fn op_name(self) -> &'static str {
        match self {
            OpKind::Conv2D => "Conv2D",
            OpKind::Conv2DBackpropFilter => "Conv2DBackpropFilter",
            OpKind::Conv2DBackpropInput => "Conv2DBackpropInput",
            OpKind::MatMul => "MatMul",
            OpKind::BiasAdd => "BiasAdd",
            OpKind::BiasAddGrad => "BiasAddGrad",
            OpKind::Relu => "Relu",
            OpKind::ReluGrad => "ReluGrad",
            OpKind::Tanh => "Tanh",
            OpKind::TanhGrad => "TanhGrad",
            OpKind::Sigmoid => "Sigmoid",
            OpKind::SigmoidGrad => "SigmoidGrad",
            OpKind::MaxPool => "MaxPool",
            OpKind::MaxPoolGrad => "MaxPoolGrad",
            OpKind::Add => "Add",
            OpKind::Softmax => "Softmax",
            OpKind::SoftmaxGrad => "SoftmaxGrad",
            OpKind::LayerNorm => "LayerNorm",
            OpKind::LayerNormGrad => "LayerNormGrad",
            OpKind::DepthwiseConv2dNative => "DepthwiseConv2dNative",
            OpKind::DepthwiseConv2dNativeBackpropFilter => "DepthwiseConv2dNativeBackpropFilter",
            OpKind::DepthwiseConv2dNativeBackpropInput => "DepthwiseConv2dNativeBackpropInput",
            OpKind::ApplyGd => "ApplyGradientDescent",
            OpKind::ApplyAdam => "ApplyAdam",
            OpKind::ApplyAdagrad => "ApplyAdagrad",
        }
    }

    /// Classification class for the attack's inference models.
    pub fn class(self) -> OpClass {
        match self {
            OpKind::Conv2D | OpKind::Conv2DBackpropFilter | OpKind::Conv2DBackpropInput => {
                OpClass::Conv
            }
            OpKind::MatMul => OpClass::MatMul,
            OpKind::BiasAdd | OpKind::BiasAddGrad => OpClass::BiasAdd,
            OpKind::Relu | OpKind::ReluGrad => OpClass::Relu,
            OpKind::Tanh | OpKind::TanhGrad => OpClass::Tanh,
            OpKind::Sigmoid | OpKind::SigmoidGrad => OpClass::Sigmoid,
            OpKind::MaxPool | OpKind::MaxPoolGrad => OpClass::Pool,
            OpKind::Add => OpClass::Add,
            OpKind::Softmax | OpKind::SoftmaxGrad => OpClass::Softmax,
            OpKind::LayerNorm | OpKind::LayerNormGrad => OpClass::LayerNorm,
            OpKind::DepthwiseConv2dNative
            | OpKind::DepthwiseConv2dNativeBackpropFilter
            | OpKind::DepthwiseConv2dNativeBackpropInput => OpClass::Depthwise,
            OpKind::ApplyGd | OpKind::ApplyAdam | OpKind::ApplyAdagrad => OpClass::Optimizer,
        }
    }

    /// The apply-op kind of an optimizer.
    pub fn apply_of(optimizer: Optimizer) -> OpKind {
        match optimizer {
            Optimizer::Gd => OpKind::ApplyGd,
            Optimizer::Adam => OpKind::ApplyAdam,
            Optimizer::Adagrad => OpKind::ApplyAdagrad,
        }
    }

    /// Parses the class back from an op name logged on a timeline.
    pub fn from_op_name(name: &str) -> Option<OpKind> {
        const ALL: [OpKind; 25] = [
            OpKind::Conv2D,
            OpKind::Conv2DBackpropFilter,
            OpKind::Conv2DBackpropInput,
            OpKind::MatMul,
            OpKind::BiasAdd,
            OpKind::BiasAddGrad,
            OpKind::Relu,
            OpKind::ReluGrad,
            OpKind::Tanh,
            OpKind::TanhGrad,
            OpKind::Sigmoid,
            OpKind::SigmoidGrad,
            OpKind::MaxPool,
            OpKind::MaxPoolGrad,
            OpKind::Add,
            OpKind::Softmax,
            OpKind::SoftmaxGrad,
            OpKind::LayerNorm,
            OpKind::LayerNormGrad,
            OpKind::DepthwiseConv2dNative,
            OpKind::DepthwiseConv2dNativeBackpropFilter,
            OpKind::DepthwiseConv2dNativeBackpropInput,
            OpKind::ApplyGd,
            OpKind::ApplyAdam,
            OpKind::ApplyAdagrad,
        ];
        ALL.into_iter().find(|k| k.op_name() == name)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.op_name())
    }
}

/// The classification alphabet (paper Table VII letters plus `Optimizer` and
/// `Nop`, extended with the model-zoo classes `Add`, `Softmax`, `LayerNorm`
/// and `Depthwise` — classic-first so classic class indices never move).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum OpClass {
    Conv,
    MatMul,
    BiasAdd,
    Relu,
    Tanh,
    Sigmoid,
    Pool,
    Optimizer,
    Nop,
    Add,
    Softmax,
    LayerNorm,
    Depthwise,
}

impl OpClass {
    /// All classes, in a stable order (classic Table VII alphabet first, zoo
    /// extensions appended).
    pub const ALL: [OpClass; 13] = [
        OpClass::Conv,
        OpClass::MatMul,
        OpClass::BiasAdd,
        OpClass::Relu,
        OpClass::Tanh,
        OpClass::Sigmoid,
        OpClass::Pool,
        OpClass::Optimizer,
        OpClass::Nop,
        OpClass::Add,
        OpClass::Softmax,
        OpClass::LayerNorm,
        OpClass::Depthwise,
    ];

    /// The paper's single-letter code (`N` for NOP, `O` for optimizer). Zoo
    /// classes use letters outside the Table VII alphabet: `A` (Add), `F`
    /// (soFtmax — `S` is taken by sigmoid and `X` renders unknowns), `L`
    /// (LayerNorm) and `D` (Depthwise).
    pub fn letter(self) -> char {
        match self {
            OpClass::Conv => 'C',
            OpClass::MatMul => 'M',
            OpClass::BiasAdd => 'B',
            OpClass::Relu => 'R',
            OpClass::Tanh => 'T',
            OpClass::Sigmoid => 'S',
            OpClass::Pool => 'P',
            OpClass::Optimizer => 'O',
            OpClass::Nop => 'N',
            OpClass::Add => 'A',
            OpClass::Softmax => 'F',
            OpClass::LayerNorm => 'L',
            OpClass::Depthwise => 'D',
        }
    }

    /// Whether this class is one of the long ops `Mlong` singles out.
    pub fn is_long(self) -> bool {
        matches!(self, OpClass::Conv | OpClass::MatMul)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// One planned operation of a training iteration, with the tensor volumes the
/// kernel lowering derives its footprint from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Op {
    /// Operation kind.
    pub kind: OpKind,
    /// Index of the model layer this op belongs to (`None` for model-level
    /// ops); used to attach hyper-parameter labels during profiling.
    pub layer_index: Option<usize>,
    /// Input activation elements.
    pub in_elems: usize,
    /// Output activation elements.
    pub out_elems: usize,
    /// Trainable parameter elements touched (weights or bias).
    pub weight_elems: usize,
    /// Total floating-point operations.
    pub flops: f64,
}

impl Op {
    /// Classification class.
    pub fn class(&self) -> OpClass {
        self.kind.class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grads_share_class_with_forward() {
        assert_eq!(OpKind::ReluGrad.class(), OpClass::Relu);
        assert_eq!(OpKind::BiasAddGrad.class(), OpClass::BiasAdd);
        assert_eq!(OpKind::Conv2DBackpropFilter.class(), OpClass::Conv);
        assert_eq!(OpKind::Conv2DBackpropInput.class(), OpClass::Conv);
        assert_eq!(OpKind::MaxPoolGrad.class(), OpClass::Pool);
    }

    #[test]
    fn letters_match_table_vii() {
        assert_eq!(OpClass::Conv.letter(), 'C');
        assert_eq!(OpClass::BiasAdd.letter(), 'B');
        assert_eq!(OpClass::Relu.letter(), 'R');
        assert_eq!(OpClass::Pool.letter(), 'P');
        assert_eq!(OpClass::MatMul.letter(), 'M');
        assert_eq!(OpClass::Tanh.letter(), 'T');
        assert_eq!(OpClass::Sigmoid.letter(), 'S');
    }

    #[test]
    fn long_classes() {
        assert!(OpClass::Conv.is_long());
        assert!(OpClass::MatMul.is_long());
        assert!(!OpClass::BiasAdd.is_long());
        assert!(!OpClass::Nop.is_long());
    }

    #[test]
    fn op_name_round_trip() {
        for k in [
            OpKind::Conv2D,
            OpKind::MatMul,
            OpKind::BiasAddGrad,
            OpKind::ApplyAdam,
            OpKind::MaxPoolGrad,
            OpKind::Add,
            OpKind::SoftmaxGrad,
            OpKind::LayerNorm,
            OpKind::DepthwiseConv2dNativeBackpropInput,
        ] {
            assert_eq!(OpKind::from_op_name(k.op_name()), Some(k));
        }
        assert_eq!(OpKind::from_op_name("NotAnOp"), None);
    }

    #[test]
    fn zoo_kinds_map_to_zoo_classes() {
        assert_eq!(OpKind::Add.class(), OpClass::Add);
        assert_eq!(OpKind::Softmax.class(), OpClass::Softmax);
        assert_eq!(OpKind::SoftmaxGrad.class(), OpClass::Softmax);
        assert_eq!(OpKind::LayerNormGrad.class(), OpClass::LayerNorm);
        assert_eq!(
            OpKind::DepthwiseConv2dNativeBackpropFilter.class(),
            OpClass::Depthwise
        );
        // Depthwise kernels are short relative to dense convolutions, so the
        // zoo classes all stay out of Mlong's long-op alphabet.
        for c in [
            OpClass::Add,
            OpClass::Softmax,
            OpClass::LayerNorm,
            OpClass::Depthwise,
        ] {
            assert!(!c.is_long());
        }
    }

    #[test]
    fn class_letters_are_unique() {
        let letters: std::collections::HashSet<char> =
            OpClass::ALL.iter().map(|c| c.letter()).collect();
        assert_eq!(letters.len(), OpClass::ALL.len());
        // 'X' renders unknown fragments in recovered structure strings, so no
        // class may claim it.
        assert!(!letters.contains(&'X'));
    }

    #[test]
    fn apply_of_optimizers() {
        assert_eq!(OpKind::apply_of(Optimizer::Gd), OpKind::ApplyGd);
        assert_eq!(OpKind::apply_of(Optimizer::Adam), OpKind::ApplyAdam);
        assert_eq!(OpKind::apply_of(Optimizer::Adagrad), OpKind::ApplyAdagrad);
    }
}
