//! # `dnn-sim` — TensorFlow-style training substrate for `leaky-dnn`
//!
//! Models the victim's side of the paper: sequential CNN/MLP models
//! ([`model`], with the full Table V / Table IX zoo), the per-iteration op
//! sequence a training step executes ([`planner`]), the lowering of each op
//! to a GPU kernel with a shape-derived footprint ([`kernels`]), the
//! host-side training loop with inter-iteration gaps ([`trainer`]), and the
//! TensorFlow-timeline profiler used to label profiling traces
//! ([`timeline`]).
//!
//! # Examples
//!
//! ```
//! use dnn_sim::model::zoo;
//! use dnn_sim::planner::plan_iteration;
//! use dnn_sim::ops::OpClass;
//!
//! let ops = plan_iteration(&zoo::vgg16(), 64);
//! // §V-E: a VGG16 iteration runs about 130 ops.
//! assert!(ops.len() > 100);
//! assert!(ops.iter().any(|o| o.class() == OpClass::Conv));
//! ```

// Enforced statically here and by leaky-lint rule D5: this crate's
// determinism contract is easier to audit with zero unsafe code.
#![forbid(unsafe_code)]

pub mod kernels;
pub mod layer;
pub mod model;
pub mod ops;
pub mod planner;
pub mod tensor;
pub mod timeline;
pub mod trainer;

pub use kernels::{lower_op, op_tag, parse_op_tag};
pub use layer::{Activation, Layer, Optimizer};
pub use model::{zoo, InputSpec, Model};
pub use ops::{Op, OpClass, OpKind};
pub use planner::{plan_iteration, plan_iteration_mode, ExecutionMode};
pub use tensor::TensorShape;
pub use timeline::chrome_trace_json;
pub use trainer::{TrainingConfig, TrainingSession};
