//! Layers, activations and optimizers — the model-structure vocabulary whose
//! secrecy the paper attacks (§II-A: layer sequence plus, per layer, the
//! activation function, neuron count, filter size, filter count and stride;
//! plus the optimizer as a model hyper-parameter).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Non-linear activation applied after a convolutional or dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit (paper letter `R`).
    Relu,
    /// Hyperbolic tangent (paper letter `T`).
    Tanh,
    /// Logistic sigmoid (paper letter `S`).
    Sigmoid,
}

impl Activation {
    /// The paper's single-letter code (Table V/VII/IX subscripts).
    pub fn letter(self) -> char {
        match self {
            Activation::Relu => 'R',
            Activation::Tanh => 'T',
            Activation::Sigmoid => 'S',
        }
    }

    /// TensorFlow op name of the forward activation.
    pub fn op_name(self) -> &'static str {
        match self {
            Activation::Relu => "Relu",
            Activation::Tanh => "Tanh",
            Activation::Sigmoid => "Sigmoid",
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.op_name())
    }
}

/// Gradient-descent optimizer (the paper profiles Adagrad, Adam and GD).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Optimizer {
    /// Plain gradient descent.
    Gd,
    /// Adam.
    Adam,
    /// Adagrad.
    Adagrad,
}

impl Optimizer {
    /// Display name matching the paper's `Optimizer_X` subscripts.
    pub fn name(self) -> &'static str {
        match self {
            Optimizer::Gd => "GD",
            Optimizer::Adam => "Adam",
            Optimizer::Adagrad => "Adagrad",
        }
    }

    /// Number of auxiliary state tensors per variable (drives the apply-op
    /// traffic signature the attack keys on).
    pub fn state_slots(self) -> usize {
        match self {
            Optimizer::Gd => 0,
            Optimizer::Adam => 2,
            Optimizer::Adagrad => 1,
        }
    }

    /// TensorFlow apply-op name.
    pub fn apply_op_name(self) -> &'static str {
        match self {
            Optimizer::Gd => "ApplyGradientDescent",
            Optimizer::Adam => "ApplyAdam",
            Optimizer::Adagrad => "ApplyAdagrad",
        }
    }

    /// All modelled optimizers.
    pub const ALL: [Optimizer; 3] = [Optimizer::Gd, Optimizer::Adam, Optimizer::Adagrad];
}

impl fmt::Display for Optimizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One layer of a sequential CNN/MLP model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution, SAME padding.
    Conv2D {
        /// Square filter side (1, 3, 5, ... 13 in the paper's sweeps).
        filter_size: usize,
        /// Number of output filters.
        filters: usize,
        /// Spatial stride.
        stride: usize,
        /// Post-conv activation.
        activation: Activation,
    },
    /// Fully-connected layer.
    Dense {
        /// Number of output neurons.
        units: usize,
        /// Post-matmul activation.
        activation: Activation,
    },
    /// 2x2 stride-2 max pooling (the configuration all profiled models use).
    MaxPool,
    /// ResNet-style residual block: two stride-1 SAME convolutions with a
    /// skip connection added back before the final activation (plus a 1x1
    /// projection convolution when the channel count changes).
    Residual {
        /// Square filter side of both convolutions.
        filter_size: usize,
        /// Number of output filters.
        filters: usize,
        /// Activation after each convolution and after the skip-add.
        activation: Activation,
    },
    /// Depthwise-separable convolution: a depthwise pass (one filter per
    /// input channel) followed by a 1x1 pointwise convolution.
    SeparableConv2D {
        /// Square filter side of the depthwise pass.
        filter_size: usize,
        /// Number of output filters of the pointwise pass.
        filters: usize,
        /// Spatial stride of the depthwise pass.
        stride: usize,
        /// Post-pointwise activation.
        activation: Activation,
    },
    /// Transformer-style attention block over the flattened input:
    /// MatMul (scores) - Softmax - MatMul (values) followed by LayerNorm.
    Attention {
        /// Model dimension (per-token width of the projections).
        dim: usize,
    },
}

impl Layer {
    /// Convenience constructor for a ReLU conv layer.
    pub fn conv(filter_size: usize, filters: usize, stride: usize) -> Self {
        Layer::Conv2D {
            filter_size,
            filters,
            stride,
            activation: Activation::Relu,
        }
    }

    /// Convenience constructor for a dense layer.
    pub fn dense(units: usize, activation: Activation) -> Self {
        Layer::Dense { units, activation }
    }

    /// Convenience constructor for a ReLU residual block.
    pub fn residual(filter_size: usize, filters: usize) -> Self {
        Layer::Residual {
            filter_size,
            filters,
            activation: Activation::Relu,
        }
    }

    /// Convenience constructor for a ReLU depthwise-separable convolution.
    pub fn separable(filter_size: usize, filters: usize, stride: usize) -> Self {
        Layer::SeparableConv2D {
            filter_size,
            filters,
            stride,
            activation: Activation::Relu,
        }
    }

    /// Convenience constructor for an attention block.
    pub fn attention(dim: usize) -> Self {
        Layer::Attention { dim }
    }

    /// Whether the layer has trainable parameters.
    pub fn trainable(&self) -> bool {
        !matches!(self, Layer::MaxPool)
    }

    /// The paper's structure-string fragment for this layer, e.g.
    /// `C3,64,1,R`, `M4096,R` or `P`.
    pub fn structure_fragment(&self) -> String {
        match *self {
            Layer::Conv2D {
                filter_size,
                filters,
                stride,
                activation,
            } => format!(
                "C{},{},{},{}",
                filter_size,
                filters,
                stride,
                activation.letter()
            ),
            Layer::Dense { units, activation } => format!("M{},{}", units, activation.letter()),
            Layer::MaxPool => "P".to_owned(),
            Layer::Residual {
                filter_size,
                filters,
                activation,
            } => format!("E{},{},{}", filter_size, filters, activation.letter()),
            Layer::SeparableConv2D {
                filter_size,
                filters,
                stride,
                activation,
            } => format!(
                "D{},{},{},{}",
                filter_size,
                filters,
                stride,
                activation.letter()
            ),
            Layer::Attention { dim } => format!("A{}", dim),
        }
    }

    /// Validates hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Layer::Conv2D {
                filter_size,
                filters,
                stride,
                ..
            } => {
                if filter_size == 0 || filter_size % 2 == 0 {
                    return Err(format!(
                        "filter size must be odd and positive: {}",
                        filter_size
                    ));
                }
                if filters == 0 {
                    return Err("filters must be positive".into());
                }
                if stride == 0 {
                    return Err("stride must be positive".into());
                }
                Ok(())
            }
            Layer::Dense { units, .. } => {
                if units == 0 {
                    Err("units must be positive".into())
                } else {
                    Ok(())
                }
            }
            Layer::MaxPool => Ok(()),
            Layer::Residual {
                filter_size,
                filters,
                ..
            } => {
                if filter_size == 0 || filter_size % 2 == 0 {
                    return Err(format!(
                        "filter size must be odd and positive: {}",
                        filter_size
                    ));
                }
                if filters == 0 {
                    return Err("filters must be positive".into());
                }
                Ok(())
            }
            Layer::SeparableConv2D {
                filter_size,
                filters,
                stride,
                ..
            } => {
                if filter_size == 0 || filter_size % 2 == 0 {
                    return Err(format!(
                        "filter size must be odd and positive: {}",
                        filter_size
                    ));
                }
                if filters == 0 {
                    return Err("filters must be positive".into());
                }
                if stride == 0 {
                    return Err("stride must be positive".into());
                }
                Ok(())
            }
            Layer::Attention { dim } => {
                if dim == 0 {
                    Err("attention dim must be positive".into())
                } else {
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_letters_match_paper() {
        assert_eq!(Activation::Relu.letter(), 'R');
        assert_eq!(Activation::Tanh.letter(), 'T');
        assert_eq!(Activation::Sigmoid.letter(), 'S');
    }

    #[test]
    fn structure_fragments_match_table_v_format() {
        assert_eq!(Layer::conv(11, 96, 4).structure_fragment(), "C11,96,4,R");
        assert_eq!(
            Layer::dense(4096, Activation::Relu).structure_fragment(),
            "M4096,R"
        );
        assert_eq!(Layer::MaxPool.structure_fragment(), "P");
        assert_eq!(
            Layer::dense(128, Activation::Tanh).structure_fragment(),
            "M128,T"
        );
    }

    #[test]
    fn optimizer_state_slots() {
        assert_eq!(Optimizer::Gd.state_slots(), 0);
        assert_eq!(Optimizer::Adagrad.state_slots(), 1);
        assert_eq!(Optimizer::Adam.state_slots(), 2);
    }

    #[test]
    fn zoo_structure_fragments() {
        assert_eq!(Layer::residual(3, 64).structure_fragment(), "E3,64,R");
        assert_eq!(
            Layer::separable(3, 128, 1).structure_fragment(),
            "D3,128,1,R"
        );
        assert_eq!(Layer::attention(256).structure_fragment(), "A256");
    }

    #[test]
    fn zoo_layer_validation() {
        assert!(Layer::residual(3, 64).validate().is_ok());
        assert!(Layer::residual(4, 64).validate().is_err()); // even filter
        assert!(Layer::residual(3, 0).validate().is_err());
        assert!(Layer::separable(5, 128, 2).validate().is_ok());
        assert!(Layer::separable(2, 128, 1).validate().is_err());
        assert!(Layer::separable(3, 0, 1).validate().is_err());
        assert!(Layer::separable(3, 128, 0).validate().is_err());
        assert!(Layer::attention(256).validate().is_ok());
        assert!(Layer::attention(0).validate().is_err());
        assert!(Layer::residual(3, 64).trainable());
        assert!(Layer::separable(3, 64, 1).trainable());
        assert!(Layer::attention(64).trainable());
    }

    #[test]
    fn layer_validation() {
        assert!(Layer::conv(3, 64, 1).validate().is_ok());
        assert!(Layer::conv(4, 64, 1).validate().is_err()); // even filter
        assert!(Layer::conv(3, 0, 1).validate().is_err());
        assert!(Layer::conv(3, 64, 0).validate().is_err());
        assert!(Layer::dense(0, Activation::Relu).validate().is_err());
        assert!(Layer::MaxPool.validate().is_ok());
        assert!(!Layer::MaxPool.trainable());
        assert!(Layer::conv(3, 8, 1).trainable());
    }
}
