//! Tensor shape arithmetic (NHWC activations and flat feature vectors).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Bytes per element (fp32 training, as in the paper's TensorFlow setup).
pub const ELEM_BYTES: f64 = 4.0;

/// Shape of an activation tensor flowing between layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TensorShape {
    /// `batch` x `height` x `width` x `channels` feature maps.
    Nhwc {
        /// Batch size.
        batch: usize,
        /// Spatial height.
        height: usize,
        /// Spatial width.
        width: usize,
        /// Channels.
        channels: usize,
    },
    /// `batch` x `features` flat activations.
    Flat {
        /// Batch size.
        batch: usize,
        /// Feature count.
        features: usize,
    },
}

impl TensorShape {
    /// Creates an NHWC shape.
    pub fn nhwc(batch: usize, height: usize, width: usize, channels: usize) -> Self {
        TensorShape::Nhwc {
            batch,
            height,
            width,
            channels,
        }
    }

    /// Creates a flat shape.
    pub fn flat(batch: usize, features: usize) -> Self {
        TensorShape::Flat { batch, features }
    }

    /// Batch size.
    pub fn batch(&self) -> usize {
        match *self {
            TensorShape::Nhwc { batch, .. } | TensorShape::Flat { batch, .. } => batch,
        }
    }

    /// Total elements.
    pub fn num_elements(&self) -> usize {
        match *self {
            TensorShape::Nhwc {
                batch,
                height,
                width,
                channels,
            } => batch * height * width * channels,
            TensorShape::Flat { batch, features } => batch * features,
        }
    }

    /// Elements per batch item.
    pub fn elements_per_item(&self) -> usize {
        self.num_elements() / self.batch().max(1)
    }

    /// Size in bytes at fp32.
    pub fn bytes(&self) -> f64 {
        self.num_elements() as f64 * ELEM_BYTES
    }

    /// Flattened view (what entering a dense layer does).
    pub fn flattened(&self) -> TensorShape {
        TensorShape::flat(self.batch(), self.elements_per_item())
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TensorShape::Nhwc {
                batch,
                height,
                width,
                channels,
            } => write!(f, "[{}x{}x{}x{}]", batch, height, width, channels),
            TensorShape::Flat { batch, features } => write!(f, "[{}x{}]", batch, features),
        }
    }
}

/// Output spatial size of a SAME-padded convolution/pool with the given
/// stride: `ceil(size / stride)`.
pub fn conv_out_size(size: usize, stride: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    size.div_ceil(stride)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_and_byte_math() {
        let s = TensorShape::nhwc(64, 224, 224, 3);
        assert_eq!(s.num_elements(), 64 * 224 * 224 * 3);
        assert_eq!(s.elements_per_item(), 224 * 224 * 3);
        assert_eq!(s.bytes(), (64 * 224 * 224 * 3) as f64 * 4.0);
        assert_eq!(s.batch(), 64);
    }

    #[test]
    fn flatten() {
        let s = TensorShape::nhwc(8, 7, 7, 512);
        assert_eq!(s.flattened(), TensorShape::flat(8, 7 * 7 * 512));
        let f = TensorShape::flat(8, 100);
        assert_eq!(f.flattened(), f);
    }

    #[test]
    fn same_padding_output() {
        assert_eq!(conv_out_size(224, 1), 224);
        assert_eq!(conv_out_size(224, 2), 112);
        assert_eq!(conv_out_size(7, 2), 4);
        assert_eq!(conv_out_size(1, 4), 1);
    }

    #[test]
    fn display() {
        assert_eq!(TensorShape::nhwc(1, 2, 3, 4).to_string(), "[1x2x3x4]");
        assert_eq!(TensorShape::flat(1, 10).to_string(), "[1x10]");
    }
}
