//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes the ragged-substrate failure modes the paper's
//! pipeline must absorb (§IV–V): counter-read jitter, dropped/duplicated
//! CUPTI samples, failed spy-kernel launches, watchdog-preemption bursts and
//! missed host polls. Every fault is drawn from a **dedicated** RNG stream
//! seeded by `FaultPlan::seed`, so:
//!
//! * the same plan yields a bitwise-identical simulation (and, one layer up,
//!   a bitwise-identical `AttackReport`) — faults are reproducible, never
//!   flaky;
//! * [`FaultPlan::none`] performs **zero** RNG draws, leaving the engine's
//!   main stream untouched — the clean path stays bitwise identical to a
//!   build without fault injection at all.
//!
//! The first four fault kinds are injected by the engine
//! ([`crate::engine::Gpu`]); `poll_miss_prob` is consumed by `cupti-sim`,
//! which models the host-side poll loop.

use serde::{Deserialize, Serialize};

/// Probabilities and magnitudes for the injected fault kinds. All
/// probabilities are per-opportunity (per counter slice, per auto launch,
/// per scheduler slice, per poll window).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Extra multiplicative jitter σ on counter-slice deltas, on top of the
    /// substrate's own `counter_noise` (a misbehaving counter mux).
    pub counter_jitter: f64,
    /// Probability a monitored counter slice is silently dropped before the
    /// CUPTI layer sees it.
    pub drop_slice_prob: f64,
    /// Probability a monitored counter slice is recorded twice (a re-read
    /// race in the counter ring buffer).
    pub dup_slice_prob: f64,
    /// Probability an auto-repeat (spy/hog) launch fails at the driver and
    /// must be retried; see [`RetryPolicy`].
    pub launch_fail_prob: f64,
    /// Probability a granted scheduler slice is forfeited to a
    /// watchdog-preemption burst (display watchdog, ECC scrub, …).
    pub preempt_prob: f64,
    /// Duration of one preemption burst, microseconds.
    pub preempt_us: f64,
    /// Probability the CUPTI host thread misses a poll deadline; the next
    /// poll then covers two windows (consumed by `cupti-sim`).
    pub poll_miss_prob: f64,
    /// Seed of the dedicated fault stream.
    pub seed: u64,
}

impl FaultPlan {
    /// No faults: the clean path. Performs zero fault-RNG draws.
    pub fn none() -> Self {
        FaultPlan {
            counter_jitter: 0.0,
            drop_slice_prob: 0.0,
            dup_slice_prob: 0.0,
            launch_fail_prob: 0.0,
            preempt_prob: 0.0,
            preempt_us: 0.0,
            poll_miss_prob: 0.0,
            seed: 0,
        }
    }

    /// A one-knob plan: every fault kind scaled from a single `rate` in
    /// `[0, 1)`. This is the axis the `fault_sweep` bench bin sweeps.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate must be in [0, 1)");
        FaultPlan {
            counter_jitter: 0.25 * rate,
            drop_slice_prob: 0.5 * rate,
            dup_slice_prob: 0.25 * rate,
            launch_fail_prob: 0.5 * rate,
            preempt_prob: 0.25 * rate,
            preempt_us: 400.0,
            poll_miss_prob: 0.5 * rate,
            seed,
        }
    }

    /// Same plan with another fault-stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether any fault kind can fire. The engine consults this before
    /// every fault draw so an inactive plan consumes no randomness.
    pub fn is_active(&self) -> bool {
        self.counter_jitter > 0.0
            || self.drop_slice_prob > 0.0
            || self.dup_slice_prob > 0.0
            || self.launch_fail_prob > 0.0
            || self.preempt_prob > 0.0
            || self.poll_miss_prob > 0.0
    }

    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("drop_slice_prob", self.drop_slice_prob),
            ("dup_slice_prob", self.dup_slice_prob),
            ("launch_fail_prob", self.launch_fail_prob),
            ("preempt_prob", self.preempt_prob),
            ("poll_miss_prob", self.poll_miss_prob),
        ] {
            if !(0.0..1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1)"));
            }
        }
        if !(0.0..1.0).contains(&self.counter_jitter) {
            return Err("counter_jitter must be in [0, 1)".into());
        }
        if !self.preempt_us.is_finite() || self.preempt_us < 0.0 {
            return Err("preempt_us must be finite and non-negative".into());
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Bounded-exponential retry backoff for failed auto-repeat launches. With
/// no policy installed the engine falls back to the plain relaunch latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Backoff before the first retry, microseconds.
    pub base_us: f64,
    /// Multiplicative growth per consecutive failure.
    pub factor: f64,
    /// Upper bound on the backoff, microseconds.
    pub cap_us: f64,
}

impl RetryPolicy {
    /// Fixed-delay retries (no growth).
    pub fn fixed(us: f64) -> Self {
        RetryPolicy {
            base_us: us,
            factor: 1.0,
            cap_us: us,
        }
    }

    /// Backoff after `consecutive_failures` (>= 1) failed launches:
    /// `min(base * factor^(n-1), cap)`.
    pub fn backoff_us(&self, consecutive_failures: u32) -> f64 {
        let n = consecutive_failures.max(1) - 1;
        // Iterative: powi on an i32 exponent would overflow the cap's
        // purpose long before n grows large.
        let mut backoff = self.base_us;
        for _ in 0..n {
            backoff *= self.factor;
            if backoff >= self.cap_us {
                return self.cap_us;
            }
        }
        backoff.min(self.cap_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_valid() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert!(p.validate().is_ok());
        assert_eq!(p, FaultPlan::default());
    }

    #[test]
    fn uniform_scales_with_rate() {
        let lo = FaultPlan::uniform(0.1, 1);
        let hi = FaultPlan::uniform(0.4, 1);
        assert!(hi.drop_slice_prob > lo.drop_slice_prob);
        assert!(hi.launch_fail_prob > lo.launch_fail_prob);
        assert!(lo.is_active() && hi.is_active());
        assert!(lo.validate().is_ok() && hi.validate().is_ok());
        assert!(!FaultPlan::uniform(0.0, 1).is_active());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut p = FaultPlan::none();
        p.drop_slice_prob = 1.0;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.counter_jitter = -0.1;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.preempt_us = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let r = RetryPolicy {
            base_us: 30.0,
            factor: 2.0,
            cap_us: 500.0,
        };
        assert_eq!(r.backoff_us(1), 30.0);
        assert_eq!(r.backoff_us(2), 60.0);
        assert_eq!(r.backoff_us(3), 120.0);
        assert_eq!(r.backoff_us(10), 500.0, "capped");
        assert_eq!(r.backoff_us(1000), 500.0, "no overflow at large counts");
        assert_eq!(RetryPolicy::fixed(25.0).backoff_us(7), 25.0);
    }
}
