//! CUDA kernel descriptions: launch geometry (grid/block) plus an abstract
//! memory/compute footprint from which the engine derives durations, cache
//! pressure and counter activity.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::config::GpuConfig;
use crate::sm::Occupancy;

/// Abstract resource footprint of one kernel launch.
///
/// Byte quantities are totals for the whole launch:
///
/// * `read_bytes` — compulsory/streaming reads that always reach DRAM;
/// * `write_bytes` — bytes written (they create *dirty* L2 occupancy and only
///   reach DRAM via eviction or idle drain — this is the write-back channel
///   the spy observes);
/// * `tex_read_bytes` — reads routed through the texture units (counted by
///   `texX_cache_sector_queries`);
/// * `working_set` — global-memory reuse set the kernel benefits from keeping
///   resident in L2; lost residency must be re-fetched after a context switch
///   (the *context-switching penalty*);
/// * `tex_working_set` — texture-tagged reuse set (convolutions are tex-heavy,
///   which is what distinguishes them from GEMM in the side-channel).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelFootprint {
    /// Total floating-point operations.
    pub flops: f64,
    /// Streaming DRAM read bytes.
    pub read_bytes: f64,
    /// Bytes written (dirty-generation).
    pub write_bytes: f64,
    /// Texture-path streaming read bytes.
    pub tex_read_bytes: f64,
    /// Global-memory L2 reuse set, bytes.
    pub working_set: f64,
    /// Texture-tagged L2 reuse set, bytes.
    pub tex_working_set: f64,
}

impl KernelFootprint {
    /// A footprint with everything zero (a no-op kernel).
    pub fn empty() -> Self {
        KernelFootprint {
            flops: 0.0,
            read_bytes: 0.0,
            write_bytes: 0.0,
            tex_read_bytes: 0.0,
            working_set: 0.0,
            tex_working_set: 0.0,
        }
    }

    /// Total bytes moved while streaming (excludes refetch penalties).
    pub fn stream_bytes(&self) -> f64 {
        self.read_bytes + self.write_bytes + self.tex_read_bytes
    }

    /// Total reuse set (global + texture).
    pub fn total_working_set(&self) -> f64 {
        self.working_set + self.tex_working_set
    }

    /// Checks all quantities are finite and non-negative.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("flops", self.flops),
            ("read_bytes", self.read_bytes),
            ("write_bytes", self.write_bytes),
            ("tex_read_bytes", self.tex_read_bytes),
            ("working_set", self.working_set),
            ("tex_working_set", self.tex_working_set),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("footprint field {} invalid: {}", name, v));
            }
        }
        Ok(())
    }
}

/// A kernel ready to be enqueued on a context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Kernel name (e.g. a cuDNN entry point). Interned: cloning a
    /// description (the engine clones one per auto-repeat launch and per
    /// completed-launch record) bumps a refcount instead of copying a heap
    /// string.
    pub name: Arc<str>,
    /// Ground-truth operation tag attached by the framework layer (e.g.
    /// `"Conv2D"`); this is what the TensorFlow-timeline profiler exposes and
    /// what the attack's training phase aligns against.
    pub op_tag: Option<Arc<str>>,
    /// Grid size in blocks.
    pub blocks: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Resource footprint.
    pub footprint: KernelFootprint,
}

impl KernelDesc {
    /// Creates a kernel description.
    ///
    /// # Panics
    ///
    /// Panics if the launch geometry is zero or the footprint is invalid.
    pub fn new(
        name: impl Into<Arc<str>>,
        blocks: u32,
        threads_per_block: u32,
        footprint: KernelFootprint,
    ) -> Self {
        assert!(blocks > 0, "kernel needs at least one block");
        assert!(
            threads_per_block > 0,
            "kernel needs at least one thread per block"
        );
        footprint.validate().expect("valid footprint");
        KernelDesc {
            name: name.into(),
            op_tag: None,
            blocks,
            threads_per_block,
            footprint,
        }
    }

    /// Attaches a ground-truth operation tag (builder style).
    pub fn with_tag(mut self, tag: impl Into<Arc<str>>) -> Self {
        self.op_tag = Some(tag.into());
        self
    }

    /// SM occupancy of this launch on the given device.
    pub fn occupancy(&self, config: &GpuConfig) -> Occupancy {
        Occupancy::of_launch(self.blocks, self.threads_per_block, config)
    }

    /// Execution time in microseconds when running alone with a warm cache:
    /// the max of the compute-bound and memory-bound estimates.
    pub fn nominal_duration_us(&self, config: &GpuConfig) -> f64 {
        let occ = self.occupancy(config).fraction().max(1e-3);
        let compute_us = self.footprint.flops / (config.compute_throughput * occ);
        let memory_us = self.footprint.stream_bytes() / config.mem_bandwidth;
        compute_us.max(memory_us).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(flops: f64, bytes: f64) -> KernelFootprint {
        KernelFootprint {
            flops,
            read_bytes: bytes,
            write_bytes: 0.0,
            tex_read_bytes: 0.0,
            working_set: 0.0,
            tex_working_set: 0.0,
        }
    }

    #[test]
    fn duration_is_max_of_compute_and_memory() {
        let cfg = GpuConfig::gtx_1080_ti();
        // Fully occupying launch.
        let blocks = cfg.num_sms as u32 * 2;
        let tpb = 1024;
        let compute_bound =
            KernelDesc::new("c", blocks, tpb, fp(cfg.compute_throughput * 100.0, 1.0));
        let memory_bound = KernelDesc::new("m", blocks, tpb, fp(1.0, cfg.mem_bandwidth * 100.0));
        assert!((compute_bound.nominal_duration_us(&cfg) - 100.0).abs() < 5.0);
        assert!((memory_bound.nominal_duration_us(&cfg) - 100.0).abs() < 5.0);
    }

    #[test]
    fn low_occupancy_slows_compute_bound_kernels() {
        let cfg = GpuConfig::gtx_1080_ti();
        let full = KernelDesc::new("f", cfg.num_sms as u32 * 2, 1024, fp(1e9, 0.0));
        let tiny = KernelDesc::new("t", 4, 32, fp(1e9, 0.0));
        assert!(tiny.nominal_duration_us(&cfg) > 10.0 * full.nominal_duration_us(&cfg));
    }

    #[test]
    fn duration_has_floor() {
        let cfg = GpuConfig::gtx_1080_ti();
        let k = KernelDesc::new("nop", 1, 32, KernelFootprint::empty());
        assert!(k.nominal_duration_us(&cfg) >= 1.0);
    }

    #[test]
    fn tag_builder() {
        let k = KernelDesc::new("conv", 28, 256, KernelFootprint::empty()).with_tag("Conv2D");
        assert_eq!(k.op_tag.as_deref(), Some("Conv2D"));
    }

    #[test]
    fn footprint_helpers() {
        let f = KernelFootprint {
            flops: 1.0,
            read_bytes: 10.0,
            write_bytes: 20.0,
            tex_read_bytes: 5.0,
            working_set: 100.0,
            tex_working_set: 50.0,
        };
        assert_eq!(f.stream_bytes(), 35.0);
        assert_eq!(f.total_working_set(), 150.0);
        assert!(f.validate().is_ok());
        let mut bad = f;
        bad.flops = f64::NAN;
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_panics() {
        let _ = KernelDesc::new("x", 0, 32, KernelFootprint::empty());
    }
}
