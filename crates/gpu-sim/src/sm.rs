//! Streaming-multiprocessor occupancy model.
//!
//! CUDA semantics reproduced here (paper §II-B): threads are grouped into
//! 32-wide warps; all threads of a block execute on one SM; a launch's
//! occupancy is the fraction of the device's resident-thread capacity it can
//! keep busy. The time-sliced scheduler weights slice lengths by occupancy,
//! which is why the paper's slow-down attack saturates once the spy kernels
//! reach full occupancy (§IV: "higher numbers of kernels/blocks/threads are
//! not always more effective").

use serde::{Deserialize, Serialize};

use crate::config::GpuConfig;

/// Threads per warp on every Nvidia architecture we model.
pub const WARP_SIZE: u32 = 32;

/// Occupancy of one kernel launch on a device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    resident_threads: u32,
    device_capacity: u32,
    sms_used: u32,
}

impl Occupancy {
    /// Computes the occupancy of a `blocks` x `threads_per_block` launch.
    pub fn of_launch(blocks: u32, threads_per_block: u32, config: &GpuConfig) -> Self {
        let capacity = config.max_resident_threads();
        // Each block is padded to whole warps (CUDA allocates per warp).
        let warps_per_block = threads_per_block.div_ceil(WARP_SIZE);
        let padded_threads_per_block = warps_per_block * WARP_SIZE;
        let requested = (blocks as u64) * (padded_threads_per_block as u64);
        let resident = requested.min(capacity as u64) as u32;
        // Blocks land on distinct SMs round-robin until all SMs are covered.
        let sms_used = blocks.min(config.num_sms as u32);
        Occupancy {
            resident_threads: resident,
            device_capacity: capacity,
            sms_used,
        }
    }

    /// Fraction of device thread capacity occupied, in `(0, 1]`.
    pub fn fraction(&self) -> f64 {
        (self.resident_threads as f64 / self.device_capacity as f64).clamp(0.0, 1.0)
    }

    /// Number of SMs that receive at least one block.
    pub fn sms_used(&self) -> u32 {
        self.sms_used
    }

    /// Resident threads (warp-padded, capped at device capacity).
    pub fn resident_threads(&self) -> u32 {
        self.resident_threads
    }

    /// Number of resident warps.
    pub fn resident_warps(&self) -> u32 {
        self.resident_threads / WARP_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spy_launch_uses_four_sms() {
        // Paper §III-C: the spy runs 4 blocks x 32 threads, taking 4 SMs.
        let cfg = GpuConfig::gtx_1080_ti();
        let occ = Occupancy::of_launch(4, 32, &cfg);
        assert_eq!(occ.sms_used(), 4);
        assert_eq!(occ.resident_threads(), 128);
        assert!(occ.fraction() < 0.01);
    }

    #[test]
    fn full_launch_saturates() {
        let cfg = GpuConfig::gtx_1080_ti();
        let occ = Occupancy::of_launch(10_000, 1024, &cfg);
        assert_eq!(occ.fraction(), 1.0);
        assert_eq!(occ.sms_used(), cfg.num_sms as u32);
    }

    #[test]
    fn threads_are_warp_padded() {
        let cfg = GpuConfig::gtx_1080_ti();
        // 33 threads occupy 2 warps = 64 thread slots.
        let occ = Occupancy::of_launch(1, 33, &cfg);
        assert_eq!(occ.resident_threads(), 64);
        assert_eq!(occ.resident_warps(), 2);
    }

    #[test]
    fn occupancy_monotone_in_blocks() {
        let cfg = GpuConfig::gtx_1080_ti();
        let mut prev = 0.0;
        for blocks in [1u32, 2, 4, 8, 16, 32, 64, 128] {
            let f = Occupancy::of_launch(blocks, 128, &cfg).fraction();
            assert!(f >= prev, "occupancy decreased at {} blocks", blocks);
            prev = f;
        }
    }

    #[test]
    fn slowdown_attack_group_geometry_saturates() {
        // Paper §IV: groups G_i use 4*2^i blocks and 4*2^i*32 threads total;
        // the slow-down effect saturates — mirrored here by occupancy
        // reaching 1.0 and staying there.
        let cfg = GpuConfig::gtx_1080_ti();
        let occs: Vec<f64> = (0..8)
            .map(|i| {
                let blocks = 4 * (1u32 << i);
                Occupancy::of_launch(blocks, 32 * blocks.min(1024), &cfg).fraction()
            })
            .collect();
        assert!(occs.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        assert_eq!(*occs.last().unwrap(), 1.0);
    }
}
