//! GPU hardware configuration. Defaults approximate the paper's testbed
//! (Nvidia GeForce GTX 1080 Ti, Pascal): 28 SMs, a ~2.75 MiB sliced L2,
//! two DRAM sub-partitions, 32-byte sectors.
//!
//! All times are in abstract microseconds; all capacities in bytes.

use serde::{Deserialize, Serialize};

use crate::fault::FaultPlan;

/// Static hardware + scheduler parameters for a simulated GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Human-readable device name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Maximum resident threads per SM (occupancy denominator).
    pub threads_per_sm: u32,
    /// Total L2 capacity in bytes.
    pub l2_bytes: f64,
    /// Number of L2 slices / DRAM sub-partitions (counters are reported per
    /// sub-partition, e.g. `fb_subp0_read_sectors`).
    pub subpartitions: usize,
    /// Sector size in bytes (CUPTI sector counters count these).
    pub sector_bytes: f64,
    /// Aggregate DRAM bandwidth, bytes per microsecond.
    pub mem_bandwidth: f64,
    /// Aggregate compute throughput, FLOPs per microsecond (whole device).
    pub compute_throughput: f64,
    /// Nominal time-slice length in microseconds for the time-sliced
    /// (MPS-off) scheduler.
    pub time_slice_us: f64,
    /// Relative jitter applied to each slice (uniform ±fraction).
    pub slice_jitter: f64,
    /// Context-switch overhead per preemption, microseconds.
    pub context_switch_us: f64,
    /// Host-side relaunch latency for auto-repeating kernels, microseconds.
    pub relaunch_latency_us: f64,
    /// Multiplicative log-normal-ish noise σ applied to counter deltas.
    pub counter_noise: f64,
    /// Idle write-drain rate, bytes per microsecond: when a context is the
    /// only runnable one, the memory subsystem opportunistically writes its
    /// dirty L2 sectors back to DRAM (see DESIGN.md §3, mechanism for the
    /// paper's Table II `NOP` row).
    pub idle_drain_rate: f64,
    /// RNG seed for all stochastic components of the engine.
    pub seed: u64,
    /// Deterministic fault injection (see [`crate::fault`]). The plan rides
    /// in the config so it participates in trace-cache keys and so one value
    /// fully determines a run; [`FaultPlan::none`] is the clean path and
    /// draws nothing from the dedicated fault stream.
    pub faults: FaultPlan,
}

impl GpuConfig {
    /// Configuration approximating the paper's GTX 1080 Ti testbed.
    pub fn gtx_1080_ti() -> Self {
        GpuConfig {
            name: "GeForce GTX 1080 Ti (simulated)".to_owned(),
            num_sms: 28,
            threads_per_sm: 2048,
            l2_bytes: 2816.0 * 1024.0,
            subpartitions: 2,
            sector_bytes: 32.0,
            // ~484 GB/s peak at ~60% achievable ≈ 290e3 bytes/us.
            mem_bandwidth: 290_000.0,
            // ~11.3 TFLOP/s peak at ~60% achievable ≈ 7e6 FLOP/us; calibrated
            // so a batch-64 VGG16 training iteration lands near the paper's
            // 431 ms baseline (§V-F).
            compute_throughput: 7_000_000.0,
            time_slice_us: 150.0,
            slice_jitter: 0.06,
            context_switch_us: 25.0,
            relaunch_latency_us: 30.0,
            counter_noise: 0.05,
            idle_drain_rate: 4_000.0,
            seed: 0x0010_8071,
            faults: FaultPlan::none(),
        }
    }

    /// Returns the same configuration with another RNG seed (useful for
    /// repeated trials / noise studies).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the same configuration with the given fault plan installed.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_sms == 0 {
            return Err("num_sms must be positive".into());
        }
        if self.subpartitions == 0 {
            return Err("subpartitions must be positive".into());
        }
        if not_positive(self.l2_bytes) {
            return Err("l2_bytes must be positive".into());
        }
        if not_positive(self.sector_bytes) {
            return Err("sector_bytes must be positive".into());
        }
        if not_positive(self.mem_bandwidth) || not_positive(self.compute_throughput) {
            return Err("bandwidth/throughput must be positive".into());
        }
        if not_positive(self.time_slice_us) {
            return Err("time_slice_us must be positive".into());
        }
        if !(0.0..1.0).contains(&self.slice_jitter) {
            return Err("slice_jitter must be in [0, 1)".into());
        }
        if self.counter_noise < 0.0 || self.counter_noise >= 1.0 {
            return Err("counter_noise must be in [0, 1)".into());
        }
        self.faults.validate()?;
        Ok(())
    }

    /// Maximum resident threads on the whole device.
    pub fn max_resident_threads(&self) -> u32 {
        self.num_sms as u32 * self.threads_per_sm
    }
}

/// `true` unless `x` compares strictly greater than zero (NaN included —
/// the point of spelling this with `partial_cmp` in the validators).
fn not_positive(x: f64) -> bool {
    x.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::gtx_1080_ti()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(GpuConfig::default().validate().is_ok());
        assert_eq!(GpuConfig::gtx_1080_ti().num_sms, 28);
        assert_eq!(GpuConfig::gtx_1080_ti().subpartitions, 2);
    }

    #[test]
    fn with_seed_only_changes_seed() {
        let a = GpuConfig::gtx_1080_ti();
        let b = a.clone().with_seed(99);
        assert_eq!(a.num_sms, b.num_sms);
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = GpuConfig::gtx_1080_ti();
        c.num_sms = 0;
        assert!(c.validate().is_err());

        let mut c = GpuConfig::gtx_1080_ti();
        c.l2_bytes = 0.0;
        assert!(c.validate().is_err());

        let mut c = GpuConfig::gtx_1080_ti();
        c.slice_jitter = 1.5;
        assert!(c.validate().is_err());

        let mut c = GpuConfig::gtx_1080_ti();
        c.counter_noise = 1.0;
        assert!(c.validate().is_err());

        let mut c = GpuConfig::gtx_1080_ti();
        c.faults.launch_fail_prob = 2.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_faults_are_none() {
        assert!(!GpuConfig::gtx_1080_ti().faults.is_active());
        let c = GpuConfig::gtx_1080_ti().with_faults(FaultPlan::uniform(0.2, 7));
        assert!(c.faults.is_active());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn max_resident_threads() {
        let c = GpuConfig::gtx_1080_ti();
        assert_eq!(c.max_resident_threads(), 28 * 2048);
    }
}
