//! Execution timelines: per-launch kernel records (the ground truth the
//! TensorFlow-style profiler exposes) and per-slice counter deltas (what the
//! CUPTI layer samples).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::counters::CounterValues;
use crate::engine::ContextId;

/// One completed kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRecord {
    /// Owning context.
    pub ctx: ContextId,
    /// Kernel name, shared with the [`crate::KernelDesc`] it came from.
    pub name: Arc<str>,
    /// Ground-truth op tag, if the framework attached one.
    pub op_tag: Option<Arc<str>>,
    /// Launch start, microseconds.
    pub start_us: f64,
    /// Completion, microseconds.
    pub end_us: f64,
}

impl KernelRecord {
    /// Wall-clock duration of the launch.
    pub fn duration_us(&self) -> f64 {
        self.end_us - self.start_us
    }

    /// Overlap in microseconds with the window `[t0, t1]`.
    pub fn overlap_us(&self, t0: f64, t1: f64) -> f64 {
        (self.end_us.min(t1) - self.start_us.max(t0)).max(0.0)
    }
}

/// Counter activity of one context during one scheduler slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSlice {
    /// Context whose activity this is.
    pub ctx: ContextId,
    /// Slice start, microseconds.
    pub start_us: f64,
    /// Slice end, microseconds.
    pub end_us: f64,
    /// Counter deltas accumulated during the slice.
    pub delta: CounterValues,
}

/// Finds the op tag with the largest execution overlap inside `[t0, t1]`
/// among `records` (which must be sorted by `start_us`, as the engine emits
/// them). Returns `None` when nothing overlaps.
///
/// This is the labeling rule of the paper's §V-A: "we choose the TensorFlow
/// label having the largest overlap with the spy kernel".
///
/// Accumulation runs over a `BTreeMap` so that when two tags tie exactly on
/// overlap the winner is the lexicographically last one — a `HashMap` here
/// would break ties by per-process hash order, silently changing training
/// labels between runs (leaky-lint rule D2).
pub fn dominant_tag(records: &[KernelRecord], t0: f64, t1: f64) -> Option<&str> {
    use std::collections::BTreeMap;
    let start = records.partition_point(|r| r.end_us <= t0);
    let mut weights: BTreeMap<&str, f64> = BTreeMap::new();
    for r in &records[start..] {
        if r.start_us >= t1 {
            break;
        }
        if let Some(tag) = r.op_tag.as_deref() {
            *weights.entry(tag).or_insert(0.0) += r.overlap_us(t0, t1);
        }
    }
    weights
        .into_iter()
        .filter(|(_, w)| *w > 0.0)
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite overlap"))
        .map(|(tag, _)| tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tag: &str, start: f64, end: f64) -> KernelRecord {
        KernelRecord {
            ctx: ContextId::test_value(0),
            name: tag.into(),
            op_tag: Some(tag.into()),
            start_us: start,
            end_us: end,
        }
    }

    #[test]
    fn overlap_math() {
        let r = rec("a", 10.0, 20.0);
        assert_eq!(r.duration_us(), 10.0);
        assert_eq!(r.overlap_us(0.0, 15.0), 5.0);
        assert_eq!(r.overlap_us(12.0, 18.0), 6.0);
        assert_eq!(r.overlap_us(30.0, 40.0), 0.0);
    }

    #[test]
    fn dominant_tag_picks_largest_overlap() {
        let records = vec![
            rec("Conv2D", 0.0, 8.0),
            rec("BiasAdd", 8.0, 10.0),
            rec("ReLU", 10.0, 11.0),
        ];
        assert_eq!(dominant_tag(&records, 0.0, 11.0), Some("Conv2D"));
        assert_eq!(dominant_tag(&records, 8.5, 10.4), Some("BiasAdd"));
        assert_eq!(dominant_tag(&records, 20.0, 30.0), None);
    }

    #[test]
    fn dominant_tag_accumulates_split_ops() {
        // A preempted op appears as several records; overlaps accumulate.
        let records = vec![
            rec("MatMul", 0.0, 3.0),
            rec("Conv2D", 3.0, 7.0),
            rec("MatMul", 7.0, 10.0),
        ];
        assert_eq!(dominant_tag(&records, 0.0, 10.0), Some("MatMul"));
    }

    #[test]
    fn dominant_tag_breaks_exact_ties_deterministically() {
        // Two tags with bitwise-equal overlap: the lexicographically last
        // one must win, on every run — this is what moving off HashMap buys.
        let records = vec![
            rec("BiasAdd", 0.0, 5.0),
            rec("Conv2D", 5.0, 10.0),
            rec("Aardvark", 10.0, 15.0),
        ];
        for _ in 0..32 {
            assert_eq!(dominant_tag(&records, 0.0, 15.0), Some("Conv2D"));
        }
    }

    #[test]
    fn untagged_records_are_ignored() {
        let mut r = rec("spy", 0.0, 10.0);
        r.op_tag = None;
        assert_eq!(dominant_tag(&[r], 0.0, 10.0), None);
    }
}
