//! Hardware performance counters.
//!
//! The ten counters here are exactly the ones the paper selects (Table IV):
//! texture cache sector queries (2), DRAM read/write sectors per
//! sub-partition (4), and L2 read/write sector misses per slice (4).
//! Counters accumulate per CUDA context; the CUPTI layer reads deltas.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// Identifier for one hardware event counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CounterId {
    Tex0CacheSectorQueries,
    Tex1CacheSectorQueries,
    FbSubp0ReadSectors,
    FbSubp1ReadSectors,
    FbSubp0WriteSectors,
    FbSubp1WriteSectors,
    L2Subp0ReadSectorMisses,
    L2Subp1ReadSectorMisses,
    L2Subp0WriteSectorMisses,
    L2Subp1WriteSectorMisses,
}

impl CounterId {
    /// All counters in canonical (feature-vector) order.
    pub const ALL: [CounterId; 10] = [
        CounterId::Tex0CacheSectorQueries,
        CounterId::Tex1CacheSectorQueries,
        CounterId::FbSubp0ReadSectors,
        CounterId::FbSubp1ReadSectors,
        CounterId::FbSubp0WriteSectors,
        CounterId::FbSubp1WriteSectors,
        CounterId::L2Subp0ReadSectorMisses,
        CounterId::L2Subp1ReadSectorMisses,
        CounterId::L2Subp0WriteSectorMisses,
        CounterId::L2Subp1WriteSectorMisses,
    ];

    /// The CUPTI event name, as it appears in the Nvidia documentation.
    pub fn event_name(self) -> &'static str {
        match self {
            CounterId::Tex0CacheSectorQueries => "tex0_cache_sector_queries",
            CounterId::Tex1CacheSectorQueries => "tex1_cache_sector_queries",
            CounterId::FbSubp0ReadSectors => "fb_subp0_read_sectors",
            CounterId::FbSubp1ReadSectors => "fb_subp1_read_sectors",
            CounterId::FbSubp0WriteSectors => "fb_subp0_write_sectors",
            CounterId::FbSubp1WriteSectors => "fb_subp1_write_sectors",
            CounterId::L2Subp0ReadSectorMisses => "l2_subp0_read_sector_misses",
            CounterId::L2Subp1ReadSectorMisses => "l2_subp1_read_sector_misses",
            CounterId::L2Subp0WriteSectorMisses => "l2_subp0_write_sector_misses",
            CounterId::L2Subp1WriteSectorMisses => "l2_subp1_write_sector_misses",
        }
    }

    /// Position in [`CounterId::ALL`] / feature vectors.
    pub fn index(self) -> usize {
        CounterId::ALL
            .iter()
            .position(|&c| c == self)
            .expect("counter in ALL")
    }
}

impl fmt::Display for CounterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.event_name())
    }
}

/// A full vector of counter values (fractional internally; hardware exposes
/// integers — use [`CounterValues::rounded`]).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CounterValues {
    values: [f64; 10],
}

impl CounterValues {
    /// All-zero counters.
    pub fn zero() -> Self {
        CounterValues::default()
    }

    /// Reads one counter.
    pub fn get(&self, id: CounterId) -> f64 {
        self.values[id.index()]
    }

    /// Adds to one counter.
    pub fn add_to(&mut self, id: CounterId, amount: f64) {
        self.values[id.index()] += amount;
    }

    /// The raw vector in [`CounterId::ALL`] order.
    pub fn as_array(&self) -> [f64; 10] {
        self.values
    }

    /// Integer-rounded copy (what the hardware would report).
    pub fn rounded(&self) -> [u64; 10] {
        let mut out = [0u64; 10];
        for (o, v) in out.iter_mut().zip(self.values.iter()) {
            *o = v.max(0.0).round() as u64;
        }
        out
    }

    /// Feature vector as `f32` in canonical order.
    pub fn to_features(self) -> Vec<f32> {
        self.values.iter().map(|&v| v as f32).collect()
    }

    /// Sum of all ten counters (a quick activity magnitude).
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Total DRAM read sectors across sub-partitions.
    pub fn dram_reads(&self) -> f64 {
        self.get(CounterId::FbSubp0ReadSectors) + self.get(CounterId::FbSubp1ReadSectors)
    }

    /// Total DRAM write sectors across sub-partitions.
    pub fn dram_writes(&self) -> f64 {
        self.get(CounterId::FbSubp0WriteSectors) + self.get(CounterId::FbSubp1WriteSectors)
    }

    /// Total texture cache sector queries.
    pub fn tex_queries(&self) -> f64 {
        self.get(CounterId::Tex0CacheSectorQueries) + self.get(CounterId::Tex1CacheSectorQueries)
    }
}

impl Add for CounterValues {
    type Output = CounterValues;

    fn add(mut self, rhs: CounterValues) -> CounterValues {
        self += rhs;
        self
    }
}

impl AddAssign for CounterValues {
    fn add_assign(&mut self, rhs: CounterValues) {
        for (a, b) in self.values.iter_mut().zip(rhs.values.iter()) {
            *a += b;
        }
    }
}

impl Sub for CounterValues {
    type Output = CounterValues;

    fn sub(mut self, rhs: CounterValues) -> CounterValues {
        for (a, b) in self.values.iter_mut().zip(rhs.values.iter()) {
            *a -= b;
        }
        self
    }
}

/// Helper that splits an event count across the two sub-partitions with a
/// stochastic imbalance, mimicking address-hash interleaving.
#[derive(Debug, Clone, Copy)]
pub struct SubpartitionSplit {
    /// Fraction routed to sub-partition 0 (the rest goes to 1).
    pub frac0: f64,
}

impl SubpartitionSplit {
    /// A split with the given sub-partition-0 fraction, clamped to `[0, 1]`.
    pub fn new(frac0: f64) -> Self {
        SubpartitionSplit {
            frac0: frac0.clamp(0.0, 1.0),
        }
    }

    /// Splits `total` into `(part0, part1)`.
    pub fn split(&self, total: f64) -> (f64, f64) {
        let p0 = total * self.frac0;
        (p0, total - p0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_ids_have_unique_names_and_indices() {
        let names: std::collections::HashSet<&str> =
            CounterId::ALL.iter().map(|c| c.event_name()).collect();
        assert_eq!(names.len(), 10);
        for (i, c) in CounterId::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn arithmetic_and_accessors() {
        let mut a = CounterValues::zero();
        a.add_to(CounterId::FbSubp0ReadSectors, 10.0);
        a.add_to(CounterId::FbSubp1ReadSectors, 5.0);
        a.add_to(CounterId::FbSubp0WriteSectors, 2.0);
        a.add_to(CounterId::Tex0CacheSectorQueries, 3.0);
        assert_eq!(a.dram_reads(), 15.0);
        assert_eq!(a.dram_writes(), 2.0);
        assert_eq!(a.tex_queries(), 3.0);
        assert_eq!(a.total(), 20.0);

        let b = a + a;
        assert_eq!(b.dram_reads(), 30.0);
        let c = b - a;
        assert_eq!(c.dram_reads(), 15.0);
    }

    #[test]
    fn rounding_clamps_negative_noise() {
        let mut a = CounterValues::zero();
        a.add_to(CounterId::Tex0CacheSectorQueries, -0.4);
        a.add_to(CounterId::Tex1CacheSectorQueries, 2.6);
        let r = a.rounded();
        assert_eq!(r[0], 0);
        assert_eq!(r[1], 3);
    }

    #[test]
    fn feature_vector_order_is_canonical() {
        let mut a = CounterValues::zero();
        a.add_to(CounterId::L2Subp1WriteSectorMisses, 7.0);
        let f = a.to_features();
        assert_eq!(f.len(), 10);
        assert_eq!(f[9], 7.0);
        assert!(f[..9].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn subpartition_split_conserves_total() {
        let s = SubpartitionSplit::new(0.6);
        let (a, b) = s.split(100.0);
        assert!((a + b - 100.0).abs() < 1e-9);
        assert!((a - 60.0).abs() < 1e-9);
        // Clamping.
        assert_eq!(SubpartitionSplit::new(1.7).frac0, 1.0);
    }
}
