//! # `gpu-sim` — discrete-event GPU substrate for `leaky-dnn`
//!
//! A behavioural model of the hardware the paper's attack runs on (an Nvidia
//! GTX 1080 Ti): streaming multiprocessors, CUDA contexts with FIFO kernel
//! streams, a **time-sliced scheduler** (MPS off) and an **MPS leftover
//! scheduler**, a sliced L2 occupancy model with cross-context eviction, DRAM
//! sub-partitions, a texture path and the ten per-context performance
//! counters the paper selects (Table IV).
//!
//! The model's purpose is to reproduce the *context-switching side-channel*:
//! when a victim kernel runs between two slices of a spy kernel, it evicts
//! the spy's L2 residency; the spy then pays re-fetch reads and write-backs
//! that are measurable through its own counters. See `DESIGN.md` §3 for the
//! exact mechanisms and their mapping to the paper's observations.
//!
//! # Examples
//!
//! ```
//! use gpu_sim::{Gpu, GpuConfig, KernelDesc, KernelFootprint, SchedulerMode};
//!
//! let mut gpu = Gpu::new(GpuConfig::gtx_1080_ti(), SchedulerMode::TimeSliced);
//! let victim = gpu.add_context("victim");
//! let fp = KernelFootprint {
//!     flops: 1e6,
//!     read_bytes: 1e5,
//!     write_bytes: 1e4,
//!     tex_read_bytes: 0.0,
//!     working_set: 1e5,
//!     tex_working_set: 0.0,
//! };
//! gpu.enqueue(victim, KernelDesc::new("MatMul", 56, 1024, fp).with_tag("MatMul"));
//! gpu.run_until_queues_drain();
//! assert_eq!(gpu.kernels_completed(victim), 1);
//! ```

// Enforced statically here and by leaky-lint rule D5: this crate's
// determinism contract is easier to audit with zero unsafe code.
#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod counters;
pub mod engine;
pub mod fault;
pub mod kernel;
pub mod sm;
pub mod timeline;
pub mod watchdog;

pub use cache::{CtxOccupancy, OccupancyL2, SetAssocCache};
pub use config::GpuConfig;
pub use counters::{CounterId, CounterValues};
pub use engine::{ContextId, Gpu, SchedulerMode};
pub use fault::{FaultPlan, RetryPolicy};
pub use kernel::{KernelDesc, KernelFootprint};
pub use sm::Occupancy;
pub use timeline::{dominant_tag, CounterSlice, KernelRecord};
pub use watchdog::{inspect, WatchdogConfig, WatchdogReport};
