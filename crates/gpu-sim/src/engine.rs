//! The discrete-event GPU engine.
//!
//! Contexts own FIFO streams of kernels (optionally separated by host-side
//! gaps); the scheduler interleaves them either with **time slicing** (MPS
//! off — the paper's attack setting) or with the **MPS leftover policy**
//! (victim-priority, spy starved until iteration gaps — the setting the paper
//! shows is useless for fine-grained sampling, Figures 2/3).
//!
//! During each slice the running context:
//!
//! 1. pays pending **write-backs** (its dirty sectors evicted by other
//!    contexts since it last ran),
//! 2. **re-fetches** working-set bytes it lost to other contexts (the
//!    context-switching penalty at the heart of the side-channel),
//! 3. makes forward **progress**, streaming reads/writes/texture traffic and
//!    (re)establishing its L2 occupancy, evicting others.
//!
//! When a context is the *only* runnable one, the memory subsystem
//! opportunistically drains its dirty sectors to DRAM (idle write-drain),
//! which is what makes idle-gap samples an order of magnitude larger than
//! busy samples (paper Table II, `NOP` row).

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::cache::{InsertKind, OccupancyL2};
use crate::config::GpuConfig;
use crate::counters::{CounterId, CounterValues};
use crate::fault::RetryPolicy;
use crate::kernel::KernelDesc;
use crate::timeline::{CounterSlice, KernelRecord};

/// Handle to a CUDA context created on a [`Gpu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ContextId(usize);

impl ContextId {
    /// Index into the engine's context table.
    pub fn index(self) -> usize {
        self.0
    }

    /// Constructs an id from a raw index. Intended for replaying recorded
    /// timelines (e.g. a persisted trace cache); an id fabricated this way is
    /// only meaningful against the engine instance it was recorded from.
    pub fn from_index(i: usize) -> Self {
        ContextId(i)
    }

    /// Constructs an arbitrary id for tests.
    #[doc(hidden)]
    pub fn test_value(i: usize) -> Self {
        ContextId(i)
    }
}

/// Scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerMode {
    /// Preemptive round-robin time slicing between contexts (MPS disabled —
    /// the default on real hardware and the paper's attack setting).
    TimeSliced,
    /// MPS leftover policy: the earliest-created runnable context (the
    /// victim, in our experiments) monopolizes the SMs; later contexts only
    /// progress while it is idle.
    Mps,
}

#[derive(Debug, Clone)]
enum WorkItem {
    Kernel(KernelDesc),
    HostGap(f64),
}

#[derive(Debug, Clone)]
struct Running {
    desc: KernelDesc,
    remaining_us: f64,
    nominal_us: f64,
    started_at: f64,
}

#[derive(Debug)]
struct Context {
    name: String,
    queue: VecDeque<WorkItem>,
    auto: Option<KernelDesc>,
    next_auto_launch_at: f64,
    gap_until: Option<f64>,
    running: Option<Running>,
    counters: CounterValues,
    pending_writeback_bytes: f64,
    monitored: bool,
    kernels_completed: u64,
    /// Name of the most recently started kernel; peak occupancy persists
    /// across launches of the same kernel (an auto-repeating spy reuses its
    /// buffers), and resets when a different kernel starts. Compared by
    /// value (not pointer): two interned copies of the same name must keep
    /// the peak, two different names sharing an allocation cannot exist.
    last_kernel_name: Option<std::sync::Arc<str>>,
    /// Highest global/tex occupancy reached by the current kernel; refetch
    /// restores residency only up to this level (a fresh kernel's compulsory
    /// traffic is part of its footprint instead).
    peak_global: f64,
    peak_tex: f64,
    /// End the context's slice whenever a kernel completes (models the
    /// host-side launch turnaround of op-by-op frameworks like TensorFlow;
    /// with a co-runner this quantizes every op, however short, to at least
    /// one scheduling round — the granularity the spy samples at).
    yield_on_completion: bool,
    /// Backoff schedule for failed auto-repeat launches (fault injection);
    /// `None` falls back to the plain relaunch latency.
    retry: Option<RetryPolicy>,
    /// Consecutive failed auto-repeat launches (resets on success; drives
    /// the retry backoff).
    consecutive_failures: u32,
    /// Total failed auto-repeat launches (diagnostics).
    launch_failures: u64,
}

impl Context {
    /// Work that must finish before the queues are considered drained.
    /// Auto-repeat contexts relaunch forever, so their current launch does
    /// not count — only explicitly enqueued items do.
    fn has_queued_work(&self) -> bool {
        if !self.queue.is_empty() || self.gap_until.is_some() {
            return true;
        }
        self.auto.is_none() && self.running.is_some()
    }
}

/// Maximum fraction of L2 a single context's refetch targets.
const MAX_L2_SHARE: f64 = 0.95;
/// Fraction of streaming traffic that transiently occupies L2 (per slice).
/// Kept small so that op-type differences in streaming volume translate into
/// *graded* eviction pressure instead of all ops saturating the cache.
const STREAM_OCCUPANCY_FRAC: f64 = 0.05;
/// Cap on transient streaming occupancy inserted per slice, bytes.
const STREAM_OCCUPANCY_CAP: f64 = 1.8 * 1024.0 * 1024.0;
/// Dirty-pool cap as a fraction of L2 capacity.
const DIRTY_CAP_FRAC: f64 = 0.4;
/// Extra L2-miss factor relative to DRAM sectors (misses that coalesce).
const L2_MISS_FACTOR: f64 = 1.02;
/// Slice-weight floor for low-occupancy kernels.
const SLICE_WEIGHT_FLOOR: f64 = 0.25;

/// The simulated GPU.
pub struct Gpu {
    config: GpuConfig,
    mode: SchedulerMode,
    contexts: Vec<Context>,
    l2: OccupancyL2,
    now_us: f64,
    rng: StdRng,
    /// Dedicated stream for fault injection: an inactive [`FaultPlan`] draws
    /// nothing, so the clean path's `rng` sequence is independent of whether
    /// fault injection exists at all.
    ///
    /// [`FaultPlan`]: crate::fault::FaultPlan
    fault_rng: StdRng,
    last_ran: Option<usize>,
    rr_next: usize,
    kernel_log: Vec<KernelRecord>,
    counter_trace: Vec<CounterSlice>,
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("name", &self.config.name)
            .field("mode", &self.mode)
            .field("contexts", &self.contexts.len())
            .field("now_us", &self.now_us)
            .finish()
    }
}

impl Gpu {
    /// Creates a GPU with the given configuration and scheduler mode.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: GpuConfig, mode: SchedulerMode) -> Self {
        config.validate().expect("valid GpuConfig");
        let seed = config.seed;
        let fault_seed = config.faults.seed;
        let l2 = OccupancyL2::new(config.l2_bytes);
        Gpu {
            config,
            mode,
            contexts: Vec::new(),
            l2,
            now_us: 0.0,
            rng: StdRng::seed_from_u64(seed),
            fault_rng: StdRng::seed_from_u64(fault_seed),
            last_ran: None,
            rr_next: 0,
            kernel_log: Vec::new(),
            counter_trace: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The scheduler mode.
    pub fn mode(&self) -> SchedulerMode {
        self.mode
    }

    /// Current simulated time in microseconds.
    pub fn now_us(&self) -> f64 {
        self.now_us
    }

    /// Creates a CUDA context. Creation order is the MPS priority order.
    pub fn add_context(&mut self, name: impl Into<String>) -> ContextId {
        let idx = self.l2.add_context();
        debug_assert_eq!(idx, self.contexts.len());
        self.contexts.push(Context {
            name: name.into(),
            queue: VecDeque::new(),
            auto: None,
            next_auto_launch_at: 0.0,
            gap_until: None,
            running: None,
            counters: CounterValues::zero(),
            pending_writeback_bytes: 0.0,
            monitored: false,
            kernels_completed: 0,
            last_kernel_name: None,
            peak_global: 0.0,
            peak_tex: 0.0,
            yield_on_completion: false,
            retry: None,
            consecutive_failures: 0,
            launch_failures: 0,
        });
        ContextId(idx)
    }

    /// Name of a context.
    pub fn context_name(&self, ctx: ContextId) -> &str {
        &self.contexts[ctx.0].name
    }

    /// Enables per-slice counter tracing for a context (the CUPTI layer
    /// consumes the trace).
    pub fn monitor(&mut self, ctx: ContextId) {
        self.contexts[ctx.0].monitored = true;
    }

    /// Makes the context yield its remaining slice each time a kernel
    /// completes, modeling the host-side launch turnaround of op-by-op
    /// frameworks (TensorFlow 1.x). Victim contexts should enable this.
    pub fn set_yield_on_completion(&mut self, ctx: ContextId, yield_on_completion: bool) {
        self.contexts[ctx.0].yield_on_completion = yield_on_completion;
    }

    /// Enqueues a kernel on a context's stream.
    pub fn enqueue(&mut self, ctx: ContextId, kernel: KernelDesc) {
        self.contexts[ctx.0]
            .queue
            .push_back(WorkItem::Kernel(kernel));
    }

    /// Enqueues a host-side stall of `us` microseconds (e.g. input-batch
    /// loading between training iterations). The context is not runnable
    /// while the stall is at the head of its stream.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or non-finite.
    pub fn enqueue_host_gap(&mut self, ctx: ContextId, us: f64) {
        assert!(us.is_finite() && us >= 0.0, "invalid host gap {}", us);
        self.contexts[ctx.0].queue.push_back(WorkItem::HostGap(us));
    }

    /// Makes the context relaunch `kernel` forever (with the configured
    /// relaunch latency) whenever its queue is empty — the spy's sampling
    /// loop.
    pub fn set_auto_repeat(&mut self, ctx: ContextId, kernel: KernelDesc) {
        let c = &mut self.contexts[ctx.0];
        c.auto = Some(kernel);
        c.next_auto_launch_at = self.now_us;
    }

    /// Stops auto-relaunching on the context (the running launch finishes).
    pub fn stop_auto_repeat(&mut self, ctx: ContextId) {
        self.contexts[ctx.0].auto = None;
    }

    /// Installs a retry-backoff schedule for the context's failed
    /// auto-repeat launches (only reachable under an active fault plan with
    /// `launch_fail_prob > 0`). Without a policy, failed launches retry
    /// after the plain relaunch latency.
    pub fn set_launch_retry(&mut self, ctx: ContextId, policy: RetryPolicy) {
        self.contexts[ctx.0].retry = Some(policy);
    }

    /// Total failed auto-repeat launches on the context (diagnostics).
    pub fn launch_failures(&self, ctx: ContextId) -> u64 {
        self.contexts[ctx.0].launch_failures
    }

    /// Cumulative counters of a context.
    pub fn context_counters(&self, ctx: ContextId) -> CounterValues {
        self.contexts[ctx.0].counters
    }

    /// Number of kernel launches the context has completed.
    pub fn kernels_completed(&self, ctx: ContextId) -> u64 {
        self.contexts[ctx.0].kernels_completed
    }

    /// Completed-launch records, ordered by start time.
    pub fn kernel_log(&self) -> &[KernelRecord] {
        &self.kernel_log
    }

    /// Per-slice counter deltas of monitored contexts, in time order.
    pub fn counter_trace(&self) -> &[CounterSlice] {
        &self.counter_trace
    }

    /// Takes ownership of the logs, leaving them empty (bounded memory for
    /// long runs).
    pub fn take_logs(&mut self) -> (Vec<KernelRecord>, Vec<CounterSlice>) {
        (
            std::mem::take(&mut self.kernel_log),
            std::mem::take(&mut self.counter_trace),
        )
    }

    /// Whether any context still has queued (non-auto-repeat) work.
    pub fn has_pending_work(&self) -> bool {
        self.contexts.iter().any(Context::has_queued_work)
    }

    /// Runs the simulation until `deadline_us` (absolute simulated time).
    pub fn run_until(&mut self, deadline_us: f64) {
        while self.now_us < deadline_us {
            if !self.step(deadline_us) {
                break;
            }
        }
    }

    /// Runs for `us` more microseconds of simulated time.
    pub fn run_for(&mut self, us: f64) {
        let deadline = self.now_us + us;
        self.run_until(deadline);
    }

    /// Runs until every queued (non-auto-repeat) work item has completed.
    /// Auto-repeat contexts keep sampling while queued work exists.
    pub fn run_until_queues_drain(&mut self) {
        while self.has_pending_work() {
            if !self.step(f64::INFINITY) {
                break;
            }
        }
    }

    /// Advances the simulation by exactly one unbounded scheduling decision —
    /// the same `step(∞)` that [`Gpu::run_until_queues_drain`] loops on.
    /// Time-sliced budgets are *not* clamped to any deadline, so a caller
    /// that interleaves its own work between steps replays the drain loop's
    /// exact slice boundaries (a bounded `run_until` would clamp slices and
    /// change the simulation). Returns `false` when nothing can ever run
    /// again.
    pub fn step_once(&mut self) -> bool {
        self.step(f64::INFINITY)
    }

    /// Drains the counter-slice log in production order, leaving the kernel
    /// log in place. Incremental consumers (the streaming CUPTI session)
    /// call this between steps; the concatenation of every drain equals the
    /// slice half of [`Gpu::take_logs`] over the same run.
    pub fn drain_counter_slices(&mut self) -> Vec<CounterSlice> {
        std::mem::take(&mut self.counter_trace)
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn poll_host_at(&mut self, idx: usize, now: f64) {
        let c = &mut self.contexts[idx];
        if let Some(t) = c.gap_until {
            if now + 1e-9 >= t {
                c.gap_until = None;
            }
        }
        while c.gap_until.is_none() && c.running.is_none() {
            match c.queue.front() {
                Some(WorkItem::HostGap(d)) => {
                    let d = *d;
                    c.queue.pop_front();
                    if d > 0.0 {
                        c.gap_until = Some(now + d);
                    }
                }
                _ => break,
            }
        }
    }

    fn is_runnable(&self, idx: usize) -> bool {
        let c = &self.contexts[idx];
        if c.gap_until.is_some() {
            return false;
        }
        if c.running.is_some() {
            return true;
        }
        if matches!(c.queue.front(), Some(WorkItem::Kernel(_))) {
            return true;
        }
        c.auto.is_some() && c.queue.is_empty() && self.now_us + 1e-9 >= c.next_auto_launch_at
    }

    /// Earliest future time at which a currently non-runnable context could
    /// become runnable.
    fn next_wake(&self) -> Option<f64> {
        let mut wake: Option<f64> = None;
        for c in &self.contexts {
            let mut candidates = Vec::new();
            if let Some(t) = c.gap_until {
                candidates.push(t);
            }
            if c.auto.is_some()
                && c.running.is_none()
                && c.queue.is_empty()
                && c.gap_until.is_none()
            {
                candidates.push(c.next_auto_launch_at);
            }
            for t in candidates {
                if t > self.now_us {
                    wake = Some(wake.map_or(t, |w: f64| w.min(t)));
                }
            }
        }
        wake
    }

    /// Advances the simulation by one scheduling decision. Returns false when
    /// nothing can ever run again before the deadline.
    fn step(&mut self, deadline_us: f64) -> bool {
        for i in 0..self.contexts.len() {
            self.poll_host_at(i, self.now_us);
        }
        let runnable: Vec<usize> = (0..self.contexts.len())
            .filter(|&i| self.is_runnable(i))
            .collect();
        if runnable.is_empty() {
            match self.next_wake() {
                Some(t) if t < deadline_us => {
                    self.now_us = t;
                    return true;
                }
                Some(_) => {
                    self.now_us = deadline_us;
                    return false;
                }
                None => return false,
            }
        }

        let (idx, budget) = match self.mode {
            SchedulerMode::TimeSliced => {
                // Round-robin: first runnable context at or after rr_next.
                let idx = *runnable
                    .iter()
                    .find(|&&i| i >= self.rr_next)
                    .unwrap_or(&runnable[0]);
                self.rr_next = idx + 1;
                if self.rr_next >= self.contexts.len() {
                    self.rr_next = 0;
                }
                let weight = self.slice_weight(idx);
                let jitter = 1.0
                    + self
                        .rng
                        .gen_range(-self.config.slice_jitter..=self.config.slice_jitter);
                let slice = self.config.time_slice_us * weight * jitter;
                (idx, slice.min(deadline_us - self.now_us))
            }
            SchedulerMode::Mps => {
                // Leftover policy: earliest-created runnable context wins and
                // runs until a higher-priority context wakes.
                let idx = runnable[0];
                let mut budget = deadline_us - self.now_us;
                if let Some(wake) = self.next_wake() {
                    // Only yield to higher-priority contexts.
                    if self.contexts.iter().take(idx).any(|c| {
                        c.gap_until.is_some() || (c.auto.is_some() && !c.has_queued_work())
                    }) {
                        budget = budget.min(wake - self.now_us);
                    }
                }
                (idx, budget.max(1.0))
            }
        };

        let sole_runner = runnable.len() == 1;
        let used = self.execute_slice(idx, budget.max(1.0), sole_runner);
        self.now_us += used.max(0.05);
        true
    }

    fn slice_weight(&self, idx: usize) -> f64 {
        let c = &self.contexts[idx];
        let desc = c
            .running
            .as_ref()
            .map(|r| &r.desc)
            .or(match c.queue.front() {
                Some(WorkItem::Kernel(k)) => Some(k),
                _ => None,
            })
            .or(c.auto.as_ref());
        match desc {
            Some(k) => {
                // Slice grants scale with how many SMs the launch covers and
                // saturate at full coverage — the mechanism behind the
                // slow-down attack's block-count saturation.
                let coverage = k.blocks as f64 / self.config.num_sms as f64;
                SLICE_WEIGHT_FLOOR + (1.0 - SLICE_WEIGHT_FLOOR) * coverage.min(1.0)
            }
            None => SLICE_WEIGHT_FLOOR,
        }
    }

    fn start_next_kernel(&mut self, idx: usize, at: f64) -> bool {
        self.poll_host_at(idx, at);
        let c = &mut self.contexts[idx];
        if c.running.is_some() || c.gap_until.is_some() {
            return c.running.is_some();
        }
        let (desc, from_auto) = match c.queue.front() {
            Some(WorkItem::Kernel(_)) => {
                let Some(WorkItem::Kernel(k)) = c.queue.pop_front() else {
                    unreachable!()
                };
                (Some(k), false)
            }
            None if c.auto.is_some() && at + 1e-9 >= c.next_auto_launch_at => {
                (c.auto.clone(), true)
            }
            _ => (None, false),
        };
        let Some(desc) = desc else { return false };
        // Fault: the driver rejects an auto-repeat (spy/hog) launch; back off
        // and retry. Queued victim kernels are never failed — their launch
        // sequence is the ground-truth label stream.
        let fail_prob = self.config.faults.launch_fail_prob;
        if from_auto && fail_prob > 0.0 && self.fault_rng.gen_bool(fail_prob) {
            let c = &mut self.contexts[idx];
            c.consecutive_failures += 1;
            c.launch_failures += 1;
            let backoff = match c.retry {
                Some(policy) => policy.backoff_us(c.consecutive_failures),
                None => self.config.relaunch_latency_us,
            };
            c.next_auto_launch_at = at + backoff;
            return false;
        }
        let nominal = desc.nominal_duration_us(&self.config);
        let c = &mut self.contexts[idx];
        if from_auto {
            c.consecutive_failures = 0;
        }
        if c.last_kernel_name.as_deref() != Some(&*desc.name) {
            let occ = self.l2.occupancy(idx);
            c.peak_global = occ.global();
            c.peak_tex = occ.tex;
            c.last_kernel_name = Some(desc.name.clone());
        }
        c.running = Some(Running {
            remaining_us: nominal,
            nominal_us: nominal,
            started_at: at,
            desc,
        });
        true
    }

    /// Runs context `idx` for up to `budget` microseconds; returns time used.
    fn execute_slice(&mut self, idx: usize, budget: f64, sole_runner: bool) -> f64 {
        let bw = self.config.mem_bandwidth;
        let mut used = 0.0f64;
        let mut delta = CounterValues::zero();
        let slice_start = self.now_us;

        // Context-switch overhead on a real preemption.
        if self.last_ran != Some(idx) && self.last_ran.is_some() {
            used += self.config.context_switch_us.min(budget);
        }
        self.last_ran = Some(idx);

        // Fault: a watchdog-preemption burst forfeits the slice before any
        // kernel work happens — time passes, no counters accumulate. The
        // burst may overrun the granted slice (the watchdog does not respect
        // the scheduler).
        let faults = self.config.faults;
        if faults.preempt_prob > 0.0 && self.fault_rng.gen_bool(faults.preempt_prob) {
            return used + faults.preempt_us;
        }

        while used < budget {
            if !self.start_next_kernel(idx, slice_start + used) {
                break;
            }

            // Phase 1: pending write-backs (dirty sectors other contexts
            // evicted since we last ran).
            let pending = self.contexts[idx].pending_writeback_bytes;
            if pending > 0.0 {
                let affordable = (budget - used) * bw;
                let wb = pending.min(affordable);
                self.count_writes(&mut delta, wb);
                self.contexts[idx].pending_writeback_bytes -= wb;
                used += wb / bw;
                if used >= budget {
                    break;
                }
            }

            // Phase 2: refetch lost working-set residency (the
            // context-switching penalty).
            let (ws_target, tex_target) = {
                let c = &self.contexts[idx];
                let r = c.running.as_ref().expect("running kernel");
                let cap = self.l2.capacity() * MAX_L2_SHARE;
                (
                    r.desc.footprint.working_set.min(cap).min(c.peak_global),
                    r.desc.footprint.tex_working_set.min(cap).min(c.peak_tex),
                )
            };
            let occ = self.l2.occupancy(idx);
            let lost_global = (ws_target - occ.global()).max(0.0);
            let lost_tex = (tex_target - occ.tex).max(0.0);
            if lost_global + lost_tex > 0.0 {
                let affordable = (budget - used) * bw;
                let scale = (affordable / (lost_global + lost_tex)).min(1.0);
                let rg = lost_global * scale;
                let rt = lost_tex * scale;
                if rg > 0.0 {
                    self.count_reads(&mut delta, rg);
                    let rep = self.l2.insert(idx, InsertKind::GlobalClean, rg);
                    self.apply_evictions(idx, &rep.dirty_evicted, &mut delta);
                }
                if rt > 0.0 {
                    self.count_tex(&mut delta, rt);
                    self.count_reads(&mut delta, rt);
                    let rep = self.l2.insert(idx, InsertKind::Tex, rt);
                    self.apply_evictions(idx, &rep.dirty_evicted, &mut delta);
                }
                used += (rg + rt) / bw;
                if used >= budget {
                    break;
                }
            }

            // Phase 3: forward progress.
            let (dt, finished) = {
                let r = self.contexts[idx].running.as_ref().expect("running kernel");
                let dt = r.remaining_us.min(budget - used);
                (dt, dt + 1e-9 >= r.remaining_us)
            };
            if dt > 0.0 {
                let (frac, fp, dirty_cap) = {
                    let r = self.contexts[idx].running.as_ref().expect("running kernel");
                    (
                        dt / r.nominal_us,
                        r.desc.footprint,
                        (r.desc.footprint.write_bytes).min(self.l2.capacity() * DIRTY_CAP_FRAC),
                    )
                };
                let reads = fp.read_bytes * frac;
                let writes = fp.write_bytes * frac;
                let tex = fp.tex_read_bytes * frac;

                self.count_reads(&mut delta, reads);
                self.count_tex(&mut delta, tex);
                // Writes do NOT reach DRAM here: they create dirty occupancy.

                // Establish / refresh occupancy.
                let occ = self.l2.occupancy(idx);
                let grow_global = (fp.working_set.min(self.l2.capacity() * MAX_L2_SHARE)
                    - occ.global())
                .max(0.0)
                .min(reads);
                if grow_global > 0.0 {
                    let rep = self.l2.insert(idx, InsertKind::GlobalClean, grow_global);
                    self.apply_evictions(idx, &rep.dirty_evicted, &mut delta);
                }
                let grow_tex = (fp.tex_working_set.min(self.l2.capacity() * MAX_L2_SHARE)
                    - occ.tex)
                    .max(0.0)
                    .min(tex);
                if grow_tex > 0.0 {
                    let rep = self.l2.insert(idx, InsertKind::Tex, grow_tex);
                    self.apply_evictions(idx, &rep.dirty_evicted, &mut delta);
                }
                // Transient streaming occupancy (flows through L2).
                let stream_excess = (reads - grow_global).max(0.0) + (tex - grow_tex).max(0.0);
                let transient = (stream_excess * STREAM_OCCUPANCY_FRAC).min(STREAM_OCCUPANCY_CAP);
                if transient > 0.0 {
                    let rep = self.l2.insert(idx, InsertKind::GlobalClean, transient);
                    self.apply_evictions(idx, &rep.dirty_evicted, &mut delta);
                }
                // Dirty generation (bounded by the in-place output buffer).
                let occ = self.l2.occupancy(idx);
                let grow_dirty = (dirty_cap - occ.global_dirty).max(0.0).min(writes);
                if grow_dirty > 0.0 {
                    let rep = self.l2.insert(idx, InsertKind::GlobalDirty, grow_dirty);
                    self.apply_evictions(idx, &rep.dirty_evicted, &mut delta);
                }

                let r = self.contexts[idx].running.as_mut().expect("running kernel");
                r.remaining_us -= dt;
                used += dt;
            }

            // Track peak occupancy for refetch accounting.
            {
                let occ = self.l2.occupancy(idx);
                let c = &mut self.contexts[idx];
                c.peak_global = c.peak_global.max(occ.global());
                c.peak_tex = c.peak_tex.max(occ.tex);
            }

            if finished {
                let now = slice_start + used;
                let c = &mut self.contexts[idx];
                let r = c.running.take().expect("running kernel");
                c.kernels_completed += 1;
                self.kernel_log.push(KernelRecord {
                    ctx: ContextId(idx),
                    name: r.desc.name.clone(),
                    op_tag: r.desc.op_tag.clone(),
                    start_us: r.started_at,
                    end_us: now,
                });
                if c.queue.is_empty() && c.auto.is_some() {
                    c.next_auto_launch_at = now + self.config.relaunch_latency_us;
                    // The relaunch latency ends this slice for the context.
                    break;
                }
                if c.yield_on_completion {
                    break;
                }
            } else {
                break;
            }
        }

        // Idle write-drain: only when nothing else wants the memory system.
        if sole_runner && used > 0.0 {
            let drained = self.l2.drain_dirty(idx, self.config.idle_drain_rate * used);
            if drained > 0.0 {
                self.count_writes(&mut delta, drained);
            }
        }

        // Counter noise and commit.
        self.apply_noise(&mut delta);
        self.apply_fault_jitter(&mut delta);
        self.contexts[idx].counters += delta;
        if self.contexts[idx].monitored && delta.total() > 0.0 {
            let mut copies = 1usize;
            if faults.drop_slice_prob > 0.0 && self.fault_rng.gen_bool(faults.drop_slice_prob) {
                copies = 0; // the counter ring buffer loses the record
            } else if faults.dup_slice_prob > 0.0 && self.fault_rng.gen_bool(faults.dup_slice_prob)
            {
                copies = 2; // a re-read race records it twice
            }
            for _ in 0..copies {
                self.counter_trace.push(CounterSlice {
                    ctx: ContextId(idx),
                    start_us: slice_start,
                    end_us: slice_start + used,
                    delta,
                });
            }
        }
        used
    }

    fn apply_evictions(
        &mut self,
        actor: usize,
        dirty_evicted: &[(usize, f64)],
        delta: &mut CounterValues,
    ) {
        for &(owner, bytes) in dirty_evicted {
            if owner == actor {
                // Self-eviction writes back immediately on our own account.
                self.count_writes(delta, bytes);
            } else {
                self.contexts[owner].pending_writeback_bytes += bytes;
            }
        }
    }

    fn subp_frac(&mut self) -> f64 {
        0.5 + self.rng.gen_range(-0.03..0.03)
    }

    fn count_reads(&mut self, delta: &mut CounterValues, bytes: f64) {
        if bytes <= 0.0 {
            return;
        }
        let sectors = bytes / self.config.sector_bytes;
        let f = self.subp_frac();
        delta.add_to(CounterId::FbSubp0ReadSectors, sectors * f);
        delta.add_to(CounterId::FbSubp1ReadSectors, sectors * (1.0 - f));
        let misses = sectors * L2_MISS_FACTOR;
        let f = self.subp_frac();
        delta.add_to(CounterId::L2Subp0ReadSectorMisses, misses * f);
        delta.add_to(CounterId::L2Subp1ReadSectorMisses, misses * (1.0 - f));
    }

    fn count_writes(&mut self, delta: &mut CounterValues, bytes: f64) {
        if bytes <= 0.0 {
            return;
        }
        let sectors = bytes / self.config.sector_bytes;
        let f = self.subp_frac();
        delta.add_to(CounterId::FbSubp0WriteSectors, sectors * f);
        delta.add_to(CounterId::FbSubp1WriteSectors, sectors * (1.0 - f));
        let misses = sectors * L2_MISS_FACTOR;
        let f = self.subp_frac();
        delta.add_to(CounterId::L2Subp0WriteSectorMisses, misses * f);
        delta.add_to(CounterId::L2Subp1WriteSectorMisses, misses * (1.0 - f));
    }

    fn count_tex(&mut self, delta: &mut CounterValues, bytes: f64) {
        if bytes <= 0.0 {
            return;
        }
        let sectors = bytes / self.config.sector_bytes;
        let f = self.subp_frac();
        delta.add_to(CounterId::Tex0CacheSectorQueries, sectors * f);
        delta.add_to(CounterId::Tex1CacheSectorQueries, sectors * (1.0 - f));
    }

    fn apply_noise(&mut self, delta: &mut CounterValues) {
        if self.config.counter_noise <= 0.0 {
            return;
        }
        let sigma = self.config.counter_noise;
        let mut noisy = CounterValues::zero();
        for id in CounterId::ALL {
            let v = delta.get(id);
            if v > 0.0 {
                // Two-uniform approximation of a Gaussian factor.
                let g: f64 = self.rng.gen_range(-1.0..1.0) + self.rng.gen_range(-1.0..1.0);
                noisy.add_to(id, (v * (1.0 + sigma * g)).max(0.0));
            }
        }
        *delta = noisy;
    }

    /// Fault: extra multiplicative counter-read jitter, drawn from the
    /// dedicated fault stream (a misbehaving counter mux on top of the
    /// substrate's own noise).
    fn apply_fault_jitter(&mut self, delta: &mut CounterValues) {
        let sigma = self.config.faults.counter_jitter;
        if sigma <= 0.0 {
            return;
        }
        let mut noisy = CounterValues::zero();
        for id in CounterId::ALL {
            let v = delta.get(id);
            if v > 0.0 {
                let g: f64 =
                    self.fault_rng.gen_range(-1.0..1.0) + self.fault_rng.gen_range(-1.0..1.0);
                noisy.add_to(id, (v * (1.0 + sigma * g)).max(0.0));
            }
        }
        *delta = noisy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelFootprint;

    fn cfg() -> GpuConfig {
        let mut c = GpuConfig::gtx_1080_ti();
        c.counter_noise = 0.0;
        c.slice_jitter = 0.0;
        c
    }

    fn compute_kernel(name: &str, us: f64) -> KernelDesc {
        let c = cfg();
        let fp = KernelFootprint {
            flops: c.compute_throughput * us,
            ..KernelFootprint::empty()
        };
        KernelDesc::new(name, c.num_sms as u32 * 2, 1024, fp)
    }

    /// A kernel lasting ~`us` microseconds (compute-bound) that also moves
    /// the given memory traffic and holds the given working set.
    fn mixed_kernel(name: &str, us: f64, read: f64, write: f64, ws: f64) -> KernelDesc {
        let c = cfg();
        let fp = KernelFootprint {
            flops: c.compute_throughput * us,
            read_bytes: read,
            write_bytes: write,
            tex_read_bytes: 0.0,
            working_set: ws,
            tex_working_set: 0.0,
        };
        KernelDesc::new(name, 56, 1024, fp)
    }

    #[test]
    fn single_kernel_runs_to_completion() {
        let mut gpu = Gpu::new(cfg(), SchedulerMode::TimeSliced);
        let ctx = gpu.add_context("victim");
        gpu.enqueue(ctx, compute_kernel("k", 2500.0).with_tag("MatMul"));
        gpu.run_until_queues_drain();
        assert_eq!(gpu.kernels_completed(ctx), 1);
        let log = gpu.kernel_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].op_tag.as_deref(), Some("MatMul"));
        assert!(
            (log[0].duration_us() - 2500.0).abs() < 50.0,
            "{}",
            log[0].duration_us()
        );
    }

    #[test]
    fn time_slicing_interleaves_and_stretches() {
        // Alone: 5000us. With a competing context: ~2x wall time.
        let mut alone = Gpu::new(cfg(), SchedulerMode::TimeSliced);
        let v = alone.add_context("victim");
        alone.enqueue(v, compute_kernel("work", 5000.0));
        alone.run_until_queues_drain();
        let t_alone = alone.kernel_log()[0].duration_us();

        let mut shared = Gpu::new(cfg(), SchedulerMode::TimeSliced);
        let v = shared.add_context("victim");
        let s = shared.add_context("spy");
        shared.enqueue(v, compute_kernel("work", 5000.0));
        shared.set_auto_repeat(s, compute_kernel("spy", 1500.0));
        shared.run_until_queues_drain();
        let t_shared = shared
            .kernel_log()
            .iter()
            .find(|r| &*r.name == "work")
            .unwrap()
            .duration_us();
        assert!(
            t_shared > 1.6 * t_alone,
            "expected slow-down: alone {} vs shared {}",
            t_alone,
            t_shared
        );
    }

    #[test]
    fn host_gaps_stall_the_stream() {
        let mut gpu = Gpu::new(cfg(), SchedulerMode::TimeSliced);
        let ctx = gpu.add_context("victim");
        gpu.enqueue(ctx, compute_kernel("a", 100.0));
        gpu.enqueue_host_gap(ctx, 5000.0);
        gpu.enqueue(ctx, compute_kernel("b", 100.0));
        gpu.run_until_queues_drain();
        let log = gpu.kernel_log();
        assert_eq!(log.len(), 2);
        assert!(
            log[1].start_us - log[0].end_us >= 4999.0,
            "gap was {}",
            log[1].start_us - log[0].end_us
        );
    }

    #[test]
    fn auto_repeat_keeps_launching() {
        let mut gpu = Gpu::new(cfg(), SchedulerMode::TimeSliced);
        let spy = gpu.add_context("spy");
        gpu.set_auto_repeat(spy, compute_kernel("spy", 500.0));
        gpu.run_for(10_000.0);
        let n = gpu.kernels_completed(spy);
        assert!(n >= 15, "only {} launches", n);
        gpu.stop_auto_repeat(spy);
        let before = gpu.kernels_completed(spy);
        gpu.run_for(5_000.0);
        assert!(gpu.kernels_completed(spy) <= before + 1);
    }

    #[test]
    fn victim_eviction_shows_in_spy_reads() {
        // Spy working set resident; a memory-heavy victim evicts it; the
        // spy's refetch shows up as DRAM reads.
        let c = cfg();
        let mut gpu = Gpu::new(c.clone(), SchedulerMode::TimeSliced);
        let victim = gpu.add_context("victim");
        let spy = gpu.add_context("spy");
        gpu.monitor(spy);
        let spy_kernel = mixed_kernel("spy", 400.0, 64.0 * 1024.0, 0.0, 512.0 * 1024.0);
        gpu.set_auto_repeat(spy, spy_kernel);
        // Warm up the spy alone.
        gpu.run_for(20_000.0);
        let warm = gpu.context_counters(spy);
        gpu.run_for(20_000.0);
        let warm2 = gpu.context_counters(spy);
        let idle_rate = (warm2.dram_reads() - warm.dram_reads()) / 20_000.0;

        // Now a big victim runs: ~1 ms ops streaming 64 MiB each.
        for _ in 0..40 {
            gpu.enqueue(
                victim,
                mixed_kernel(
                    "victim",
                    1000.0,
                    64.0 * 1024.0 * 1024.0,
                    0.0,
                    2.0 * 1024.0 * 1024.0,
                ),
            );
        }
        let before = gpu.context_counters(spy);
        let t0 = gpu.now_us();
        gpu.run_until_queues_drain();
        let busy_rate =
            (gpu.context_counters(spy).dram_reads() - before.dram_reads()) / (gpu.now_us() - t0);
        assert!(
            busy_rate > 2.0 * idle_rate,
            "refetch signal missing: idle {} vs busy {}",
            idle_rate,
            busy_rate
        );
    }

    #[test]
    fn dirty_eviction_creates_spy_writebacks() {
        let c = cfg();
        let mut gpu = Gpu::new(c, SchedulerMode::TimeSliced);
        let victim = gpu.add_context("victim");
        let spy = gpu.add_context("spy");
        gpu.monitor(spy);
        // Spy writes a 256 KiB in-place buffer.
        gpu.set_auto_repeat(
            spy,
            mixed_kernel("spy", 400.0, 32.0 * 1024.0, 256.0 * 1024.0, 256.0 * 1024.0),
        );
        gpu.run_for(10_000.0);
        let before = gpu.context_counters(spy).dram_writes();
        // Victim with a huge working set evicts the spy's dirty buffer.
        for _ in 0..20 {
            gpu.enqueue(
                victim,
                mixed_kernel(
                    "victim",
                    1000.0,
                    64.0 * 1024.0 * 1024.0,
                    0.0,
                    2.6 * 1024.0 * 1024.0,
                ),
            );
        }
        gpu.run_until_queues_drain();
        let after = gpu.context_counters(spy).dram_writes();
        assert!(
            after - before > 1000.0,
            "no write-back signal: {} -> {}",
            before,
            after
        );
    }

    #[test]
    fn idle_drain_only_when_sole_runner() {
        let c = cfg();
        // Spy writes dirty data; while alone, drain turns it into DRAM writes.
        let mut gpu = Gpu::new(c, SchedulerMode::TimeSliced);
        let _victim = gpu.add_context("victim"); // exists but idle
        let spy = gpu.add_context("spy");
        gpu.set_auto_repeat(
            spy,
            mixed_kernel("spy", 400.0, 32.0 * 1024.0, 128.0 * 1024.0, 128.0 * 1024.0),
        );
        gpu.run_for(30_000.0);
        let writes = gpu.context_counters(spy).dram_writes();
        assert!(writes > 3000.0, "idle drain produced no writes: {}", writes);
    }

    #[test]
    fn mps_starves_spy_until_victim_gap() {
        let c = cfg();
        let mut gpu = Gpu::new(c, SchedulerMode::Mps);
        let victim = gpu.add_context("victim"); // priority 0
        let spy = gpu.add_context("spy");
        // Victim: two long kernels with a gap.
        gpu.enqueue(victim, compute_kernel("iter1", 20_000.0));
        gpu.enqueue_host_gap(victim, 3_000.0);
        gpu.enqueue(victim, compute_kernel("iter2", 20_000.0));
        gpu.set_auto_repeat(spy, compute_kernel("spy", 400.0));
        gpu.run_until_queues_drain();
        let spy_launches: Vec<&KernelRecord> = gpu
            .kernel_log()
            .iter()
            .filter(|r| &*r.name == "spy")
            .collect();
        // Spy only completes kernels inside the single 3 ms gap (plus the
        // trailing idle period, which run_until_queues_drain cuts short).
        let victim_iter1_end = gpu
            .kernel_log()
            .iter()
            .find(|r| &*r.name == "iter1")
            .unwrap()
            .end_us;
        let during_iter1 = spy_launches
            .iter()
            .filter(|r| r.end_us < victim_iter1_end - 1.0)
            .count();
        assert_eq!(
            during_iter1, 0,
            "spy completed {} launches while victim iteration 1 ran",
            during_iter1
        );
        assert!(!spy_launches.is_empty(), "spy never ran in the gap");
    }

    #[test]
    fn monitored_context_produces_counter_trace() {
        let mut gpu = Gpu::new(cfg(), SchedulerMode::TimeSliced);
        let spy = gpu.add_context("spy");
        gpu.monitor(spy);
        gpu.set_auto_repeat(
            spy,
            mixed_kernel("spy", 300.0, 64.0 * 1024.0, 0.0, 64.0 * 1024.0),
        );
        gpu.run_for(5_000.0);
        assert!(!gpu.counter_trace().is_empty());
        for s in gpu.counter_trace() {
            assert_eq!(s.ctx.index(), spy.index());
            assert!(s.end_us >= s.start_us);
        }
    }

    #[test]
    fn take_logs_leaves_engine_reusable() {
        let mut gpu = Gpu::new(cfg(), SchedulerMode::TimeSliced);
        let ctx = gpu.add_context("a");
        gpu.enqueue(ctx, compute_kernel("k", 100.0));
        gpu.run_until_queues_drain();
        let (kernels, _slices) = gpu.take_logs();
        assert_eq!(kernels.len(), 1);
        assert!(gpu.kernel_log().is_empty());
        gpu.enqueue(ctx, compute_kernel("k2", 100.0));
        gpu.run_until_queues_drain();
        assert_eq!(gpu.kernel_log().len(), 1);
    }

    #[test]
    fn fault_plan_is_deterministic_and_perturbing() {
        use crate::fault::FaultPlan;
        let run = |faults: FaultPlan| {
            let mut gpu = Gpu::new(
                cfg().with_seed(42).with_faults(faults),
                SchedulerMode::TimeSliced,
            );
            let v = gpu.add_context("v");
            let s = gpu.add_context("s");
            gpu.monitor(s);
            for _ in 0..5 {
                gpu.enqueue(v, mixed_kernel("op", 2000.0, 1e6, 1e5, 1e6));
            }
            gpu.set_auto_repeat(
                s,
                mixed_kernel("spy", 400.0, 64.0 * 1024.0, 32.0 * 1024.0, 256.0 * 1024.0),
            );
            gpu.run_until_queues_drain();
            let (_, slices) = gpu.take_logs();
            slices
                .iter()
                .map(|s| (s.start_us.to_bits(), s.delta.total().to_bits()))
                .collect::<Vec<_>>()
        };
        let plan = FaultPlan::uniform(0.2, 7);
        let clean = run(FaultPlan::none());
        let a = run(plan);
        let b = run(plan);
        assert_eq!(a, b, "same plan seed => bitwise-identical trace");
        assert_ne!(a, clean, "active plan perturbs the trace");
        assert_ne!(
            run(plan.with_seed(8)),
            a,
            "different fault seed => different trace"
        );
    }

    #[test]
    fn launch_failures_back_off_and_reduce_sampling() {
        use crate::fault::{FaultPlan, RetryPolicy};
        let run = |fail_prob: f64| {
            let mut faults = FaultPlan::none();
            faults.launch_fail_prob = fail_prob;
            faults.seed = 3;
            let mut gpu = Gpu::new(cfg().with_faults(faults), SchedulerMode::TimeSliced);
            let s = gpu.add_context("s");
            gpu.set_launch_retry(
                s,
                RetryPolicy {
                    base_us: 30.0,
                    factor: 2.0,
                    cap_us: 2000.0,
                },
            );
            gpu.set_auto_repeat(s, compute_kernel("spy", 400.0));
            gpu.run_for(100_000.0);
            (gpu.kernels_completed(s), gpu.launch_failures(s))
        };
        let (clean_n, clean_fails) = run(0.0);
        let (faulty_n, faulty_fails) = run(0.4);
        assert_eq!(clean_fails, 0);
        assert!(faulty_fails > 0, "failures must occur at 40% rate");
        assert!(
            faulty_n < clean_n,
            "failed launches cost samples: {faulty_n} vs {clean_n}"
        );
        assert!(faulty_n > 0, "retries keep the spy alive");
    }

    #[test]
    fn preemption_bursts_slow_the_victim() {
        use crate::fault::FaultPlan;
        let run = |preempt_prob: f64| {
            let mut faults = FaultPlan::none();
            faults.preempt_prob = preempt_prob;
            faults.preempt_us = 500.0;
            faults.seed = 5;
            let mut gpu = Gpu::new(cfg().with_faults(faults), SchedulerMode::TimeSliced);
            let v = gpu.add_context("v");
            gpu.enqueue(v, compute_kernel("work", 5000.0));
            gpu.run_until_queues_drain();
            gpu.kernel_log()[0].duration_us()
        };
        assert!(run(0.5) > 1.2 * run(0.0), "bursts must stretch wall time");
    }

    #[test]
    fn drop_and_dup_change_slice_counts() {
        use crate::fault::FaultPlan;
        let run = |drop: f64, dup: f64| {
            let mut faults = FaultPlan::none();
            faults.drop_slice_prob = drop;
            faults.dup_slice_prob = dup;
            faults.seed = 11;
            let mut gpu = Gpu::new(cfg().with_faults(faults), SchedulerMode::TimeSliced);
            let s = gpu.add_context("s");
            gpu.monitor(s);
            gpu.set_auto_repeat(
                s,
                mixed_kernel("spy", 300.0, 64.0 * 1024.0, 0.0, 64.0 * 1024.0),
            );
            gpu.run_for(50_000.0);
            gpu.counter_trace().len()
        };
        let base = run(0.0, 0.0);
        assert!(run(0.4, 0.0) < base, "drops lose records");
        assert!(run(0.0, 0.4) > base, "dups add records");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut gpu = Gpu::new(cfg().with_seed(42), SchedulerMode::TimeSliced);
            let v = gpu.add_context("v");
            let s = gpu.add_context("s");
            gpu.monitor(s);
            gpu.enqueue(v, mixed_kernel("op", 2000.0, 1e6, 1e5, 1e6));
            gpu.set_auto_repeat(
                s,
                mixed_kernel("spy", 400.0, 64.0 * 1024.0, 32.0 * 1024.0, 256.0 * 1024.0),
            );
            gpu.run_until_queues_drain();
            gpu.context_counters(s)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn step_once_with_incremental_drains_replays_the_batch_drain_loop() {
        let build = || {
            let mut gpu = Gpu::new(cfg().with_seed(42), SchedulerMode::TimeSliced);
            let v = gpu.add_context("v");
            let s = gpu.add_context("s");
            gpu.monitor(s);
            for i in 0..4 {
                gpu.enqueue(v, mixed_kernel(&format!("op{}", i), 2000.0, 1e6, 1e5, 1e6));
            }
            gpu.set_auto_repeat(
                s,
                mixed_kernel("spy", 400.0, 64.0 * 1024.0, 32.0 * 1024.0, 256.0 * 1024.0),
            );
            gpu
        };

        let mut batch = build();
        batch.run_until_queues_drain();
        let batch_end = batch.now_us();
        let (batch_kernels, batch_slices) = batch.take_logs();

        // Same run, one unbounded step at a time, draining slices as we go.
        let mut inc = build();
        let mut slices = Vec::new();
        while inc.has_pending_work() {
            if !inc.step_once() {
                break;
            }
            slices.extend(inc.drain_counter_slices());
        }
        assert_eq!(inc.now_us(), batch_end, "stepped clock diverged");
        let (inc_kernels, tail_slices) = inc.take_logs();
        slices.extend(tail_slices);
        assert_eq!(inc_kernels, batch_kernels, "kernel log diverged");
        assert_eq!(slices, batch_slices, "drained slices diverged");
    }
}
