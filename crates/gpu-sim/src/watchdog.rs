//! Contention watchdog — the paper's §VI defense direction: "GPU can run a
//! daemon process that detects anomalous contention" (citing CC-Hunter).
//!
//! The watchdog observes scheduler-level telemetry the driver already has —
//! per-context slice grants, SM coverage of launches, kernel completion
//! rates and resident working-set churn — and scores each context for the
//! two behaviours that make MoSConS work:
//!
//! 1. **slice starvation pressure**: many co-resident low-coverage contexts
//!    whose only effect is to multiply the round length (the slow-down
//!    hogs), and
//! 2. **probe behaviour**: a context that relaunches one short kernel
//!    indefinitely at a high rate (the sampler).
//!
//! A flagged context can be de-prioritized or denied counters. The
//! `defense`-style evaluation for the watchdog lives in this module's tests:
//! the MoSConS constellation is flagged while a benign pair of training jobs
//! is not.

use serde::{Deserialize, Serialize};

use crate::engine::ContextId;
use crate::timeline::KernelRecord;

/// Per-context telemetry summary over an observation window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextProfile {
    /// Context observed.
    pub ctx: ContextId,
    /// Kernel completions in the window.
    pub launches: usize,
    /// Distinct kernel names among the completions.
    pub distinct_kernels: usize,
    /// Mean kernel wall time, microseconds.
    pub mean_wall_us: f64,
    /// Launches per second of observed time.
    pub launch_rate_hz: f64,
}

/// Watchdog thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// A context repeating fewer than this many distinct kernels while
    /// exceeding `probe_rate_hz` is probe-like.
    pub probe_distinct_max: usize,
    /// Launch-rate threshold for probe behaviour, Hz.
    pub probe_rate_hz: f64,
    /// Number of probe-like co-resident contexts that constitutes a
    /// slow-down constellation.
    pub constellation_min: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            probe_distinct_max: 2,
            probe_rate_hz: 20.0,
            constellation_min: 3,
        }
    }
}

/// Verdict for one observation window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatchdogReport {
    /// Per-context summaries.
    pub profiles: Vec<ContextProfile>,
    /// Contexts exhibiting probe behaviour.
    pub probe_contexts: Vec<ContextId>,
    /// Whether a slow-down constellation was detected.
    pub constellation_detected: bool,
}

/// Builds per-context profiles from a kernel log spanning
/// `[window_start_us, window_end_us]`.
pub fn profile_contexts(
    log: &[KernelRecord],
    window_start_us: f64,
    window_end_us: f64,
) -> Vec<ContextProfile> {
    use std::collections::BTreeMap;
    assert!(window_end_us > window_start_us, "empty observation window");
    let mut by_ctx: BTreeMap<usize, Vec<&KernelRecord>> = BTreeMap::new();
    for r in log {
        if r.end_us >= window_start_us && r.end_us <= window_end_us {
            by_ctx.entry(r.ctx.index()).or_default().push(r);
        }
    }
    let span_s = (window_end_us - window_start_us) / 1e6;
    by_ctx
        .into_values()
        .map(|records| {
            let launches = records.len();
            let distinct: std::collections::BTreeSet<&str> =
                records.iter().map(|r| &*r.name).collect();
            let mean_wall =
                records.iter().map(|r| r.duration_us()).sum::<f64>() / launches.max(1) as f64;
            ContextProfile {
                ctx: records[0].ctx,
                launches,
                distinct_kernels: distinct.len(),
                mean_wall_us: mean_wall,
                launch_rate_hz: launches as f64 / span_s.max(1e-9),
            }
        })
        .collect()
}

/// Runs the watchdog over a kernel log window.
pub fn inspect(
    log: &[KernelRecord],
    window_start_us: f64,
    window_end_us: f64,
    config: &WatchdogConfig,
) -> WatchdogReport {
    let profiles = profile_contexts(log, window_start_us, window_end_us);
    let probe_contexts: Vec<ContextId> = profiles
        .iter()
        .filter(|p| {
            p.distinct_kernels <= config.probe_distinct_max
                && p.launch_rate_hz >= config.probe_rate_hz
        })
        .map(|p| p.ctx)
        .collect();
    WatchdogReport {
        constellation_detected: probe_contexts.len() >= config.constellation_min,
        probe_contexts,
        profiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::engine::{Gpu, SchedulerMode};
    use crate::kernel::{KernelDesc, KernelFootprint};

    fn compute_kernel(name: &str, us: f64, blocks: u32) -> KernelDesc {
        let cfg = GpuConfig::gtx_1080_ti();
        let occ = crate::sm::Occupancy::of_launch(blocks, 1024.min(32 * blocks), &cfg)
            .fraction()
            .max(1e-3);
        KernelDesc::new(
            name,
            blocks,
            1024.min(32 * blocks),
            KernelFootprint {
                flops: cfg.compute_throughput * occ * us,
                read_bytes: 64.0 * 1024.0,
                working_set: 64.0 * 1024.0,
                ..KernelFootprint::empty()
            },
        )
    }

    #[test]
    fn flags_a_moscons_like_constellation() {
        let mut gpu = Gpu::new(GpuConfig::gtx_1080_ti(), SchedulerMode::TimeSliced);
        let victim = gpu.add_context("victim");
        // Victim: varied kernels (a training iteration).
        for i in 0..40 {
            gpu.enqueue(victim, compute_kernel(&format!("op_{}", i % 12), 300.0, 56));
        }
        // Sampler + hogs: each repeats one kernel forever.
        let sampler = gpu.add_context("sampler");
        gpu.set_auto_repeat(sampler, compute_kernel("spy_probe", 400.0, 4));
        for i in 0..4 {
            let hog = gpu.add_context(format!("hog{}", i));
            gpu.set_auto_repeat(hog, compute_kernel(&format!("hog_{}", i), 450.0, 32));
        }
        gpu.run_until_queues_drain();
        let end = gpu.now_us();
        let report = inspect(gpu.kernel_log(), 0.0, end, &WatchdogConfig::default());
        assert!(report.constellation_detected, "{:?}", report.probe_contexts);
        assert!(report.probe_contexts.len() >= 3);
        // The victim itself is not probe-like (varied kernel names).
        assert!(!report.probe_contexts.contains(&victim));
    }

    #[test]
    fn does_not_flag_two_benign_training_jobs() {
        let mut gpu = Gpu::new(GpuConfig::gtx_1080_ti(), SchedulerMode::TimeSliced);
        for job in 0..2 {
            let ctx = gpu.add_context(format!("train{}", job));
            for i in 0..40 {
                gpu.enqueue(
                    ctx,
                    compute_kernel(&format!("j{}_op_{}", job, i % 15), 300.0, 56),
                );
            }
        }
        gpu.run_until_queues_drain();
        let end = gpu.now_us();
        let report = inspect(gpu.kernel_log(), 0.0, end, &WatchdogConfig::default());
        assert!(!report.constellation_detected, "{:?}", report);
        assert!(report.probe_contexts.is_empty());
    }

    #[test]
    fn profiles_are_per_context_and_windowed() {
        let mut gpu = Gpu::new(GpuConfig::gtx_1080_ti(), SchedulerMode::TimeSliced);
        let a = gpu.add_context("a");
        gpu.enqueue(a, compute_kernel("k1", 500.0, 56));
        gpu.enqueue(a, compute_kernel("k2", 500.0, 56));
        gpu.run_until_queues_drain();
        let end = gpu.now_us();
        let profiles = profile_contexts(gpu.kernel_log(), 0.0, end);
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].launches, 2);
        assert_eq!(profiles[0].distinct_kernels, 2);
        assert!(profiles[0].mean_wall_us > 0.0);
        // A window before everything sees nothing.
        assert!(profile_contexts(gpu.kernel_log(), 0.0, 1.0).is_empty());
    }
}
