//! L2 cache models.
//!
//! Two models live here:
//!
//! * [`OccupancyL2`] — the analytical, aggregate-occupancy model the engine
//!   uses. Each CUDA context owns a number of resident bytes (split into
//!   global-clean / global-dirty / texture pools); insertions evict other
//!   contexts' bytes proportionally, preferring the same pool kind (texture
//!   data competes with texture data first). Evicted *dirty* bytes must be
//!   written back — that is the write channel of the side-channel.
//! * [`SetAssocCache`] — a reference sectored set-associative cache with LRU
//!   replacement, used in tests to validate that the analytical model's
//!   eviction proportions are sane (see `tests/cache_calibration.rs`), and
//!   available for fine-grained microbenchmarks.

use serde::{Deserialize, Serialize};

/// Which pool an insertion lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertKind {
    /// Global-memory data, clean (read).
    GlobalClean,
    /// Global-memory data, dirty (written, needs write-back when evicted).
    GlobalDirty,
    /// Texture-path data (always clean).
    Tex,
}

/// Resident bytes of one context.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CtxOccupancy {
    /// Clean global-memory bytes.
    pub global_clean: f64,
    /// Dirty global-memory bytes.
    pub global_dirty: f64,
    /// Texture-tagged bytes (clean).
    pub tex: f64,
}

impl CtxOccupancy {
    /// Total resident bytes.
    pub fn total(&self) -> f64 {
        self.global_clean + self.global_dirty + self.tex
    }

    /// Total global-memory bytes (clean + dirty).
    pub fn global(&self) -> f64 {
        self.global_clean + self.global_dirty
    }
}

/// Dirty bytes evicted from contexts during one insertion, which their owners
/// must write back (and pay for) on their next slice.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvictionReport {
    /// `(context index, dirty bytes evicted)` — includes the inserting
    /// context itself if self-eviction reached its dirty pool.
    pub dirty_evicted: Vec<(usize, f64)>,
}

impl EvictionReport {
    /// Total dirty bytes evicted across all contexts.
    pub fn total_dirty(&self) -> f64 {
        self.dirty_evicted.iter().map(|(_, b)| b).sum()
    }
}

/// Aggregate per-context L2 occupancy model.
#[derive(Debug, Clone)]
pub struct OccupancyL2 {
    capacity: f64,
    contexts: Vec<CtxOccupancy>,
}

impl OccupancyL2 {
    /// Creates an empty cache of the given byte capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive.
    pub fn new(capacity: f64) -> Self {
        assert!(capacity > 0.0, "cache capacity must be positive");
        OccupancyL2 {
            capacity,
            contexts: Vec::new(),
        }
    }

    /// Registers a context; returns its index.
    pub fn add_context(&mut self) -> usize {
        self.contexts.push(CtxOccupancy::default());
        self.contexts.len() - 1
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Occupancy of one context.
    pub fn occupancy(&self, ctx: usize) -> CtxOccupancy {
        self.contexts[ctx]
    }

    /// Total resident bytes across all contexts.
    pub fn total(&self) -> f64 {
        self.contexts.iter().map(CtxOccupancy::total).sum()
    }

    /// Converts up to `max_bytes` of `ctx`'s dirty pool to clean (an idle
    /// write-back drain). Returns the number of bytes drained.
    pub fn drain_dirty(&mut self, ctx: usize, max_bytes: f64) -> f64 {
        let occ = &mut self.contexts[ctx];
        // Proportional eviction can leave sub-epsilon negative residue;
        // clamp before draining.
        occ.global_dirty = occ.global_dirty.max(0.0);
        let drained = occ.global_dirty.min(max_bytes.max(0.0));
        occ.global_dirty -= drained;
        occ.global_clean += drained;
        drained
    }

    /// Discards up to `max_bytes` of `ctx`'s dirty pool without write-back
    /// accounting (used when a context's data is invalidated wholesale).
    pub fn invalidate_dirty(&mut self, ctx: usize, max_bytes: f64) -> f64 {
        let occ = &mut self.contexts[ctx];
        let dropped = occ.global_dirty.min(max_bytes.max(0.0));
        occ.global_dirty -= dropped;
        dropped
    }

    /// Inserts `bytes` of data for `ctx` into the given pool, evicting other
    /// contexts as needed. Eviction priority:
    ///
    /// 1. other contexts' same-kind pools (proportional to size),
    /// 2. other contexts' remaining pools (proportional),
    /// 3. the inserting context's own clean pools,
    /// 4. the inserting context's own dirty pool.
    ///
    /// Returns which contexts lost dirty bytes (they owe write-backs).
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is unknown or `bytes` is negative/non-finite.
    pub fn insert(&mut self, ctx: usize, kind: InsertKind, bytes: f64) -> EvictionReport {
        assert!(ctx < self.contexts.len(), "unknown context {}", ctx);
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "invalid insert size {}",
            bytes
        );
        let mut report = EvictionReport::default();
        if bytes == 0.0 {
            return report;
        }
        // An insertion can never exceed the whole cache.
        let bytes = bytes.min(self.capacity);

        let free = (self.capacity - self.total()).max(0.0);
        let mut need = (bytes - free).max(0.0);

        if need > 0.0 {
            // Phase 1: other contexts, same kind.
            need = self.evict_phase(ctx, kind, need, &mut report, EvictPhase::OthersSameKind);
        }
        if need > 0.0 {
            // Phase 2: other contexts, any kind.
            need = self.evict_phase(ctx, kind, need, &mut report, EvictPhase::OthersAnyKind);
        }
        if need > 0.0 {
            // Phase 3: own clean pools.
            let occ = &mut self.contexts[ctx];
            for pool in [&mut occ.global_clean, &mut occ.tex] {
                let take = pool.min(need);
                *pool -= take;
                need -= take;
                if need <= 0.0 {
                    break;
                }
            }
        }
        if need > 0.0 {
            // Phase 4: own dirty pool (self write-back).
            let occ = &mut self.contexts[ctx];
            let take = occ.global_dirty.min(need);
            if take > 0.0 {
                occ.global_dirty -= take;
                report.dirty_evicted.push((ctx, take));
            }
            need -= take;
        }
        let _ = need; // any residual means the insert itself shrinks below

        // Place the new bytes (cannot exceed remaining room).
        let room = (self.capacity - self.total()).max(0.0);
        let placed = bytes.min(room);
        let occ = &mut self.contexts[ctx];
        match kind {
            InsertKind::GlobalClean => occ.global_clean += placed,
            InsertKind::GlobalDirty => occ.global_dirty += placed,
            InsertKind::Tex => occ.tex += placed,
        }
        report
    }

    fn evict_phase(
        &mut self,
        ctx: usize,
        kind: InsertKind,
        mut need: f64,
        report: &mut EvictionReport,
        phase: EvictPhase,
    ) -> f64 {
        // Snapshot pool sizes eligible in this phase.
        let mut eligible: Vec<(usize, PoolRef, f64)> = Vec::new();
        for (i, occ) in self.contexts.iter().enumerate() {
            if i == ctx {
                continue;
            }
            let pools: &[(PoolRef, f64)] = match phase {
                EvictPhase::OthersSameKind => match kind {
                    InsertKind::Tex => &[(PoolRef::Tex, occ.tex)],
                    InsertKind::GlobalClean | InsertKind::GlobalDirty => &[
                        (PoolRef::GlobalClean, occ.global_clean),
                        (PoolRef::GlobalDirty, occ.global_dirty),
                    ],
                },
                EvictPhase::OthersAnyKind => &[
                    (PoolRef::GlobalClean, occ.global_clean),
                    (PoolRef::GlobalDirty, occ.global_dirty),
                    (PoolRef::Tex, occ.tex),
                ],
            };
            for &(p, sz) in pools {
                if sz > 0.0 {
                    eligible.push((i, p, sz));
                }
            }
        }
        let total: f64 = eligible.iter().map(|(_, _, s)| s).sum();
        if total <= 0.0 {
            return need;
        }
        let take_total = need.min(total);
        for (i, pool, sz) in eligible {
            let take = take_total * (sz / total);
            let occ = &mut self.contexts[i];
            match pool {
                PoolRef::GlobalClean => occ.global_clean = (occ.global_clean - take).max(0.0),
                PoolRef::GlobalDirty => occ.global_dirty = (occ.global_dirty - take).max(0.0),
                PoolRef::Tex => occ.tex = (occ.tex - take).max(0.0),
            }
            if matches!(pool, PoolRef::GlobalDirty) && take > 0.0 {
                report.dirty_evicted.push((i, take));
            }
        }
        need -= take_total;
        need.max(0.0)
    }
}

#[derive(Debug, Clone, Copy)]
enum EvictPhase {
    OthersSameKind,
    OthersAnyKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PoolRef {
    GlobalClean,
    GlobalDirty,
    Tex,
}

// ---------------------------------------------------------------------------
// Reference set-associative cache
// ---------------------------------------------------------------------------

/// Result of one access to the [`SetAssocCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The sector was resident.
    Hit,
    /// The sector missed; if an occupied line was replaced, reports whether
    /// it was dirty (needs write-back).
    Miss {
        /// A line was evicted and it was dirty.
        evicted_dirty: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    owner: u16,
    dirty: bool,
    lru: u64,
}

/// A sectored set-associative cache with true LRU replacement and per-line
/// owner tracking, used as ground truth for the analytical model.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    sector_bytes: u64,
    lines: Vec<Option<Line>>,
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl SetAssocCache {
    /// Creates a cache with `sets` x `ways` sectors of `sector_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(sets: usize, ways: usize, sector_bytes: u64) -> Self {
        assert!(
            sets > 0 && ways > 0 && sector_bytes > 0,
            "cache geometry must be non-zero"
        );
        SetAssocCache {
            sets,
            ways,
            sector_bytes,
            lines: vec![None; sets * ways],
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * self.sector_bytes
    }

    /// Accesses `addr` on behalf of `owner`; `write` marks the line dirty.
    pub fn access(&mut self, owner: u16, addr: u64, write: bool) -> Access {
        self.tick += 1;
        let sector = addr / self.sector_bytes;
        let set = (sector % self.sets as u64) as usize;
        let tag = sector / self.sets as u64;
        let base = set * self.ways;
        // Hit?
        for line in self.lines[base..base + self.ways].iter_mut().flatten() {
            if line.tag == tag && line.owner == owner {
                line.lru = self.tick;
                line.dirty |= write;
                self.hits += 1;
                return Access::Hit;
            }
        }
        // Miss: fill an empty way or evict LRU.
        self.misses += 1;
        let mut victim: Option<usize> = None;
        for (i, slot) in self.lines[base..base + self.ways].iter().enumerate() {
            match slot {
                None => {
                    victim = Some(i);
                    break;
                }
                Some(line) => {
                    if victim
                        .is_none_or(|v| self.lines[base + v].is_none_or(|vl| line.lru < vl.lru))
                        && self.lines[base + i].is_some()
                    {
                        // Track the least-recently-used occupied way unless an
                        // empty way is found above.
                        victim = match victim {
                            None => Some(i),
                            Some(v) => {
                                let v_lru = self.lines[base + v].map(|l| l.lru).unwrap_or(0);
                                if line.lru < v_lru {
                                    Some(i)
                                } else {
                                    Some(v)
                                }
                            }
                        };
                    }
                }
            }
        }
        let way = victim.expect("ways > 0");
        let evicted_dirty = match self.lines[base + way] {
            Some(old) if old.dirty => {
                self.writebacks += 1;
                true
            }
            _ => false,
        };
        self.lines[base + way] = Some(Line {
            tag,
            owner,
            dirty: write,
            lru: self.tick,
        });
        Access::Miss { evicted_dirty }
    }

    /// Number of resident sectors owned by `owner`.
    pub fn resident_sectors(&self, owner: u16) -> usize {
        self.lines
            .iter()
            .flatten()
            .filter(|l| l.owner == owner)
            .count()
    }

    /// Resident bytes owned by `owner`.
    pub fn resident_bytes(&self, owner: u16) -> u64 {
        self.resident_sectors(owner) as u64 * self.sector_bytes
    }

    /// (hits, misses, write-backs) so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.writebacks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_insert_and_evict_proportionally() {
        let mut l2 = OccupancyL2::new(1000.0);
        let a = l2.add_context();
        let b = l2.add_context();
        let c = l2.add_context();
        l2.insert(a, InsertKind::GlobalClean, 600.0);
        l2.insert(b, InsertKind::GlobalClean, 300.0);
        assert!((l2.total() - 900.0).abs() < 1e-9);
        // c inserts 300: 100 free, 200 must come from a and b 2:1.
        let rep = l2.insert(c, InsertKind::GlobalClean, 300.0);
        assert!(rep.dirty_evicted.is_empty());
        let oa = l2.occupancy(a).total();
        let ob = l2.occupancy(b).total();
        assert!((oa - (600.0 - 200.0 * 2.0 / 3.0)).abs() < 1e-6, "{}", oa);
        assert!((ob - (300.0 - 200.0 / 3.0)).abs() < 1e-6, "{}", ob);
        assert!((l2.total() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn dirty_eviction_is_reported_to_owner() {
        let mut l2 = OccupancyL2::new(100.0);
        let spy = l2.add_context();
        let victim = l2.add_context();
        l2.insert(spy, InsertKind::GlobalDirty, 80.0);
        let rep = l2.insert(victim, InsertKind::GlobalClean, 60.0);
        let spy_dirty_lost: f64 = rep
            .dirty_evicted
            .iter()
            .filter(|(c, _)| *c == spy)
            .map(|(_, b)| b)
            .sum();
        assert!((spy_dirty_lost - 40.0).abs() < 1e-6, "{}", spy_dirty_lost);
        assert!((l2.occupancy(spy).global_dirty - 40.0).abs() < 1e-6);
    }

    #[test]
    fn tex_insert_prefers_tex_victims() {
        let mut l2 = OccupancyL2::new(100.0);
        let spy = l2.add_context();
        let victim = l2.add_context();
        l2.insert(spy, InsertKind::Tex, 50.0);
        l2.insert(spy, InsertKind::GlobalClean, 50.0);
        // Victim inserts 30 tex; all must come from spy's tex pool first.
        l2.insert(victim, InsertKind::Tex, 30.0);
        let occ = l2.occupancy(spy);
        assert!((occ.tex - 20.0).abs() < 1e-6, "tex {}", occ.tex);
        assert!((occ.global_clean - 50.0).abs() < 1e-6);
    }

    #[test]
    fn self_eviction_reaches_own_dirty_last() {
        let mut l2 = OccupancyL2::new(100.0);
        let only = l2.add_context();
        l2.insert(only, InsertKind::GlobalDirty, 60.0);
        l2.insert(only, InsertKind::GlobalClean, 40.0);
        // Insert 50 more clean: evicts own clean 40 then own dirty 10.
        let rep = l2.insert(only, InsertKind::GlobalClean, 50.0);
        assert!((rep.total_dirty() - 10.0).abs() < 1e-6, "{:?}", rep);
        assert!(l2.total() <= 100.0 + 1e-9);
    }

    #[test]
    fn drain_converts_dirty_to_clean() {
        let mut l2 = OccupancyL2::new(100.0);
        let c = l2.add_context();
        l2.insert(c, InsertKind::GlobalDirty, 30.0);
        let drained = l2.drain_dirty(c, 20.0);
        assert!((drained - 20.0).abs() < 1e-9);
        let occ = l2.occupancy(c);
        assert!((occ.global_dirty - 10.0).abs() < 1e-9);
        assert!((occ.global_clean - 20.0).abs() < 1e-9);
        // Total unchanged.
        assert!((occ.total() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn oversized_insert_is_capped_at_capacity() {
        let mut l2 = OccupancyL2::new(100.0);
        let c = l2.add_context();
        l2.insert(c, InsertKind::GlobalClean, 1e9);
        assert!(l2.total() <= 100.0 + 1e-6);
    }

    // --- reference cache ---

    #[test]
    fn set_assoc_hit_after_fill() {
        let mut c = SetAssocCache::new(4, 2, 32);
        assert!(matches!(c.access(0, 0, false), Access::Miss { .. }));
        assert_eq!(c.access(0, 0, false), Access::Hit);
        assert_eq!(c.stats(), (1, 1, 0));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = SetAssocCache::new(1, 2, 32);
        // Addresses 0, 32, 64 all map to the single set.
        c.access(0, 0, false);
        c.access(0, 32, false);
        c.access(0, 0, false); // refresh 0 -> 32 is LRU
        c.access(0, 64, false); // evicts 32
        assert_eq!(c.access(0, 0, false), Access::Hit);
        assert!(matches!(c.access(0, 32, false), Access::Miss { .. }));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = SetAssocCache::new(1, 1, 32);
        c.access(0, 0, true); // dirty fill
        let acc = c.access(0, 32, false); // evicts dirty line
        assert_eq!(
            acc,
            Access::Miss {
                evicted_dirty: true
            }
        );
        assert_eq!(c.stats().2, 1);
    }

    #[test]
    fn owner_tracking_separates_contexts() {
        let mut c = SetAssocCache::new(8, 4, 32);
        for s in 0..8u64 {
            c.access(1, s * 32, false);
        }
        for s in 0..8u64 {
            c.access(2, s * 32 + 8 * 32, false);
        }
        assert_eq!(c.resident_sectors(1), 8);
        assert_eq!(c.resident_sectors(2), 8);
        assert_eq!(c.resident_bytes(1), 256);
    }

    #[test]
    fn same_address_different_owner_does_not_hit() {
        let mut c = SetAssocCache::new(4, 2, 32);
        c.access(1, 0, false);
        assert!(matches!(c.access(2, 0, false), Access::Miss { .. }));
    }

    #[test]
    fn capacity_bytes() {
        let c = SetAssocCache::new(16, 4, 32);
        assert_eq!(c.capacity_bytes(), 16 * 4 * 32);
    }
}
