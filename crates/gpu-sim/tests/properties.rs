//! Property-based tests for the GPU substrate's invariants.

use gpu_sim::cache::{InsertKind, OccupancyL2, SetAssocCache};
use gpu_sim::{Gpu, GpuConfig, KernelDesc, KernelFootprint, SchedulerMode};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum CacheOp {
    Insert { ctx: usize, kind: u8, bytes: f64 },
    Drain { ctx: usize, bytes: f64 },
}

fn cache_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..3, 0u8..3, 0.0f64..2e6).prop_map(|(ctx, kind, bytes)| CacheOp::Insert {
                ctx,
                kind,
                bytes
            }),
            (0usize..3, 0.0f64..2e6).prop_map(|(ctx, bytes)| CacheOp::Drain { ctx, bytes }),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn occupancy_model_invariants_hold_under_any_op_sequence(ops in cache_ops()) {
        let capacity = 1_000_000.0;
        let mut l2 = OccupancyL2::new(capacity);
        for _ in 0..3 {
            l2.add_context();
        }
        for op in ops {
            match op {
                CacheOp::Insert { ctx, kind, bytes } => {
                    let kind = match kind {
                        0 => InsertKind::GlobalClean,
                        1 => InsertKind::GlobalDirty,
                        _ => InsertKind::Tex,
                    };
                    let report = l2.insert(ctx, kind, bytes);
                    // Evicted dirty bytes are non-negative and bounded.
                    for (_, b) in &report.dirty_evicted {
                        prop_assert!(*b >= 0.0 && *b <= capacity + 1.0);
                    }
                }
                CacheOp::Drain { ctx, bytes } => {
                    let drained = l2.drain_dirty(ctx, bytes);
                    prop_assert!(drained >= 0.0 && drained <= bytes + 1e-6);
                }
            }
            // Global invariants after every step.
            prop_assert!(l2.total() <= capacity * (1.0 + 1e-9), "over capacity: {}", l2.total());
            for c in 0..3 {
                let occ = l2.occupancy(c);
                prop_assert!(occ.global_clean >= -1e-6);
                prop_assert!(occ.global_dirty >= -1e-6);
                prop_assert!(occ.tex >= -1e-6);
            }
        }
    }

    #[test]
    fn set_assoc_cache_never_exceeds_capacity(
        addrs in prop::collection::vec((0u16..3, 0u64..1_000_000, any::<bool>()), 1..400)
    ) {
        let mut cache = SetAssocCache::new(64, 4, 32);
        let max_sectors = 64 * 4;
        for (owner, addr, write) in addrs {
            cache.access(owner, addr, write);
            let resident: usize = (0..3).map(|o| cache.resident_sectors(o)).sum();
            prop_assert!(resident <= max_sectors);
        }
        let (hits, misses, writebacks) = cache.stats();
        prop_assert!(writebacks <= misses);
        prop_assert!(hits + misses > 0);
    }

    #[test]
    fn engine_time_is_monotone_and_kernels_complete(
        work_us in 100.0f64..5_000.0,
        n_kernels in 1usize..6,
        seed in 0u64..500,
    ) {
        let mut cfg = GpuConfig::gtx_1080_ti().with_seed(seed);
        cfg.counter_noise = 0.02;
        let mut gpu = Gpu::new(cfg.clone(), SchedulerMode::TimeSliced);
        let ctx = gpu.add_context("v");
        for i in 0..n_kernels {
            let fp = KernelFootprint {
                flops: cfg.compute_throughput * work_us,
                read_bytes: 1e5,
                write_bytes: 1e4,
                tex_read_bytes: 0.0,
                working_set: 1e5,
                tex_working_set: 0.0,
            };
            gpu.enqueue(ctx, KernelDesc::new(format!("k{}", i), 56, 1024, fp));
        }
        let mut last = gpu.now_us();
        for _ in 0..200 {
            gpu.run_for(1_000.0);
            prop_assert!(gpu.now_us() >= last);
            last = gpu.now_us();
            if !gpu.has_pending_work() {
                break;
            }
        }
        gpu.run_until_queues_drain();
        // All kernels completed exactly once, in order.
        prop_assert_eq!(gpu.kernels_completed(ctx), n_kernels as u64);
        let log = gpu.kernel_log();
        prop_assert_eq!(log.len(), n_kernels);
        for w in log.windows(2) {
            prop_assert!(w[1].start_us >= w[0].end_us - 1e-6, "kernels overlap on one stream");
        }
        // Counters are non-negative.
        let c = gpu.context_counters(ctx);
        prop_assert!(c.as_array().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn counter_slices_are_well_formed(seed in 0u64..200) {
        let cfg = GpuConfig::gtx_1080_ti().with_seed(seed);
        let mut gpu = Gpu::new(cfg.clone(), SchedulerMode::TimeSliced);
        let a = gpu.add_context("a");
        let b = gpu.add_context("b");
        gpu.monitor(b);
        let fp = KernelFootprint {
            flops: cfg.compute_throughput * 400.0,
            read_bytes: 5e5,
            write_bytes: 1e5,
            tex_read_bytes: 1e5,
            working_set: 4e5,
            tex_working_set: 1e5,
        };
        gpu.enqueue(a, KernelDesc::new("victim", 56, 1024, fp));
        gpu.set_auto_repeat(b, KernelDesc::new("spy", 4, 32, fp));
        gpu.run_for(20_000.0);
        let mut last_end = 0.0f64;
        for s in gpu.counter_trace() {
            prop_assert_eq!(s.ctx.index(), b.index());
            prop_assert!(s.end_us >= s.start_us);
            prop_assert!(s.start_us >= last_end - 1e-6, "slices out of order");
            last_end = s.end_us;
            prop_assert!(s.delta.as_array().iter().all(|&v| v >= 0.0));
        }
    }
}
