//! `leaky-lint` CLI. See the crate docs ([`lint`]) for the rule set.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use lint::config::Severity;

struct Args {
    json: bool,
    sarif: bool,
    explain: Option<String>,
    check_config: bool,
    no_cache: bool,
    root: Option<PathBuf>,
    config: Option<PathBuf>,
}

const USAGE: &str = "\
leaky-lint — determinism & simulator-invariant static analysis

USAGE:
    leaky-lint [--json | --sarif] [--no-cache] [--root <dir>] [--config <lint.toml>]
    leaky-lint --explain <rule>
    leaky-lint --check-config [--root <dir>] [--config <lint.toml>]

OPTIONS:
    --json             machine-readable output (diagnostics + counts + run stats)
    --sarif            SARIF 2.1.0 output (GitHub code scanning)
    --explain <rule>   print what a rule (D1..D8, A1..A4) means and how to fix it
    --check-config     audit lint.toml for stale allowlist entries; exit 1 if any
    --no-cache         skip the per-file analysis cache (target/leaky-lint-cache)
    --root <dir>       workspace root to lint (default: nearest dir with lint.toml,
                       else the workspace this binary was built from)
    --config <path>    config file (default: <root>/lint.toml)
    -h, --help         this text

EXIT STATUS:
    0  clean (warnings allowed)     1  error findings     2  usage/I/O failure
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        sarif: false,
        explain: None,
        check_config: false,
        no_cache: false,
        root: None,
        config: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--sarif" => args.sarif = true,
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain needs a rule id argument")?)
            }
            "--check-config" => args.check_config = true,
            "--no-cache" => args.no_cache = true,
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root needs a directory argument")?,
                ))
            }
            "--config" => {
                args.config = Some(PathBuf::from(
                    it.next().ok_or("--config needs a file argument")?,
                ))
            }
            "-h" | "--help" => {
                print!("{}", USAGE);
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{}`", other)),
        }
    }
    if args.json && args.sarif {
        return Err("--json and --sarif are mutually exclusive".into());
    }
    Ok(args)
}

/// Nearest ancestor of the current directory containing `lint.toml`, falling
/// back to the workspace this binary was compiled in (so `cargo run -p lint`
/// works from any subdirectory of a checkout).
fn find_root() -> PathBuf {
    if let Ok(mut dir) = std::env::current_dir() {
        loop {
            if dir.join("lint.toml").is_file() {
                return dir;
            }
            if !dir.pop() {
                break;
            }
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("leaky-lint: {}\n\n{}", e, USAGE);
            return ExitCode::from(2);
        }
    };

    if let Some(id) = &args.explain {
        return match lint::arules::explain(id) {
            Some((name, text)) => {
                println!("{} ({})\n\n{}", id, name, text);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "leaky-lint: unknown rule `{}` (expected D1..D8 or A1..A4)",
                    id
                );
                ExitCode::from(2)
            }
        };
    }

    let root = args.root.clone().unwrap_or_else(find_root);
    let config = match &args.config {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {}", path.display(), e))
            .and_then(|src| {
                lint::config::Config::parse(&src).map_err(|e| format!("{}: {}", path.display(), e))
            }),
        None => lint::load_config(&root),
    };
    let config = match config {
        Ok(c) => c,
        Err(e) => {
            eprintln!("leaky-lint: {}", e);
            return ExitCode::from(2);
        }
    };

    if args.check_config {
        return match lint::check_config(&root, &config) {
            Ok(problems) if problems.is_empty() => {
                println!("leaky-lint: config clean (no stale allowlist entries)");
                ExitCode::SUCCESS
            }
            Ok(problems) => {
                for p in &problems {
                    println!("leaky-lint: {}", p);
                }
                println!("leaky-lint: {} stale config entries", problems.len());
                ExitCode::from(1)
            }
            Err(e) => {
                eprintln!("leaky-lint: {}", e);
                ExitCode::from(2)
            }
        };
    }

    let cache_dir = root.join("target/leaky-lint-cache");
    let cache = (!args.no_cache).then_some(cache_dir.as_path());
    let out = match lint::run_full(&root, &config, cache) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("leaky-lint: {}", e);
            return ExitCode::from(2);
        }
    };
    if args.json {
        println!("{}", lint::diag::render_json_full(&out.diags, &out.stats));
    } else if args.sarif {
        print!("{}", lint::sarif::render_sarif(&out.diags));
    } else {
        print!("{}", lint::diag::render_human(&out.diags));
    }
    let errors = out.diags.iter().any(|d| d.severity == Severity::Error);
    if errors {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
