//! `leaky-lint` CLI. See the crate docs ([`lint`]) for the rule set.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use lint::config::Severity;

struct Args {
    json: bool,
    root: Option<PathBuf>,
    config: Option<PathBuf>,
}

const USAGE: &str = "\
leaky-lint — determinism & simulator-invariant static analysis

USAGE:
    leaky-lint [--json] [--root <dir>] [--config <lint.toml>]

OPTIONS:
    --json             machine-readable output (diagnostics + error/warning counts)
    --root <dir>       workspace root to lint (default: nearest dir with lint.toml,
                       else the workspace this binary was built from)
    --config <path>    config file (default: <root>/lint.toml)
    -h, --help         this text

EXIT STATUS:
    0  clean (warnings allowed)     1  error findings     2  usage/I/O failure
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        root: None,
        config: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root needs a directory argument")?,
                ))
            }
            "--config" => {
                args.config = Some(PathBuf::from(
                    it.next().ok_or("--config needs a file argument")?,
                ))
            }
            "-h" | "--help" => {
                print!("{}", USAGE);
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{}`", other)),
        }
    }
    Ok(args)
}

/// Nearest ancestor of the current directory containing `lint.toml`, falling
/// back to the workspace this binary was compiled in (so `cargo run -p lint`
/// works from any subdirectory of a checkout).
fn find_root() -> PathBuf {
    if let Ok(mut dir) = std::env::current_dir() {
        loop {
            if dir.join("lint.toml").is_file() {
                return dir;
            }
            if !dir.pop() {
                break;
            }
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("leaky-lint: {}\n\n{}", e, USAGE);
            return ExitCode::from(2);
        }
    };
    let root = args.root.unwrap_or_else(find_root);
    let config = match &args.config {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {}", path.display(), e))
            .and_then(|src| {
                lint::config::Config::parse(&src).map_err(|e| format!("{}: {}", path.display(), e))
            }),
        None => lint::load_config(&root),
    };
    let config = match config {
        Ok(c) => c,
        Err(e) => {
            eprintln!("leaky-lint: {}", e);
            return ExitCode::from(2);
        }
    };
    let diags = match lint::run(&root, &config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("leaky-lint: {}", e);
            return ExitCode::from(2);
        }
    };
    if args.json {
        println!("{}", lint::diag::render_json(&diags));
    } else {
        print!("{}", lint::diag::render_human(&diags));
    }
    let errors = diags.iter().any(|d| d.severity == Severity::Error);
    if errors {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
