//! A hand-rolled Rust token scanner.
//!
//! `leaky-lint` needs just enough lexical structure to tell code from
//! comments and strings, attach line numbers, and walk identifier/punct
//! sequences — not a grammar. The scanner therefore produces a flat token
//! stream plus a separate comment list (rules D2/D5 key off comments for
//! waivers and `SAFETY:` annotations) and is deliberately forgiving: an
//! input it cannot classify becomes a one-character `Punct` rather than an
//! error, so the linter never hard-fails on exotic but valid Rust.
//!
//! Handled explicitly, because getting these wrong corrupts everything
//! after them in the file:
//!
//! * line and (nested) block comments, including doc comments;
//! * string-ish literals: `"…"`, `r"…"`, `r#"…"#` (any hash depth),
//!   `b"…"`, `br#"…"#`, `c"…"`, char and byte-char literals;
//! * lifetimes vs. char literals (`'a` vs `'a'`);
//! * numbers with underscores, type suffixes, hex/oct/bin prefixes,
//!   floats with exponents, and tuple-index `.0` disambiguation.

/// What a token is, to the level of detail the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `unsafe`, `for`).
    Ident,
    /// Lifetime (`'a`, `'static`) — stored without the quote.
    Lifetime,
    /// String-ish literal (`"s"`, `r#"s"#`, `b"s"`, chars). `text` is the
    /// *contents* without quotes/hashes/prefix, so rules can scan for
    /// `{:?}` without re-parsing escapes.
    Str,
    /// Numeric literal, verbatim.
    Number,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment (line or block) with the 1-based line it *starts* on and its
/// text without the `//` / `/* */` markers.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// True if any comment starting on `line` (or inside a block comment
    /// spanning it — approximated by its start line) contains `needle`.
    pub fn comment_on_line_contains(&self, line: u32, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.line == line && c.text.contains(needle))
    }

    /// True if a comment containing `needle` starts within the `window`
    /// lines immediately above `line` (or on `line` itself).
    pub fn comment_above_contains(&self, line: u32, window: u32, needle: &str) -> bool {
        let lo = line.saturating_sub(window);
        self.comments
            .iter()
            .any(|c| c.line >= lo && c.line <= line && c.text.contains(needle))
    }
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Scanner<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if pred(b) {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`. Never fails: unknown bytes become `Punct` tokens.
pub fn lex(src: &str) -> Lexed {
    let mut s = Scanner {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = s.peek() {
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                s.bump();
            }
            b'/' if s.peek_at(1) == Some(b'/') => lex_line_comment(&mut s, &mut out),
            b'/' if s.peek_at(1) == Some(b'*') => lex_block_comment(&mut s, &mut out),
            b'"' => lex_string(&mut s, &mut out, 0),
            b'\'' => lex_quote(&mut s, &mut out),
            b'0'..=b'9' => lex_number(&mut s, &mut out),
            _ if is_ident_start(b) => lex_ident_or_prefixed(&mut s, &mut out),
            _ => {
                let line = s.line;
                let c = s.bump().unwrap_or(b'?');
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
            }
        }
    }
    out
}

fn lex_line_comment(s: &mut Scanner, out: &mut Lexed) {
    let line = s.line;
    let text = s.eat_while(|b| b != b'\n');
    out.comments.push(Comment {
        line,
        text: text.trim_start_matches('/').trim().to_string(),
    });
}

fn lex_block_comment(s: &mut Scanner, out: &mut Lexed) {
    let line = s.line;
    let start = s.pos;
    s.bump(); // '/'
    s.bump(); // '*'
    let mut depth = 1usize;
    while depth > 0 {
        match (s.peek(), s.peek_at(1)) {
            (Some(b'/'), Some(b'*')) => {
                s.bump();
                s.bump();
                depth += 1;
            }
            (Some(b'*'), Some(b'/')) => {
                s.bump();
                s.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                s.bump();
            }
            (None, _) => break, // unterminated — tolerate
        }
    }
    let raw = String::from_utf8_lossy(&s.src[start..s.pos]).into_owned();
    let text = raw
        .trim_start_matches("/*")
        .trim_end_matches("*/")
        .trim()
        .to_string();
    out.comments.push(Comment { line, text });
}

/// Lexes a `"…"` string; `hashes` is the raw-string hash depth (0 for
/// non-raw). The scanner sits on the opening quote. Raw strings ignore
/// escapes; regular strings honour `\"` and `\\`.
fn lex_string(s: &mut Scanner, out: &mut Lexed, hashes: usize) {
    let line = s.line;
    s.bump(); // opening '"'
    let start = s.pos;
    let mut end;
    loop {
        match s.peek() {
            None => {
                end = s.pos;
                break;
            }
            Some(b'\\') if hashes == 0 => {
                s.bump();
                s.bump();
            }
            Some(b'"') => {
                end = s.pos;
                if hashes == 0 {
                    s.bump();
                    break;
                }
                // need `"` followed by exactly `hashes` '#'s
                let mut ok = true;
                for i in 0..hashes {
                    if s.peek_at(1 + i) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                s.bump();
                if ok {
                    for _ in 0..hashes {
                        s.bump();
                    }
                    break;
                }
            }
            Some(_) => {
                s.bump();
            }
        }
    }
    out.tokens.push(Tok {
        kind: TokKind::Str,
        text: String::from_utf8_lossy(&s.src[start..end]).into_owned(),
        line,
    });
}

/// Lexes either a lifetime or a char literal; the scanner sits on `'`.
fn lex_quote(s: &mut Scanner, out: &mut Lexed) {
    let line = s.line;
    match s.peek_at(1) {
        // Escape: definitely a char literal.
        Some(b'\\') => {
            s.bump(); // '
            let start = s.pos;
            s.bump(); // '\'
            s.bump(); // escaped char
                      // consume up to the closing quote (handles \u{…}, \x41)
            while let Some(b) = s.peek() {
                s.bump();
                if b == b'\'' {
                    break;
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text: String::from_utf8_lossy(&s.src[start..s.pos.saturating_sub(1)]).into_owned(),
                line,
            });
        }
        Some(c) if is_ident_start(c) => {
            // `'a'` is a char, `'a` / `'static` a lifetime: scan the ident
            // run and look for a closing quote.
            let mut n = 2;
            while s.peek_at(n).is_some_and(is_ident_continue) {
                n += 1;
            }
            if s.peek_at(n) == Some(b'\'') {
                s.bump(); // '
                let start = s.pos;
                for _ in 0..n - 1 {
                    s.bump();
                }
                s.bump(); // closing '
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text: String::from_utf8_lossy(&s.src[start..s.pos - 1]).into_owned(),
                    line,
                });
            } else {
                s.bump(); // '
                let name = s.eat_while(is_ident_continue);
                out.tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    text: name,
                    line,
                });
            }
        }
        // `'('`, `' '` etc: char literal of a single non-ident char.
        Some(_) => {
            s.bump(); // '
            let start = s.pos;
            s.bump(); // the char
            if s.peek() == Some(b'\'') {
                s.bump();
            }
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text: String::from_utf8_lossy(&s.src[start..start + 1]).into_owned(),
                line,
            });
        }
        None => {
            s.bump();
        }
    }
}

fn lex_number(s: &mut Scanner, out: &mut Lexed) {
    let line = s.line;
    let start = s.pos;
    // integer part (also swallows hex/oct/bin digits and type suffixes)
    s.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    // fraction: only if `.` is followed by a digit (so `0..10` and `x.0.1`
    // tuple chains stay punct-separated, and `1.` stays an integer + dot —
    // acceptable for linting purposes)
    if s.peek() == Some(b'.') && s.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
        s.bump();
        s.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        // exponent sign: `1.5e-3` (the tail also swallows a type suffix,
        // so `1.5e-3_f64` stays one token)
        if matches!(s.src.get(s.pos.wrapping_sub(1)), Some(b'e' | b'E'))
            && matches!(s.peek(), Some(b'+' | b'-'))
        {
            s.bump();
            s.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        }
    } else if matches!(s.src.get(s.pos.wrapping_sub(1)), Some(b'e' | b'E'))
        && matches!(s.peek(), Some(b'+' | b'-'))
        && s.peek_at(1).is_some_and(|b| b.is_ascii_digit())
    {
        s.bump();
        s.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    }
    out.tokens.push(Tok {
        kind: TokKind::Number,
        text: String::from_utf8_lossy(&s.src[start..s.pos]).into_owned(),
        line,
    });
}

fn lex_ident_or_prefixed(s: &mut Scanner, out: &mut Lexed) {
    let line = s.line;
    let text = s.eat_while(is_ident_continue);
    // Raw/byte string prefixes: `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`.
    let is_str_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr");
    if is_str_prefix {
        if s.peek() == Some(b'"') {
            lex_string(s, out, 0);
            return;
        }
        if s.peek() == Some(b'#') {
            let mut hashes = 0;
            while s.peek_at(hashes) == Some(b'#') {
                hashes += 1;
            }
            if s.peek_at(hashes) == Some(b'"') {
                for _ in 0..hashes {
                    s.bump();
                }
                lex_string(s, out, hashes);
                return;
            }
        }
        if text == "b" && s.peek() == Some(b'\'') {
            lex_quote(s, out);
            return;
        }
    }
    out.tokens.push(Tok {
        kind: TokKind::Ident,
        text,
        line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(l: &Lexed) -> Vec<&str> {
        l.tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn comments_do_not_produce_tokens() {
        let l = lex("// Instant in a comment\nlet x = 1; /* SystemTime */");
        assert!(!idents(&l).contains(&"Instant"));
        assert!(!idents(&l).contains(&"SystemTime"));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("Instant"));
    }

    #[test]
    fn strings_do_not_produce_ident_tokens() {
        let l = lex(r##"let s = "thread_rng inside"; let r = r#"raw "q" str"#; "##);
        assert!(!idents(&l).contains(&"thread_rng"));
        let strs: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["thread_rng inside", r#"raw "q" str"#]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars: Vec<&Tok> = l.tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].text, "a");
    }

    #[test]
    fn numbers_and_ranges() {
        let l = lex("for i in 0..10 { let x = 1.5e-3_f64; let y = t.0; }");
        let nums: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3_f64", "0"]);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents(&l), vec!["let", "x"]);
    }

    #[test]
    fn line_numbers_are_1_based_and_advance() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn waiver_lookup_helpers() {
        let l = lex("let x = 1; // lint: sorted\nlet y = 2;");
        assert!(l.comment_on_line_contains(1, "lint: sorted"));
        assert!(!l.comment_on_line_contains(2, "lint: sorted"));
        assert!(l.comment_above_contains(2, 1, "lint: sorted"));
    }

    #[test]
    fn byte_and_c_strings() {
        let l = lex(r##"let a = b"bytes"; let b = br#"raw"#; let c = c"cstr";"##);
        let strs: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["bytes", "raw", "cstr"]);
    }
}
