//! SARIF 2.1.0 output.
//!
//! Renders diagnostics in the minimal Static Analysis Results Interchange
//! Format shape that GitHub code scanning consumes: one `run` with a
//! `tool.driver` carrying the full rule table (D-rules and A-rules, each
//! with its `--explain` text as `fullDescription`) and one `result` per
//! diagnostic with a single physical location. Hand-rolled like
//! [`crate::diag::render_json`] — same escaping, same determinism contract
//! (diagnostics arrive pre-sorted, rules are emitted in table order).

use crate::arules::SEM_RULES;
use crate::config::Severity;
use crate::diag::{json_str, Diagnostic};
use crate::rules::RULES;

const SARIF_SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Renders the full SARIF document, trailing newline included.
pub fn render_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"$schema\": {},\n", json_str(SARIF_SCHEMA)));
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"leaky-lint\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/leaky-dnn/leaky-dnn\",\n");
    out.push_str("          \"rules\": [\n");
    let mut rules: Vec<(&str, &str, &str)> = Vec::new();
    for r in RULES {
        rules.push((r.id, r.name, r.explain));
    }
    for r in SEM_RULES {
        rules.push((r.id, r.name, r.explain));
    }
    for (i, (id, name, explain)) in rules.iter().enumerate() {
        out.push_str("            {\n");
        out.push_str(&format!("              \"id\": {},\n", json_str(id)));
        out.push_str(&format!(
            "              \"name\": {},\n",
            json_str(&kebab_to_pascal(name))
        ));
        out.push_str(&format!(
            "              \"shortDescription\": {{ \"text\": {} }},\n",
            json_str(name)
        ));
        out.push_str(&format!(
            "              \"fullDescription\": {{ \"text\": {} }}\n",
            json_str(explain)
        ));
        out.push_str(if i + 1 < rules.len() {
            "            },\n"
        } else {
            "            }\n"
        });
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let level = match d.severity {
            Severity::Error => "error",
            Severity::Warn => "warning",
        };
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": {},\n", json_str(d.rule)));
        out.push_str(&format!("          \"level\": {},\n", json_str(level)));
        out.push_str(&format!(
            "          \"message\": {{ \"text\": {} }},\n",
            json_str(&d.message)
        ));
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{ \"uri\": {} }},\n",
            json_str(&d.path)
        ));
        out.push_str(&format!(
            "                \"region\": {{ \"startLine\": {} }}\n",
            d.line
        ));
        out.push_str("              }\n            }\n          ]\n");
        out.push_str(if i + 1 < diags.len() {
            "        },\n"
        } else {
            "        }\n"
        });
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// `hot-path-allocation` → `HotPathAllocation` (SARIF rule names are
/// conventionally PascalCase identifiers).
fn kebab_to_pascal(name: &str) -> String {
    name.split(['-', '_'])
        .map(|w| {
            let mut cs = w.chars();
            match cs.next() {
                Some(f) => f.to_uppercase().chain(cs).collect::<String>(),
                None => String::new(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                rule: "A2",
                name: "panic-free-serving",
                severity: Severity::Error,
                path: "crates/core/src/fleet.rs".into(),
                line: 42,
                message: "`.unwrap()` reachable from `core::fleet::run_fleet`".into(),
            },
            Diagnostic {
                rule: "D2",
                name: "no-hash-iteration",
                severity: Severity::Warn,
                path: "crates/ml/src/seq.rs".into(),
                line: 7,
                message: "iterating a HashMap with \"quotes\"".into(),
            },
        ]
    }

    #[test]
    fn has_the_2_1_0_shape_github_consumes() {
        let s = render_sarif(&sample());
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("sarif-schema-2.1.0.json"));
        assert!(s.contains("\"name\": \"leaky-lint\""));
        assert!(s.contains("\"ruleId\": \"A2\""));
        assert!(s.contains("\"level\": \"error\""));
        assert!(s.contains("\"level\": \"warning\""));
        assert!(s.contains("\"uri\": \"crates/core/src/fleet.rs\""));
        assert!(s.contains("\"startLine\": 42"));
        // every rule in both tables is declared in the driver
        for r in RULES {
            assert!(
                s.contains(&format!("\"id\": \"{}\"", r.id)),
                "missing {}",
                r.id
            );
        }
        for r in SEM_RULES {
            assert!(
                s.contains(&format!("\"id\": \"{}\"", r.id)),
                "missing {}",
                r.id
            );
        }
    }

    #[test]
    fn escapes_message_content() {
        let s = render_sarif(&sample());
        assert!(s.contains("with \\\"quotes\\\""));
    }

    #[test]
    fn empty_results_array_is_valid() {
        let s = render_sarif(&[]);
        assert!(s.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn balanced_braces_and_brackets() {
        // cheap structural sanity: the writer never emits strings with
        // unescaped braces, so raw counts must balance.
        let s = render_sarif(&sample());
        let opens = s.matches('{').count();
        let closes = s.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn pascal_casing() {
        assert_eq!(kebab_to_pascal("hot-path-allocation"), "HotPathAllocation");
        assert_eq!(kebab_to_pascal("x"), "X");
    }
}
