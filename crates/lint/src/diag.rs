//! Diagnostics and the two output formats (human-readable, `--json`).
//!
//! JSON is emitted by hand — the schema is four flat string/number fields
//! per finding, and keeping the linter dependency-free means its output
//! can never be corrupted by a bug in the serialization layer it is
//! supposed to be policing.

use crate::config::Severity;

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Rule id, e.g. `D2`.
    pub rule: &'static str,
    /// Short rule name, e.g. `hash-iteration`.
    pub name: &'static str,
    pub severity: Severity,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

/// Sorts diagnostics into the canonical (path, line, rule) report order —
/// the linter's own output must be deterministic.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
}

/// Renders the human-readable report.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{}: [{}/{}] {}:{}: {}\n",
            d.severity, d.rule, d.name, d.path, d.line, d.message
        ));
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    out.push_str(&format!(
        "leaky-lint: {} error{}, {} warning{}\n",
        errors,
        if errors == 1 { "" } else { "s" },
        warnings,
        if warnings == 1 { "" } else { "s" },
    ));
    out
}

/// Renders the `--json` report:
/// `{"diagnostics":[{"rule","name","severity","path","line","message"}...],
///   "errors":N,"warnings":N}`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    let mut out = String::from("{\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"name\":{},\"severity\":{},\"path\":{},\"line\":{},\"message\":{}}}",
            json_str(d.rule),
            json_str(d.name),
            json_str(&d.severity.to_string()),
            json_str(&d.path),
            d.line,
            json_str(&d.message),
        ));
    }
    out.push_str(&format!(
        "],\"errors\":{},\"warnings\":{}}}",
        errors, warnings
    ));
    out
}

/// [`render_json`] plus a trailing `"stats"` object. The `diagnostics` /
/// `errors` / `warnings` keys keep their exact shape — CI's
/// `jq -e '.errors == 0'` gate must not notice the difference.
pub fn render_json_full(diags: &[Diagnostic], stats: &crate::RunStats) -> String {
    let base = render_json(diags);
    format!(
        "{},\"stats\":{{\"files_analyzed\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"unresolved_calls\":{},\"fns_indexed\":{}}}}}",
        &base[..base.len() - 1],
        stats.files_analyzed,
        stats.cache_hits,
        stats.cache_misses,
        stats.unresolved_calls,
        stats.fns_indexed,
    )
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(rule: &'static str, path: &str, line: u32, sev: Severity) -> Diagnostic {
        Diagnostic {
            rule,
            name: "test",
            severity: sev,
            path: path.into(),
            line,
            message: format!("finding at {}:{}", path, line),
        }
    }

    #[test]
    fn sort_is_by_path_line_rule() {
        let mut diags = vec![
            d("D2", "b.rs", 4, Severity::Error),
            d("D1", "b.rs", 4, Severity::Warn),
            d("D5", "a.rs", 9, Severity::Error),
        ];
        sort(&mut diags);
        let order: Vec<(&str, u32, &str)> = diags
            .iter()
            .map(|x| (x.path.as_str(), x.line, x.rule))
            .collect();
        assert_eq!(
            order,
            vec![("a.rs", 9, "D5"), ("b.rs", 4, "D1"), ("b.rs", 4, "D2")]
        );
    }

    #[test]
    fn json_escapes_and_counts() {
        let diags = vec![Diagnostic {
            rule: "D6",
            name: "debug-key",
            severity: Severity::Error,
            path: "crates/core/src/cache.rs".into(),
            line: 3,
            message: "`{:?}` with \"quotes\"\nand newline".into(),
        }];
        let json = render_json(&diags);
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\\n"));
        assert!(json.ends_with("\"errors\":1,\"warnings\":0}"));
    }

    #[test]
    fn human_summary_counts() {
        let diags = vec![
            d("D1", "a.rs", 1, Severity::Error),
            d("D2", "a.rs", 2, Severity::Warn),
        ];
        let text = render_human(&diags);
        assert!(text.contains("1 error, 1 warning"));
    }
}
