//! Per-file incremental analysis cache.
//!
//! Everything `leaky-lint` derives from one file in isolation — token-rule
//! findings, the parsed item skeleton, call/alloc/panic/index/fold facts,
//! the waiver table — is a pure function of that file's bytes. This module
//! persists those derivations under `target/leaky-lint-cache/` keyed by
//! FNV-1a-64 of the content plus a schema fingerprint, so a warm run only
//! re-lexes files that actually changed. The cross-file passes (call-graph
//! build, reachability, report-time policy) are recomputed every run: they
//! depend on the whole workspace and on `lint.toml`, and are cheap next to
//! lexing.
//!
//! The format is a line-based text record with percent-escaped fields —
//! hand-rolled like the JSON writer, for the same reason: the linter polices
//! serialization bugs, so it depends on no serializer. Any parse failure or
//! fingerprint mismatch is a silent cache miss, never an error.

use std::path::{Path, PathBuf};

use crate::facts::{
    CallFact, Callee, FileFacts, FnFacts, FoldFact, IndexFact, IterRoot, Recv, SiteFact,
};
use crate::parser::{ConstItem, FieldItem, FnItem, ParsedFile, UseItem};
use crate::rules::{RawAnalysis, RawFinding, Waivers};

/// Bump when the serialized shape *or the semantics of any per-file
/// derivation* change; the rule-count fingerprint below catches added
/// rules, this catches everything else.
pub const SCHEMA: u32 = 1;

/// Everything cached per file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    pub raw: RawAnalysis,
    pub parsed: ParsedFile,
    pub facts: FileFacts,
    pub waivers: Waivers,
}

/// FNV-1a 64-bit — stable, dependency-free content addressing.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fingerprint() -> String {
    format!(
        "{} {} {}",
        SCHEMA,
        crate::rules::RULES.len(),
        crate::arules::SEM_RULES.len()
    )
}

fn entry_path(dir: &Path, rel: &str) -> PathBuf {
    dir.join(format!("{:016x}.facts", fnv1a64(rel.as_bytes())))
}

/// Loads a cached analysis if present and current.
pub fn load(dir: &Path, rel: &str, content_hash: u64) -> Option<FileAnalysis> {
    let text = std::fs::read_to_string(entry_path(dir, rel)).ok()?;
    parse_entry(&text, content_hash)
}

/// Stores an analysis; errors are swallowed (a cold cache is always valid).
pub fn store(dir: &Path, rel: &str, content_hash: u64, analysis: &FileAnalysis) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let _ = std::fs::write(entry_path(dir, rel), render_entry(content_hash, analysis));
}

// ---------------------------------------------------------------------------
// field escaping: space, %, newline, tab
// ---------------------------------------------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0A"),
            '\t' => out.push_str("%09"),
            c => out.push(c),
        }
    }
    if out.is_empty() {
        out.push_str("%00"); // empty-field marker
    }
    out
}

fn unesc(s: &str) -> String {
    if s == "%00" {
        return String::new();
    }
    // Copy between `%` escapes with str slices so multi-byte UTF-8 (the
    // em-dashes in diagnostic messages) survives the round-trip intact.
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(at) = rest.find('%') {
        out.push_str(&rest[..at]);
        let rep = match rest.get(at + 1..at + 3) {
            Some("25") => Some('%'),
            Some("20") => Some(' '),
            Some("0A") => Some('\n'),
            Some("09") => Some('\t'),
            _ => None,
        };
        match rep {
            Some(c) => {
                out.push(c);
                rest = &rest[at + 3..];
            }
            None => {
                out.push('%');
                rest = &rest[at + 1..];
            }
        }
    }
    out.push_str(rest);
    out
}

fn join_path(segs: &[String]) -> String {
    if segs.is_empty() {
        "%-".to_string()
    } else {
        segs.iter().map(|s| esc(s)).collect::<Vec<_>>().join("::")
    }
}

fn split_path(s: &str) -> Vec<String> {
    if s == "%-" {
        Vec::new()
    } else {
        s.split("::").map(unesc).collect()
    }
}

// ---------------------------------------------------------------------------
// render
// ---------------------------------------------------------------------------

fn render_entry(content_hash: u64, a: &FileAnalysis) -> String {
    let mut out = String::new();
    out.push_str(&format!("leaky-lint-cache {}\n", fingerprint()));
    out.push_str(&format!("hash {:016x}\n", content_hash));
    for f in &a.raw.findings {
        out.push_str(&format!("RF {} {} {}\n", f.rule, f.line, esc(&f.message)));
    }
    for &(line, safe) in &a.raw.unsafe_sites {
        out.push_str(&format!("US {} {}\n", line, safe as u8));
    }
    for (line, rule) in &a.waivers.allows {
        out.push_str(&format!("WA {} {}\n", line, esc(rule)));
    }
    for line in &a.waivers.sorted {
        out.push_str(&format!("WS {}\n", line));
    }
    out.push_str(&format!("UP {}\n", a.parsed.unparsed_items));
    for u in &a.parsed.uses {
        out.push_str(&format!("USE {} {}\n", esc(&u.alias), join_path(&u.path)));
    }
    for c in &a.parsed.consts {
        out.push_str(&format!(
            "CONST {} {} {}\n",
            c.line,
            esc(&c.name),
            join_path(&c.module)
        ));
    }
    for f in &a.parsed.fields {
        out.push_str(&format!("FLD {} {}\n", esc(&f.name), esc(&f.ty)));
    }
    for (i, f) in a.parsed.fns.iter().enumerate() {
        out.push_str(&format!(
            "FN {} {} {} {} {} {}\n",
            f.line,
            f.is_test as u8,
            esc(&f.name),
            f.self_type
                .as_deref()
                .map(esc)
                .unwrap_or_else(|| "%-".into()),
            join_path(&f.module),
            esc(&f.ret),
        ));
        let facts = &a.facts.fns[i];
        for (name, ty) in &facts.bindings {
            out.push_str(&format!("B {} {}\n", esc(name), esc(ty)));
        }
        for c in &facts.calls {
            match &c.callee {
                Callee::Free(segs) => {
                    out.push_str(&format!("C {} F {}\n", c.line, join_path(segs)));
                }
                Callee::Method { recv, name } => {
                    let (rk, rn) = match recv {
                        Recv::SelfRecv => ("s", "%-".to_string()),
                        Recv::Ident(x) => ("i", esc(x)),
                        Recv::Field(x) => ("f", esc(x)),
                        Recv::Other => ("o", "%-".to_string()),
                    };
                    out.push_str(&format!("C {} M {} {} {}\n", c.line, rk, rn, esc(name)));
                }
            }
        }
        for s in &facts.allocs {
            out.push_str(&format!("AL {} {}\n", s.line, esc(&s.what)));
        }
        for s in &facts.panics {
            out.push_str(&format!("PA {} {}\n", s.line, esc(&s.what)));
        }
        for s in &facts.indexes {
            out.push_str(&format!(
                "IX {} {} {}\n",
                s.line,
                esc(&s.recv),
                s.guarded as u8
            ));
        }
        for s in &facts.folds {
            let (rk, rd) = match &s.root {
                IterRoot::Range => ("r", "%-".to_string()),
                IterRoot::Ident(x) => ("i", esc(x)),
                IterRoot::Field(x) => ("f", esc(x)),
                IterRoot::Call(segs) => ("c", join_path(segs)),
                IterRoot::Other => ("o", "%-".to_string()),
            };
            out.push_str(&format!(
                "FO {} {} {} {} {} {}\n",
                s.line,
                s.loop_line,
                esc(&s.acc),
                rk,
                rd,
                join_path(&s.chain),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// parse
// ---------------------------------------------------------------------------

fn parse_entry(text: &str, content_hash: u64) -> Option<FileAnalysis> {
    let mut lines = text.lines();
    let header = lines.next()?;
    if header != format!("leaky-lint-cache {}", fingerprint()) {
        return None;
    }
    let hash_line = lines.next()?;
    let stored = u64::from_str_radix(hash_line.strip_prefix("hash ")?, 16).ok()?;
    if stored != content_hash {
        return None;
    }

    let mut a = FileAnalysis::default();
    for line in lines {
        let mut parts = line.splitn(2, ' ');
        let tag = parts.next()?;
        let rest = parts.next().unwrap_or("");
        let fields: Vec<&str> = rest.split(' ').collect();
        match tag {
            "RF" => {
                let [rule, line, msg] = fields.as_slice() else {
                    return None;
                };
                a.raw.findings.push(RawFinding {
                    rule: rule.parse().ok()?,
                    line: line.parse().ok()?,
                    message: unesc(msg),
                });
            }
            "US" => {
                let [line, safe] = fields.as_slice() else {
                    return None;
                };
                a.raw.unsafe_sites.push((line.parse().ok()?, *safe == "1"));
            }
            "WA" => {
                let [line, rule] = fields.as_slice() else {
                    return None;
                };
                a.waivers.allows.push((line.parse().ok()?, unesc(rule)));
            }
            "WS" => {
                let [line] = fields.as_slice() else {
                    return None;
                };
                a.waivers.sorted.push(line.parse().ok()?);
            }
            "UP" => {
                let [n] = fields.as_slice() else { return None };
                a.parsed.unparsed_items = n.parse().ok()?;
            }
            "USE" => {
                let [alias, path] = fields.as_slice() else {
                    return None;
                };
                a.parsed.uses.push(UseItem {
                    alias: unesc(alias),
                    path: split_path(path),
                });
            }
            "CONST" => {
                let [line, name, module] = fields.as_slice() else {
                    return None;
                };
                a.parsed.consts.push(ConstItem {
                    name: unesc(name),
                    module: split_path(module),
                    line: line.parse().ok()?,
                });
            }
            "FLD" => {
                let [name, ty] = fields.as_slice() else {
                    return None;
                };
                a.parsed.fields.push(FieldItem {
                    name: unesc(name),
                    ty: unesc(ty),
                });
            }
            "FN" => {
                let [line, test, name, self_ty, module, ret] = fields.as_slice() else {
                    return None;
                };
                a.parsed.fns.push(FnItem {
                    name: unesc(name),
                    module: split_path(module),
                    self_type: (*self_ty != "%-").then(|| unesc(self_ty)),
                    params: Vec::new(), // superseded by cached bindings
                    has_self: false,
                    ret: unesc(ret),
                    body: None, // facts are pre-extracted; bodies not needed
                    line: line.parse().ok()?,
                    is_test: *test == "1",
                });
                a.facts.fns.push(FnFacts::default());
            }
            "B" => {
                let [name, ty] = fields.as_slice() else {
                    return None;
                };
                cur(&mut a)?.bindings.insert(unesc(name), unesc(ty));
            }
            "C" => match fields.as_slice() {
                [line, "F", path] => {
                    cur(&mut a)?.calls.push(CallFact {
                        line: line.parse().ok()?,
                        callee: Callee::Free(split_path(path)),
                    });
                }
                [line, "M", rk, rn, name] => {
                    let recv = match *rk {
                        "s" => Recv::SelfRecv,
                        "i" => Recv::Ident(unesc(rn)),
                        "f" => Recv::Field(unesc(rn)),
                        _ => Recv::Other,
                    };
                    cur(&mut a)?.calls.push(CallFact {
                        line: line.parse().ok()?,
                        callee: Callee::Method {
                            recv,
                            name: unesc(name),
                        },
                    });
                }
                _ => return None,
            },
            "AL" => {
                let [line, what] = fields.as_slice() else {
                    return None;
                };
                cur(&mut a)?.allocs.push(SiteFact {
                    line: line.parse().ok()?,
                    what: unesc(what),
                });
            }
            "PA" => {
                let [line, what] = fields.as_slice() else {
                    return None;
                };
                cur(&mut a)?.panics.push(SiteFact {
                    line: line.parse().ok()?,
                    what: unesc(what),
                });
            }
            "IX" => {
                let [line, recv, guarded] = fields.as_slice() else {
                    return None;
                };
                cur(&mut a)?.indexes.push(IndexFact {
                    line: line.parse().ok()?,
                    recv: unesc(recv),
                    guarded: *guarded == "1",
                });
            }
            "FO" => {
                let [line, loop_line, acc, rk, rd, chain] = fields.as_slice() else {
                    return None;
                };
                let root = match *rk {
                    "r" => IterRoot::Range,
                    "i" => IterRoot::Ident(unesc(rd)),
                    "f" => IterRoot::Field(unesc(rd)),
                    "c" => IterRoot::Call(split_path(rd)),
                    _ => IterRoot::Other,
                };
                cur(&mut a)?.folds.push(FoldFact {
                    line: line.parse().ok()?,
                    loop_line: loop_line.parse().ok()?,
                    acc: unesc(acc),
                    root,
                    chain: split_path(chain),
                });
            }
            _ => return None, // unknown tag: treat as corrupt, miss
        }
    }
    Some(a)
}

fn cur(a: &mut FileAnalysis) -> Option<&mut FnFacts> {
    a.facts.fns.last_mut()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::extract;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::rules::raw_check;

    fn analyze(src: &str) -> FileAnalysis {
        let lexed = lex(src);
        let parsed = parse(&lexed);
        let facts = extract(&lexed, &parsed);
        FileAnalysis {
            raw: raw_check(&lexed),
            parsed,
            facts,
            waivers: Waivers::harvest(&lexed),
        }
    }

    const SRC: &str = "\
        use crate::stream::{AttackStream, GapStream as GS};\n\
        const MIN_PARALLEL_X: usize = 4;\n\
        struct S { gap: GapStream<'a> }\n\
        impl S {\n\
            // lint: allow(A1)\n\
            fn hot_into(&mut self, xs: &[f32]) -> f32 {\n\
                let v = xs.to_vec();\n\
                let mut sum = 0.0;\n\
                // lint: sorted\n\
                for &x in &v { sum += x; }\n\
                self.gap.push(sum);\n\
                helper(sum);\n\
                let r = thread_rng();\n\
                let q = xs[3];\n\
                sum\n\
            }\n\
        }\n";

    #[test]
    fn round_trips_through_the_text_format() {
        let a = analyze(SRC);
        let text = render_entry(0xdead_beef, &a);
        let b = parse_entry(&text, 0xdead_beef).expect("parse back");

        // raw findings (D4 thread_rng fires) survive
        assert_eq!(a.raw.findings.len(), b.raw.findings.len());
        assert!(b
            .raw
            .findings
            .iter()
            .any(|f| f.message.contains("thread_rng")));
        // waivers survive with lines intact
        assert_eq!(a.waivers.allows, b.waivers.allows);
        assert_eq!(a.waivers.sorted, b.waivers.sorted);
        // parsed skeleton survives
        assert_eq!(a.parsed.fns.len(), b.parsed.fns.len());
        assert_eq!(b.parsed.fns[0].name, "hot_into");
        assert_eq!(b.parsed.fns[0].self_type.as_deref(), Some("S"));
        assert_eq!(b.parsed.consts[0].name, "MIN_PARALLEL_X");
        assert_eq!(b.parsed.uses.len(), a.parsed.uses.len());
        // facts survive
        let (fa, fb) = (&a.facts.fns[0], &b.facts.fns[0]);
        assert_eq!(fa.allocs.len(), fb.allocs.len());
        assert_eq!(fa.panics.len(), fb.panics.len());
        assert_eq!(fa.calls.len(), fb.calls.len());
        assert_eq!(fa.folds.len(), fb.folds.len());
        assert_eq!(fa.indexes.len(), fb.indexes.len());
        assert_eq!(fa.bindings, fb.bindings);
        assert_eq!(fa.folds[0].root, fb.folds[0].root);
    }

    #[test]
    fn hash_mismatch_and_fingerprint_mismatch_are_misses() {
        let a = analyze(SRC);
        let text = render_entry(1, &a);
        assert!(parse_entry(&text, 2).is_none(), "stale content");
        let tampered = text.replacen("leaky-lint-cache", "leaky-lint-cache 999", 1);
        assert!(parse_entry(&tampered, 1).is_none(), "other schema");
        assert!(parse_entry("garbage\n", 1).is_none());
    }

    #[test]
    fn store_load_cycle_on_disk() {
        let dir = std::env::temp_dir().join(format!(
            "leaky-lint-cache-test-{:x}",
            fnv1a64(SRC.as_bytes())
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let a = analyze(SRC);
        let h = fnv1a64(SRC.as_bytes());
        assert!(load(&dir, "x.rs", h).is_none(), "cold cache misses");
        store(&dir, "x.rs", h, &a);
        let b = load(&dir, "x.rs", h).expect("warm cache hits");
        assert_eq!(a.parsed.fns.len(), b.parsed.fns.len());
        assert!(
            load(&dir, "x.rs", h ^ 1).is_none(),
            "changed content misses"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaping_handles_spaces_percent_and_empties() {
        for s in [
            "",
            "a b",
            "100% done",
            "tab\there",
            "multi\nline",
            "%20",
            "non-ASCII — em-dash · middot",
        ] {
            assert_eq!(unesc(&esc(s)), s, "round-trip of {s:?}");
        }
    }
}
