//! Item-level parser: the layer between the token stream and the call
//! graph.
//!
//! `leaky-lint` v1 saw single tokens; the semantic rules (A1–A4) need to
//! know *which function* a token lives in and *who calls whom*. This parser
//! recovers exactly that much structure and nothing more:
//!
//! * `fn` items — name, enclosing inline-`mod` path, enclosing `impl` type,
//!   parameter names/types, return type, and the brace-matched body as a
//!   token-index range;
//! * `use` declarations — alias → full path (groups and `as` renames
//!   expanded, globs ignored);
//! * `const`/`static` items — for rule A4's threshold confinement;
//! * `struct`/`enum` field names and types — the receiver-type heuristic's
//!   fallback for `self.field.method()` and destructured bindings;
//! * `#[cfg(test)]` / `#[test]` markers — test code is excluded from the
//!   graph so reachability never flows through assertions-by-design.
//!
//! Non-goals (documented in DESIGN.md §13): no expression trees, no trait
//! resolution, no generics, no macro expansion. Anything the parser cannot
//! classify is *skipped and counted* (`ParsedFile::unparsed_items`), never
//! guessed at — the same forgiving posture as the lexer.

use crate::lexer::{Lexed, Tok, TokKind};

/// One function parameter (pattern name and its type, as written).
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Last identifier of the pattern (`x` from `mut x`, `b` from
    /// `(a, b): (usize, usize)` — good enough for binding-type lookups).
    pub name: String,
    /// Type text with tokens joined by single spaces (`& mut [ f32 ]`).
    pub ty: String,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Inline-`mod` path within the file (outermost first).
    pub module: Vec<String>,
    /// Enclosing `impl` target type, if any (`SessionState` from
    /// `impl<'a> SessionState<'a>`; the *type*, not the trait).
    pub self_type: Option<String>,
    pub params: Vec<Param>,
    /// Whether the parameter list starts with a `self` receiver.
    pub has_self: bool,
    /// Return type text (`""` for unit).
    pub ret: String,
    /// Token-index range of the body, including both braces.
    /// `None` for bodiless signatures (trait methods, extern).
    pub body: Option<(usize, usize)>,
    pub line: u32,
    /// Marked `#[test]` / inside `#[cfg(test)]` — excluded from the graph.
    pub is_test: bool,
}

/// One expanded `use` binding: `alias` names `path` in this file.
#[derive(Debug, Clone, PartialEq)]
pub struct UseItem {
    pub alias: String,
    /// Full path segments as written (`["crate", "stream", "AttackStream"]`).
    pub path: Vec<String>,
}

/// One item-level `const`/`static`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstItem {
    pub name: String,
    pub module: Vec<String>,
    pub line: u32,
}

/// One struct/enum field (or enum-variant field): name and type text.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldItem {
    pub name: String,
    pub ty: String,
}

/// The parsed form of one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    pub uses: Vec<UseItem>,
    pub consts: Vec<ConstItem>,
    pub fields: Vec<FieldItem>,
    /// Items the parser skipped without classifying (macro invocations at
    /// item level, exotic syntax). Reported, never silently dropped.
    pub unparsed_items: usize,
}

impl ParsedFile {
    /// Parser-side waiver lookup: true when a `// lint: allow(<rule>)`
    /// comment sits on `line` or the line above. Must agree exactly with
    /// the lexer-side table ([`Lexed::comment_above_contains`]) — a testkit
    /// property in `tests/self_test.rs` pins the equivalence.
    pub fn waived(lexed: &Lexed, line: u32, rule: &str) -> bool {
        lexed.comment_above_contains(line, 1, &format!("lint: allow({})", rule))
    }
}

/// Parses one lexed file.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    let mut p = Parser {
        toks: &lexed.tokens,
        i: 0,
        out: ParsedFile::default(),
        mods: Vec::new(),
        impls: Vec::new(),
        in_test: Vec::new(),
    };
    p.items(false);
    p.out
}

struct Parser<'a> {
    toks: &'a [Tok],
    i: usize,
    out: ParsedFile,
    /// Inline-`mod` name stack.
    mods: Vec<String>,
    /// `impl` target type stack (None for scopes we could not classify).
    impls: Vec<Option<String>>,
    /// Whether each enclosing mod scope is `#[cfg(test)]`.
    in_test: Vec<bool>,
}

impl<'a> Parser<'a> {
    fn cur(&self) -> Option<&Tok> {
        self.toks.get(self.i)
    }

    fn ident(&self, off: usize) -> Option<&str> {
        let t = self.toks.get(self.i + off)?;
        (t.kind == TokKind::Ident).then_some(t.text.as_str())
    }

    fn punct(&self, off: usize) -> Option<char> {
        let t = self.toks.get(self.i + off)?;
        (t.kind == TokKind::Punct).then(|| t.text.chars().next().unwrap_or(' '))
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    fn line(&self) -> u32 {
        self.cur().map(|t| t.line).unwrap_or(0)
    }

    fn scope_is_test(&self) -> bool {
        self.in_test.iter().any(|&t| t)
    }

    /// Consumes items until EOF (or the matching `}` when `closing`).
    fn items(&mut self, closing: bool) {
        // Attribute state for the *next* item.
        let mut next_is_test = false;
        while let Some(t) = self.cur() {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "}") if closing => {
                    self.bump();
                    return;
                }
                (TokKind::Punct, "#") => {
                    next_is_test |= self.attr();
                }
                (TokKind::Punct, ";") => self.bump(),
                (TokKind::Ident, "pub") => {
                    self.bump();
                    if self.punct(0) == Some('(') {
                        self.skip_balanced('(', ')');
                    }
                }
                (TokKind::Ident, "unsafe" | "async" | "default") => self.bump(),
                (TokKind::Ident, "extern") => {
                    self.bump();
                    if self.cur().is_some_and(|t| t.kind == TokKind::Str) {
                        self.bump();
                    }
                    // `extern "C" { … }` block: treat contents as items.
                    if self.punct(0) == Some('{') {
                        self.bump();
                        self.items(true);
                    }
                }
                (TokKind::Ident, "use") => {
                    self.bump();
                    self.parse_use();
                    next_is_test = false;
                }
                (TokKind::Ident, "mod") => {
                    self.bump();
                    let name = self.ident(0).unwrap_or("").to_string();
                    self.bump();
                    if self.punct(0) == Some('{') {
                        self.bump();
                        self.mods.push(name);
                        self.in_test.push(next_is_test);
                        self.items(true);
                        self.in_test.pop();
                        self.mods.pop();
                    } else {
                        self.skip_to_semi();
                    }
                    next_is_test = false;
                }
                (TokKind::Ident, "impl") => {
                    self.bump();
                    let ty = self.impl_header();
                    if self.punct(0) == Some('{') {
                        self.bump();
                        self.impls.push(ty);
                        self.in_test.push(next_is_test);
                        self.items(true);
                        self.in_test.pop();
                        self.impls.pop();
                    }
                    next_is_test = false;
                }
                (TokKind::Ident, "fn") => {
                    self.bump();
                    self.parse_fn(next_is_test);
                    next_is_test = false;
                }
                (TokKind::Ident, "const" | "static") => {
                    // `const fn` is a fn; `const NAME: T = …;` is an item.
                    self.bump();
                    if self.ident(0) == Some("mut") {
                        self.bump();
                    }
                    if self.ident(0) == Some("fn") {
                        self.bump();
                        self.parse_fn(next_is_test);
                    } else if self.ident(0) == Some("unsafe") || self.ident(0) == Some("extern") {
                        // `const unsafe fn` — strip modifiers.
                        while matches!(self.ident(0), Some("unsafe" | "extern")) {
                            self.bump();
                            if self.cur().is_some_and(|t| t.kind == TokKind::Str) {
                                self.bump();
                            }
                        }
                        if self.ident(0) == Some("fn") {
                            self.bump();
                            self.parse_fn(next_is_test);
                        }
                    } else {
                        let line = self.line();
                        if let Some(name) = self.ident(0) {
                            self.out.consts.push(ConstItem {
                                name: name.to_string(),
                                module: self.mods.clone(),
                                line,
                            });
                        }
                        self.skip_to_semi();
                    }
                    next_is_test = false;
                }
                (TokKind::Ident, "struct" | "enum" | "union") => {
                    self.bump();
                    self.parse_adt();
                    next_is_test = false;
                }
                (TokKind::Ident, "trait") => {
                    // Trait bodies hold signatures and (rare here) default
                    // methods; skip wholesale — trait-default reachability
                    // is a documented non-goal.
                    self.bump();
                    self.skip_item();
                    next_is_test = false;
                }
                (TokKind::Ident, "type") => {
                    self.bump();
                    self.skip_to_semi();
                    next_is_test = false;
                }
                (TokKind::Ident, "macro_rules") => {
                    self.bump();
                    self.skip_item();
                    self.out.unparsed_items += 1;
                    next_is_test = false;
                }
                _ => {
                    // Unclassifiable item start (e.g. a macro invocation at
                    // item level): skip one balanced item, count it.
                    self.skip_item();
                    self.out.unparsed_items += 1;
                    next_is_test = false;
                }
            }
        }
    }

    /// Consumes `#[…]` / `#![…]`; returns true for `#[test]`-ish attrs
    /// (`#[test]`, `#[cfg(test)]` and friends).
    fn attr(&mut self) -> bool {
        self.bump(); // '#'
        if self.punct(0) == Some('!') {
            self.bump();
        }
        if self.punct(0) != Some('[') {
            return false;
        }
        let start = self.i;
        self.skip_balanced('[', ']');
        let inner = &self.toks[start + 1..self.i.saturating_sub(1)];
        let first_ident = inner.iter().find(|t| t.kind == TokKind::Ident);
        if first_ident.is_some_and(|t| t.text == "test") {
            return true;
        }
        // `cfg(test)` / `cfg(any(test, …))`: a `cfg` attr mentioning the
        // bare `test` predicate.
        let is_cfg = first_ident.is_some_and(|t| t.text == "cfg");
        is_cfg
            && inner
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "test")
    }

    /// Parses `use path::{group, x as y};` into expanded aliases.
    fn parse_use(&mut self) {
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(&mut prefix);
        self.skip_to_semi();
    }

    fn use_tree(&mut self, prefix: &mut Vec<String>) {
        let depth_at_entry = prefix.len();
        loop {
            match self.cur() {
                Some(t) if t.kind == TokKind::Ident => {
                    let seg = t.text.clone();
                    self.bump();
                    if self.ident(0) == Some("as") {
                        // `path as alias`
                        self.bump();
                        let alias = self.ident(0).unwrap_or("").to_string();
                        self.bump();
                        let mut path = prefix.clone();
                        path.push(seg);
                        self.out.uses.push(UseItem { alias, path });
                        prefix.truncate(depth_at_entry);
                        if self.punct(0) == Some(',') {
                            self.bump();
                            continue;
                        }
                        return;
                    }
                    if self.punct(0) == Some(':') && self.punct(1) == Some(':') {
                        self.bump();
                        self.bump();
                        if seg == "self" && prefix.is_empty() {
                            // leading `self::` — module-relative, keep marker
                            prefix.push(seg);
                        } else {
                            prefix.push(seg);
                        }
                        if self.punct(0) == Some('{') {
                            self.bump();
                            loop {
                                if self.punct(0) == Some('}') {
                                    self.bump();
                                    break;
                                }
                                if self.punct(0) == Some(',') {
                                    self.bump();
                                    continue;
                                }
                                if self.cur().is_none() {
                                    break;
                                }
                                self.use_tree(prefix);
                            }
                            prefix.truncate(depth_at_entry);
                            return;
                        }
                        if self.punct(0) == Some('*') {
                            self.bump(); // glob: no aliases to record
                            prefix.truncate(depth_at_entry);
                            return;
                        }
                        continue;
                    }
                    // Terminal segment: alias = segment itself, or the
                    // parent for `self` in a group (`use a::b::{self}`).
                    let (alias, path) = if seg == "self" {
                        match prefix.last() {
                            Some(last) => (last.clone(), prefix.clone()),
                            None => return,
                        }
                    } else {
                        let mut path = prefix.clone();
                        path.push(seg.clone());
                        (seg, path)
                    };
                    self.out.uses.push(UseItem { alias, path });
                    prefix.truncate(depth_at_entry);
                    return;
                }
                _ => return,
            }
        }
    }

    /// Parses an `impl` header up to (not including) its `{`, returning the
    /// target type's last path segment.
    fn impl_header(&mut self) -> Option<String> {
        if self.punct(0) == Some('<') {
            self.skip_angles();
        }
        let mut last_seg: Option<String> = None;
        let mut after_for = false;
        let mut ty_for: Option<String> = None;
        while let Some(t) = self.cur() {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "{") => break,
                (TokKind::Ident, "where") => {
                    // skip where clause to the `{`
                    while self.cur().is_some_and(|t| t.text != "{") {
                        if self.punct(0) == Some('<') {
                            self.skip_angles();
                        } else {
                            self.bump();
                        }
                    }
                    break;
                }
                (TokKind::Ident, "for") => {
                    after_for = true;
                    last_seg = None;
                    self.bump();
                }
                (TokKind::Ident, _) => {
                    last_seg = Some(t.text.clone());
                    self.bump();
                    if self.punct(0) == Some('<') {
                        self.skip_angles();
                    }
                }
                _ => self.bump(),
            }
            if after_for {
                ty_for = last_seg.clone().or(ty_for);
            }
        }
        if after_for {
            ty_for
        } else {
            last_seg
        }
    }

    /// Parses `fn name<…>(params) -> Ret { body }` after the `fn` keyword.
    fn parse_fn(&mut self, attr_test: bool) {
        let line = self.line();
        let Some(name) = self.ident(0).map(str::to_string) else {
            self.skip_item();
            self.out.unparsed_items += 1;
            return;
        };
        self.bump();
        if self.punct(0) == Some('<') {
            self.skip_angles();
        }
        let (params, has_self) = if self.punct(0) == Some('(') {
            self.parse_params()
        } else {
            (Vec::new(), false)
        };
        // Return type: `-> …` until `{`, `;` or `where`.
        let mut ret = String::new();
        if self.punct(0) == Some('-') && self.punct(1) == Some('>') {
            self.bump();
            self.bump();
            let mut depth = 0usize;
            while let Some(t) = self.cur() {
                match (t.kind, t.text.as_str()) {
                    (TokKind::Punct, "<" | "(" | "[") => depth += 1,
                    (TokKind::Punct, ">" | ")" | "]") if depth > 0 => depth -= 1,
                    (TokKind::Punct, "{" | ";") if depth == 0 => break,
                    (TokKind::Ident, "where") if depth == 0 => break,
                    _ => {}
                }
                if !ret.is_empty() {
                    ret.push(' ');
                }
                ret.push_str(&t.text);
                self.bump();
            }
        }
        if self.ident(0) == Some("where") {
            while self
                .cur()
                .is_some_and(|t| !(t.kind == TokKind::Punct && (t.text == "{" || t.text == ";")))
            {
                if self.punct(0) == Some('<') {
                    self.skip_angles();
                } else {
                    self.bump();
                }
            }
        }
        let body = if self.punct(0) == Some('{') {
            let start = self.i;
            self.skip_balanced('{', '}');
            Some((start, self.i))
        } else {
            self.skip_to_semi();
            None
        };
        self.out.fns.push(FnItem {
            name,
            module: self.mods.clone(),
            self_type: self.impls.last().cloned().flatten(),
            params,
            has_self,
            ret,
            body,
            line,
            is_test: attr_test || self.scope_is_test(),
        });
    }

    /// Parses a parenthesized parameter list, the cursor on `(`.
    fn parse_params(&mut self) -> (Vec<Param>, bool) {
        let start = self.i;
        self.skip_balanced('(', ')');
        let inner = &self.toks[start + 1..self.i.saturating_sub(1)];
        let mut params = Vec::new();
        let mut has_self = false;
        // Split on top-level commas.
        let mut depth = 0usize;
        let mut piece: Vec<&Tok> = Vec::new();
        let mut pieces: Vec<Vec<&Tok>> = Vec::new();
        for t in inner {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "<" | "(" | "[") => depth += 1,
                (TokKind::Punct, ">" | ")" | "]") if depth > 0 => depth -= 1,
                (TokKind::Punct, ",") if depth == 0 => {
                    pieces.push(std::mem::take(&mut piece));
                    continue;
                }
                _ => {}
            }
            piece.push(t);
        }
        if !piece.is_empty() {
            pieces.push(piece);
        }
        for (pi, piece) in pieces.iter().enumerate() {
            let is_self = piece
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "self");
            if pi == 0 && is_self && !piece.iter().any(|t| t.text == ":") {
                has_self = true;
                continue;
            }
            // Find the top-level `:` splitting pattern from type.
            let mut depth = 0usize;
            let mut colon = None;
            for (ti, t) in piece.iter().enumerate() {
                match (t.kind, t.text.as_str()) {
                    (TokKind::Punct, "<" | "(" | "[") => depth += 1,
                    (TokKind::Punct, ">" | ")" | "]") if depth > 0 => depth -= 1,
                    (TokKind::Punct, ":") if depth == 0 => {
                        // `::` is two tokens; a lone `:` splits.
                        let next_colon = piece.get(ti + 1).is_some_and(|t| t.text == ":");
                        let prev_colon = ti > 0 && piece[ti - 1].text == ":";
                        if !next_colon && !prev_colon {
                            colon = Some(ti);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let Some(ci) = colon else { continue };
            let name = piece[..ci]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")
                .map(|t| t.text.clone())
                .unwrap_or_default();
            let ty = piece[ci + 1..]
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            params.push(Param { name, ty });
        }
        (params, has_self)
    }

    /// Parses a struct/enum/union after its keyword: records field
    /// name/type pairs (including enum-variant fields) for the
    /// receiver-type heuristic.
    fn parse_adt(&mut self) {
        self.bump(); // name
        if self.punct(0) == Some('<') {
            self.skip_angles();
        }
        while let Some(t) = self.cur() {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, ";") => {
                    self.bump();
                    return;
                }
                (TokKind::Punct, "(") => {
                    // tuple struct / variant args — no named fields
                    self.skip_balanced('(', ')');
                }
                (TokKind::Punct, "{") => {
                    let start = self.i;
                    self.skip_balanced('{', '}');
                    self.harvest_fields(start + 1, self.i.saturating_sub(1));
                    // enum bodies continue with more variants; struct bodies
                    // end here. Either way the brace closed the item unless
                    // we are inside an enum's variant list — handled by the
                    // caller loop terminating on `;`/next item keywords.
                    return;
                }
                (TokKind::Ident, "where") => self.bump(),
                (TokKind::Punct, "<") => self.skip_angles(),
                _ => self.bump(),
            }
        }
    }

    /// Harvests `name: Type` pairs at top nesting level(s) of an ADT body.
    /// Enum variants introduce one extra brace level; both levels are
    /// scanned (the pattern `ident : type` with a lone colon is
    /// unambiguous inside ADT bodies).
    fn harvest_fields(&mut self, lo: usize, hi: usize) {
        let toks = &self.toks[lo..hi];
        let mut k = 0usize;
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Punct && t.text == "#" {
                // field attribute: skip `[…]`
                let mut j = k + 1;
                if toks.get(j).is_some_and(|t| t.text == "[") {
                    let mut depth = 0usize;
                    while j < toks.len() {
                        match toks[j].text.as_str() {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                k = j + 1;
                continue;
            }
            let is_name = t.kind == TokKind::Ident
                && toks.get(k + 1).is_some_and(|n| n.text == ":")
                && toks.get(k + 2).is_none_or(|n| n.text != ":")
                && !matches!(t.text.as_str(), "pub");
            if is_name {
                // type runs to the next top-level `,` or the end
                let mut depth = 0usize;
                let mut j = k + 2;
                let mut ty = String::new();
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "<" | "(" | "[" | "{" => depth += 1,
                        ">" | ")" | "]" | "}" if depth > 0 => depth -= 1,
                        "," if depth == 0 => break,
                        "}" if depth == 0 => break,
                        _ => {}
                    }
                    if !ty.is_empty() {
                        ty.push(' ');
                    }
                    ty.push_str(&toks[j].text);
                    j += 1;
                }
                self.out.fields.push(FieldItem {
                    name: t.text.clone(),
                    ty,
                });
                k = j;
                continue;
            }
            k += 1;
        }
    }

    /// Skips one balanced delimiter group, the cursor on the opener.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0usize;
        while let Some(t) = self.cur() {
            if t.kind == TokKind::Punct {
                let c = t.text.chars().next().unwrap_or(' ');
                if c == open {
                    depth += 1;
                } else if c == close {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
            }
            self.bump();
        }
    }

    /// Skips a balanced `<…>` generic group (handles `>>` arriving as two
    /// tokens; `->` never appears inside a generic header in this
    /// workspace's code, and if it did the `(`/`)` balance below keeps the
    /// cursor sane for `Fn(..) -> R` bounds).
    fn skip_angles(&mut self) {
        let mut angle = 0isize;
        let mut paren = 0isize;
        while let Some(t) = self.cur() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => {
                        // `->` inside Fn() bounds: the '-' precedes; only
                        // count '>' as a closer when not part of `->`.
                        let prev_minus = self.i > 0 && self.toks[self.i - 1].text == "-";
                        if !prev_minus {
                            angle -= 1;
                            if angle <= 0 && paren == 0 {
                                self.bump();
                                return;
                            }
                        }
                    }
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    ";" | "{" if paren == 0 => return, // runaway guard
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Skips to just past the next `;` at delimiter depth 0.
    fn skip_to_semi(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.cur() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" if depth > 0 => depth -= 1,
                    ";" if depth == 0 => {
                        self.bump();
                        return;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Skips one item of unknown shape: to a `;` at depth 0 or past the
    /// first balanced brace group, whichever comes first.
    fn skip_item(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.cur() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" if depth > 0 => depth -= 1,
                    "{" => {
                        self.skip_balanced('{', '}');
                        if depth == 0 {
                            return;
                        }
                        continue;
                    }
                    ";" if depth == 0 => {
                        self.bump();
                        return;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn fn_items_with_modules_and_impls() {
        let p = parse_src(
            "fn free(a: usize) -> usize { a }\n\
             mod inner { pub fn nested() {} }\n\
             impl<'a> SessionState<'a> {\n\
                 fn method(&mut self, x: &[f32]) -> Vec<f32> { x.to_vec() }\n\
             }\n\
             impl Default for FleetConfig { fn default() -> Self { todo!() } }\n",
        );
        let names: Vec<(String, Option<String>, Vec<String>)> = p
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.self_type.clone(), f.module.clone()))
            .collect();
        assert_eq!(names[0], ("free".into(), None, vec![]));
        assert_eq!(names[1], ("nested".into(), None, vec!["inner".into()]));
        assert_eq!(
            names[2],
            ("method".into(), Some("SessionState".into()), vec![])
        );
        assert_eq!(
            names[3],
            ("default".into(), Some("FleetConfig".into()), vec![])
        );
        assert!(p.fns[2].has_self);
        assert_eq!(p.fns[2].params.len(), 1);
        assert_eq!(p.fns[2].params[0].name, "x");
        assert_eq!(p.fns[2].params[0].ty, "& [ f32 ]");
        assert_eq!(p.fns[2].ret, "Vec < f32 >");
        assert!(p.fns[2].body.is_some());
    }

    #[test]
    fn use_groups_and_renames_expand() {
        let p = parse_src(
            "use crate::stream::{AttackStream, GapStream as GS, SplitEvent};\n\
             use ml::par::par_map;\n\
             use std::collections::BTreeMap;\n",
        );
        let find = |alias: &str| -> Vec<String> {
            p.uses
                .iter()
                .find(|u| u.alias == alias)
                .map(|u| u.path.clone())
                .unwrap_or_default()
        };
        assert_eq!(
            find("AttackStream"),
            vec!["crate", "stream", "AttackStream"]
        );
        assert_eq!(find("GS"), vec!["crate", "stream", "GapStream"]);
        assert_eq!(find("par_map"), vec!["ml", "par", "par_map"]);
        assert_eq!(find("BTreeMap"), vec!["std", "collections", "BTreeMap"]);
    }

    #[test]
    fn cfg_test_modules_and_test_attrs_mark_fns() {
        let p = parse_src(
            "fn live() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn a_test() { assert!(true); }\n\
                 fn helper() {}\n\
             }\n",
        );
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
        assert!(p.fns[2].is_test, "helpers inside cfg(test) mods are test");
    }

    #[test]
    fn consts_record_module_path() {
        let p = parse_src(
            "const MIN_PARALLEL_X: usize = 4;\n\
             pub mod thresholds { pub const MIN_PARALLEL_Y: usize = 1 << 4; }\n",
        );
        assert_eq!(p.consts.len(), 2);
        assert_eq!(p.consts[0].name, "MIN_PARALLEL_X");
        assert!(p.consts[0].module.is_empty());
        assert_eq!(p.consts[1].name, "MIN_PARALLEL_Y");
        assert_eq!(p.consts[1].module, vec!["thresholds"]);
    }

    #[test]
    fn struct_and_enum_fields_are_harvested() {
        let p = parse_src(
            "struct S { pub gap: GapStream<'a>, n: usize }\n\
             enum Engine<'a> { F32 { stream: Option<Box<AttackStream<'a>>> }, Int8 { features: Vec<Vec<f32>> } }\n",
        );
        let ty = |name: &str| -> String {
            p.fields
                .iter()
                .find(|f| f.name == name)
                .map(|f| f.ty.clone())
                .unwrap_or_default()
        };
        assert!(ty("gap").starts_with("GapStream"));
        assert_eq!(ty("n"), "usize");
        assert!(ty("stream").contains("AttackStream"));
        assert!(ty("features").starts_with("Vec"));
    }

    #[test]
    fn generics_where_clauses_and_bodiless_fns() {
        let p = parse_src(
            "pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>\n\
             where T: Sync, R: Send, F: Fn(usize, &T) -> R + Sync,\n\
             { todo!() }\n\
             trait T { fn sig(&self); }\n",
        );
        assert_eq!(p.fns.len(), 1, "trait signatures are skipped");
        assert_eq!(p.fns[0].name, "par_map");
        assert_eq!(p.fns[0].ret, "Vec < R >");
        assert_eq!(p.fns[0].params.len(), 2);
    }

    #[test]
    fn unparsed_items_are_counted_not_dropped() {
        let p = parse_src("thread_local! { static X: u8 = 0; }\nfn after() {}\n");
        assert_eq!(p.unparsed_items, 1);
        assert_eq!(p.fns.len(), 1, "parser recovers after unknown items");
        assert_eq!(p.fns[0].name, "after");
    }
}
