//! Workspace module graph + call graph.
//!
//! Nodes are functions, identified as `crate::module::[Type::]name`
//! (`moscons::fleet::SessionState::poll_round`). Edges come from the
//! per-file call facts ([`crate::facts`]), resolved with deliberately
//! simple heuristics (DESIGN.md §13):
//!
//! * free paths resolve through the file's `use` map, then `crate::` /
//!   `self::` / `super::` prefixes, then the workspace crate-name set;
//! * `self.method(..)` resolves via the enclosing `impl` type;
//! * `binding.method(..)` resolves via the binding's harvested type;
//! * `….field.method(..)` (and destructured bindings) resolve via a
//!   workspace-wide field-name → type map, used only when the field name
//!   maps to exactly one type;
//! * a method name in the std-method denylist that fails typed resolution
//!   is assumed to be std and dropped; any *other* unresolved call lands in
//!   the **unresolved bucket**, which the CLI reports — the analysis never
//!   silently widens or narrows.
//!
//! Module paths are derived from file paths (`crates/<dir>/src/a/b.rs` →
//! `<crate>::a::b`); `mod foo;` declarations are ignored (a file's on-disk
//! location *is* its module here — true for this workspace). Crate names
//! come from each member's `Cargo.toml` (directory name as fallback), so
//! `crates/core` correctly maps to `moscons`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::facts::{Callee, FileFacts, Recv};
use crate::parser::ParsedFile;

/// Method names so common on std types that a failed typed resolution is
/// assumed to be std rather than an unresolved workspace call. A workspace
/// method with one of these names is still reachable through a *typed*
/// receiver; the denylist only suppresses the noisy fallback.
const STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "any",
    "as_bytes",
    "as_mut",
    "as_mut_slice",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "borrow",
    "by_ref",
    "ceil",
    "chain",
    "chars",
    "checked_sub",
    "chunks",
    "chunks_exact",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "dedup",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "exp",
    "extend",
    "extend_from_slice",
    "fill",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fmt",
    "fold",
    "from_bits",
    "front",
    "get",
    "get_mut",
    "get_or_init",
    "hash",
    "insert",
    "into",
    "into_inner",
    "into_iter",
    "is_empty",
    "is_finite",
    "is_nan",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "ln",
    "lock",
    "map",
    "map_err",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "ok",
    "ok_or",
    "or_default",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "powf",
    "powi",
    "push",
    "push_str",
    "read",
    "rem_euclid",
    "replace",
    "resize",
    "retain",
    "rev",
    "round",
    "saturating_add",
    "saturating_sub",
    "set",
    "signum",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "split_at",
    "split_at_mut",
    "split_off",
    "sqrt",
    "starts_with",
    "step_by",
    "sum",
    "swap",
    "take",
    "take_while",
    "to_bits",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "trunc",
    "truncate",
    "try_into",
    "unwrap",
    "unwrap_err",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "wrapping_add",
    "wrapping_sub",
    "write",
    "zip",
    "expect",
    "expect_err",
    "abs_diff",
    "div_ceil",
    "is_power_of_two",
    "leading_zeros",
    "max_element",
    "mul_add",
    "next_power_of_two",
    "to_le_bytes",
    "from_le_bytes",
    "swap_remove",
    "splice",
    "last_mut",
    "first_mut",
    "get_unchecked",
    "resize_with",
    "reserve",
    "shrink_to_fit",
    "is_char_boundary",
    "char_indices",
    "bytes",
    "lines",
    "split_whitespace",
    "repeat",
    "finish",
    "write_u64",
    "write_usize",
];

/// Path heads that are std/primitive — failed path resolution through one of
/// these never lands in the unresolved bucket.
const STD_HEADS: &[&str] = &[
    "std",
    "core",
    "alloc",
    "Vec",
    "Box",
    "String",
    "Some",
    "None",
    "Ok",
    "Err",
    "Option",
    "Result",
    "Ordering",
    "Duration",
    "Instant",
    "SystemTime",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "VecDeque",
    "Arc",
    "Rc",
    "Mutex",
    "RwLock",
    "Cell",
    "RefCell",
    "OnceLock",
    "OnceCell",
    "PathBuf",
    "Path",
    "Default",
    "Clone",
    "Copy",
    "Iterator",
    "IntoIterator",
    "TryFrom",
    "TryInto",
    "From",
    "Into",
    "Cow",
    "Wrapping",
    "Saturating",
    "f32",
    "f64",
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "i128",
    "isize",
    "bool",
    "char",
    "str",
    "mem",
    "ptr",
    "cmp",
    "fmt",
    "iter",
    "slice",
    "array",
    "env",
    "fs",
    "io",
    "process",
    "thread",
    "panic",
    "hint",
    "f32x8",
    "Self",
];

/// Std/container type roots — a typed receiver rooted here is a std call.
const STD_TYPE_ROOTS: &[&str] = &[
    "Vec", "VecDeque", "String", "Box", "Arc", "Rc", "Mutex", "RwLock", "Cell", "RefCell",
    "OnceLock", "OnceCell", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Option", "Result",
    "PathBuf", "Path", "Cow", "f32", "f64", "usize", "u64", "u32", "u16", "u8", "i64", "i32",
    "str", "bool", "char", "Range", "Ordering", "Duration", "Instant",
];

/// One analyzed file, assembled by the driver.
pub struct FileUnit {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    pub parsed: ParsedFile,
    pub facts: FileFacts,
}

/// One function node.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// `crate::module::[Type::]name`.
    pub id: String,
    /// Index into the driver's file list.
    pub file: usize,
    /// Index into that file's `parsed.fns` / `facts.fns`.
    pub fn_idx: usize,
    pub crate_name: String,
    pub self_type: Option<String>,
    pub name: String,
    pub ret: String,
    pub line: u32,
    pub is_test: bool,
}

/// One unresolved (non-std) call site.
#[derive(Debug, Clone)]
pub struct Unresolved {
    pub caller: usize,
    pub line: u32,
    /// The callee as written (`cfg.validate` / `Splitter::feed`).
    pub text: String,
}

/// The workspace call graph.
pub struct Graph {
    pub nodes: Vec<FnNode>,
    /// Adjacency: `edges[n]` = nodes called by `n` (deduped, sorted).
    pub edges: Vec<Vec<usize>>,
    /// Calls that resolved to nothing and are not plausibly std.
    pub unresolved: Vec<Unresolved>,
    /// Workspace-wide field name → type roots (from struct/enum defs).
    fields: BTreeMap<String, BTreeSet<String>>,
    by_id: BTreeMap<String, usize>,
    /// (self_type, method name) → node indices.
    methods: BTreeMap<(String, String), Vec<usize>>,
    crate_names: BTreeSet<String>,
}

/// Derives a file's module path. `crate_names` maps member *directory*
/// prefixes (`crates/core`) to package names (`moscons`).
pub fn module_path(rel: &str, crate_dirs: &BTreeMap<String, String>) -> Vec<String> {
    let rel = rel.strip_suffix(".rs").unwrap_or(rel);
    // Longest matching crate-dir prefix wins.
    let mut best: Option<(&str, &str)> = None;
    for (dir, name) in crate_dirs {
        if rel.starts_with(dir.as_str())
            && rel[dir.len()..].starts_with('/')
            && best.is_none_or(|(d, _)| d.len() < dir.len())
        {
            best = Some((dir, name));
        }
    }
    let (tail, crate_name) = match best {
        Some((dir, name)) => (&rel[dir.len() + 1..], name.to_string()),
        None => (rel, "workspace".to_string()),
    };
    let mut path = vec![crate_name.replace('-', "_")];
    let mut segs: Vec<&str> = tail.split('/').collect();
    if segs.first() == Some(&"src") {
        segs.remove(0);
    }
    for seg in segs {
        if seg == "lib" || seg == "main" || seg == "mod" {
            continue;
        }
        path.push(seg.to_string());
    }
    path
}

/// Extracts the first meaningful type root from harvested type text
/// (`& mut GapStream < 'a >` → `GapStream`; `& [ f32 ]` → `f32`).
pub fn type_root(ty: &str) -> Option<String> {
    ty.split_whitespace()
        .find(|w| {
            w.chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
                && !matches!(*w, "mut" | "dyn" | "impl" | "const" | "ref")
        })
        .map(str::to_string)
}

impl Graph {
    /// Builds the graph: nodes from every non-test fn, edges from call facts.
    pub fn build(files: &[FileUnit], crate_dirs: &BTreeMap<String, String>) -> Graph {
        let mut g = Graph {
            nodes: Vec::new(),
            edges: Vec::new(),
            unresolved: Vec::new(),
            fields: BTreeMap::new(),
            by_id: BTreeMap::new(),
            methods: BTreeMap::new(),
            crate_names: crate_dirs.values().map(|n| n.replace('-', "_")).collect(),
        };
        let mut modules: Vec<Vec<String>> = Vec::new();

        for (fi, unit) in files.iter().enumerate() {
            let base = module_path(&unit.rel, crate_dirs);
            modules.push(base.clone());
            for field in &unit.parsed.fields {
                if let Some(root) = type_root(&field.ty) {
                    g.fields.entry(field.name.clone()).or_default().insert(root);
                }
            }
            for (fj, f) in unit.parsed.fns.iter().enumerate() {
                let mut id_parts = base.clone();
                id_parts.extend(f.module.iter().cloned());
                if let Some(t) = &f.self_type {
                    id_parts.push(t.clone());
                }
                id_parts.push(f.name.clone());
                let id = id_parts.join("::");
                let node = FnNode {
                    id: id.clone(),
                    file: fi,
                    fn_idx: fj,
                    crate_name: base[0].clone(),
                    self_type: f.self_type.clone(),
                    name: f.name.clone(),
                    ret: f.ret.clone(),
                    line: f.line,
                    is_test: f.is_test,
                };
                let idx = g.nodes.len();
                g.nodes.push(node);
                g.by_id.insert(id, idx);
                if let Some(t) = &f.self_type {
                    g.methods
                        .entry((t.clone(), f.name.clone()))
                        .or_default()
                        .push(idx);
                }
            }
        }

        g.edges = vec![Vec::new(); g.nodes.len()];
        for n in 0..g.nodes.len() {
            let node = g.nodes[n].clone();
            let unit = &files[node.file];
            let module = &modules[node.file];
            let use_map: BTreeMap<&str, &[String]> = unit
                .parsed
                .uses
                .iter()
                .map(|u| (u.alias.as_str(), u.path.as_slice()))
                .collect();
            let facts = &unit.facts.fns[node.fn_idx];
            let mut out = BTreeSet::new();
            for call in &facts.calls {
                match g.resolve(&node, module, &use_map, facts, &call.callee) {
                    Resolution::Node(m) => {
                        out.insert(m);
                    }
                    Resolution::Std => {}
                    Resolution::Unknown(text) => {
                        g.unresolved.push(Unresolved {
                            caller: n,
                            line: call.line,
                            text,
                        });
                    }
                }
            }
            g.edges[n] = out.into_iter().collect();
        }
        g
    }

    /// The node index for a full id, if present.
    pub fn node_by_id(&self, id: &str) -> Option<usize> {
        self.by_id.get(id).copied()
    }

    /// Workspace type roots recorded for a field name, if any.
    pub fn field_roots(&self, name: &str) -> Option<&BTreeSet<String>> {
        self.fields.get(name)
    }

    /// Return types of every workspace method with this name (any type).
    pub fn method_rets(&self, name: &str) -> Vec<&str> {
        self.methods
            .iter()
            .filter(|((_, m), _)| m == name)
            .flat_map(|(_, v)| v.iter())
            .map(|&n| self.nodes[n].ret.as_str())
            .collect()
    }

    /// Nodes matching a `*`-wildcard pattern over full ids, tests excluded.
    pub fn match_pattern(&self, pattern: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.is_test && wildcard_match(pattern, &n.id))
            .map(|(i, _)| i)
            .collect()
    }

    /// BFS from `roots`; returns for each node the root it was first reached
    /// from (as a node index), or `None` if unreachable. Test fns block
    /// propagation (they are never on a production path).
    pub fn reachable_from(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut from: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue = VecDeque::new();
        for &r in roots {
            if from[r].is_none() && !self.nodes[r].is_test {
                from[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            let root = from[n];
            for &m in &self.edges[n] {
                if from[m].is_none() && !self.nodes[m].is_test {
                    from[m] = root;
                    queue.push_back(m);
                }
            }
        }
        from
    }

    /// Resolves the return-type text of a call, for A3's order
    /// classification. `None` when the callee is not a workspace fn.
    pub fn ret_of_call(
        &self,
        node: &FnNode,
        module: &[String],
        use_map: &BTreeMap<&str, &[String]>,
        facts: &crate::facts::FnFacts,
        callee: &Callee,
    ) -> Option<String> {
        match self.resolve(node, module, use_map, facts, callee) {
            Resolution::Node(m) => Some(self.nodes[m].ret.clone()),
            _ => None,
        }
    }

    fn resolve(
        &self,
        node: &FnNode,
        module: &[String],
        use_map: &BTreeMap<&str, &[String]>,
        facts: &crate::facts::FnFacts,
        callee: &Callee,
    ) -> Resolution {
        match callee {
            Callee::Free(segs) => self.resolve_path(node, module, use_map, segs, 0),
            Callee::Method { recv, name } => self.resolve_method(node, facts, recv, name),
        }
    }

    fn resolve_path(
        &self,
        node: &FnNode,
        module: &[String],
        use_map: &BTreeMap<&str, &[String]>,
        segs: &[String],
        depth: usize,
    ) -> Resolution {
        if segs.is_empty() || depth > 4 {
            return Resolution::Std;
        }
        let head = segs[0].as_str();

        // `use` aliases expand first: `par_map(…)` after `use ml::par::par_map`.
        if let Some(expansion) = use_map.get(head) {
            if depth < 4 {
                let mut full: Vec<String> = expansion.to_vec();
                full.extend(segs[1..].iter().cloned());
                // Avoid infinite self-expansion (`use x::par_map;` + call
                // `par_map(…)` expands once; the expanded head differs).
                if full.len() != segs.len() || full != segs {
                    return self.resolve_path(node, module, use_map, &full, depth + 1);
                }
            }
        }

        match head {
            "crate" => {
                let mut full = vec![node.crate_name.clone()];
                full.extend(segs[1..].iter().cloned());
                return self.lookup_full(&full);
            }
            "self" => {
                let mut full = module.to_vec();
                full.extend(segs[1..].iter().cloned());
                return self.lookup_full(&full);
            }
            "super" => {
                let mut full: Vec<String> = module[..module.len().saturating_sub(1)].to_vec();
                full.extend(segs[1..].iter().cloned());
                return self.lookup_full(&full);
            }
            "Self" => {
                if let (Some(t), [_, m]) = (&node.self_type, segs) {
                    return self.lookup_method(&node.crate_name, t, m);
                }
                return Resolution::Std;
            }
            _ => {}
        }

        if self.crate_names.contains(head) {
            return self.lookup_full(segs);
        }

        if segs.len() == 1 {
            // Bare call: same module, else same crate root.
            let mut full = module.to_vec();
            full.push(segs[0].clone());
            if let Resolution::Node(n) = self.lookup_full(&full) {
                return Resolution::Node(n);
            }
            let crate_root = vec![node.crate_name.clone(), segs[0].clone()];
            if let Resolution::Node(n) = self.lookup_full(&crate_root) {
                return Resolution::Node(n);
            }
            // Free fns are also matched by unique name within the caller's
            // crate (helpers called across sibling modules via `use`
            // globs — rare, but cheap to cover).
            return Resolution::Std; // closures / std free fns (drop, …)
        }

        // `Type::method(…)` — associated call.
        if segs.len() == 2 && head.chars().next().is_some_and(char::is_uppercase) {
            let r = self.lookup_method(&node.crate_name, head, &segs[1]);
            if let Resolution::Node(n) = r {
                return Resolution::Node(n);
            }
            if STD_HEADS.contains(&head) {
                return Resolution::Std;
            }
            return Resolution::Unknown(segs.join("::"));
        }

        if STD_HEADS.contains(&head) {
            return Resolution::Std;
        }
        // Last resort: full-path lookup (handles `module::fn` written
        // relative to the crate root from lib.rs).
        let mut full = vec![node.crate_name.clone()];
        full.extend(segs.iter().cloned());
        if let Resolution::Node(n) = self.lookup_full(&full) {
            return Resolution::Node(n);
        }
        Resolution::Unknown(segs.join("::"))
    }

    fn lookup_full(&self, segs: &[String]) -> Resolution {
        let id = segs.join("::");
        match self.by_id.get(&id) {
            Some(&n) => Resolution::Node(n),
            None => Resolution::Unknown(id),
        }
    }

    /// Methods by `(type, name)`: same-crate candidates win; a unique
    /// workspace-wide candidate is accepted; ambiguity is unresolved.
    fn lookup_method(&self, crate_name: &str, ty: &str, name: &str) -> Resolution {
        let Some(cands) = self.methods.get(&(ty.to_string(), name.to_string())) else {
            if STD_TYPE_ROOTS.contains(&ty) || STD_METHODS.contains(&name) {
                return Resolution::Std;
            }
            return Resolution::Unknown(format!("{}::{}", ty, name));
        };
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&n| self.nodes[n].crate_name == crate_name)
            .collect();
        match (same_crate.as_slice(), cands.as_slice()) {
            ([one], _) => Resolution::Node(*one),
            ([], [one]) => Resolution::Node(*one),
            ([], []) => Resolution::Std,
            _ => Resolution::Unknown(format!("{}::{} (ambiguous impls)", ty, name)),
        }
    }

    fn resolve_method(
        &self,
        node: &FnNode,
        facts: &crate::facts::FnFacts,
        recv: &Recv,
        name: &str,
    ) -> Resolution {
        let typed = match recv {
            Recv::SelfRecv => node.self_type.clone(),
            Recv::Ident(x) => facts
                .bindings
                .get(x)
                .and_then(|ty| type_root(ty))
                .or_else(|| self.unique_field_type(x)),
            Recv::Field(f) => self.unique_field_type(f),
            Recv::Other => None,
        };
        if let Some(ty) = typed {
            if STD_TYPE_ROOTS.contains(&ty.as_str()) {
                return Resolution::Std;
            }
            match self.lookup_method(&node.crate_name, &ty, name) {
                Resolution::Node(n) => return Resolution::Node(n),
                Resolution::Unknown(u) => {
                    if STD_METHODS.contains(&name) {
                        return Resolution::Std;
                    }
                    return Resolution::Unknown(u);
                }
                Resolution::Std => return Resolution::Std,
            }
        }
        // Untyped receiver: std-denylisted names are assumed std; anything
        // else resolves when the workspace has exactly one method so named.
        if STD_METHODS.contains(&name) {
            return Resolution::Std;
        }
        let all: Vec<usize> = self
            .methods
            .iter()
            .filter(|((_, m), _)| m == name)
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        match all.as_slice() {
            [one] => Resolution::Node(*one),
            [] => Resolution::Unknown(format!(".{}()", name)),
            _ => Resolution::Unknown(format!(".{}() (ambiguous receivers)", name)),
        }
    }

    fn unique_field_type(&self, field: &str) -> Option<String> {
        let roots = self.fields.get(field)?;
        // std-rooted fields (Vec, Option…) are fine to ignore; a unique
        // workspace root resolves.
        let ws: Vec<&String> = roots
            .iter()
            .filter(|r| !STD_TYPE_ROOTS.contains(&r.as_str()))
            .collect();
        match ws.as_slice() {
            [one] => Some((*one).clone()),
            _ => roots.iter().next().cloned().filter(|_| roots.len() == 1),
        }
    }
}

enum Resolution {
    Node(usize),
    Std,
    Unknown(String),
}

/// `*`-wildcard match (each `*` spans any characters, `::` included).
pub fn wildcard_match(pattern: &str, text: &str) -> bool {
    let parts: Vec<&str> = pattern.split('*').collect();
    if parts.len() == 1 {
        return pattern == text;
    }
    let mut pos = 0usize;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if i == 0 {
            if !text.starts_with(part) {
                return false;
            }
            pos = part.len();
        } else if i == parts.len() - 1 {
            return text.len() >= pos && text[pos..].ends_with(part);
        } else {
            match text[pos..].find(part) {
                Some(at) => pos += at + part.len(),
                None => return false,
            }
        }
    }
    // pattern ends with `*`
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::extract;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn unit(rel: &str, src: &str) -> FileUnit {
        let lexed = lex(src);
        let parsed = parse(&lexed);
        let facts = extract(&lexed, &parsed);
        FileUnit {
            rel: rel.to_string(),
            parsed,
            facts,
        }
    }

    fn dirs() -> BTreeMap<String, String> {
        [
            ("crates/core".to_string(), "moscons".to_string()),
            ("crates/ml".to_string(), "ml".to_string()),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn module_paths_map_dirs_to_package_names() {
        let d = dirs();
        assert_eq!(module_path("crates/core/src/lib.rs", &d), vec!["moscons"]);
        assert_eq!(
            module_path("crates/core/src/fleet.rs", &d),
            vec!["moscons", "fleet"]
        );
        assert_eq!(
            module_path("crates/ml/src/par/thresholds.rs", &d),
            vec!["ml", "par", "thresholds"]
        );
    }

    #[test]
    fn method_vs_free_fn_resolution() {
        // Pins the heuristic: `self.step()` resolves to the impl's method,
        // `helper()` to the same-module free fn, and the two never cross.
        let files = vec![unit(
            "crates/ml/src/seq.rs",
            "fn helper() {}\n\
             struct Classifier { n: usize }\n\
             impl Classifier {\n\
                 fn step(&mut self) { helper(); }\n\
                 fn run(&mut self) { self.step(); }\n\
             }\n\
             fn step() { /* free fn sharing the method's name */ }\n",
        )];
        let g = Graph::build(&files, &dirs());
        let run = g.node_by_id("ml::seq::Classifier::run").unwrap();
        let step_m = g.node_by_id("ml::seq::Classifier::step").unwrap();
        let helper = g.node_by_id("ml::seq::helper").unwrap();
        let step_f = g.node_by_id("ml::seq::step").unwrap();
        assert_eq!(g.edges[run], vec![step_m], "self.step() is the method");
        assert_eq!(g.edges[step_m], vec![helper]);
        assert!(g.edges.iter().all(|e| !e.contains(&step_f)));
    }

    #[test]
    fn cross_crate_use_resolution() {
        let files = vec![
            unit("crates/ml/src/par.rs", "pub fn par_map() { }\n"),
            unit(
                "crates/core/src/attack.rs",
                "use ml::par::par_map;\n\
                 pub fn extract() { par_map(); ml::par::par_map(); }\n",
            ),
        ];
        let g = Graph::build(&files, &dirs());
        let extract_n = g.node_by_id("moscons::attack::extract").unwrap();
        let par_map = g.node_by_id("ml::par::par_map").unwrap();
        assert_eq!(g.edges[extract_n], vec![par_map]);
    }

    #[test]
    fn typed_and_field_receivers_resolve_untyped_std_names_do_not() {
        let files = vec![unit(
            "crates/core/src/stream.rs",
            "pub struct GapStream { n: usize }\n\
             impl GapStream { pub fn push(&mut self) {} }\n\
             pub struct Engine { gap: GapStream }\n\
             impl Engine {\n\
                 fn typed(&mut self, g: &mut GapStream) { g.push(); }\n\
                 fn field(&mut self) { self.gap.push(); }\n\
                 fn untyped(&mut self, v: &mut Vec<u32>) { v.push(1); }\n\
             }\n",
        )];
        let g = Graph::build(&files, &dirs());
        let push = g.node_by_id("moscons::stream::GapStream::push").unwrap();
        let typed = g.node_by_id("moscons::stream::Engine::typed").unwrap();
        let field = g.node_by_id("moscons::stream::Engine::field").unwrap();
        let untyped = g.node_by_id("moscons::stream::Engine::untyped").unwrap();
        assert_eq!(g.edges[typed], vec![push]);
        assert_eq!(g.edges[field], vec![push]);
        assert!(g.edges[untyped].is_empty(), "Vec::push is std, no edge");
    }

    #[test]
    fn unresolved_bucket_collects_unknown_non_std_calls() {
        let files = vec![unit(
            "crates/core/src/x.rs",
            "fn a() { mystery_fn_nowhere::call(); }\n",
        )];
        let g = Graph::build(&files, &dirs());
        assert_eq!(g.unresolved.len(), 1);
        assert!(g.unresolved[0].text.contains("mystery_fn_nowhere"));
    }

    #[test]
    fn reachability_stops_at_test_fns_and_tracks_roots() {
        let files = vec![unit(
            "crates/core/src/x.rs",
            "pub fn root() { mid(); }\n\
             fn mid() { leaf(); }\n\
             fn leaf() {}\n\
             fn island() {}\n\
             #[cfg(test)]\n\
             mod tests { fn t() { super::island(); } }\n",
        )];
        let g = Graph::build(&files, &dirs());
        let roots = g.match_pattern("moscons::x::root");
        let reach = g.reachable_from(&roots);
        let leaf = g.node_by_id("moscons::x::leaf").unwrap();
        let island = g.node_by_id("moscons::x::island").unwrap();
        assert_eq!(reach[leaf], Some(roots[0]));
        assert_eq!(reach[island], None, "only test code reaches island");
    }

    #[test]
    fn wildcards_span_path_separators() {
        assert!(wildcard_match("ml::*_into", "ml::matrix::matmul_into"));
        assert!(wildcard_match(
            "moscons::stream::AttackStream::*",
            "moscons::stream::AttackStream::push"
        ));
        assert!(!wildcard_match("ml::*_into", "ml::matrix::matmul"));
        assert!(wildcard_match("exact::path", "exact::path"));
    }
}
